//! # nvfs — NVRAM for fast, reliable file systems
//!
//! A trace-driven simulation toolkit reproducing Baker, Asami, Deprit,
//! Ousterhout & Seltzer, *Non-Volatile Memory for Fast, Reliable File
//! Systems* (ASPLOS 1992).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`types`] — ids, simulated time, byte-range algebra.
//! * [`trace`] — trace events, op streams, and the synthetic Sprite workload
//!   generator (eight 24-hour traces; traces 3 and 4 carry the large-file
//!   simulation workloads).
//! * [`nvram`] — NVRAM device/battery/crash models and the Table 1 cost
//!   catalogue.
//! * [`core`] — the client cache study (§2): volatile, write-aside and
//!   unified cache models, LRU/random/omniscient replacement, the Sprite
//!   consistency protocol, byte-lifetime analysis, and cost-effectiveness.
//! * [`disk`] — parametric disk model with FIFO/elevator scheduling.
//! * [`lfs`] — the log-structured file system study (§3): segments, cleaner,
//!   fsync-forced partial segments, and the NVRAM segment write buffer.
//! * [`wal`] — the NVRAM write-ahead log: an append-only log of checksummed,
//!   sequence-numbered records where `fsync` acks as soon as its record is
//!   durably appended, segments drain lazily in the background, and the log
//!   truncates only once its records' segment writes complete.
//! * [`server`] — Sprite vs NFS server protocols and Prestoserve-style
//!   server-side NVRAM.
//! * [`report`] — tables, figure series, and the experiment registry.
//! * [`experiments`] — runners that regenerate every table and figure of the
//!   paper.
//! * [`faults`] — deterministic fault-injection schedules (client/server
//!   crashes, battery aging, torn writes) and end-to-end reliability
//!   accounting for the §2.3/§4 crash studies.
//! * [`oracle`] — the crash-consistency durability oracle: a shadow model
//!   of each cache model's durability contract, diffed against recovered
//!   state after every injected crash to yield typed verdicts (`Clean`,
//!   `LostDurable`, `Resurrected`, `DoubleReplay`) and prove replay
//!   idempotent.
//! * [`rng`] — the self-contained xoshiro256++ PRNG every simulation seeds
//!   from (no external dependencies, stable streams).
//! * [`par`] — deterministic parallel fan-out ([`par::par_map`]) and the
//!   wall-clock bench harness; output is byte-identical at any job count.
//! * [`obs`] — deterministic observability: the metrics registry, the
//!   opt-in event-trace layer (`--trace-out`), run manifests
//!   (`--manifest-out`), and the workspace config-digest primitive.
//!   Snapshots, event streams, and manifest `run` sections are
//!   byte-identical at any job count.
//!
//! # Quickstart
//!
//! ```
//! use nvfs::core::{CacheModelKind, ClusterSim, SimConfig};
//! use nvfs::trace::synth::{SpriteTraceSet, TraceSetConfig};
//!
//! // Generate a small deterministic Sprite-like trace and run the unified
//! // NVRAM cache model over it.
//! let traces = SpriteTraceSet::generate(&TraceSetConfig::small());
//! let cfg = SimConfig::unified(8 << 20, 1 << 20);
//! let stats = ClusterSim::new(cfg).run(traces.trace(6).ops());
//! assert!(stats.server_write_bytes <= stats.app_write_bytes);
//! ```

pub use nvfs_core as core;
pub use nvfs_disk as disk;
pub use nvfs_experiments as experiments;
pub use nvfs_faults as faults;
pub use nvfs_lfs as lfs;
pub use nvfs_nvram as nvram;
pub use nvfs_obs as obs;
pub use nvfs_oracle as oracle;
pub use nvfs_par as par;
pub use nvfs_report as report;
pub use nvfs_rng as rng;
pub use nvfs_server as server;
pub use nvfs_trace as trace;
pub use nvfs_types as types;
pub use nvfs_wal as wal;
