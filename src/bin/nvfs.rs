//! `nvfs` — command-line driver for the reproduction toolkit.
//!
//! ```text
//! nvfs gen-traces   [--scale S] [--out DIR]          write synthetic traces to files
//! nvfs trace-stats  <FILE>                           stats + lint for a trace file
//! nvfs client-sim   <FILE> [--model M] [--volatile-mb N] [--nvram-mb N]
//!                   [--policy P] [--consistency C]   run the client cache simulator
//! nvfs lifetime     <FILE>                           byte-lifetime fates + delay sweep
//! nvfs lfs          [--scale S] [--buffer-kb N]      Tables 3-4 + write-buffer study
//! nvfs faults       [--scale S] [--seed N] [--model M]  reliability under injected faults
//! nvfs experiments  [--scale S] [--list] [--only ID] [ID...]  regenerate paper artifacts
//! nvfs export-csv   [--scale S] --out DIR            write every artifact as CSV
//! nvfs bench        [--scale S] [--out FILE] [--iters N] [--profile]
//!                                                    time sequential vs parallel
//! ```
//!
//! Scales: `tiny`, `small` (default), `paper`, `mega`.
//!
//! A global `--jobs N` flag (or the `NVFS_JOBS` environment variable)
//! bounds the worker threads used for trace generation, sweeps, and
//! experiment fan-out; stdout is byte-identical at any job count.
//!
//! Global observability flags (any command): `--trace-out FILE` records
//! the typed event stream as JSONL, `--manifest-out FILE` writes a run
//! manifest (seed, config digest, phases, metric snapshot). Both are
//! byte-identical at any job count except the manifest's explicitly
//! volatile `meta` section. `nvfs obs show|diff` reads them back.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Prints a line, ignoring a closed pipe: `nvfs … | head` must neither
/// panic nor abandon work that writes files as a side effect, so once the
/// reader is gone the remaining output is silently dropped while the
/// command runs to completion.
macro_rules! outln {
    ($($arg:tt)*) => {{
        let mut stdout = std::io::stdout().lock();
        let _ = writeln!(stdout, $($arg)*);
    }};
}

use nvfs::core::lifetime::LifetimeLog;
use nvfs::core::{ClusterSim, ConsistencyMode, PolicyKind, SimConfig};
use nvfs::experiments as exp;
use nvfs::experiments::env::Env;
use nvfs::experiments::registry;
use nvfs::experiments::Scale;
use nvfs::report::catching;
use nvfs::trace::serialize::{parse_ops, render_ops};
use nvfs::trace::stats::TraceStats;
use nvfs::trace::synth::SpriteTraceSet;
use nvfs::trace::validate::validate_ignoring_leaks;
use nvfs::trace::OpStream;
use nvfs::types::SimDuration;

fn main() -> ExitCode {
    let mut args: VecDeque<String> = std::env::args().skip(1).collect();
    // `--jobs N` is global (any position); it configures the process-wide
    // worker count before any command runs. Resolution order: --jobs, then
    // NVFS_JOBS, then the machine's available parallelism.
    match take_flag(&mut args, "--jobs") {
        Ok(Some(v)) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => nvfs::par::set_jobs(n),
            _ => {
                eprintln!("error: --jobs requires a positive integer, got {v:?}");
                return ExitCode::FAILURE;
            }
        },
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Global observability flags: `--trace-out FILE` records the typed
    // event stream, `--manifest-out FILE` writes a run manifest. Both are
    // parsed before dispatch so every subcommand honours them.
    let (trace_out, manifest_out) = match (
        take_flag(&mut args, "--trace-out"),
        take_flag(&mut args, "--manifest-out"),
    ) {
        (Ok(t), Ok(m)) => (t, m),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if trace_out.is_some() {
        nvfs::obs::set_trace_enabled(true);
    }
    let Some(command) = args.pop_front() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    // The whole command runs inside a root span, so every manifest has at
    // least one phase even when the command doesn't time its own stages.
    let result = nvfs::obs::span(&command, || match command.as_str() {
        "gen-traces" => cmd_gen_traces(args),
        "trace-stats" => cmd_trace_stats(args),
        "client-sim" => cmd_client_sim(args),
        "lifetime" => cmd_lifetime(args),
        "lfs" => cmd_lfs(args),
        "faults" => cmd_faults(args),
        "verify-crash" => cmd_verify_crash(args),
        "verify-net" => cmd_verify_net(args),
        "verify-scrub" => cmd_verify_scrub(args),
        "experiments" => cmd_experiments(args),
        "scorecard" => cmd_scorecard(args),
        "export-csv" => cmd_export_csv(args),
        "bench" => cmd_bench(args),
        "obs" => cmd_obs(args),
        "help" | "--help" | "-h" => {
            outln!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    });
    let result = result.and_then(|()| write_obs_outputs(&command, trace_out, manifest_out));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Writes the `--trace-out` JSONL stream and the `--manifest-out` run
/// manifest after a successful command. Confirmations go to stderr so
/// stdout stays byte-identical with and without the flags.
fn write_obs_outputs(
    command: &str,
    trace_out: Option<String>,
    manifest_out: Option<String>,
) -> Result<(), String> {
    if let Some(path) = trace_out {
        fs::write(&path, nvfs::obs::events::render_jsonl())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("[obs] wrote trace {path}");
    }
    if let Some(path) = manifest_out {
        let manifest = nvfs::obs::RunManifest::collect(command, nvfs::par::jobs());
        fs::write(&path, manifest.render()).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("[obs] wrote manifest {path}");
    }
    Ok(())
}

/// Wraps the registry's experiment ids into indented usage-text lines, so
/// the `nvfs help` id list can never drift from the registry.
fn experiment_id_lines() -> String {
    let mut lines = String::new();
    let mut line = String::from("               ids:");
    for entry in registry::all() {
        if line.len() + 1 + entry.name().len() > 78 {
            lines.push_str(&line);
            lines.push('\n');
            line = String::from("                   ");
        }
        line.push(' ');
        line.push_str(entry.name());
    }
    lines.push_str(&line);
    lines
}

/// Builds the usage text (the experiment id list comes from the registry).
fn usage() -> String {
    format!(
        "usage: nvfs [--jobs N] [--trace-out FILE] [--manifest-out FILE] <command> [options]
commands:
  gen-traces   [--scale tiny|small|paper|mega] [--out DIR]
  trace-stats  <FILE>
  client-sim   <FILE> [--model volatile|write-aside|unified|hybrid]
               [--volatile-mb N] [--nvram-mb N]
               [--policy lru|random|omniscient] [--consistency whole-file|block]
  lifetime     <FILE>
  lfs          [--scale S] [--buffer-kb N]
  faults       [--scale S] [--seed N] [--model volatile|write-aside|hybrid|unified]
               [--oracle]
               reliability scorecard: bytes lost per cache model under one
               seeded fault schedule (client crashes, battery death, torn
               writes, server crashes); --oracle re-judges every recovery
               against the shadow durability model and fails on violations
  verify-crash [--scale S] [--seed N] [--wal]
               durability oracle: deterministic crash-point sweep (full,
               mid-drain per block, dead board, battery edge, pre/post
               flush) plus torn replay-write checks and the WAL server
               mode's crash-point lattice (mid-append, post-append,
               mid-truncation, torn record); prints a one-line JSON
               verdict and exits nonzero on any violation; --wal runs and
               prints only the WAL sweep (the CI smoke golden)
  verify-net   [--scale S] [--seed N]
               network judge: deterministic net-fault sweep (client and
               server partitions, drops, duplicates, reordering, composed
               crashes) proving no acked byte is lost, no request applies
               twice, and the partition loss ordering volatile >
               write-aside > unified; exits nonzero on any violation
  verify-scrub [--scale S] [--seed N]
               corruption judge: deterministic sweep of protection modes
               (unprotected, write-protect, verified) against corruption
               kinds (stray writes, bit flips, board decay) across crash
               points, with a 60 s background checksum scrub; proves
               every corrupt byte lands in exactly one fate (detected,
               repaired, vacated, bounced, silent) and that verified +
               scrub ships zero silent bytes; exits nonzero on violation
  experiments  [--scale S] [--list] [--only ID] [ID...]
{ids}
               --list prints every registered id with its paper artifact;
               --only ID runs a single experiment by registry lookup
  scorecard    [--scale S]
  export-csv   [--scale S] --out DIR
  bench        [--scale S] [--out FILE] [--iters N] [--profile]
               time sequential vs parallel passes; --iters repeats the
               whole matrix, --profile prints a per-phase exclusive-time
               table aggregated from the observability timing spans
  obs          show FILE | diff A B       pretty-print or compare run manifests

parallelism:
  --jobs N     worker threads for trace generation, sweeps, and experiment
               fan-out; overrides the NVFS_JOBS environment variable, which
               overrides the machine's available parallelism. Output is
               byte-identical at any job count (diagnostics go to stderr).

observability (global, any command):
  --trace-out FILE     record the typed event stream as JSONL (one event
                       per line, sorted by simulated time; byte-identical
                       at any job count)
  --manifest-out FILE  write a run manifest: seed, config digest, phases,
                       and the full metric snapshot. The `run` section is
                       deterministic; `meta` (wall clock, git rev, jobs)
                       is volatile. Compare with `nvfs obs diff`.",
        ids = experiment_id_lines()
    )
}

/// Removes a value-less `--flag`, returning whether it was present.
fn take_switch(args: &mut VecDeque<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

/// Pulls `--flag VALUE` out of the argument list, if present.
fn take_flag(args: &mut VecDeque<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        let mut rest = args.split_off(pos);
        rest.pop_front();
        let value = rest
            .pop_front()
            .ok_or_else(|| format!("{flag} requires a value"))?;
        args.append(&mut rest);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

/// Resolves the `--scale` flag to a [`Scale`], noting its canonical name
/// in the run-manifest context.
fn parse_scale(args: &mut VecDeque<String>) -> Result<Scale, String> {
    let scale = match take_flag(args, "--scale")? {
        Some(value) => value.parse()?,
        None => Scale::default(),
    };
    nvfs::obs::manifest::set_scale(scale.name());
    Ok(scale)
}

/// Fingerprints a command's resolved configuration into the run-manifest
/// context via the workspace's canonical digest ([`nvfs::obs::digest`]).
fn note_config(parts: &[(&str, &str)]) {
    let mut d = nvfs::obs::digest::Digest::new();
    for (key, value) in parts {
        d.update(key);
        d.update("=");
        d.update(value);
        d.update(";");
    }
    nvfs::obs::manifest::set_config_digest(d.hex());
}

fn load_ops(path: &str) -> Result<OpStream, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_ops(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_gen_traces(mut args: VecDeque<String>) -> Result<(), String> {
    let cfg = parse_scale(&mut args)?.trace_config();
    let out = PathBuf::from(take_flag(&mut args, "--out")?.unwrap_or_else(|| "traces".into()));
    fs::create_dir_all(&out).map_err(|e| format!("cannot create {}: {e}", out.display()))?;
    eprintln!("[gen-traces] jobs = {}", nvfs::par::jobs());
    let set = SpriteTraceSet::generate(&cfg);
    for trace in set.traces() {
        let path = out.join(format!("trace{}.ops", trace.number()));
        fs::write(&path, render_ops(trace.ops()))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        let s = TraceStats::for_stream(trace.ops());
        outln!(
            "{}: {} ops, {:.1} MB written, {:.1} MB read",
            path.display(),
            s.ops,
            s.write_bytes as f64 / (1 << 20) as f64,
            s.read_bytes as f64 / (1 << 20) as f64,
        );
    }
    Ok(())
}

fn cmd_trace_stats(mut args: VecDeque<String>) -> Result<(), String> {
    let path = args.pop_front().ok_or("trace-stats requires a file")?;
    let ops = load_ops(&path)?;
    let s = TraceStats::for_stream(&ops);
    outln!("ops:          {}", s.ops);
    outln!(
        "write bytes:  {} ({:.2} MB)",
        s.write_bytes,
        s.write_bytes as f64 / (1 << 20) as f64
    );
    outln!(
        "read bytes:   {} ({:.2} MB)",
        s.read_bytes,
        s.read_bytes as f64 / (1 << 20) as f64
    );
    outln!("files:        {}", s.files);
    outln!("clients:      {}", s.clients);
    outln!("opens:        {}", s.opens);
    outln!("deletes:      {}", s.deletes);
    outln!("fsyncs:       {}", s.fsyncs);
    let violations = validate_ignoring_leaks(&ops);
    if violations.is_empty() {
        outln!("lint:         clean");
    } else {
        outln!("lint:         {} violation(s)", violations.len());
        for v in violations.iter().take(10) {
            outln!("  {v}");
        }
    }
    Ok(())
}

fn cmd_client_sim(mut args: VecDeque<String>) -> Result<(), String> {
    let model = take_flag(&mut args, "--model")?.unwrap_or_else(|| "unified".into());
    let volatile_mb: u64 = take_flag(&mut args, "--volatile-mb")?
        .unwrap_or_else(|| "8".into())
        .parse()
        .map_err(|_| "bad --volatile-mb")?;
    let nvram_mb: u64 = take_flag(&mut args, "--nvram-mb")?
        .unwrap_or_else(|| "1".into())
        .parse()
        .map_err(|_| "bad --nvram-mb")?;
    let policy = match take_flag(&mut args, "--policy")?.as_deref() {
        None | Some("lru") => PolicyKind::Lru,
        Some("random") => PolicyKind::Random { seed: 1992 },
        Some("omniscient") => PolicyKind::Omniscient,
        Some(other) => return Err(format!("unknown policy {other:?}")),
    };
    let consistency = match take_flag(&mut args, "--consistency")?.as_deref() {
        None | Some("whole-file") => ConsistencyMode::WholeFile,
        Some("block") => ConsistencyMode::BlockOnDemand,
        Some(other) => return Err(format!("unknown consistency mode {other:?}")),
    };
    let path = args.pop_front().ok_or("client-sim requires a trace file")?;
    let ops = load_ops(&path)?;

    if volatile_mb == 0 {
        return Err("--volatile-mb must be at least 1".to_string());
    }
    if nvram_mb == 0 && model != "volatile" {
        return Err(format!(
            "--nvram-mb must be at least 1 for the {model} model"
        ));
    }
    let vol = volatile_mb << 20;
    let nv = nvram_mb << 20;
    let cfg = match model.as_str() {
        "volatile" => SimConfig::volatile(vol),
        "write-aside" => SimConfig::write_aside(vol, nv),
        "unified" => SimConfig::unified(vol, nv),
        "hybrid" => SimConfig::hybrid(vol, nv),
        other => return Err(format!("unknown model {other:?}")),
    }
    .with_policy(policy)
    .with_consistency(consistency);
    note_config(&[
        ("command", "client-sim"),
        ("trace", &path),
        ("model", &model),
        ("volatile_mb", &volatile_mb.to_string()),
        ("nvram_mb", &nvram_mb.to_string()),
        ("policy", &format!("{policy:?}")),
        ("consistency", &format!("{consistency:?}")),
    ]);
    let kind = cfg.model;
    let stats = ClusterSim::new(cfg).run(&ops);

    let mb = |b: u64| b as f64 / (1 << 20) as f64;
    outln!("model:              {kind:?}");
    outln!("app writes:         {:>10.2} MB", mb(stats.app_write_bytes));
    outln!("app reads:          {:>10.2} MB", mb(stats.app_read_bytes));
    outln!(
        "server writes:      {:>10.2} MB",
        mb(stats.server_write_bytes)
    );
    outln!("  write-back:       {:>10.2} MB", mb(stats.writeback_bytes));
    outln!(
        "  replacement:      {:>10.2} MB",
        mb(stats.replacement_bytes)
    );
    outln!("  callbacks:        {:>10.2} MB", mb(stats.callback_bytes));
    outln!("  migration:        {:>10.2} MB", mb(stats.migration_bytes));
    outln!("  fsync:            {:>10.2} MB", mb(stats.fsync_bytes));
    outln!(
        "server reads:       {:>10.2} MB",
        mb(stats.server_read_bytes)
    );
    outln!(
        "absorbed:           {:>10.2} MB",
        mb(stats.absorbed_bytes())
    );
    outln!(
        "remaining dirty:    {:>10.2} MB",
        mb(stats.remaining_dirty_bytes)
    );
    outln!(
        "net write traffic:  {:>9.1}%",
        stats.net_write_traffic_pct()
    );
    outln!(
        "net total traffic:  {:>9.1}%",
        stats.net_total_traffic_pct()
    );
    outln!(
        "read hit ratio:     {:>9.1}%",
        100.0 * stats.read_hit_ratio()
    );
    if kind.has_nvram() {
        outln!("nvram accesses:     {:>10}", stats.nvram_accesses());
    }
    Ok(())
}

fn cmd_lifetime(mut args: VecDeque<String>) -> Result<(), String> {
    let path = args.pop_front().ok_or("lifetime requires a trace file")?;
    let ops = load_ops(&path)?;
    let log = LifetimeLog::analyze(&ops);
    outln!(
        "total writes: {:.2} MB",
        log.total_write_bytes as f64 / (1 << 20) as f64
    );
    outln!(
        "absorbed (infinite NVRAM): {:.1}%",
        100.0 * log.absorbed_fraction()
    );
    outln!("\nfate breakdown:");
    for (fate, bytes) in log.bytes_by_fate() {
        outln!(
            "  {:<12} {:>10.2} MB ({:>5.1}%)",
            format!("{fate:?}"),
            bytes as f64 / (1 << 20) as f64,
            100.0 * bytes as f64 / log.total_write_bytes.max(1) as f64,
        );
    }
    outln!("\nnet write traffic vs write-back delay:");
    for mins in [0.05, 0.5, 5.0, 30.0, 240.0, 10_000.0] {
        let d = SimDuration::from_secs_f64(mins * 60.0);
        outln!(
            "  {:>9.2} min  {:>5.1}%",
            mins,
            log.net_write_traffic_at_delay(d)
        );
    }
    Ok(())
}

fn cmd_lfs(mut args: VecDeque<String>) -> Result<(), String> {
    let scale = parse_scale(&mut args)?;
    let env = scale.env();
    let buffer_kb: u64 = take_flag(&mut args, "--buffer-kb")?
        .unwrap_or_else(|| "512".into())
        .parse()
        .map_err(|_| "bad --buffer-kb")?;
    note_config(&[
        ("command", "lfs"),
        ("scale", scale.name()),
        ("buffer_kb", &buffer_kb.to_string()),
    ]);
    eprintln!("[lfs] jobs = {}", nvfs::par::jobs());
    outln!("{}", exp::tab3::run(&env).table.render());
    outln!("{}", exp::tab4::run(&env).table.render());
    outln!(
        "{}",
        exp::write_buffer::run_with_capacity(&env, buffer_kb << 10)
            .table
            .render()
    );
    Ok(())
}

fn cmd_faults(mut args: VecDeque<String>) -> Result<(), String> {
    let scale = parse_scale(&mut args)?;
    let env = scale.env();
    let seed: u64 = take_flag(&mut args, "--seed")?
        .unwrap_or_else(|| exp::faults::DEFAULT_SEED.to_string())
        .parse()
        .map_err(|_| "bad --seed")?;
    let model = take_flag(&mut args, "--model")?;
    let oracle = take_switch(&mut args, "--oracle");
    nvfs::obs::manifest::set_seed(seed);
    note_config(&[
        ("command", "faults"),
        ("scale", scale.name()),
        ("seed", &seed.to_string()),
        ("model", model.as_deref().unwrap_or("all")),
    ]);
    eprintln!("[faults] jobs = {}", nvfs::par::jobs());
    match model {
        // One model: just that row of the client scorecard (the CI fault
        // matrix runs this once per model and diffs against a golden file).
        Some(name) => {
            let kind = exp::faults::parse_model(&name).ok_or_else(|| {
                format!("unknown model {name:?} (volatile|write-aside|hybrid|unified)")
            })?;
            let stats = catching("faults", || {
                exp::faults::model_reliability(&env, seed, kind).map_err(|e| e.to_string())
            })?;
            outln!(
                "{}",
                exp::faults::client_table(seed, &[(kind, stats)]).render()
            );
        }
        None => {
            let out = catching("faults", || {
                exp::faults::run_seeded(&env, seed).map_err(|e| e.to_string())
            })?;
            outln!("{}", out.render());
            if !out.loss_ordering_holds() {
                return Err(
                    "bytes-lost ordering volatile > write-aside > unified does not hold".into(),
                );
            }
        }
    }
    if oracle {
        // Re-judge the same schedules under the shadow durability model:
        // any recovery that lost a promised byte, resurrected an
        // unpromised one, or replayed a byte twice fails the run.
        let summary = catching("faults --oracle", || {
            exp::verify_crash::faults_oracle_summary(&env, seed).map_err(|e| e.to_string())
        })?;
        outln!("{}", summary.verdict_json(seed));
        if summary.violations() > 0 {
            return Err(format!(
                "durability oracle found {} violation(s)",
                summary.violations()
            ));
        }
    }
    Ok(())
}

fn cmd_verify_crash(mut args: VecDeque<String>) -> Result<(), String> {
    let wal_only = take_switch(&mut args, "--wal");
    let scale = parse_scale(&mut args)?;
    let env = scale.env();
    let seed: u64 = take_flag(&mut args, "--seed")?
        .unwrap_or_else(|| exp::faults::DEFAULT_SEED.to_string())
        .parse()
        .map_err(|_| "bad --seed")?;
    nvfs::obs::manifest::set_seed(seed);
    note_config(&[
        ("command", "verify-crash"),
        ("scale", scale.name()),
        ("seed", &seed.to_string()),
    ]);
    eprintln!("[verify-crash] jobs = {}", nvfs::par::jobs());
    if wal_only {
        // The CI smoke path: just the WAL crash-point lattice, judged and
        // rendered with its own verdict line, diffed against a golden.
        let rows = catching("verify-crash", || {
            Ok::<_, String>(exp::verify_crash::wal_sweep(&env, seed))
        })?;
        let mut summary = nvfs::oracle::OracleSummary::default();
        for row in &rows {
            summary.merge(&row.summary);
        }
        outln!("{}", exp::verify_crash::wal_table(seed, &rows).render());
        outln!("{}", summary.verdict_json(seed));
        if summary.violations() > 0 {
            return Err(format!(
                "durability oracle found {} WAL violation(s)",
                summary.violations()
            ));
        }
        return Ok(());
    }
    let out = catching("verify-crash", || {
        exp::verify_crash::run_seeded(&env, seed).map_err(|e| e.to_string())
    })?;
    outln!("{}", out.render());
    if !out.is_clean() {
        return Err(format!(
            "durability oracle found {} violation(s)",
            out.violations()
        ));
    }
    Ok(())
}

fn cmd_verify_net(mut args: VecDeque<String>) -> Result<(), String> {
    let scale = parse_scale(&mut args)?;
    let env = scale.env();
    let seed: u64 = take_flag(&mut args, "--seed")?
        .unwrap_or_else(|| exp::faults::DEFAULT_SEED.to_string())
        .parse()
        .map_err(|_| "bad --seed")?;
    nvfs::obs::manifest::set_seed(seed);
    note_config(&[
        ("command", "verify-net"),
        ("scale", scale.name()),
        ("seed", &seed.to_string()),
    ]);
    eprintln!("[verify-net] jobs = {}", nvfs::par::jobs());
    let out = catching("verify-net", || exp::verify_net::run_seeded(&env, seed))?;
    outln!("{}", out.render());
    if out.violations() > 0 {
        return Err(format!(
            "network judge found {} violation(s)",
            out.violations()
        ));
    }
    if !out.loss_ordering_holds() {
        return Err(
            "partition-loss ordering volatile > write-aside > unified does not hold".into(),
        );
    }
    Ok(())
}

fn cmd_verify_scrub(mut args: VecDeque<String>) -> Result<(), String> {
    let scale = parse_scale(&mut args)?;
    let env = scale.env();
    let seed: u64 = take_flag(&mut args, "--seed")?
        .unwrap_or_else(|| exp::faults::DEFAULT_SEED.to_string())
        .parse()
        .map_err(|_| "bad --seed")?;
    nvfs::obs::manifest::set_seed(seed);
    note_config(&[
        ("command", "verify-scrub"),
        ("scale", scale.name()),
        ("seed", &seed.to_string()),
    ]);
    eprintln!("[verify-scrub] jobs = {}", nvfs::par::jobs());
    let out = catching("verify-scrub", || {
        exp::verify_scrub::run_seeded(&env, seed).map_err(|e| e.to_string())
    })?;
    outln!("{}", out.render());
    if !out.is_clean() {
        return Err(format!(
            "corruption sweep found {} violation(s)",
            out.violations()
        ));
    }
    Ok(())
}

fn cmd_experiments(mut args: VecDeque<String>) -> Result<(), String> {
    // `--list` prints the registry and exits before any workload is
    // generated; CI diffs this output against the ids in `nvfs help`.
    if take_switch(&mut args, "--list") {
        let mut stdout = std::io::stdout().lock();
        let _ = write!(stdout, "{}", registry::list_text());
        return Ok(());
    }
    // `--only NAME` resolves before the (possibly expensive) environment
    // is built, so a typo fails fast with the full list of valid ids.
    let only = match take_flag(&mut args, "--only")? {
        Some(name) => Some(registry::find_or_suggest(&name)?),
        None => None,
    };
    let scale = parse_scale(&mut args)?;
    let env = scale.env();
    let ids: Vec<String> = match only {
        Some(entry) => vec![entry.name().to_string()],
        None if args.is_empty() => registry::default_entries()
            .map(|e| e.name().to_string())
            .collect(),
        None => args.into_iter().collect(),
    };
    note_config(&[
        ("command", "experiments"),
        ("scale", scale.name()),
        ("ids", &ids.join(",")),
    ]);
    let jobs = nvfs::par::jobs();
    // Independent experiment ids render in parallel; output is printed in
    // request order, so stdout is byte-identical to a sequential run (the
    // per-experiment jobs diagnostic goes to stderr for the same reason).
    let rendered = nvfs::par::par_map(ids, jobs, |id| {
        eprintln!("[{id}] jobs = {jobs}");
        run_experiment(&env, &id)
    });
    for text in rendered {
        let text = text?;
        let mut stdout = std::io::stdout().lock();
        let _ = write!(stdout, "{text}");
    }
    Ok(())
}

/// Runs one registered experiment, mapping a failed verdict to an error.
fn run_experiment(env: &Env, id: &str) -> Result<String, String> {
    catching(id, || {
        let artifacts = registry::find_or_suggest(id)?.run(env)?;
        match artifacts.failure {
            Some(reason) => Err(reason),
            None => Ok(artifacts.text),
        }
    })
}

fn cmd_scorecard(mut args: VecDeque<String>) -> Result<(), String> {
    let scale = parse_scale(&mut args)?;
    let env = scale.env();
    note_config(&[("command", "scorecard"), ("scale", scale.name())]);
    eprintln!("[scorecard] jobs = {}", nvfs::par::jobs());
    let artifacts = catching("scorecard", || {
        registry::find_or_suggest("scorecard")?.run(&env)
    })?;
    {
        let mut stdout = std::io::stdout().lock();
        let _ = write!(stdout, "{}", artifacts.text);
    }
    artifacts.failure.map_or(Ok(()), Err)
}

fn cmd_export_csv(mut args: VecDeque<String>) -> Result<(), String> {
    let scale = parse_scale(&mut args)?;
    let env = scale.env();
    let out = PathBuf::from(take_flag(&mut args, "--out")?.ok_or("export-csv requires --out DIR")?);
    note_config(&[("command", "export-csv"), ("scale", scale.name())]);
    fs::create_dir_all(&out).map_err(|e| format!("cannot create {}: {e}", out.display()))?;

    let jobs = nvfs::par::jobs();
    eprintln!("[export-csv] jobs = {jobs}");
    // CSV-bearing entries are independent; compute all in parallel, then
    // write in the registry's fixed order so both the files and the log
    // lines match a sequential run byte for byte.
    let entries: Vec<&registry::Entry> = registry::csv_entries().collect();
    let rendered = nvfs::par::par_map(entries, jobs, |entry| entry.run(&env).map(|a| a.csv));
    for result in rendered {
        for (name, csv) in result? {
            let path: &Path = &out.join(name);
            fs::write(path, csv).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            outln!("wrote {}", path.display());
        }
    }
    Ok(())
}

/// Stages timed by `nvfs bench`, in pass order.
const BENCH_STAGES: [&str; 7] = [
    "gen-traces",
    "fig2",
    "fig3",
    "tab3",
    "wal",
    "scrub",
    "scorecard",
];

fn cmd_bench(mut args: VecDeque<String>) -> Result<(), String> {
    use nvfs::par::bench;
    use nvfs::trace::synth::lfs_workload::sprite_server_workloads;

    let scale = parse_scale(&mut args)?;
    let (cfg, server_cfg) = (scale.trace_config(), scale.server_config());
    let out =
        PathBuf::from(take_flag(&mut args, "--out")?.unwrap_or_else(|| "BENCH_pr9.json".into()));
    let iters: usize = match take_flag(&mut args, "--iters")? {
        Some(v) => v
            .parse()
            .map_err(|e| format!("--iters {v:?}: {e}"))
            .and_then(|n: usize| {
                if n == 0 {
                    Err("--iters must be at least 1".to_string())
                } else {
                    Ok(n)
                }
            })?,
        None => 1,
    };
    let profile = take_switch(&mut args, "--profile");
    note_config(&[("command", "bench"), ("scale", scale.name())]);

    let parallel = nvfs::par::jobs();
    let passes: &[usize] = if parallel == 1 { &[1] } else { &[1, parallel] };
    let rev = nvfs::obs::manifest::git_rev();
    let mut records = Vec::new();
    let mut reference: Option<String> = None;
    for iter in 1..=iters {
        for &jobs in passes {
            nvfs::par::set_jobs(jobs);
            eprintln!("[bench] pass with jobs = {jobs} (iteration {iter}/{iters})");
            let mut pass = Vec::new();
            let traces = bench::timed(&mut pass, BENCH_STAGES[0], jobs, || {
                SpriteTraceSet::generate(&cfg)
            });
            let env = Env {
                traces,
                server: sprite_server_workloads(&server_cfg),
                trace_config: cfg.clone(),
            };
            let f2 = bench::timed(&mut pass, BENCH_STAGES[1], jobs, || exp::fig2::run(&env));
            let f3 = bench::timed(&mut pass, BENCH_STAGES[2], jobs, || exp::fig3::run(&env));
            let t3 = bench::timed(&mut pass, BENCH_STAGES[3], jobs, || exp::tab3::run(&env));
            let wal = bench::timed(&mut pass, BENCH_STAGES[4], jobs, || {
                exp::lfs_wal_vs_buffer::run(&env)
            });
            let scrub = bench::timed(&mut pass, BENCH_STAGES[5], jobs, || {
                exp::scrub_overhead::run(&env)
            });
            let card = bench::timed(&mut pass, BENCH_STAGES[6], jobs, || {
                exp::scorecard::run(&env)
            });
            bench::annotate(&mut pass, scale.name(), &rev, iter);
            records.append(&mut pass);
            // Determinism gate: the rendered artifacts (traces included)
            // must be byte-identical across job counts and repetitions.
            // Streamed through the workspace's canonical digest instead of
            // holding concatenated renders.
            let mut digest = nvfs::obs::digest::Digest::new();
            digest.update(&render_ops(env.traces.trace(0).ops()));
            digest.update(&f2.figure.render());
            digest.update(&f3.figure.render());
            digest.update(&t3.table.render());
            digest.update(&wal.table.render());
            digest.update(&scrub.table.render());
            digest.update(&card.table.render());
            let digest = digest.hex();
            match &reference {
                None => reference = Some(digest),
                Some(first) if *first == digest => {}
                Some(_) => {
                    return Err(format!(
                        "jobs={jobs} produced different artifacts than jobs=1"
                    ));
                }
            }
        }
    }
    // Restore the requested job count for any later work in this process.
    nvfs::par::set_jobs(parallel);

    fs::write(&out, bench::to_json(&records))
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    outln!("wrote {}", out.display());
    for r in &records {
        outln!(
            "  {:<12} jobs={:<3} iter={:<3} {:>10.1} ms",
            r.name,
            r.jobs,
            r.iter,
            r.wall_ms
        );
    }
    if profile {
        outln!("{}", render_profile());
    }
    Ok(())
}

/// Aggregates every observability timing span recorded so far by name:
/// call count, total inclusive wall, and total **exclusive** wall (the
/// column that sums to real elapsed time without double-billing nested
/// phases). Sorted by exclusive time, heaviest first.
fn render_profile() -> String {
    use std::collections::BTreeMap;
    let mut by_name: BTreeMap<String, (u64, f64, f64)> = BTreeMap::new();
    for span in nvfs::obs::timing::spans() {
        let slot = by_name.entry(span.name).or_insert((0, 0.0, 0.0));
        slot.0 += 1;
        slot.1 += span.wall_ms;
        slot.2 += span.excl_ms;
    }
    let mut rows: Vec<(String, (u64, f64, f64))> = by_name.into_iter().collect();
    rows.sort_by(|a, b| b.1 .2.total_cmp(&a.1 .2).then_with(|| a.0.cmp(&b.0)));
    let mut out = String::from("profile (per-phase, aggregated):\n");
    let _ = writeln!(
        out,
        "  {:<24} {:>6} {:>12} {:>12}",
        "phase", "calls", "wall ms", "excl ms"
    );
    for (name, (calls, wall, excl)) in &rows {
        let _ = writeln!(out, "  {name:<24} {calls:>6} {wall:>12.1} {excl:>12.1}");
    }
    out.trim_end().to_string()
}

fn cmd_obs(mut args: VecDeque<String>) -> Result<(), String> {
    let usage = "usage: nvfs obs show FILE | nvfs obs diff A B";
    let sub = args.pop_front().ok_or(usage)?;
    let read = |path: &str| -> Result<String, String> {
        fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    match sub.as_str() {
        "show" => {
            let path = args.pop_front().ok_or(usage)?;
            let summary = nvfs::obs::manifest::render_summary(&read(&path)?)
                .map_err(|e| format!("{path}: {e}"))?;
            outln!("{summary}");
            Ok(())
        }
        "diff" => {
            let a = args.pop_front().ok_or(usage)?;
            let b = args.pop_front().ok_or(usage)?;
            let report = nvfs::obs::manifest::diff(&read(&a)?, &read(&b)?)?;
            outln!("{}", report.render().trim_end());
            if report.runs_match {
                Ok(())
            } else {
                Err(format!("run sections differ: {a} vs {b}"))
            }
        }
        other => Err(format!("unknown obs subcommand {other:?}\n{usage}")),
    }
}
