//! The extensions beyond the paper's main figures: the §2.6 hybrid model,
//! Sprite's dirty-block preference, the block-by-block consistency
//! protocol of [21], and the composed client→server pipeline.
//!
//! ```bash
//! cargo run --release --example extensions
//! ```

use nvfs::experiments::{ablations, consistency_protocol, env::Env, pipeline};

fn main() {
    println!("Generating workloads (small scale)…\n");
    let env = Env::small();

    let hybrid = ablations::hybrid(&env);
    println!("{}", hybrid.figure.render());
    println!(
        "The hybrid model wins at small NVRAM sizes because the whole volatile\n\
         cache absorbs write bursts — but {:.1} MB of written data sat exposed\n\
         to a crash for the full 30-second window (§2.6's caveat).\n",
        hybrid.exposed_bytes_1mb as f64 / (1 << 20) as f64,
    );

    let pref = ablations::dirty_preference(&env);
    println!("{}", pref.table.render());
    println!(
        "Sprite's real replacement policy spares dirty blocks, cutting\n\
         replacement write-backs sharply once cache residency drops below the\n\
         30-second window — at multi-megabyte sizes the two policies behave\n\
         identically, which is why the paper could simplify it away (§2.1).\n"
    );

    let cons = consistency_protocol::run(&env);
    println!("{}", cons.table.render());
    let (whole, block) = cons.callback_totals();
    println!(
        "Block-by-block recall avoids {:.1}% of callback traffic — the paper's\n\
         suggested route past the 10-17% consistency floor (§2.3, [21]).\n",
        100.0 * (1.0 - block as f64 / whole.max(1) as f64),
    );

    let pipe = pipeline::run(&env);
    println!("{}", pipe.table.render());
    println!(
        "Client NVRAM absorbs application fsyncs before they reach the server,\n\
         removing the server's fsync-forced partial segments entirely — the two\n\
         halves of the paper compose."
    );
}
