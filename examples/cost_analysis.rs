//! §2.7 in isolation: the Table 1 cost catalogue and the question "is money
//! better spent on volatile or non-volatile memory?"
//!
//! ```bash
//! cargo run --release --example cost_analysis
//! ```

use nvfs::experiments::{env::Env, fig6, tab1};
use nvfs::nvram::cost::{cheapest_nvram_for, nvram_to_dram_ratio, UPS_MIN_PRICE};

fn main() {
    let t1 = tab1::run();
    println!("{}", t1.table.render());
    println!(
        "NVRAM/DRAM per-MB price ratio: {:.1}x at 1 MB, {:.1}x at 16 MB\n\
         (the paper's rule of thumb: NVRAM is four to six times DRAM).\n",
        t1.ratio_at_1mb, t1.ratio_at_16mb,
    );
    let board = cheapest_nvram_for(1.0);
    println!(
        "A 1 MB NVRAM option ({}) costs ${:.0} — well under the ${:.0}\n\
         minimum for a UPS able to ride out a one-to-two-hour outage.\n",
        board.component,
        board.price_for(1.0),
        UPS_MIN_PRICE,
    );
    assert!(nvram_to_dram_ratio(16.0) < 5.0);

    println!("Running the Figure 6 traffic sweeps to price NVRAM against DRAM…\n");
    let env = Env::small();
    let f6 = fig6::run(&env);
    for (base, verdicts) in [("8 MB", &f6.verdicts_8mb), ("16 MB", &f6.verdicts_16mb)] {
        println!("Base volatile cache: {base}");
        for v in verdicts {
            let rhs = match (v.equivalent_dram_mb, v.dram_dollars) {
                (Some(mb), Some(d)) => format!("{mb:.1} MB DRAM (${d:.0})"),
                _ => "more DRAM than any amount can match".to_string(),
            };
            println!(
                "  +{:<4} MB NVRAM (${:>4.0}) buys the traffic reduction of {} -> {}",
                v.nvram_mb,
                v.nvram_dollars,
                rhs,
                if v.nvram_wins {
                    "NVRAM wins"
                } else {
                    "DRAM wins"
                },
            );
        }
        println!();
    }
    println!(
        "Paper's conclusion, reproduced: with a small volatile cache DRAM is the\n\
         better buy; once the cache is large (≈16 MB), even half a megabyte of\n\
         NVRAM outperforms many megabytes of DRAM (§2.7)."
    );
}
