//! The §3 server study: Tables 3 and 4, the ½ MB write-buffer reductions,
//! the disk-sorting claim, and the NFS/Prestoserve comparison.
//!
//! ```bash
//! cargo run --release --example lfs_write_buffer
//! ```

use nvfs::experiments::{disk_sort, env::Env, presto, tab3, tab4, write_buffer};

fn main() {
    println!("Generating the eight Sprite server file-system workloads…\n");
    let env = Env::small();

    let t3 = tab3::run(&env);
    println!("{}", t3.table.render());

    let t4 = tab4::run(&env);
    println!("{}", t4.table.render());

    let wb = write_buffer::run(&env);
    println!("{}", wb.table.render());
    if let Some(u6) = wb.of("/user6") {
        println!(
            "A half-megabyte fsync-absorbing buffer removes {:.0}% of /user6's disk\n\
             write accesses (paper: ~90%); full staging leaves {} partial segments.\n",
            100.0 * u6.reduction,
            wb.staged_partials,
        );
    }

    let ds = disk_sort::run();
    println!("{}", ds.table.render());
    if let Some((fifo, sorted)) = ds.at(1000) {
        println!(
            "1000 buffered-and-sorted I/Os lift utilization from {:.0}% to {:.0}%\n\
             (paper, citing [20]: 7% → 40%).\n",
            100.0 * fifo,
            100.0 * sorted,
        );
    }

    let p = presto::run();
    println!("{}", p.table.render());
    println!(
        "Server NVRAM improves mean synchronous-write latency {:.0}× — the\n\
         mechanism behind the Prestoserve board's reported \"up to 50%\" gains.",
        p.latency_improvement(),
    );
}
