//! Quickstart: generate a synthetic Sprite day, run the three client cache
//! models over one trace, and print the traffic comparison.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use nvfs::core::{ClusterSim, SimConfig};
use nvfs::report::{Cell, Table};
use nvfs::trace::stats::TraceStats;
use nvfs::trace::synth::{SpriteTraceSet, TraceSetConfig};

fn main() {
    // Deterministic, reduced-scale version of the paper's eight 24-hour
    // Sprite traces (use `TraceSetConfig::paper()` for full scale).
    let traces = SpriteTraceSet::generate(&TraceSetConfig::small());
    let trace = traces.trace(6); // the paper's "typical" Trace 7
    let stats = TraceStats::for_stream(trace.ops());
    println!(
        "Trace {}: {} ops, {:.1} MB written, {:.1} MB read, {} files, {} clients\n",
        trace.number(),
        stats.ops,
        stats.write_bytes as f64 / (1 << 20) as f64,
        stats.read_bytes as f64 / (1 << 20) as f64,
        stats.files,
        stats.clients,
    );

    // 8 MB volatile cache, plus 1 MB of NVRAM for the two NVRAM models.
    let configs = [
        ("volatile (Sprite baseline)", SimConfig::volatile(8 << 20)),
        ("write-aside", SimConfig::write_aside(8 << 20, 1 << 20)),
        ("unified", SimConfig::unified(8 << 20, 1 << 20)),
    ];

    let mut table = Table::new(
        "Client cache models over Trace 7 (8 MB volatile, +1 MB NVRAM)",
        &[
            "Model",
            "Net write traffic",
            "Net total traffic",
            "Fsync MB",
            "Remaining MB",
        ],
    );
    for (name, cfg) in configs {
        let s = ClusterSim::new(cfg).run(trace.ops());
        table.push_row(vec![
            Cell::from(name),
            Cell::Pct(s.net_write_traffic_pct()),
            Cell::Pct(s.net_total_traffic_pct()),
            Cell::f1(s.fsync_bytes as f64 / (1 << 20) as f64),
            Cell::f1(s.remaining_dirty_bytes as f64 / (1 << 20) as f64),
        ]);
    }
    println!("{}", table.render());
    println!(
        "The NVRAM models hold dirty data past Sprite's 30-second write-back,\n\
         absorbing overwrites and deletes before they ever reach the server (§2)."
    );
}
