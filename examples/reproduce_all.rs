//! One-shot reproduction: evaluates every paper claim and prints the
//! scorecard with PASS/FAIL verdicts.
//!
//! ```bash
//! cargo run --release --example reproduce_all
//! ```

use nvfs::experiments::{env::Env, scorecard};

fn main() {
    println!("Evaluating every claim of Baker et al. (ASPLOS 1992) at small scale…\n");
    let card = scorecard::run(&Env::small());
    println!("{}", card.table.render());
    println!("{} of {} checks passed", card.passed(), card.checks.len());
    assert!(
        card.all_passed(),
        "reproduction regressed: {:?}",
        card.first_failure()
    );
}
