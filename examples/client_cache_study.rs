//! The full §2 client-cache study: regenerates Figures 2–6 and Table 2 at
//! reduced scale and prints each artifact.
//!
//! ```bash
//! cargo run --release --example client_cache_study
//! ```

use nvfs::experiments::{env::Env, fig2, fig3, fig4, fig5, fig6, tab2};
use nvfs::report::{render_plot, PlotOptions};

fn main() {
    println!("Generating the synthetic Sprite trace set (small scale)…\n");
    let env = Env::small();

    let f2 = fig2::run(&env);
    println!("{}", f2.figure.render());
    println!("Fraction of written bytes dying within 30 s / 30 min:");
    for ((n, s30), (_, m30)) in f2.die_within_30s.iter().zip(&f2.die_within_30m) {
        println!("  Trace {n}: {:>5.1}% / {:>5.1}%", 100.0 * s30, 100.0 * m30);
    }
    println!();

    let t2 = tab2::run(&env);
    println!("{}", t2.table.render());
    println!(
        "Absorbed: {:.1}% of all bytes ({:.1}% excluding traces 3 and 4)\n",
        100.0 * t2.all.absorbed_fraction(),
        100.0 * t2.typical.absorbed_fraction(),
    );

    let f3 = fig3::run(&env);
    println!("{}", f3.figure.render());
    println!(
        "{}",
        render_plot(
            &f3.figure,
            PlotOptions {
                log_x: true,
                ..PlotOptions::default()
            }
        )
    );

    let f4 = fig4::run(&env);
    println!("{}", f4.figure.render());
    if let (Some(lru), Some(omni)) = (f4.traffic("lru", 1.0), f4.traffic("omniscient", 1.0)) {
        println!(
            "At 1 MB of NVRAM the omniscient policy beats LRU by {:.0}% (paper: 10-15%).\n",
            100.0 * (lru - omni) / lru,
        );
    }

    let f5 = fig5::run(&env);
    println!("{}", f5.figure.render());
    println!("{}", render_plot(&f5.figure, PlotOptions::default()));

    let f6 = fig6::run(&env);
    println!("{}", f6.figure.render());
    println!("§2.7 cost-effectiveness verdicts (16 MB volatile base):");
    for v in &f6.verdicts_16mb {
        let dram = v
            .equivalent_dram_mb
            .map_or("unreachable by DRAM".to_string(), |mb| {
                format!("{mb:.1} MB DRAM")
            });
        println!(
            "  +{:.1} MB NVRAM (${:.0}) ≙ {} → {}",
            v.nvram_mb,
            v.nvram_dollars,
            dram,
            if v.nvram_wins {
                "NVRAM wins"
            } else {
                "DRAM wins"
            },
        );
    }
}
