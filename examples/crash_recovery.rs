//! §4 system-design walkthrough: a client crashes with live data in its
//! NVRAM; the board is moved to another workstation and its contents
//! recovered without loss — unless the batteries have all died.
//!
//! ```bash
//! cargo run --release --example crash_recovery
//! ```

use nvfs::nvram::{BatteryState, NvramBoard};
use nvfs::types::{ByteRange, ClientId, FileId, RangeSet};

fn main() {
    // Client 3 has been writing with a 1 MB NVRAM board installed.
    let mut board = NvramBoard::new(ClientId(3), 1 << 20);
    board.store(FileId(100), ByteRange::new(0, 64 << 10));
    board.store(FileId(101), ByteRange::new(0, 12 << 10));
    board.store(FileId(101), ByteRange::new(32 << 10, 48 << 10));
    println!(
        "client3 crashes holding {:.0} KB of dirty data in NVRAM",
        board.dirty_bytes() as f64 / 1024.0
    );

    // §4: "it must be possible to move an NVRAM component to another
    // client and retrieve its data from the new location."
    board.move_to(ClientId(7));
    println!("board moved to {}", board.host());

    // One battery fails in transit; the redundant bank keeps data safe.
    let state = board.batteries_mut().fail_one();
    assert_eq!(state, BatteryState::Degraded);
    println!("one battery failed in transit -> bank is {state}, data still safe");

    let recovered = board.drain();
    let total: u64 = recovered.values().map(RangeSet::len_bytes).sum();
    println!(
        "recovered {:.0} KB across {} files:",
        total as f64 / 1024.0,
        recovered.len()
    );
    for (file, ranges) in &recovered {
        println!("  {file}: {ranges}");
    }
    assert_eq!(total, (64 << 10) + (12 << 10) + (16 << 10));

    // Contrast: a board whose batteries all die loses everything.
    let mut doomed = NvramBoard::new(ClientId(0), 1 << 20);
    doomed.store(FileId(1), ByteRange::new(0, 4096));
    for _ in 0..3 {
        doomed.batteries_mut().fail_one();
    }
    assert!(doomed.drain().is_empty());
    println!("\na board with a fully dead battery bank recovers nothing —");
    println!("which is why Table 1's components carry up to three lithium batteries.");
}
