//! Sharded-vs-serial engine equivalence: the client-sharded drive loop
//! (PR 6) must be byte-identical to the original serial loop on every
//! model, every trace, with and without warmup, at any job count.
//!
//! A hook that keeps the `RunHook` defaults (`shard_barriers` → `None`)
//! is the forcing device: stacking one onto a run pins the session to
//! the serial loop without changing anything else, so the two paths can
//! be diffed directly inside one process.

use nvfs::core::client::ServerWrite;
use nvfs::core::{
    ObsRecorder, RunHook, SimConfig, SimSession, TrafficStats, WarmupReset, WriteLogCapture,
};
use nvfs::experiments::env::Env;
use nvfs::trace::event::OpenMode;
use nvfs::trace::op::{Op, OpKind, OpStream};
use nvfs::trace::synth::SpriteTraceSet;
use nvfs::types::{ByteRange, ClientId, FileId, SimTime};

/// Declining `shard_barriers` (the trait default) vetoes sharding for
/// the whole stack; every other callback stays inert.
struct ForceSerial;
impl RunHook for ForceSerial {}

fn model_configs() -> Vec<(&'static str, SimConfig)> {
    vec![
        ("volatile", SimConfig::volatile(2 << 20)),
        ("write-aside", SimConfig::write_aside(2 << 20, 1 << 20)),
        ("hybrid", SimConfig::hybrid(2 << 20, 1 << 20)),
        ("unified", SimConfig::unified(8 << 20, 16384)),
    ]
}

fn run_sharded(config: &SimConfig, ops: &OpStream) -> (TrafficStats, Vec<ServerWrite>) {
    let (mut obs, mut log) = (ObsRecorder::new(), WriteLogCapture::new());
    let out = SimSession::new(config).run(ops, &mut [&mut obs, &mut log]);
    (out.stats, log.take())
}

fn run_serial(config: &SimConfig, ops: &OpStream) -> (TrafficStats, Vec<ServerWrite>) {
    let (mut pin, mut obs, mut log) = (ForceSerial, ObsRecorder::new(), WriteLogCapture::new());
    let out = SimSession::new(config).run(ops, &mut [&mut pin, &mut obs, &mut log]);
    (out.stats, log.take())
}

/// Every cache model, two multi-client traces: identical traffic stats
/// and byte-identical time-ordered write logs on both paths.
#[test]
fn sharded_matches_forced_serial_across_models() {
    let env = Env::tiny();
    for trace in [3usize, 6] {
        let t = env.traces.trace(trace);
        assert!(t.clients() > 1, "equivalence needs a multi-client trace");
        for (name, config) in model_configs() {
            let sharded = run_sharded(&config, t.ops());
            let serial = run_serial(&config, t.ops());
            assert_eq!(sharded.0, serial.0, "{name} stats, trace {trace}");
            assert_eq!(sharded.1, serial.1, "{name} writes, trace {trace}");
        }
    }
}

/// Warmup reset is the one shipped hook that interposes mid-run on a
/// sharded session (via a barrier). The barrier replay must put the
/// cluster in exactly the serial loop's state at the reset index.
#[test]
fn sharded_matches_forced_serial_with_warmup() {
    let env = Env::tiny();
    let ops = env.trace7().ops();
    for (name, config) in model_configs() {
        for fraction in [0.25, 0.5] {
            let run = |force_serial: bool| {
                let mut warm = WarmupReset::fraction(ops.len(), fraction);
                let (mut pin, mut obs, mut log) =
                    (ForceSerial, ObsRecorder::new(), WriteLogCapture::new());
                let mut hooks: Vec<&mut dyn RunHook> = vec![&mut warm, &mut obs, &mut log];
                if force_serial {
                    hooks.push(&mut pin);
                }
                let out = SimSession::new(&config).run(ops, &mut hooks);
                (out.stats, log.take())
            };
            let sharded = run(false);
            let serial = run(true);
            assert_eq!(sharded.0, serial.0, "{name} stats, warmup {fraction}");
            assert_eq!(sharded.1, serial.1, "{name} writes, warmup {fraction}");
        }
    }
}

/// A hand-built stream that forces every sharding regime at once:
/// private files (pure shard ops), a read-only shared file (shardable),
/// a write-shared file and a migration (global ops), all interleaved
/// across three clients with cleaner-driven write-back in between.
#[test]
fn entangled_files_and_migration_match_serial() {
    let c = [ClientId(0), ClientId(1), ClientId(2)];
    let private = [FileId(10), FileId(11), FileId(12)];
    let shared_ro = FileId(20);
    let shared_rw = FileId(21);
    let migrated = FileId(22);

    let mut ops = OpStream::new();
    let mut push = |t: u64, client: ClientId, kind: OpKind| {
        ops.push(Op {
            time: SimTime::from_secs(t),
            client,
            kind,
        });
    };

    // Seed the read-only shared file and the migrated file with writes.
    push(
        1,
        c[0],
        OpKind::Write {
            file: shared_ro,
            range: ByteRange::new(0, 8192),
        },
    );
    push(
        2,
        c[0],
        OpKind::Write {
            file: migrated,
            range: ByteRange::new(0, 4096),
        },
    );
    // Long interleaved body: private traffic + cross-client activity,
    // spaced so several 5-second cleaner ticks fire between ops.
    for i in 0..40u64 {
        let t = 10 + i * 7;
        let who = (i % 3) as usize;
        push(
            t,
            c[who],
            OpKind::Write {
                file: private[who],
                range: ByteRange::new(i * 512, i * 512 + 2048),
            },
        );
        push(
            t + 1,
            c[(who + 1) % 3],
            OpKind::Read {
                file: shared_ro,
                range: ByteRange::new((i % 8) * 1024, (i % 8) * 1024 + 1024),
            },
        );
        if i % 5 == 0 {
            // Write-sharing with opens: exercises last-writer recall and
            // the caching-disable path on the global server.
            push(
                t + 2,
                c[who],
                OpKind::Open {
                    file: shared_rw,
                    mode: OpenMode::Write,
                },
            );
            push(
                t + 3,
                c[who],
                OpKind::Write {
                    file: shared_rw,
                    range: ByteRange::new(i * 256, i * 256 + 512),
                },
            );
            push(t + 4, c[who], OpKind::Close { file: shared_rw });
        }
        if i == 20 {
            push(
                t + 5,
                c[0],
                OpKind::Migrate {
                    pid: nvfs::types::ProcessId(1),
                    to: c[2],
                    files: vec![migrated],
                },
            );
        }
    }
    push(300, c[1], OpKind::Fsync { file: private[1] });
    push(
        301,
        c[2],
        OpKind::Truncate {
            file: private[2],
            new_len: 1024,
        },
    );
    push(302, c[0], OpKind::Delete { file: shared_rw });

    for (name, config) in model_configs() {
        let sharded = run_sharded(&config, &ops);
        let serial = run_serial(&config, &ops);
        assert_eq!(sharded.0, serial.0, "{name} stats");
        assert_eq!(sharded.1, serial.1, "{name} writes");
        assert!(sharded.0.app_write_bytes > 0);
    }
}

/// The sharded loop must be byte-invariant in the job count: same
/// windows, same merge order, same output whether the window tasks run
/// on one thread or several. (This and the net-fault test below are the
/// only tests in this binary that touch the global job count.)
#[test]
fn session_output_is_jobs_invariant() {
    let traces = SpriteTraceSet::generate(&nvfs::trace::synth::TraceSetConfig::tiny());
    let ops = traces.trace(6).ops();
    let config = SimConfig::unified(8 << 20, 16384);
    nvfs::par::set_jobs(1);
    let one = run_sharded(&config, ops);
    nvfs::par::set_jobs(4);
    let four = run_sharded(&config, ops);
    nvfs::par::set_jobs(1);
    assert_eq!(one.0, four.0, "stats must not depend on --jobs");
    assert_eq!(one.1, four.1, "write log must not depend on --jobs");
}

/// A net-faulted run keeps the `shard_barriers` default (`None`), so the
/// network hook pins the session to the exact serial loop: its report —
/// stats, write log, wire counters, judge summary — must be identical
/// whether the surrounding sweep runs on one worker thread or several,
/// and identical to itself run twice.
#[test]
fn net_faulted_run_is_jobs_invariant() {
    use nvfs::core::ClusterSim;
    use nvfs::faults::net::{NetFaultPlan, NetFaultPlanConfig};
    use nvfs::types::SimDuration;

    let traces = SpriteTraceSet::generate(&nvfs::trace::synth::TraceSetConfig::tiny());
    let t = traces.trace(3);
    let cfg = NetFaultPlanConfig::new(t.clients() as u32, t.duration())
        .with_client_partitions(t.clients() as u32)
        .with_server_partitions(1)
        .with_partition_duration(SimDuration::from_secs(300))
        .with_drop_probability(0.2)
        .with_duplicate_probability(0.2);
    let net = NetFaultPlan::compile(13, &cfg).unwrap();
    for (name, config) in model_configs() {
        let sim = ClusterSim::new(config);
        nvfs::par::set_jobs(1);
        let one = sim.run_with_net_faults(t.ops(), &net);
        nvfs::par::set_jobs(8);
        let eight = sim.run_with_net_faults(t.ops(), &net);
        nvfs::par::set_jobs(1);
        assert_eq!(one, eight, "{name}: net report must not depend on --jobs");
        assert_eq!(one.net.summary.violations(), 0, "{name}");
    }
}
