//! Determinism under parallelism: every artifact the pipeline produces
//! must be byte-identical regardless of the job count.
//!
//! This is the hard invariant behind `nvfs_par::par_map` (submission-order
//! joins, per-task RNG seeds, no shared mutable state). The checks here
//! run the same workloads with jobs=1 and jobs=4 and compare rendered
//! output byte for byte.

use nvfs::experiments as exp;
use nvfs::experiments::env::Env;
use nvfs::trace::serialize::render_ops;
use nvfs::trace::synth::{SpriteTraceSet, TraceSetConfig};

/// Renders every per-trace op stream of a set into one string.
fn render_set(set: &SpriteTraceSet) -> String {
    set.traces().iter().map(|t| render_ops(t.ops())).collect()
}

/// The job count is process-global, so every jobs-toggling check lives in
/// this single test: integration tests in one binary share the process,
/// and interleaved `set_jobs` calls would race.
#[test]
fn artifacts_are_byte_identical_at_any_job_count() {
    // Env::small() exercises the real experiment scale (the CLI default).
    nvfs::par::set_jobs(1);
    let sequential = render_set(&SpriteTraceSet::generate(&TraceSetConfig::small()));
    nvfs::par::set_jobs(4);
    let parallel = render_set(&SpriteTraceSet::generate(&TraceSetConfig::small()));
    assert_eq!(
        sequential, parallel,
        "small trace set differs between jobs=1 and jobs=4"
    );

    // Figures, tables, and the scorecard at the tiny scale: sweeps, the
    // LFS server runs, and the scorecard's scoped fan-out all join in
    // submission order.
    nvfs::par::set_jobs(1);
    let env1 = Env::tiny();
    let f2_1 = exp::fig2::run(&env1).figure.render();
    let f3_1 = exp::fig3::run(&env1).figure.render();
    let f4_1 = exp::fig4::run(&env1).figure.render();
    let f5_1 = exp::fig5::run(&env1).figure.render();
    let t3_1 = exp::tab3::run(&env1).table.render();
    let card1 = exp::scorecard::run(&env1);

    nvfs::par::set_jobs(4);
    let env4 = Env::tiny();
    assert_eq!(render_set(&env1.traces), render_set(&env4.traces));
    assert_eq!(f2_1, exp::fig2::run(&env4).figure.render(), "fig2 differs");
    assert_eq!(f3_1, exp::fig3::run(&env4).figure.render(), "fig3 differs");
    assert_eq!(f4_1, exp::fig4::run(&env4).figure.render(), "fig4 differs");
    assert_eq!(f5_1, exp::fig5::run(&env4).figure.render(), "fig5 differs");
    assert_eq!(t3_1, exp::tab3::run(&env4).table.render(), "tab3 differs");
    let card4 = exp::scorecard::run(&env4);
    assert_eq!(
        card1.table.render(),
        card4.table.render(),
        "scorecard differs"
    );
    assert_eq!(card1.passed(), card4.passed());

    nvfs::par::set_jobs(1);
}
