//! §4 end-to-end: a client with NVRAM crashes mid-trace; the board is
//! moved to another workstation and every dirty byte is recovered — the
//! design requirement that makes client NVRAM "as permanent as data on
//! disk".

use nvfs::core::{ClusterSim, SimConfig};
use nvfs::experiments as exp;
use nvfs::experiments::env::Env;
use nvfs::nvram::{BatteryState, NvramBoard, RecoveredData};
use nvfs::trace::synth::{SpriteTraceSet, TraceSetConfig};
use nvfs::types::{ByteRange, ClientId, FileId, RangeSet};

/// Loads a board with dirty state equal to what a simulated client still
/// held at the end of a trace, then exercises the move-and-recover flow.
#[test]
fn simulated_remaining_data_survives_a_crash() {
    let set = SpriteTraceSet::generate(&TraceSetConfig::tiny());
    let stats = ClusterSim::new(SimConfig::unified(2 << 20, 512 << 10)).run(set.trace(6).ops());
    assert!(
        stats.remaining_dirty_bytes > 0,
        "trace must leave dirty data"
    );

    // Model the client's NVRAM contents at crash time: its remaining dirty
    // bytes, laid out in board-sized runs.
    let mut board = NvramBoard::new(ClientId(0), 1 << 20);
    let mut loaded = 0;
    let mut file = 0u32;
    while loaded < stats.remaining_dirty_bytes {
        let run = (stats.remaining_dirty_bytes - loaded).min(64 << 10);
        board.store(FileId(file), ByteRange::new(0, run));
        loaded += run;
        file += 1;
    }
    assert_eq!(board.dirty_bytes(), stats.remaining_dirty_bytes);

    // Crash; move the board; recover on the new host.
    board.move_to(ClientId(9));
    let recovered: RecoveredData = board.drain();
    let total: u64 = recovered.values().map(RangeSet::len_bytes).sum();
    assert_eq!(total, stats.remaining_dirty_bytes, "no byte may be lost");
    assert_eq!(board.dirty_bytes(), 0);
}

#[test]
fn battery_redundancy_protects_until_the_last_cell() {
    let mut board = NvramBoard::new(ClientId(1), 1 << 20);
    board.store(FileId(0), ByteRange::new(0, 8192));
    // Two of three batteries fail: degraded but safe.
    assert_eq!(board.batteries_mut().fail_one(), BatteryState::Degraded);
    assert_eq!(board.batteries_mut().fail_one(), BatteryState::Degraded);
    assert_eq!(board.dirty_bytes(), 8192);
    // Servicing restores full redundancy without touching contents.
    board.batteries_mut().service();
    assert_eq!(board.batteries_mut().fail_one(), BatteryState::Degraded);
    let recovered = board.drain();
    assert_eq!(recovered[&FileId(0)].len_bytes(), 8192);
}

#[test]
fn dead_board_loses_data_but_fails_loudly() {
    let mut board = NvramBoard::new(ClientId(2), 1 << 20);
    board.store(FileId(0), ByteRange::new(0, 4096));
    for _ in 0..3 {
        board.batteries_mut().fail_one();
    }
    assert_eq!(board.batteries_mut().fail_one(), BatteryState::Dead);
    assert!(
        board.drain().is_empty(),
        "a dead board must not pretend to recover"
    );
}

/// Same `(seed, plan)` ⇒ byte-identical reliability accounting at any
/// `--jobs` count. The job count is process-global, so this is the only
/// jobs-toggling test in this binary (same rule as
/// `tests/par_determinism.rs`).
#[test]
fn fault_schedule_accounting_is_identical_at_any_job_count() {
    let env = Env::tiny();
    nvfs::par::set_jobs(1);
    let sequential = exp::faults::run_seeded(&env, 42).expect("valid fault plan");
    nvfs::par::set_jobs(4);
    let parallel = exp::faults::run_seeded(&env, 42).expect("valid fault plan");
    nvfs::par::set_jobs(1);

    assert_eq!(
        sequential.models, parallel.models,
        "per-model ReliabilityStats differ between jobs=1 and jobs=4"
    );
    assert_eq!(
        sequential.server_modes, parallel.server_modes,
        "server-side ReliabilityStats differ between jobs=1 and jobs=4"
    );
    assert_eq!(
        sequential.render(),
        parallel.render(),
        "rendered scorecard differs between jobs=1 and jobs=4"
    );
    assert!(sequential.loss_ordering_holds());
}

#[test]
fn recovery_is_idempotent() {
    let mut board = NvramBoard::new(ClientId(3), 1 << 20);
    board.store(FileId(7), ByteRange::new(0, 1024));
    let first = board.drain();
    assert_eq!(first.len(), 1);
    assert!(board.drain().is_empty(), "second drain finds nothing");
}
