//! §4 end-to-end: a client with NVRAM crashes mid-trace; the board is
//! moved to another workstation and every dirty byte is recovered — the
//! design requirement that makes client NVRAM "as permanent as data on
//! disk".

use nvfs::core::{ClusterSim, SimConfig};
use nvfs::experiments as exp;
use nvfs::experiments::env::Env;
use nvfs::nvram::{BatteryState, NvramBoard, RecoveredData};
use nvfs::trace::synth::{SpriteTraceSet, TraceSetConfig};
use nvfs::types::{ByteRange, ClientId, FileId, RangeSet};

/// Loads a board with dirty state equal to what a simulated client still
/// held at the end of a trace, then exercises the move-and-recover flow.
#[test]
fn simulated_remaining_data_survives_a_crash() {
    let set = SpriteTraceSet::generate(&TraceSetConfig::tiny());
    let stats = ClusterSim::new(SimConfig::unified(2 << 20, 512 << 10)).run(set.trace(6).ops());
    assert!(
        stats.remaining_dirty_bytes > 0,
        "trace must leave dirty data"
    );

    // Model the client's NVRAM contents at crash time: its remaining dirty
    // bytes, laid out in board-sized runs.
    let mut board = NvramBoard::new(ClientId(0), 1 << 20);
    let mut loaded = 0;
    let mut file = 0u32;
    while loaded < stats.remaining_dirty_bytes {
        let run = (stats.remaining_dirty_bytes - loaded).min(64 << 10);
        board.store(FileId(file), ByteRange::new(0, run));
        loaded += run;
        file += 1;
    }
    assert_eq!(board.dirty_bytes(), stats.remaining_dirty_bytes);

    // Crash; move the board; recover on the new host.
    board.move_to(ClientId(9));
    let recovered: RecoveredData = board.drain();
    let total: u64 = recovered.values().map(RangeSet::len_bytes).sum();
    assert_eq!(total, stats.remaining_dirty_bytes, "no byte may be lost");
    assert_eq!(board.dirty_bytes(), 0);
}

#[test]
fn battery_redundancy_protects_until_the_last_cell() {
    let mut board = NvramBoard::new(ClientId(1), 1 << 20);
    board.store(FileId(0), ByteRange::new(0, 8192));
    // Two of three batteries fail: degraded but safe.
    assert_eq!(board.batteries_mut().fail_one(), BatteryState::Degraded);
    assert_eq!(board.batteries_mut().fail_one(), BatteryState::Degraded);
    assert_eq!(board.dirty_bytes(), 8192);
    // Servicing restores full redundancy without touching contents.
    board.batteries_mut().service();
    assert_eq!(board.batteries_mut().fail_one(), BatteryState::Degraded);
    let recovered = board.drain();
    assert_eq!(recovered[&FileId(0)].len_bytes(), 8192);
}

#[test]
fn dead_board_loses_data_but_fails_loudly() {
    let mut board = NvramBoard::new(ClientId(2), 1 << 20);
    board.store(FileId(0), ByteRange::new(0, 4096));
    for _ in 0..3 {
        board.batteries_mut().fail_one();
    }
    assert_eq!(board.batteries_mut().fail_one(), BatteryState::Dead);
    assert!(
        board.drain().is_empty(),
        "a dead board must not pretend to recover"
    );
}

/// Same `(seed, plan)` ⇒ byte-identical reliability accounting at any
/// `--jobs` count. The job count is process-global, so this is the only
/// jobs-toggling test in this binary (same rule as
/// `tests/par_determinism.rs`).
#[test]
fn fault_schedule_accounting_is_identical_at_any_job_count() {
    use nvfs::lfs::{run_server_wal, WalConfig};

    let env = Env::tiny();
    nvfs::par::set_jobs(1);
    let sequential = exp::faults::run_seeded(&env, 42).expect("valid fault plan");
    let wal_sequential = run_server_wal(&env.server, &WalConfig::sprite());
    nvfs::par::set_jobs(4);
    let parallel = exp::faults::run_seeded(&env, 42).expect("valid fault plan");
    let wal_parallel = run_server_wal(&env.server, &WalConfig::sprite());
    nvfs::par::set_jobs(1);

    assert_eq!(
        sequential.models, parallel.models,
        "per-model ReliabilityStats differ between jobs=1 and jobs=4"
    );
    assert_eq!(
        sequential.server_modes, parallel.server_modes,
        "server-side ReliabilityStats differ between jobs=1 and jobs=4"
    );
    assert_eq!(
        sequential.render(),
        parallel.render(),
        "rendered scorecard differs between jobs=1 and jobs=4"
    );
    assert!(sequential.loss_ordering_holds());
    assert_eq!(
        wal_sequential, wal_parallel,
        "WAL-mode reports differ between jobs=1 and jobs=4"
    );
}

/// Random WAL crash schedules: the log's commit protocol — ack on append,
/// drain lazily, truncate only after writeback — must recover every
/// acknowledged byte under every `(seed, crash plan)`, across all eight
/// server workloads and the shutdown truncation invariant. A red run
/// prints the failing seed.
#[test]
fn random_wal_crash_schedules_recover_every_acked_byte() {
    use nvfs::experiments::verify_crash::judge_wal_report;
    use nvfs::faults::{FaultPlanConfig, FaultSchedule};
    use nvfs::lfs::{run_server_wal_faulted, WalConfig};
    use nvfs::rng::{Rng, SeedableRng, StdRng};
    use nvfs::types::SimTime;

    let env = Env::tiny();
    let duration = env.trace_config.duration();
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0x7761_6c63_7261_7368 ^ seed);
        let plan = FaultPlanConfig::new(1, duration).with_wal_crashes(rng.gen_range(1..=6));
        let schedule = FaultSchedule::compile(seed, &plan)
            .unwrap_or_else(|e| panic!("seed {seed}: bad WAL crash plan: {e}"));
        let (reports, _) =
            run_server_wal_faulted(&env.server, &WalConfig::sprite(), &schedule.wal_crashes);
        let finish_at = SimTime::from_micros(duration.as_micros() * 2);
        for (i, report) in reports.iter().enumerate() {
            let summary = judge_wal_report(ClientId(i as u32), report, finish_at);
            assert_eq!(
                summary.violations(),
                0,
                "seed {seed} workload {i}: WAL oracle violations\n{}",
                summary.verdict_json(seed)
            );
            assert!(summary.crash_points > 0, "seed {seed} workload {i}");
        }
    }
}

#[test]
fn recovery_is_idempotent() {
    let mut board = NvramBoard::new(ClientId(3), 1 << 20);
    board.store(FileId(7), ByteRange::new(0, 1024));
    let first = board.drain();
    assert_eq!(first.len(), 1);
    assert!(board.drain().is_empty(), "second drain finds nothing");
}
