//! Network chaos: randomized `(seed, NetFaultPlan)` schedules — partitions,
//! drops, duplicates, delay spreads, composed with client crashes — must
//! never lose an acknowledged byte, never double-apply a request, and
//! never fail the durability oracle. Every assertion prints the failing
//! seed so a red run reproduces with one `NetFaultPlan::compile` call.

use nvfs::core::{CacheModelKind, ClusterSim, SimConfig};
use nvfs::faults::net::{NetFaultPlan, NetFaultPlanConfig};
use nvfs::faults::{FaultPlanConfig, FaultSchedule};
use nvfs::rng::{Rng, SeedableRng, StdRng};
use nvfs::trace::synth::{SpriteTraceSet, TraceSetConfig};
use nvfs::types::SimDuration;

const MODELS: [CacheModelKind; 4] = [
    CacheModelKind::Volatile,
    CacheModelKind::WriteAside,
    CacheModelKind::Hybrid,
    CacheModelKind::Unified,
];

fn model_config(model: CacheModelKind) -> SimConfig {
    let base = 2 << 20;
    match model {
        CacheModelKind::Volatile => SimConfig::volatile(base),
        CacheModelKind::WriteAside => SimConfig::write_aside(base, 64 << 10),
        CacheModelKind::Unified => SimConfig::unified(base, base),
        CacheModelKind::Hybrid => SimConfig::hybrid(base, 64 << 10),
    }
}

/// A random-but-valid network plan: every knob drawn from its legal range,
/// so the sweep explores the cross-product rather than one corner.
fn random_net_plan(rng: &mut StdRng, clients: u32, duration: SimDuration) -> NetFaultPlanConfig {
    let delay_min = SimDuration::from_micros(rng.gen_range(100..=2_000));
    let delay_max = delay_min + SimDuration::from_micros(rng.gen_range(1_000..=50_000));
    NetFaultPlanConfig::new(clients, duration)
        .with_client_partitions(rng.gen_range(0..=clients))
        .with_server_partitions(rng.gen_range(0..=2))
        .with_partition_duration(SimDuration::from_secs(rng.gen_range(30..=900)))
        .with_drop_probability(rng.gen_range(0.0..=0.4))
        .with_duplicate_probability(rng.gen_range(0.0..=0.4))
        .with_delay_range(delay_min, delay_max)
        .with_rpc_timeout(SimDuration::from_millis(rng.gen_range(100..=2_000)))
        .with_backoff(
            SimDuration::from_millis(rng.gen_range(50..=1_000)),
            SimDuration::from_secs(rng.gen_range(5..=60)),
        )
        .with_max_in_flight(rng.gen_range(1..=16))
}

fn random_crash_plan(rng: &mut StdRng, clients: u32, duration: SimDuration) -> FaultPlanConfig {
    FaultPlanConfig::new(clients, duration)
        .with_client_crashes(rng.gen_range(1..=clients))
        .with_batteries(rng.gen_range(1..=3))
        .with_battery_mtbf(SimDuration::from_micros(
            duration.as_micros().saturating_mul(rng.gen_range(2..=6)),
        ))
        .with_torn_probability(rng.gen_range(0.0..=0.8))
}

/// 64 random schedules (16 seeds × 4 cache models), each composing a
/// random network plan with a random crash plan: the wire judge and the
/// durability oracle must both stay silent on every one.
#[test]
fn random_net_schedules_never_violate_the_contracts() {
    let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
    let trace = traces.trace(0);
    let clients = trace.clients() as u32;
    let duration = trace.duration();
    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(0x6e65_745f_6368_616f ^ seed);
        let net_cfg = random_net_plan(&mut rng, clients, duration);
        let crash_cfg = random_crash_plan(&mut rng, clients, duration);
        let net = NetFaultPlan::compile(seed, &net_cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: bad net plan: {e}"));
        let schedule = FaultSchedule::compile(seed, &crash_cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: bad crash plan: {e}"));
        for model in MODELS {
            let (report, oracle) = ClusterSim::new(model_config(model))
                .run_with_net_faults_verified(trace.ops(), &net, &schedule);
            let summary = oracle.summary();
            assert_eq!(
                report.net.summary.violations(),
                0,
                "seed {seed} model {model:?}: wire violations {:?}",
                report.net.verdicts
            );
            assert_eq!(
                summary.lost_durable,
                0,
                "seed {seed} model {model:?}: durable bytes lost\n{}",
                summary.verdict_json(seed)
            );
            assert_eq!(
                summary.double_replay,
                0,
                "seed {seed} model {model:?}: bytes replayed twice\n{}",
                summary.verdict_json(seed)
            );
            // The wire really was exercised: every run issues RPCs, and a
            // duplicate-heavy plan must suppress every duplicate.
            assert!(
                report.net.stats.requests > 0,
                "seed {seed} model {model:?}: no RPCs issued"
            );
            assert_eq!(
                report.net.summary.applied + report.net.stats.dup_suppressed,
                report.net.summary.deliveries,
                "seed {seed} model {model:?}: deliveries neither applied nor deduped"
            );
        }
    }
}

/// 16 random schedules through the WAL-mode pipeline: a random network
/// plan shapes which writes reach the server, a random WAL crash plan
/// crashes the log at random points, and both judges — the wire judge and
/// the WAL durability oracle — must stay silent on every seed.
#[test]
fn random_wal_schedules_never_violate_the_contracts() {
    use nvfs::experiments::verify_crash::judge_wal_report;
    use nvfs::lfs::wal_fs::{run_filesystem_wal_faulted, WalConfig};
    use nvfs::server::e2e::server_workload_from_writes;
    use nvfs::types::{ClientId, SimTime};

    let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
    let trace = traces.trace(0);
    let clients = trace.clients() as u32;
    let duration = trace.duration();
    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(0x77616c_5f636861 ^ seed);
        let net_cfg = random_net_plan(&mut rng, clients, duration);
        let wal_cfg =
            FaultPlanConfig::new(clients, duration).with_wal_crashes(rng.gen_range(1..=4));
        let net = NetFaultPlan::compile(seed, &net_cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: bad net plan: {e}"));
        let schedule = FaultSchedule::compile(seed, &wal_cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: bad WAL crash plan: {e}"));
        let report = ClusterSim::new(model_config(CacheModelKind::Volatile))
            .run_with_net_faults(trace.ops(), &net);
        assert_eq!(
            report.net.summary.violations(),
            0,
            "seed {seed}: wire violations {:?}",
            report.net.verdicts
        );
        let workload = server_workload_from_writes(&report.writes);
        let (server, _) =
            run_filesystem_wal_faulted(&workload, &WalConfig::sprite(), &schedule.wal_crashes);
        let finish_at = SimTime::from_micros(duration.as_micros() * 2);
        let summary = judge_wal_report(ClientId(seed as u32), &server, finish_at);
        assert_eq!(
            summary.violations(),
            0,
            "seed {seed}: WAL oracle violations\n{}",
            summary.verdict_json(seed)
        );
    }
}

/// The same `(seed, plan)` pair replays byte-identically: the chaos sweep
/// is a pure function of its seeds.
#[test]
fn chaos_runs_are_reproducible() {
    let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
    let trace = traces.trace(1);
    let clients = trace.clients() as u32;
    let mut rng = StdRng::seed_from_u64(77);
    let net_cfg = random_net_plan(&mut rng, clients, trace.duration());
    let net = NetFaultPlan::compile(5, &net_cfg).unwrap();
    let sim = ClusterSim::new(model_config(CacheModelKind::WriteAside));
    let a = sim.run_with_net_faults(trace.ops(), &net);
    let b = sim.run_with_net_faults(trace.ops(), &net);
    assert_eq!(a, b);
}
