//! Hook-engine equivalence tests: the `ClusterSim::run_*` wrappers must be
//! byte-identical to manually assembled canonical `SimSession` hook stacks,
//! the pre-refactor golden fault matrix must reproduce in-process, and
//! novel stacks (warmup + faults, warmup + faults + oracle) — impossible
//! before the hook engine — must hold the byte-conservation invariants.

use nvfs::core::{
    ClusterSim, FaultInjector, FlushEvent, ObsRecorder, OracleJudge, RunHook, SimConfig, SimEngine,
    SimSession, WarmupReset, WriteLogCapture,
};
use nvfs::experiments as exp;
use nvfs::experiments::env::Env;
use nvfs::faults::{FaultPlanConfig, FaultSchedule};
use nvfs::types::{ClientId, FileId, SimTime};

fn crash_plan(env: &Env, trace: usize, crashes: u32) -> (FaultPlanConfig, &nvfs::trace::OpStream) {
    let t = env.traces.trace(trace);
    let plan = FaultPlanConfig::new(t.clients() as u32, t.duration())
        .with_client_crashes(crashes.min(t.clients() as u32))
        .with_torn_probability(0.5);
    (plan, t.ops())
}

/// The thin wrappers and hand-assembled canonical stacks are the same
/// computation: identical stats, reliability accounting, write logs, and
/// oracle summaries for every seed.
#[test]
fn wrappers_match_manual_canonical_stacks() {
    let env = Env::tiny();
    let config = SimConfig::unified(8 << 20, 16384);
    for seed in [3u64, 11, 42] {
        let (plan, ops) = crash_plan(&env, 3, 4);
        let schedule = FaultSchedule::compile(seed, &plan).unwrap();
        let sim = ClusterSim::new(config.clone());

        let (stats, writes) = sim.run_detailed(ops);
        let (mut obs, mut log) = (ObsRecorder::new(), WriteLogCapture::new());
        let out = SimSession::new(&config).run(ops, &mut [&mut obs, &mut log]);
        assert_eq!(out.stats, stats, "run_detailed stats, seed {seed}");
        assert_eq!(log.take(), writes, "run_detailed writes, seed {seed}");

        let report = sim.run_with_faults(ops, &schedule);
        let (mut faults, mut obs, mut log) = (
            FaultInjector::new(&schedule),
            ObsRecorder::new(),
            WriteLogCapture::new(),
        );
        let out = SimSession::new(&config).run(ops, &mut [&mut faults, &mut obs, &mut log]);
        assert_eq!(
            out.stats, report.stats,
            "run_with_faults stats, seed {seed}"
        );
        assert_eq!(
            out.reliability, report.reliability,
            "run_with_faults reliability, seed {seed}"
        );
        assert_eq!(
            log.take(),
            report.writes,
            "run_with_faults writes, seed {seed}"
        );

        let (vreport, oracle) = sim.run_with_faults_verified(ops, &schedule);
        let (mut faults, mut obs, mut judge, mut log) = (
            FaultInjector::new(&schedule),
            ObsRecorder::new(),
            OracleJudge::new(),
            WriteLogCapture::new(),
        );
        let out =
            SimSession::new(&config).run(ops, &mut [&mut faults, &mut obs, &mut judge, &mut log]);
        assert_eq!(out.stats, vreport.stats, "verified stats, seed {seed}");
        assert_eq!(
            out.reliability, vreport.reliability,
            "verified reliability, seed {seed}"
        );
        assert_eq!(log.take(), vreport.writes, "verified writes, seed {seed}");
        let manual = judge.into_oracle();
        assert_eq!(
            format!("{:?}", manual.summary()),
            format!("{:?}", oracle.summary()),
            "oracle summary, seed {seed}"
        );
        assert_eq!(manual.reports().len(), oracle.reports().len());
    }
}

/// The committed golden fault matrix (`tests/golden/faults_tiny.txt`,
/// diffed against the CLI by CI) reproduces in-process through the hook
/// engine: the refactor changed no output byte.
#[test]
fn faults_golden_matrix_reproduces_in_process() {
    let env = Env::tiny();
    let seed = exp::faults::DEFAULT_SEED;
    let mut matrix = String::new();
    for model in ["volatile", "write-aside", "hybrid", "unified"] {
        let kind = exp::faults::parse_model(model).unwrap();
        let stats = exp::faults::model_reliability(&env, seed, kind).unwrap();
        matrix.push_str(&exp::faults::client_table(seed, &[(kind, stats)]).render());
        matrix.push('\n');
    }
    matrix.push_str(&exp::faults::run_seeded(&env, seed).unwrap().render());
    matrix.push('\n');
    assert_eq!(matrix, include_str!("golden/faults_tiny.txt"));
}

/// A novel composition the pre-refactor engine could not express: warmup
/// reset stacked under fault injection. The post-reset reliability
/// accounting must still conserve every byte at risk.
#[test]
fn novel_warmup_plus_faults_stack_conserves_bytes() {
    let env = Env::tiny();
    let config = SimConfig::unified(8 << 20, 16384);
    let (plan, ops) = crash_plan(&env, 3, 4);
    let schedule = FaultSchedule::compile(7, &plan).unwrap();
    let mut warm = WarmupReset::fraction(ops.len(), 0.25);
    let mut faults = FaultInjector::new(&schedule);
    let (mut obs, mut log) = (ObsRecorder::new(), WriteLogCapture::new());
    let out = SimSession::new(&config).run(ops, &mut [&mut warm, &mut faults, &mut obs, &mut log]);
    let r = out.reliability;
    assert!(r.client_crashes > 0, "schedule must fire inside the trace");
    assert_eq!(
        r.bytes_at_risk,
        r.bytes_in_nvram + r.bytes_lost_window,
        "at-risk bytes split into NVRAM-captured + window-lost"
    );
    assert_eq!(
        r.bytes_in_nvram,
        r.bytes_recovered + r.bytes_lost_torn + r.bytes_lost_battery,
        "NVRAM bytes split into recovered + torn + battery-lost"
    );
    assert!(!log.take().is_empty());
}

/// The acceptance composition: warmup + faults + oracle in one stack. The
/// oracle must judge every post-warmup recovery clean.
#[test]
fn warmup_faults_oracle_composition_is_clean() {
    let env = Env::tiny();
    let config = SimConfig::unified(8 << 20, 16384);
    let (plan, ops) = crash_plan(&env, 3, 3);
    let schedule = FaultSchedule::compile(19, &plan).unwrap();
    let mut warm = WarmupReset::fraction(ops.len(), 0.3);
    let mut faults = FaultInjector::new(&schedule);
    let mut obs = ObsRecorder::new();
    let mut judge = OracleJudge::new();
    let out =
        SimSession::new(&config).run(ops, &mut [&mut warm, &mut faults, &mut obs, &mut judge]);
    assert!(out.reliability.client_crashes > 0);
    let oracle = judge.into_oracle();
    let summary = oracle.summary();
    assert_eq!(summary.violations(), 0, "{:?}", oracle.reports());
    assert_eq!(summary.bytes_observed, out.reliability.bytes_recovered);
}

/// A from-scratch hook (not shipped in the crate) sees the full typed
/// flush stream, and sees it identically on every run — the determinism
/// contract extends to third-party hooks.
#[test]
fn custom_flush_tally_hook_is_deterministic() {
    #[derive(Default)]
    struct FlushTally {
        events: Vec<(SimTime, ClientId, FileId, String)>,
    }
    impl RunHook for FlushTally {
        fn on_flush(&mut self, _engine: &mut SimEngine<'_>, event: &FlushEvent) {
            self.events.push((
                event.at,
                event.client,
                event.file,
                format!("{:?}", event.cause),
            ));
        }
    }

    let env = Env::tiny();
    let config = SimConfig::unified(2 << 20, 1 << 20);
    let ops = env.trace7().ops();
    let run = || {
        let mut tally = FlushTally::default();
        let mut obs = ObsRecorder::new();
        let out = SimSession::new(&config).run(ops, &mut [&mut obs, &mut tally]);
        (out.stats, tally.events)
    };
    let (stats, first) = run();
    let (_, second) = run();
    assert_eq!(first, second, "flush stream must be deterministic");
    assert!(!first.is_empty());
    if stats.writeback_bytes > 0 {
        assert!(first.iter().any(|(_, _, _, cause)| cause == "WriteBack"));
    }
}
