//! End-to-end shape assertions: every headline number of Baker et al.
//! (ASPLOS 1992) must hold — as a tolerance band, not an exact match — when
//! the experiments run over the reduced-scale synthetic workloads.
//!
//! The bands mirror `DESIGN.md`'s experiment index. The reproduction goal
//! is the *shape* of each result (who wins, by roughly what factor, where
//! crossovers fall), not the authors' absolute numbers: the substrate here
//! is a synthetic workload, not the 1991 Berkeley Sprite cluster.

use std::sync::OnceLock;

use nvfs::experiments::{
    bus_nvram, disk_sort, env::Env, fig2, fig3, fig4, fig5, fig6, pipeline, presto, tab1, tab2,
    tab3, tab4, write_buffer,
};

fn env() -> &'static Env {
    static ENV: OnceLock<Env> = OnceLock::new();
    ENV.get_or_init(Env::small)
}

#[test]
fn tab1_nvram_price_ratios() {
    let t = tab1::run();
    // "NVRAM is still four to six times more expensive per megabyte than
    // DRAM" — the 16 MB boards amortize down to ~4×.
    assert!(
        (3.5..=4.5).contains(&t.ratio_at_16mb),
        "{}",
        t.ratio_at_16mb
    );
    assert!(
        t.ratio_at_1mb > t.ratio_at_16mb,
        "small configurations cost more per MB"
    );
}

#[test]
fn fig2_byte_lifetimes() {
    let out = fig2::run(env());
    for (n, f) in &out.die_within_30s {
        let pct = 100.0 * f;
        if *n == 3 || *n == 4 {
            // "For traces 3 and 4 … only 5 to 10% of bytes die within 30
            // seconds."
            assert!(
                (2.0..=18.0).contains(&pct),
                "trace {n}: {pct:.1}% died in 30 s"
            );
        } else {
            // "For most of the traces 35 to 50% of written bytes die within
            // 30 seconds."
            assert!(
                (25.0..=55.0).contains(&pct),
                "trace {n}: {pct:.1}% died in 30 s"
            );
        }
    }
    for (n, f) in &out.die_within_30m {
        if *n == 3 || *n == 4 {
            // "…while more than 80% die within half an hour."
            assert!(
                *f > 0.65,
                "trace {n}: only {:.1}% died in 30 min",
                100.0 * f
            );
        }
    }
    // Holding data longer always reduces traffic (Fig. 2 is monotone).
    for s in out.figure.all_series() {
        assert!(s.is_nonincreasing(), "{}", s.name);
    }
}

#[test]
fn tab2_write_fates() {
    let out = tab2::run(env());
    // "Across all traces, 85% of bytes written could be absorbed … if we
    // exclude traces 3 and 4, only 65% absorption is possible."
    let all = 100.0 * out.all.absorbed_fraction();
    let typical = 100.0 * out.typical.absorbed_fraction();
    assert!(
        (75.0..=92.0).contains(&all),
        "all-traces absorption {all:.1}%"
    );
    assert!(
        (55.0..=80.0).contains(&typical),
        "typical absorption {typical:.1}%"
    );
    assert!(all > typical);
    // "This category turns out to be minuscule."
    assert!(100.0 * out.all.concurrent as f64 / out.all.total as f64 % 100.0 < 2.0);
    // Callbacks dominate the unavoidable server traffic.
    assert!(out.all.called_back > out.all.concurrent * 5);
}

#[test]
fn fig3_omniscient_diminishing_returns() {
    let out = fig3::run(env());
    for trace in [1usize, 2, 5, 6, 7, 8] {
        let at = |mb: f64| out.traffic(trace, mb).unwrap();
        // "One-eighth of a megabyte of NVRAM eliminates 30 to 50% of the
        // server write traffic for most of the traces" — band widened for
        // the synthetic substrate.
        let reduction_eighth = 100.0 - at(0.125);
        assert!(
            (15.0..=65.0).contains(&reduction_eighth),
            "trace {trace}: 1/8 MB removed {reduction_eighth:.1}%"
        );
        // "For most of the traces, one megabyte reduces write traffic by
        // 50%…"
        let reduction_1mb = 100.0 - at(1.0);
        assert!(
            reduction_1mb > 40.0,
            "trace {trace}: 1 MB removed {reduction_1mb:.1}%"
        );
        // "…while eight megabytes provides less than 10% further
        // reduction."
        let further = at(1.0) - at(8.0);
        assert!(
            further < 12.0,
            "trace {trace}: {further:.1}% more from 1->8 MB"
        );
    }
}

#[test]
fn fig4_replacement_policies() {
    let out = fig4::run(env());
    let at = |p: &str, mb: f64| out.traffic(p, mb).unwrap();
    // "With one megabyte of NVRAM … the omniscient policy performs only 10
    // to 15% better than the feasible replacement policies. The difference
    // … is at most 22% across all the traces."
    let lru = at("lru", 1.0);
    let omni = at("omniscient", 1.0);
    let gap = (lru - omni) / lru;
    assert!(
        (0.0..=0.30).contains(&gap),
        "omniscient gap {:.1}%",
        100.0 * gap
    );
    // "The random policy behaves almost as well as the LRU policy."
    let random = at("random", 1.0);
    assert!(random <= lru * 1.25, "random {random:.1} vs lru {lru:.1}");
    assert!(omni <= lru + 1e-9);
}

#[test]
fn fig5_model_ordering() {
    let out = fig5::run(env());
    let at = |m: &str, x: f64| out.traffic(m, x).unwrap();
    // "The unified model performs better than the write-aside model …"
    for extra in [2.0, 4.0, 8.0] {
        assert!(
            at("unified", extra) < at("write-aside", extra),
            "unified not ahead at +{extra} MB"
        );
    }
    // "…while the write-aside model performs worse [than volatile]" once
    // the volatile model gets several extra megabytes.
    assert!(
        at("write-aside", 8.0) > at("volatile", 8.0),
        "write-aside {:.1} should trail volatile {:.1} at +8 MB",
        at("write-aside", 8.0),
        at("volatile", 8.0)
    );
    // Unified beats plain volatile at equal added memory.
    assert!(at("unified", 4.0) < at("volatile", 4.0));
}

#[test]
fn fig6_nvram_payoff_grows_with_base_cache() {
    let out = fig6::run(env());
    // §2.7: at a 16 MB base, ½ MB of NVRAM matches many megabytes of DRAM
    // (more than six in the paper); at an 8 MB base the equivalent is far
    // smaller.
    let eq = |vs: &[nvfs::core::cost::CostVerdict], mb: f64| {
        vs.iter()
            .find(|v| (v.nvram_mb - mb).abs() < 1e-9)
            .map(|v| v.equivalent_dram_mb)
    };
    // None means DRAM cannot reach it at all — an even stronger win.
    if let Some(dram_mb) = eq(&out.verdicts_16mb, 0.5).flatten() {
        assert!(
            dram_mb > 2.0,
            "16 MB base: ½ MB NVRAM ≙ {dram_mb:.1} MB DRAM"
        );
    }
    // NVRAM must win the price comparison at the 16 MB base.
    let v = out
        .verdicts_16mb
        .iter()
        .find(|v| (v.nvram_mb - 0.5).abs() < 1e-9)
        .expect("0.5 MB verdict present");
    assert!(v.nvram_wins, "{v:?}");
}

#[test]
fn tab3_partial_segments() {
    let out = tab3::run(env());
    let u6 = out.report("/user6").unwrap();
    // "/user6 … showed 92% of segment writes were partial segments due to
    // fsyncs" and 97% partial overall.
    assert!(u6.pct_partial() > 90.0, "{}", u6.pct_partial());
    assert!(
        (85.0..=99.0).contains(&u6.pct_fsync_partial()),
        "{}",
        u6.pct_fsync_partial()
    );
    // "…one of the users was executing long-running data base benchmarks":
    // /user6 issues ~89% of all segment writes.
    assert!(
        (75.0..=95.0).contains(&out.shares[0].1),
        "user6 share {}",
        out.shares[0].1
    );
    // "/swap1 … saw no partial segments due to fsyncs."
    assert_eq!(out.report("/swap1").unwrap().pct_fsync_partial(), 0.0);
    assert_eq!(out.report("/scratch4").unwrap().pct_fsync_partial(), 0.0);
    // "for most Sprite file systems, 10 to 25% of segments written to an
    // LFS disk are partial segments due to application fsyncs."
    for name in ["/user1", "/user4", "/sprite/src/kernel", "/user2"] {
        let pct = out.report(name).unwrap().pct_fsync_partial();
        assert!(
            (8.0..=30.0).contains(&pct),
            "{name}: {pct:.1}% fsync partials"
        );
    }
    // Every home-directory file system is partial-dominated (90%+ in the
    // paper; band widened).
    for name in ["/user1", "/user2", "/user4"] {
        assert!(out.report(name).unwrap().pct_partial() > 70.0, "{name}");
    }
}

#[test]
fn tab4_partial_sizes_and_overhead() {
    let out = tab4::run(env());
    // "The partial segments average from 8 kilobytes on /user6 to 55
    // kilobytes on /sprite/src/kernel."
    let u6 = out.partial_kb_of("/user6").unwrap();
    let kernel = out.partial_kb_of("/sprite/src/kernel").unwrap();
    assert!(u6 < 15.0, "/user6 partials {u6:.1} KB");
    assert!(
        (30.0..=90.0).contains(&kernel),
        "/sprite/src/kernel partials {kernel:.1} KB"
    );
    assert!(kernel > 3.0 * u6);
    // "On /user6, the space taken up by the metadata and summary blocks in
    // partial segments is about one third of the segment."
    let u6_ov = out.overhead_of("/user6").unwrap();
    assert!((0.2..=0.5).contains(&u6_ov), "/user6 overhead {u6_ov:.2}");
    // "On /sprite/src/kernel the overhead is only about 8%."
    let k_ov = out.overhead_of("/sprite/src/kernel").unwrap();
    assert!(k_ov < 0.15, "/sprite/src/kernel overhead {k_ov:.2}");
}

#[test]
fn write_buffer_reductions() {
    let out = write_buffer::run(env());
    // "…would reduce disk write accesses by 90% on the most heavily-used
    // file system."
    let u6 = out.of("/user6").unwrap();
    assert!(
        (0.80..=0.99).contains(&u6.reduction),
        "/user6 reduction {:.2}",
        u6.reduction
    );
    // "…by a modest 10 to 25%" for most file systems (band widened).
    for name in ["/user1", "/user4", "/sprite/src/kernel", "/user2"] {
        let r = out.of(name).unwrap().reduction;
        assert!((0.05..=0.35).contains(&r), "{name}: reduction {r:.2}");
    }
    // File systems that never fsync gain nothing.
    for name in ["/swap1", "/scratch4"] {
        assert!(out.of(name).unwrap().reduction.abs() < 0.05, "{name}");
    }
    // "Using NVRAM would eliminate partial segment writes" (full staging).
    assert_eq!(out.staged_partials, 0);
}

#[test]
fn disk_sort_bandwidth_claim() {
    let out = disk_sort::run();
    let (fifo, sorted) = out.at(1000).unwrap();
    // "only 7% of disk bandwidth is used when writing dirty data randomly"
    assert!(
        (0.03..=0.12).contains(&fifo),
        "random utilization {fifo:.3}"
    );
    // "1000 I/O's … buffered and sorted to utilize 40% of the disk
    // bandwidth."
    assert!(
        (0.25..=0.60).contains(&sorted),
        "sorted utilization {sorted:.3}"
    );
}

#[test]
fn bus_and_nvram_access_claims() {
    let out = bus_nvram::run(env());
    // "the unified model generates at least 25% less file cache traffic on
    // the local memory bus than the write-aside model."
    assert!(
        out.bus_ratio() >= 4.0 / 3.0 * 0.95,
        "bus ratio {:.2}",
        out.bus_ratio()
    );
    // "the unified model generates from two to two-and-a-half times as many
    // NVRAM accesses." Our synthetic workload is more read-heavy than the
    // 1991 Sprite mix, which inflates unified's NVRAM reads, so the band is
    // widened upward; the shape claim is that the ratio is well above 1.
    assert!(
        (1.5..=8.0).contains(&out.access_ratio()),
        "access ratio {:.2}",
        out.access_ratio()
    );
    // The write-aside NVRAM "is never read except during crash recovery".
    assert_eq!(out.write_aside.nvram_reads, 0);
}

#[test]
fn read_latency_claims() {
    let out = nvfs::experiments::read_latency::run();
    // "[3]: the optimal write size for an LFS is approximately two disk
    // tracks, typically 50 - 70 kilobytes."
    assert!(
        (32 << 10..=160 << 10).contains(&out.optimal_bytes),
        "optimum {} KB",
        out.optimal_bytes >> 10
    );
    // "the increase in mean read response time due to full segment writes
    // is sometimes as much as 37%, but typically about 14%."
    assert!(
        (8.0..=30.0).contains(&out.typical_penalty_pct),
        "typical penalty {:.1}%",
        out.typical_penalty_pct
    );
    assert!(
        out.heavy_penalty_pct > 25.0,
        "heavy penalty {:.1}%",
        out.heavy_penalty_pct
    );
}

#[test]
fn prestoserve_latency_claim() {
    let out = presto::run();
    // Reported gains were "up to 50%"; raw synchronous-write latency
    // improves by much more once NVRAM absorbs it.
    assert!(
        out.latency_improvement() > 2.0,
        "{:.2}x",
        out.latency_improvement()
    );
    assert!(out.presto.disk_busy_ms < out.nfs.disk_busy_ms);
}

#[test]
fn client_nvram_helps_the_server_too() {
    let out = pipeline::run(env());
    assert!(out.volatile.server.count(nvfs::lfs::SegmentCause::Fsync) > 0);
    assert_eq!(out.unified.server.count(nvfs::lfs::SegmentCause::Fsync), 0);
    assert!(out.unified.client.server_write_bytes < out.volatile.client.server_write_bytes);
}
