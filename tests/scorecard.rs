//! The single release gate: every programmatically evaluated paper claim
//! must pass at the small (default) scale.

use nvfs::experiments::{env::Env, scorecard};

#[test]
fn the_whole_paper_reproduces() {
    let card = scorecard::run(&Env::small());
    assert!(
        card.all_passed(),
        "failed: {:?} ({} of {} passed)\n{}",
        card.first_failure(),
        card.passed(),
        card.checks.len(),
        card.table.render()
    );
}
