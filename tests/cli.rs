//! End-to-end tests of the `nvfs` command-line tool: generate traces to
//! disk, lint them, replay them through the simulator, and export CSVs.

use std::path::PathBuf;
use std::process::{Command, Output};

fn nvfs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_nvfs"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nvfs-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn help_lists_commands() {
    let out = nvfs(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["gen-traces", "client-sim", "lifetime", "export-csv"] {
        assert!(text.contains(cmd), "help missing {cmd}");
    }
}

/// `nvfs help` must name every registered experiment — the in-process
/// twin of CI's drift check between `help` and `experiments --list`.
#[test]
fn help_lists_every_registered_experiment() {
    let out = nvfs(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for entry in nvfs::experiments::registry::all() {
        assert!(text.contains(entry.name()), "help missing {}", entry.name());
    }
}

/// `experiments --list` is exactly the registry listing.
#[test]
fn experiments_list_matches_registry() {
    let out = nvfs(&["experiments", "--list"]);
    assert!(out.status.success());
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        nvfs::experiments::registry::list_text()
    );
}

/// The README experiment table is regenerated from the registry; this
/// fails when a registry edit isn't mirrored into the README.
#[test]
fn readme_embeds_the_registry_table() {
    let readme = include_str!("../README.md");
    let table = nvfs::experiments::registry::readme_table();
    assert!(
        readme.contains(&table),
        "README experiment table drifted from registry::readme_table();\n\
         regenerate it:\n{table}"
    );
}

#[test]
fn experiments_only_runs_a_single_experiment() {
    let out = nvfs(&["experiments", "--scale", "tiny", "--only", "disk-sort"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Disk bandwidth"));
    assert!(!text.contains("Table 1"), "--only must run one experiment");
}

/// A typo'd `--only` fails fast (before workload generation) with the
/// full list of valid ids.
#[test]
fn experiments_only_typo_lists_valid_ids() {
    let out = nvfs(&["experiments", "--only", "disk-sortt"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown experiment \"disk-sortt\""), "{err}");
    for id in ["disk-sort", "tab1", "scorecard"] {
        assert!(err.contains(id), "error omits valid id {id}: {err}");
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = nvfs(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn gen_stats_sim_lifetime_round_trip() {
    let dir = tempdir("roundtrip");
    let out_flag = dir.to_str().unwrap();

    let gen = nvfs(&["gen-traces", "--scale", "tiny", "--out", out_flag]);
    assert!(
        gen.status.success(),
        "{}",
        String::from_utf8_lossy(&gen.stderr)
    );
    let trace7 = dir.join("trace7.ops");
    assert!(trace7.exists());

    let stats = nvfs(&["trace-stats", trace7.to_str().unwrap()]);
    assert!(stats.status.success());
    let text = String::from_utf8_lossy(&stats.stdout);
    assert!(text.contains("write bytes:"));
    assert!(text.contains("lint:"));

    let sim = nvfs(&[
        "client-sim",
        "--model",
        "unified",
        "--volatile-mb",
        "2",
        "--nvram-mb",
        "1",
        trace7.to_str().unwrap(),
    ]);
    assert!(
        sim.status.success(),
        "{}",
        String::from_utf8_lossy(&sim.stderr)
    );
    let text = String::from_utf8_lossy(&sim.stdout);
    assert!(text.contains("net write traffic:"));
    assert!(text.contains("nvram accesses:"));

    let lt = nvfs(&["lifetime", trace7.to_str().unwrap()]);
    assert!(lt.status.success());
    assert!(String::from_utf8_lossy(&lt.stdout).contains("fate breakdown:"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_sim_rejects_bad_model() {
    let dir = tempdir("badmodel");
    let trace = dir.join("t.ops");
    std::fs::write(&trace, "# empty\n").unwrap();
    let out = nvfs(&["client-sim", "--model", "bogus", trace.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown model"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn experiments_subset_runs() {
    let out = nvfs(&["experiments", "--scale", "tiny", "tab1", "disk-sort"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Table 1"));
    assert!(text.contains("Disk bandwidth"));
}

#[test]
fn export_csv_writes_every_artifact() {
    let dir = tempdir("csv");
    let out = nvfs(&[
        "export-csv",
        "--scale",
        "tiny",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    for name in [
        "tab1_costs.csv",
        "fig2_byte_lifetimes.csv",
        "fig3_omniscient.csv",
        "tab3_partial_segments.csv",
        "write_buffer.csv",
        "nvram_speed.csv",
    ] {
        let p = dir.join(name);
        assert!(p.exists(), "missing {name}");
        let body = std::fs::read_to_string(&p).unwrap();
        assert!(body.lines().count() > 1, "{name} has no data rows");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
