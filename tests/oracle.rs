//! Durability-oracle integration tests: the shadow model must catch
//! deliberately broken recoveries (the mutation tests), prove replay
//! idempotent, hold the torn-drain byte-accounting invariant for every
//! drain cap (the seeded property loop), and render the `verify-crash`
//! sweep byte-identically at any `--jobs` count.

use nvfs::core::{recover_up_to, ClusterSim, SimConfig};
use nvfs::experiments as exp;
use nvfs::experiments::env::Env;
use nvfs::faults::{CrashPointKind, FaultPlanConfig, FaultSchedule};
use nvfs::nvram::NvramBoard;
use nvfs::oracle::{
    torn_prefix, DrainExpectation, DurableMap, DurablePromise, Oracle, ServerState, Verdict,
};
use nvfs::rng::{Rng, SeedableRng, StdRng};
use nvfs::types::{ByteRange, ClientId, FileId, RangeSet, SimDuration, SimTime, BLOCK_SIZE};

fn promise_of(ranges: &[(u32, u64, u64)]) -> DurablePromise {
    let mut map = DurableMap::new();
    for &(file, start, end) in ranges {
        map.entry(FileId(file))
            .or_default()
            .insert(ByteRange::new(start, end));
    }
    DurablePromise::capture(
        ClientId(1),
        SimTime::from_secs(9),
        map.iter().map(|(f, s)| (*f, s)),
    )
}

/// A recovery that silently drops a promised file must be convicted as
/// `LostDurable` — the mutation the whole subsystem exists to catch.
#[test]
fn broken_recovery_is_caught_as_lost_durable() {
    let promise = promise_of(&[(1, 0, 8192), (2, 0, 4096)]);
    // "Recovery" returns file 1 but loses file 2 entirely.
    let mut observed = DurableMap::new();
    observed.insert(FileId(1), RangeSet::from_range(ByteRange::new(0, 8192)));
    let mut oracle = Oracle::new();
    let report = oracle.judge(&promise, DrainExpectation::full(), &observed);
    assert!(!report.is_clean());
    assert_eq!(report.verdicts.len(), 1);
    match &report.verdicts[0] {
        Verdict::LostDurable { file, range } => {
            assert_eq!(*file, FileId(2));
            assert_eq!(*range, ByteRange::new(0, 4096));
        }
        other => panic!("expected LostDurable, got {other:?}"),
    }
    assert_eq!(oracle.summary().lost_durable, 1);
}

/// A recovery that produces bytes never promised must be convicted as
/// `Resurrected`.
#[test]
fn fabricated_recovery_is_caught_as_resurrected() {
    let promise = promise_of(&[(1, 0, 4096)]);
    let mut observed = DurableMap::new();
    observed.insert(FileId(1), RangeSet::from_range(ByteRange::new(0, 4096)));
    observed.insert(FileId(7), RangeSet::from_range(ByteRange::new(0, 512)));
    let mut oracle = Oracle::new();
    let report = oracle.judge(&promise, DrainExpectation::full(), &observed);
    assert!(matches!(
        report.verdicts[0],
        Verdict::Resurrected {
            file: FileId(7),
            ..
        }
    ));
}

/// Replaying the same crash incident twice must be convicted as
/// `DoubleReplay`, while two *distinct* crashes of the same client are
/// legitimate.
#[test]
fn double_replay_is_caught_per_incident() {
    let mut observed = DurableMap::new();
    observed.insert(FileId(1), RangeSet::from_range(ByteRange::new(0, 4096)));
    let mut oracle = Oracle::new();
    let first = oracle.judge(
        &promise_of(&[(1, 0, 4096)]),
        DrainExpectation::full(),
        &observed,
    );
    assert!(first.is_clean());
    let second = oracle.judge(
        &promise_of(&[(1, 0, 4096)]),
        DrainExpectation::full(),
        &observed,
    );
    assert!(matches!(
        second.verdicts[0],
        Verdict::DoubleReplay {
            file: FileId(1),
            ..
        }
    ));
    // A different crash time = a different incident: no conviction.
    let mut map = DurableMap::new();
    map.insert(FileId(1), RangeSet::from_range(ByteRange::new(0, 4096)));
    let later = DurablePromise::capture(
        ClientId(1),
        SimTime::from_secs(20),
        map.iter().map(|(f, s)| (*f, s)),
    );
    let third = oracle.judge(&later, DrainExpectation::full(), &observed);
    assert!(third.is_clean(), "{:?}", third.verdicts);
}

/// Applying one recovery's output to the server twice adds no new bytes
/// the second time — replay is idempotent.
#[test]
fn server_replay_is_idempotent() {
    let mut observed = DurableMap::new();
    observed.insert(FileId(3), RangeSet::from_range(ByteRange::new(0, 12288)));
    observed.insert(FileId(4), RangeSet::from_range(ByteRange::new(4096, 8192)));
    let mut server = ServerState::new();
    let first = server.apply(&observed);
    assert_eq!(first, 12288 + 4096);
    let second = server.apply(&observed);
    assert_eq!(second, 0, "replay must not create new durable bytes");
    assert_eq!(server.durable_bytes(), 12288 + 4096);
}

/// Satellite: for *every* drain cap, `bytes + bytes_lost` equals the dirty
/// bytes before the drain, and the recovered prefix is exactly the
/// oracle's independent block-grid prediction. Seeded loop over random
/// board layouts and caps.
#[test]
fn torn_drain_accounting_holds_for_all_caps() {
    let mut rng = StdRng::seed_from_u64(0xD0C5);
    for round in 0..200u32 {
        let mut board = NvramBoard::new(ClientId(0), 1 << 20);
        let files = rng.gen_range(1..5u32);
        for f in 0..files {
            let runs = rng.gen_range(1..4u32);
            for _ in 0..runs {
                let start = rng.gen_range(0..64u64) * 512;
                let len = rng.gen_range(1..16u64) * 512;
                board.store(FileId(f), ByteRange::at(start, len));
            }
        }
        let dirty_before = board.dirty_bytes();
        let shadow: DurableMap = (0..files)
            .filter_map(|f| board.dirty_of(FileId(f)).map(|s| (FileId(f), s.clone())))
            .collect();
        let max_bytes = rng.gen_range(0..=dirty_before + BLOCK_SIZE);

        let outcome = recover_up_to(&mut board, SimTime::ZERO, max_bytes)
            .expect("healthy board must recover");
        assert_eq!(
            outcome.bytes + outcome.bytes_lost,
            dirty_before,
            "round {round}: cap {max_bytes} leaked bytes"
        );
        // The drain must match the oracle's independent reimplementation
        // of the block-grid prefix contract.
        let predicted = torn_prefix(&shadow, max_bytes);
        assert_eq!(outcome.recovered, predicted, "round {round}");
        let predicted_bytes: u64 = predicted.values().map(RangeSet::len_bytes).sum();
        assert_eq!(outcome.bytes, predicted_bytes, "round {round}");
    }
}

/// The drain order is deterministic: recovering the same board layout
/// twice under the same cap gives identical contents.
#[test]
fn torn_drain_is_deterministic() {
    let build = || {
        let mut b = NvramBoard::new(ClientId(2), 1 << 20);
        b.store(FileId(0), ByteRange::new(100, 9000));
        b.store(FileId(1), ByteRange::new(0, 5000));
        b.store(FileId(0), ByteRange::new(20000, 30000));
        b
    };
    let (mut a, mut b) = (build(), build());
    let cap = 6000;
    let oa = recover_up_to(&mut a, SimTime::ZERO, cap).unwrap();
    let ob = recover_up_to(&mut b, SimTime::ZERO, cap).unwrap();
    assert_eq!(oa.recovered, ob.recovered);
    assert_eq!(oa.bytes, ob.bytes);
    assert_eq!(oa.bytes_lost, ob.bytes_lost);
}

/// End-to-end: a verified fault run over a real trace judges every
/// recovery clean, for every crash-point pin.
#[test]
fn verified_trace_run_is_clean_at_every_crash_point() {
    let env = Env::tiny();
    let trace = env.traces.trace(3);
    let plan = FaultPlanConfig::new(trace.clients() as u32, trace.duration())
        .with_client_crashes((trace.clients() as u32).min(4))
        .with_torn_probability(0.5);
    let schedule = FaultSchedule::compile(11, &plan).unwrap();
    let sim = ClusterSim::new(SimConfig::unified(8 << 20, 16384));
    for kind in [
        CrashPointKind::FullDrain,
        CrashPointKind::TornDrainBlocks(1),
        CrashPointKind::DeadBoard,
        CrashPointKind::BatteryEdgeAlive,
        CrashPointKind::PreFlush,
        CrashPointKind::PostFlush,
    ] {
        let pinned = schedule.apply_crash_point(kind, SimDuration::from_secs(5));
        let (report, oracle) = sim.run_with_faults_verified(trace.ops(), &pinned);
        let s = oracle.summary();
        assert_eq!(s.violations(), 0, "{kind}: {:?}", oracle.reports());
        assert_eq!(
            s.bytes_observed, report.reliability.bytes_recovered,
            "{kind}"
        );
    }
}

/// The `verify-crash` sweep renders byte-identically at `--jobs 1` and
/// `--jobs 8` (the one jobs-toggling test in this binary: `set_jobs` is
/// process-global).
#[test]
fn verify_crash_sweep_is_jobs_invariant() {
    let env = Env::tiny();
    nvfs::par::set_jobs(1);
    let seq = exp::verify_crash::run_seeded(&env, 42).unwrap();
    nvfs::par::set_jobs(8);
    let par = exp::verify_crash::run_seeded(&env, 42).unwrap();
    assert_eq!(seq.render(), par.render());
    assert!(seq.is_clean(), "{}", seq.render());
    assert_eq!(seq.verdict_json(), par.verdict_json());
}
