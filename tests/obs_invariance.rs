//! Observability determinism: metric snapshots, event traces, and manifest
//! `run` sections must be byte-identical at any `--jobs` count, and the
//! tiny fault-matrix manifest must match the golden copy checked into
//! `tests/golden/`.
//!
//! Job counts are compared across *processes* (the obs registry is
//! process-global), driving the real binary exactly as CI does.

use std::path::PathBuf;
use std::process::{Command, Output};

fn nvfs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_nvfs"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nvfs-obs-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Runs the tiny fault matrix with obs outputs enabled, returning
/// `(stdout, trace JSONL, manifest text)`.
fn faults_run(dir: &std::path::Path, jobs: &str) -> (String, String, String) {
    let trace = dir.join(format!("trace-j{jobs}.jsonl"));
    let manifest = dir.join(format!("manifest-j{jobs}.json"));
    let out = nvfs(&[
        "--jobs",
        jobs,
        "--trace-out",
        trace.to_str().unwrap(),
        "--manifest-out",
        manifest.to_str().unwrap(),
        "faults",
        "--scale",
        "tiny",
        "--seed",
        "42",
    ]);
    assert!(
        out.status.success(),
        "jobs={jobs}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        std::fs::read_to_string(&trace).expect("trace written"),
        std::fs::read_to_string(&manifest).expect("manifest written"),
    )
}

/// Extracts the deterministic `run` section, rendered canonically.
fn run_section(manifest: &str) -> String {
    let (_, run) = nvfs::obs::manifest::parse_manifest(manifest).expect("manifest parses");
    run.to_string()
}

#[test]
fn jobs_do_not_change_metrics_or_events() {
    let dir = tempdir("jobs");
    let (stdout1, trace1, manifest1) = faults_run(&dir, "1");
    let (stdout8, trace8, manifest8) = faults_run(&dir, "8");

    assert_eq!(stdout1, stdout8, "stdout differs between jobs 1 and 8");
    assert_eq!(trace1, trace8, "event JSONL differs between jobs 1 and 8");
    assert!(!trace1.is_empty() && trace1.lines().count() > 100);
    assert_eq!(
        run_section(&manifest1),
        run_section(&manifest8),
        "manifest run sections differ between jobs 1 and 8"
    );

    // Every trace line is a JSON object with monotonically increasing seq
    // and nondecreasing t_us.
    let (mut seq, mut t) = (0u64, 0u64);
    for line in trace1.lines() {
        let v = nvfs::obs::json::parse(line).expect("trace line parses");
        assert_eq!(v.get("seq").and_then(|s| s.as_u64()), Some(seq));
        let t_us = v.get("t_us").and_then(|s| s.as_u64()).expect("t_us");
        assert!(t_us >= t, "t_us regressed at seq {seq}");
        (seq, t) = (seq + 1, t_us);
    }

    // `nvfs obs diff` agrees, and only flags volatile meta fields.
    let m1 = dir.join("manifest-j1.json");
    let m8 = dir.join("manifest-j8.json");
    let diff = nvfs(&["obs", "diff", m1.to_str().unwrap(), m8.to_str().unwrap()]);
    assert!(diff.status.success(), "obs diff rejected equal runs");
    let text = String::from_utf8_lossy(&diff.stdout);
    assert!(text.contains("run sections MATCH"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The scorecard is the widest fan-out in the pipeline (13 concurrent
/// sub-experiments, each driving the sharded session loop): its stdout
/// and its manifest `run` section must not move between `--jobs 1` and
/// `--jobs 8`.
#[test]
fn scorecard_is_jobs_invariant_end_to_end() {
    let dir = tempdir("scorecard");
    let run = |jobs: &str| {
        let manifest = dir.join(format!("scorecard-j{jobs}.json"));
        let out = nvfs(&[
            "--jobs",
            jobs,
            "--manifest-out",
            manifest.to_str().unwrap(),
            "scorecard",
            "--scale",
            "tiny",
        ]);
        assert!(
            out.status.success(),
            "jobs={jobs}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            std::fs::read_to_string(&manifest).expect("manifest written"),
        )
    };
    let (stdout1, manifest1) = run("1");
    let (stdout8, manifest8) = run("8");
    assert_eq!(stdout1, stdout8, "scorecard stdout differs, jobs 1 vs 8");
    assert!(stdout1.contains("37 of 37 checks passed"), "{stdout1}");
    assert_eq!(
        run_section(&manifest1),
        run_section(&manifest8),
        "scorecard manifest run sections differ, jobs 1 vs 8"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A net-faulted run replays serially inside the engine but fans out
/// across the sweep: `nvfs verify-net` stdout and its manifest `run`
/// section must be byte-identical at `--jobs 1` and `--jobs 8`, and the
/// tiny report must match the golden copy checked into `tests/golden/`.
#[test]
fn verify_net_is_jobs_invariant_and_matches_golden() {
    let dir = tempdir("verify-net");
    let run = |jobs: &str| {
        let manifest = dir.join(format!("net-j{jobs}.json"));
        let out = nvfs(&[
            "--jobs",
            jobs,
            "--manifest-out",
            manifest.to_str().unwrap(),
            "verify-net",
            "--scale",
            "tiny",
        ]);
        assert!(
            out.status.success(),
            "jobs={jobs}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            std::fs::read_to_string(&manifest).expect("manifest written"),
        )
    };
    let (stdout1, manifest1) = run("1");
    let (stdout8, manifest8) = run("8");
    assert_eq!(stdout1, stdout8, "verify-net stdout differs, jobs 1 vs 8");
    assert_eq!(
        run_section(&manifest1),
        run_section(&manifest8),
        "verify-net manifest run sections differ, jobs 1 vs 8"
    );
    assert!(stdout1.contains("\"net_judge\":\"clean\""), "{stdout1}");
    let golden = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/net_tiny.txt"),
    )
    .expect("golden net report present");
    assert_eq!(
        stdout1, golden,
        "verify-net output drifted from tests/golden/net_tiny.txt; \
         regenerate it if the change is intentional"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The corruption sweep forces the serial engine loop (the injector
/// wants flush events) but fans out across 288 runs: `nvfs verify-scrub`
/// stdout and its manifest `run` section must be byte-identical at
/// `--jobs 1` and `--jobs 8`, and the tiny report must match the golden
/// copy checked into `tests/golden/`.
#[test]
fn verify_scrub_is_jobs_invariant_and_matches_golden() {
    let dir = tempdir("verify-scrub");
    let run = |jobs: &str| {
        let manifest = dir.join(format!("scrub-j{jobs}.json"));
        let out = nvfs(&[
            "--jobs",
            jobs,
            "--manifest-out",
            manifest.to_str().unwrap(),
            "verify-scrub",
            "--scale",
            "tiny",
        ]);
        assert!(
            out.status.success(),
            "jobs={jobs}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            std::fs::read_to_string(&manifest).expect("manifest written"),
        )
    };
    let (stdout1, manifest1) = run("1");
    let (stdout8, manifest8) = run("8");
    assert_eq!(stdout1, stdout8, "verify-scrub stdout differs, jobs 1 vs 8");
    assert_eq!(
        run_section(&manifest1),
        run_section(&manifest8),
        "verify-scrub manifest run sections differ, jobs 1 vs 8"
    );
    assert!(stdout1.contains("\"scrub\":\"clean\""), "{stdout1}");
    let golden = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/scrub_tiny.txt"),
    )
    .expect("golden scrub report present");
    assert_eq!(
        stdout1, golden,
        "verify-scrub output drifted from tests/golden/scrub_tiny.txt; \
         regenerate it if the change is intentional"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn manifest_matches_golden() {
    let dir = tempdir("golden");
    let (_, _, manifest) = faults_run(&dir, "2");
    let golden = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/manifest_faults_tiny.json"),
    )
    .expect("golden manifest present");
    assert_eq!(
        run_section(&manifest),
        run_section(&golden),
        "run section drifted from tests/golden/manifest_faults_tiny.json; \
         regenerate it if the change is intentional"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn obs_show_and_diff_detect_drift() {
    let dir = tempdir("cli");
    let (_, _, manifest) = faults_run(&dir, "2");
    let m = dir.join("manifest-j2.json");

    let show = nvfs(&["obs", "show", m.to_str().unwrap()]);
    assert!(show.status.success());
    let text = String::from_utf8_lossy(&show.stdout);
    assert!(
        text.contains("command:") && text.contains("faults"),
        "{text}"
    );
    assert!(text.contains("counters:"), "{text}");

    // A different seed must be flagged as a run-section difference.
    let other = dir.join("manifest-seed7.json");
    let out = nvfs(&[
        "--manifest-out",
        other.to_str().unwrap(),
        "faults",
        "--scale",
        "tiny",
        "--seed",
        "7",
    ]);
    assert!(out.status.success());
    let diff = nvfs(&["obs", "diff", m.to_str().unwrap(), other.to_str().unwrap()]);
    assert!(!diff.status.success(), "obs diff missed a seed change");
    let text = String::from_utf8_lossy(&diff.stdout);
    assert!(text.contains("run sections DIFFER"), "{text}");

    // Corrupt input is a clean error, not a panic.
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "not json").unwrap();
    let show = nvfs(&["obs", "show", bad.to_str().unwrap()]);
    assert!(!show.status.success());

    drop(manifest);
    let _ = std::fs::remove_dir_all(&dir);
}
