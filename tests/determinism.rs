//! Reproducibility: the whole pipeline — workload synthesis, client cache
//! simulation, LFS simulation, experiments — is deterministic for a given
//! seed, and distinct seeds give distinct workloads.

use nvfs::core::{ClusterSim, PolicyKind, SimConfig};
use nvfs::lfs::fs::{run_filesystem, LfsConfig};
use nvfs::trace::synth::lfs_workload::{sprite_server_workloads, ServerWorkloadConfig};
use nvfs::trace::synth::{SpriteTraceSet, TraceSetConfig};

#[test]
fn trace_generation_is_bit_identical() {
    let a = SpriteTraceSet::generate(&TraceSetConfig::tiny());
    let b = SpriteTraceSet::generate(&TraceSetConfig::tiny());
    for (ta, tb) in a.traces().iter().zip(b.traces()) {
        assert_eq!(ta.events(), tb.events());
        assert_eq!(ta.ops(), tb.ops());
    }
}

#[test]
fn different_seeds_differ() {
    let a = SpriteTraceSet::generate(&TraceSetConfig::tiny());
    let mut cfg = TraceSetConfig::tiny();
    cfg.seed += 1;
    let b = SpriteTraceSet::generate(&cfg);
    assert_ne!(a.trace(0).events(), b.trace(0).events());
}

#[test]
fn simulations_are_deterministic_across_runs() {
    let set = SpriteTraceSet::generate(&TraceSetConfig::tiny());
    let ops = set.trace(6).ops();
    for cfg in [
        SimConfig::volatile(2 << 20),
        SimConfig::write_aside(2 << 20, 512 << 10),
        SimConfig::unified(2 << 20, 512 << 10),
        SimConfig::hybrid(2 << 20, 512 << 10),
        SimConfig::unified(2 << 20, 512 << 10).with_policy(PolicyKind::Random { seed: 3 }),
        SimConfig::unified(2 << 20, 512 << 10).with_policy(PolicyKind::Omniscient),
    ] {
        let a = ClusterSim::new(cfg.clone()).run(ops);
        let b = ClusterSim::new(cfg).run(ops);
        assert_eq!(a, b);
    }
}

#[test]
fn detailed_write_logs_are_deterministic() {
    let set = SpriteTraceSet::generate(&TraceSetConfig::tiny());
    let ops = set.trace(0).ops();
    let cfg = SimConfig::volatile(2 << 20);
    let (_, a) = ClusterSim::new(cfg.clone()).run_detailed(ops);
    let (_, b) = ClusterSim::new(cfg).run_detailed(ops);
    assert_eq!(a, b);
}

#[test]
fn lfs_runs_are_deterministic() {
    let ws = sprite_server_workloads(&ServerWorkloadConfig::tiny());
    for cfg in [LfsConfig::direct(), LfsConfig::with_fsync_buffer(512 << 10)] {
        let a = run_filesystem(&ws[0], &cfg);
        let b = run_filesystem(&ws[0], &cfg);
        assert_eq!(a.records, b.records);
        assert_eq!(a.fsync_ops, b.fsync_ops);
    }
}
