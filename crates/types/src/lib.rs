//! Base types shared by every `nvfs` crate.
//!
//! This crate defines the vocabulary of the simulation toolkit that reproduces
//! Baker et al., *Non-Volatile Memory for Fast, Reliable File Systems*
//! (ASPLOS 1992):
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulated time,
//!   plus the Sprite policy constants (30-second delayed write-back,
//!   5-second block cleaner period).
//! * [`ClientId`], [`FileId`], [`ProcessId`], [`BlockId`] — entity identifiers.
//! * [`ByteRange`] and [`RangeSet`] — half-open byte intervals and disjoint
//!   interval sets, the workhorses of byte-level dirty tracking and the
//!   byte-lifetime analysis of §2.3 of the paper.
//! * [`block`] — 4 KB cache/FS block geometry helpers.
//! * [`framing`] — the FNV-1a checksummed record framing shared by the LFS
//!   segment summary blocks and the NVRAM write-ahead log.
//!
//! # Examples
//!
//! ```
//! use nvfs_types::{ByteRange, RangeSet};
//!
//! let mut dirty = RangeSet::new();
//! dirty.insert(ByteRange::new(0, 4096));
//! dirty.insert(ByteRange::new(8192, 12288));
//! assert_eq!(dirty.len_bytes(), 8192);
//! dirty.remove(ByteRange::new(0, 2048));
//! assert_eq!(dirty.len_bytes(), 6144);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod framing;
pub mod id;
pub mod range;
pub mod time;

pub use block::{blocks_of_range, BLOCK_SIZE};
pub use framing::{decode_stream, encode_record, DecodedStream, Fnv64, FramedRecord};
pub use id::{BlockId, BlockIndex, ClientId, FileId, ProcessId};
pub use range::{ByteRange, RangeSet};
pub use time::{SimDuration, SimTime, BLOCK_CLEANER_PERIOD, DELAYED_WRITE_BACK};
