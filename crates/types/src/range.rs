//! Half-open byte ranges and disjoint range sets.
//!
//! The paper's simulator tracks traffic at byte granularity: writes dirty a
//! range of bytes, overwrites kill previously-dirty bytes, deletes kill whole
//! files. [`RangeSet`] provides the interval algebra those passes need.

use std::collections::BTreeMap;
use std::fmt;

/// A half-open interval of file bytes `[start, end)`.
///
/// # Examples
///
/// ```
/// use nvfs_types::ByteRange;
///
/// let r = ByteRange::new(0, 4096);
/// assert_eq!(r.len(), 4096);
/// assert!(r.overlaps(ByteRange::new(4095, 5000)));
/// assert!(!r.overlaps(ByteRange::new(4096, 5000)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ByteRange {
    /// First byte offset in the range.
    pub start: u64,
    /// One past the last byte offset in the range.
    pub end: u64,
}

impl ByteRange {
    /// Creates the half-open range `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub const fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "ByteRange start must not exceed end");
        ByteRange { start, end }
    }

    /// Creates a range from an offset and a length.
    pub const fn at(offset: u64, len: u64) -> Self {
        ByteRange {
            start: offset,
            end: offset + len,
        }
    }

    /// The empty range at offset zero.
    pub const EMPTY: ByteRange = ByteRange { start: 0, end: 0 };

    /// Number of bytes covered.
    pub const fn len(self) -> u64 {
        self.end - self.start
    }

    /// Whether the range covers no bytes.
    pub const fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Whether `self` and `other` share at least one byte.
    pub const fn overlaps(self, other: ByteRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Whether `self` fully contains `other`.
    pub const fn contains_range(self, other: ByteRange) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether `offset` lies inside the range.
    pub const fn contains(self, offset: u64) -> bool {
        self.start <= offset && offset < self.end
    }

    /// The overlapping part of `self` and `other`, if any.
    pub fn intersection(self, other: ByteRange) -> Option<ByteRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(ByteRange { start, end })
    }
}

impl fmt::Display for ByteRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// A set of bytes stored as sorted, disjoint, non-adjacent half-open ranges.
///
/// Adjacent and overlapping insertions coalesce, so the representation is
/// canonical: two `RangeSet`s are `==` iff they cover the same bytes.
///
/// # Examples
///
/// ```
/// use nvfs_types::{ByteRange, RangeSet};
///
/// let mut s = RangeSet::new();
/// s.insert(ByteRange::new(0, 10));
/// s.insert(ByteRange::new(10, 20)); // coalesces with the first
/// assert_eq!(s.iter().count(), 1);
/// assert_eq!(s.len_bytes(), 20);
///
/// let removed = s.remove(ByteRange::new(5, 15));
/// assert_eq!(removed, 10);
/// assert_eq!(s.len_bytes(), 10);
/// assert_eq!(s.iter().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RangeSet {
    /// Maps range start → range end. Invariant: ranges are disjoint, sorted,
    /// non-empty, and separated by at least one byte (adjacent ranges merge).
    ranges: BTreeMap<u64, u64>,
    /// Cached total byte count, kept in sync by every mutation.
    total: u64,
}

impl RangeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        RangeSet::default()
    }

    /// Creates a set covering a single range.
    pub fn from_range(r: ByteRange) -> Self {
        let mut s = RangeSet::new();
        s.insert(r);
        s
    }

    /// Whether the set covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total number of bytes covered.
    pub fn len_bytes(&self) -> u64 {
        self.total
    }

    /// Number of disjoint ranges (useful to bound fragmentation in tests).
    pub fn fragment_count(&self) -> usize {
        self.ranges.len()
    }

    /// Removes all bytes.
    pub fn clear(&mut self) {
        self.ranges.clear();
        self.total = 0;
    }

    /// Inserts `r`, coalescing with neighbours. Returns the number of bytes
    /// that were **newly added** (i.e. not already present) — the quantity the
    /// lifetime analysis needs to distinguish new writes from overwrites.
    pub fn insert(&mut self, r: ByteRange) -> u64 {
        if r.is_empty() {
            return 0;
        }
        // Fast path for the overwhelmingly common shapes in trace replay:
        // sequential writes append at or extend the tail range. Handling
        // them with at most two tree probes avoids the general path's
        // overlap scan and its `to_remove` allocation.
        match self.ranges.last_key_value() {
            None => {
                self.ranges.insert(r.start, r.end);
                self.total += r.len();
                return r.len();
            }
            Some((_, &tail_end)) if r.start > tail_end => {
                // Strictly past the tail with a gap: a fresh trailing range.
                self.ranges.insert(r.start, r.end);
                self.total += r.len();
                return r.len();
            }
            Some((&tail_start, &tail_end)) if r.start >= tail_start => {
                // Overlaps or abuts the tail range: covered or extend-in-place.
                if r.end <= tail_end {
                    return 0;
                }
                *self
                    .ranges
                    .get_mut(&tail_start)
                    .expect("tail key just observed") = r.end;
                let added = r.end - tail_end;
                self.total += added;
                return added;
            }
            Some(_) => {} // starts before the tail range: general path
        }
        let mut new_start = r.start;
        let mut new_end = r.end;
        let mut absorbed: u64 = 0;

        // Find all existing ranges that overlap or touch [start, end].
        // Because stored ranges are disjoint and non-adjacent, exactly one
        // range can start strictly before `r.start` and still touch it; every
        // other candidate starts inside `[r.start, r.end]`.
        let mut to_remove = Vec::new();
        if let Some((&s, &e)) = self.ranges.range(..r.start).next_back() {
            if e >= r.start {
                new_start = s;
                new_end = new_end.max(e);
                absorbed += e - s;
                to_remove.push(s);
            }
        }
        for (&s, &e) in self.ranges.range(r.start..=r.end) {
            new_end = new_end.max(e);
            absorbed += e - s;
            to_remove.push(s);
        }
        for s in to_remove {
            self.ranges.remove(&s);
        }
        self.ranges.insert(new_start, new_end);
        let merged_len = new_end - new_start;
        let added = merged_len - absorbed;
        self.total += added;
        // `added` counts bytes of the merged range not previously covered,
        // but some of those may fall outside `r` (they cannot: merging only
        // extends over previously-covered bytes, so every newly-added byte
        // lies inside `r`).
        added.min(r.len())
    }

    /// Removes `r` from the set. Returns the number of bytes actually removed.
    pub fn remove(&mut self, r: ByteRange) -> u64 {
        if r.is_empty() || self.ranges.is_empty() {
            return 0;
        }
        // Fast path: `r` lies entirely outside the covered span, so nothing
        // can intersect it (common for truncates past EOF and re-deletes).
        let span_start = *self.ranges.first_key_value().expect("non-empty").0;
        let span_end = *self.ranges.last_key_value().expect("non-empty").1;
        if r.end <= span_start || r.start >= span_end {
            return 0;
        }
        let mut removed: u64 = 0;
        let mut to_insert: Vec<(u64, u64)> = Vec::new();
        let mut to_delete: Vec<u64> = Vec::new();

        // The predecessor may straddle r.start.
        let scan_from = match self.ranges.range(..r.start).next_back() {
            Some((&s, &e)) if e > r.start => s,
            _ => r.start,
        };
        for (&s, &e) in self.ranges.range(scan_from..r.end) {
            if e <= r.start {
                continue;
            }
            let cut = ByteRange::new(s, e)
                .intersection(r)
                .expect("scanned range must overlap removal range");
            removed += cut.len();
            to_delete.push(s);
            if s < cut.start {
                to_insert.push((s, cut.start));
            }
            if cut.end < e {
                to_insert.push((cut.end, e));
            }
        }
        for s in to_delete {
            self.ranges.remove(&s);
        }
        for (s, e) in to_insert {
            self.ranges.insert(s, e);
        }
        self.total -= removed;
        removed
    }

    /// Removes every byte at or beyond `offset` (file truncation).
    /// Returns the number of bytes removed.
    pub fn truncate(&mut self, offset: u64) -> u64 {
        self.remove(ByteRange::new(offset, u64::MAX))
    }

    /// Number of bytes of `r` present in the set.
    pub fn overlap_bytes(&self, r: ByteRange) -> u64 {
        self.overlapping(r).map(|o| o.len()).sum()
    }

    /// Whether every byte of `r` is present.
    pub fn contains_range(&self, r: ByteRange) -> bool {
        if r.is_empty() {
            return true;
        }
        match self.ranges.range(..=r.start).next_back() {
            Some((&s, &e)) => s <= r.start && r.end <= e,
            None => false,
        }
    }

    /// Whether the byte at `offset` is present.
    pub fn contains(&self, offset: u64) -> bool {
        match self.ranges.range(..=offset).next_back() {
            Some((_, &e)) => offset < e,
            None => false,
        }
    }

    /// Iterates over the disjoint ranges in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ByteRange> + '_ {
        self.ranges
            .iter()
            .map(|(&s, &e)| ByteRange { start: s, end: e })
    }

    /// Iterates over the parts of the set that fall within `r`.
    pub fn overlapping(&self, r: ByteRange) -> impl Iterator<Item = ByteRange> + '_ {
        let scan_from = match self.ranges.range(..r.start).next_back() {
            Some((&s, &e)) if e > r.start => s,
            _ => r.start,
        };
        self.ranges
            .range(scan_from..r.end)
            .filter_map(move |(&s, &e)| ByteRange::new(s, e).intersection(r))
    }

    /// Adds every byte of `other` into `self`; returns bytes newly added.
    pub fn union_with(&mut self, other: &RangeSet) -> u64 {
        if other.ranges.is_empty() {
            return 0;
        }
        if self.ranges.is_empty() {
            // Fast path: adopt the other set's canonical representation
            // wholesale instead of re-inserting range by range.
            self.ranges = other.ranges.clone();
            self.total = other.total;
            return self.total;
        }
        other.iter().map(|r| self.insert(r)).sum()
    }

    /// Removes every byte of `other` from `self`; returns bytes removed.
    pub fn subtract(&mut self, other: &RangeSet) -> u64 {
        if self.ranges.is_empty() || other.ranges.is_empty() {
            return 0;
        }
        // Fast path: disjoint covered spans cannot share a byte.
        let self_start = *self.ranges.first_key_value().expect("non-empty").0;
        let self_end = *self.ranges.last_key_value().expect("non-empty").1;
        let other_start = *other.ranges.first_key_value().expect("non-empty").0;
        let other_end = *other.ranges.last_key_value().expect("non-empty").1;
        if other_end <= self_start || other_start >= self_end {
            return 0;
        }
        other.iter().map(|r| self.remove(r)).sum()
    }

    /// Verifies internal invariants (disjoint, sorted, non-adjacent, total
    /// matches). Intended for tests and debug assertions.
    pub fn check_invariants(&self) -> bool {
        let mut prev_end: Option<u64> = None;
        let mut total = 0;
        for (&s, &e) in &self.ranges {
            if s >= e {
                return false;
            }
            if let Some(pe) = prev_end {
                // Must be separated by at least one byte (else should merge).
                if s <= pe {
                    return false;
                }
            }
            total += e - s;
            prev_end = Some(e);
        }
        total == self.total
    }
}

impl FromIterator<ByteRange> for RangeSet {
    fn from_iter<I: IntoIterator<Item = ByteRange>>(iter: I) -> Self {
        let mut s = RangeSet::new();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl Extend<ByteRange> for RangeSet {
    fn extend<I: IntoIterator<Item = ByteRange>>(&mut self, iter: I) {
        for r in iter {
            self.insert(r);
        }
    }
}

impl fmt::Display for RangeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_range_basics() {
        let r = ByteRange::new(10, 20);
        assert_eq!(r.len(), 10);
        assert!(!r.is_empty());
        assert!(ByteRange::new(5, 5).is_empty());
        assert!(r.contains(10));
        assert!(!r.contains(20));
        assert!(r.contains_range(ByteRange::new(12, 18)));
        assert_eq!(
            r.intersection(ByteRange::new(15, 30)),
            Some(ByteRange::new(15, 20))
        );
        assert_eq!(r.intersection(ByteRange::new(20, 30)), None);
        assert_eq!(ByteRange::at(8, 4), ByteRange::new(8, 12));
    }

    #[test]
    #[should_panic(expected = "start must not exceed end")]
    fn inverted_range_panics() {
        let _ = ByteRange::new(5, 4);
    }

    #[test]
    fn insert_coalesces_adjacent_and_overlapping() {
        let mut s = RangeSet::new();
        assert_eq!(s.insert(ByteRange::new(0, 10)), 10);
        assert_eq!(s.insert(ByteRange::new(10, 20)), 10);
        assert_eq!(s.fragment_count(), 1);
        assert_eq!(s.insert(ByteRange::new(5, 15)), 0);
        assert_eq!(s.len_bytes(), 20);
        assert!(s.check_invariants());
    }

    #[test]
    fn insert_bridges_gaps() {
        let mut s = RangeSet::new();
        s.insert(ByteRange::new(0, 5));
        s.insert(ByteRange::new(10, 15));
        s.insert(ByteRange::new(20, 25));
        // Bridge all three.
        let added = s.insert(ByteRange::new(3, 22));
        assert_eq!(added, 25 - 15); // bytes 5..10 and 15..20
        assert_eq!(s.fragment_count(), 1);
        assert_eq!(s.len_bytes(), 25);
        assert!(s.check_invariants());
    }

    #[test]
    fn insert_empty_is_noop() {
        let mut s = RangeSet::new();
        assert_eq!(s.insert(ByteRange::EMPTY), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn remove_splits_ranges() {
        let mut s = RangeSet::from_range(ByteRange::new(0, 100));
        assert_eq!(s.remove(ByteRange::new(40, 60)), 20);
        assert_eq!(s.fragment_count(), 2);
        assert_eq!(s.len_bytes(), 80);
        assert!(s.contains(39));
        assert!(!s.contains(40));
        assert!(!s.contains(59));
        assert!(s.contains(60));
        assert!(s.check_invariants());
    }

    #[test]
    fn remove_straddling_start() {
        let mut s = RangeSet::from_range(ByteRange::new(10, 30));
        assert_eq!(s.remove(ByteRange::new(0, 15)), 5);
        assert_eq!(s.iter().next(), Some(ByteRange::new(15, 30)));
    }

    #[test]
    fn remove_multiple_fragments() {
        let mut s: RangeSet = [
            ByteRange::new(0, 10),
            ByteRange::new(20, 30),
            ByteRange::new(40, 50),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.remove(ByteRange::new(5, 45)), 5 + 10 + 5);
        assert_eq!(s.len_bytes(), 10);
        assert_eq!(s.fragment_count(), 2);
        assert!(s.check_invariants());
    }

    #[test]
    fn truncate_drops_tail() {
        let mut s = RangeSet::from_range(ByteRange::new(0, 100));
        assert_eq!(s.truncate(64), 36);
        assert_eq!(s.len_bytes(), 64);
        assert_eq!(s.truncate(64), 0);
    }

    #[test]
    fn overlap_and_contains_queries() {
        let s: RangeSet = [ByteRange::new(0, 10), ByteRange::new(20, 30)]
            .into_iter()
            .collect();
        assert_eq!(s.overlap_bytes(ByteRange::new(5, 25)), 10);
        assert!(s.contains_range(ByteRange::new(2, 8)));
        assert!(!s.contains_range(ByteRange::new(8, 12)));
        assert!(s.contains_range(ByteRange::EMPTY));
        let parts: Vec<_> = s.overlapping(ByteRange::new(5, 25)).collect();
        assert_eq!(parts, vec![ByteRange::new(5, 10), ByteRange::new(20, 25)]);
    }

    #[test]
    fn union_and_subtract() {
        let mut a = RangeSet::from_range(ByteRange::new(0, 10));
        let b: RangeSet = [ByteRange::new(5, 15), ByteRange::new(20, 25)]
            .into_iter()
            .collect();
        assert_eq!(a.union_with(&b), 10);
        assert_eq!(a.len_bytes(), 20);
        assert_eq!(a.subtract(&b), 15);
        assert_eq!(a.len_bytes(), 5);
        assert!(a.check_invariants());
    }

    #[test]
    fn canonical_equality() {
        let a: RangeSet = [ByteRange::new(0, 5), ByteRange::new(5, 10)]
            .into_iter()
            .collect();
        let b = RangeSet::from_range(ByteRange::new(0, 10));
        assert_eq!(a, b);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(RangeSet::new().to_string(), "{}");
        assert_eq!(
            RangeSet::from_range(ByteRange::new(0, 4)).to_string(),
            "{[0, 4)}"
        );
    }
}
