//! Entity identifiers.
//!
//! Newtypes keep the many small integers of a trace-driven simulation from
//! being confused with one another (C-NEWTYPE): a [`ClientId`] can never be
//! passed where a [`FileId`] is expected.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index value.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_newtype!(
    /// A client workstation in the simulated Sprite cluster.
    ///
    /// # Examples
    ///
    /// ```
    /// use nvfs_types::ClientId;
    /// assert_eq!(ClientId(3).to_string(), "client3");
    /// ```
    ClientId,
    "client"
);

id_newtype!(
    /// A file, unique across the whole simulated file system.
    ///
    /// # Examples
    ///
    /// ```
    /// use nvfs_types::FileId;
    /// assert_eq!(FileId(17).to_string(), "file17");
    /// ```
    FileId,
    "file"
);

id_newtype!(
    /// A process; only used to attribute activity for process migration.
    ///
    /// # Examples
    ///
    /// ```
    /// use nvfs_types::ProcessId;
    /// assert_eq!(ProcessId(5).to_string(), "pid5");
    /// ```
    ProcessId,
    "pid"
);

/// Zero-based index of a 4 KB block within a file.
pub type BlockIndex = u64;

/// A cache/FS block: a specific 4 KB-aligned block of a specific file.
///
/// # Examples
///
/// ```
/// use nvfs_types::{BlockId, FileId};
///
/// let b = BlockId::new(FileId(1), 2);
/// assert_eq!(b.byte_range().start, 8192);
/// assert_eq!(b.byte_range().end, 12288);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId {
    /// The file this block belongs to.
    pub file: FileId,
    /// The zero-based 4 KB block index within the file.
    pub index: BlockIndex,
}

impl BlockId {
    /// Creates a block id for block `index` of `file`.
    pub const fn new(file: FileId, index: BlockIndex) -> Self {
        BlockId { file, index }
    }

    /// The byte range this block covers within its file.
    pub const fn byte_range(self) -> crate::ByteRange {
        let start = self.index * crate::BLOCK_SIZE;
        crate::ByteRange {
            start,
            end: start + crate::BLOCK_SIZE,
        }
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.file, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types_with_display() {
        assert_eq!(ClientId(0).to_string(), "client0");
        assert_eq!(FileId(9).to_string(), "file9");
        assert_eq!(ProcessId(2).to_string(), "pid2");
        assert_eq!(ClientId::from(7), ClientId(7));
        assert_eq!(FileId(4).index(), 4);
    }

    #[test]
    fn block_id_range() {
        let b = BlockId::new(FileId(3), 0);
        assert_eq!(b.byte_range().start, 0);
        assert_eq!(b.byte_range().len(), crate::BLOCK_SIZE);
        assert_eq!(b.to_string(), "file3[0]");
    }

    #[test]
    fn block_id_ordering_groups_by_file() {
        let a = BlockId::new(FileId(1), 9);
        let b = BlockId::new(FileId(2), 0);
        assert!(a < b);
    }
}
