//! 4 KB block geometry.
//!
//! Sprite's client caches and LFS both operate on four-kilobyte blocks
//! (§2.1, §3 of the paper). These helpers convert between byte ranges and
//! the block spans that cover them.

use crate::{BlockId, BlockIndex, ByteRange, FileId};

/// Cache and file-system block size in bytes (4 KB, as in Sprite).
pub const BLOCK_SIZE: u64 = 4096;

/// Returns the inclusive-start/exclusive-end block index span covering `r`.
///
/// An empty range covers no blocks.
///
/// # Examples
///
/// ```
/// use nvfs_types::{block::block_span, ByteRange};
///
/// assert_eq!(block_span(ByteRange::new(0, 1)), (0, 1));
/// assert_eq!(block_span(ByteRange::new(4095, 4097)), (0, 2));
/// assert_eq!(block_span(ByteRange::new(8192, 8192)), (2, 2));
/// ```
pub fn block_span(r: ByteRange) -> (BlockIndex, BlockIndex) {
    if r.is_empty() {
        let b = r.start / BLOCK_SIZE;
        return (b, b);
    }
    (r.start / BLOCK_SIZE, (r.end - 1) / BLOCK_SIZE + 1)
}

/// Iterates over the [`BlockId`]s of `file` whose 4 KB blocks intersect `r`.
///
/// # Examples
///
/// ```
/// use nvfs_types::{blocks_of_range, ByteRange, FileId};
///
/// let ids: Vec<_> = blocks_of_range(FileId(1), ByteRange::new(0, 8193)).collect();
/// assert_eq!(ids.len(), 3);
/// assert_eq!(ids[2].index, 2);
/// ```
pub fn blocks_of_range(file: FileId, r: ByteRange) -> impl Iterator<Item = BlockId> {
    let (lo, hi) = block_span(r);
    (lo..hi).map(move |index| BlockId { file, index })
}

/// Rounds `len` up to a whole number of blocks, in bytes.
///
/// # Examples
///
/// ```
/// use nvfs_types::block::round_up_to_block;
///
/// assert_eq!(round_up_to_block(0), 0);
/// assert_eq!(round_up_to_block(1), 4096);
/// assert_eq!(round_up_to_block(4096), 4096);
/// ```
pub const fn round_up_to_block(len: u64) -> u64 {
    len.div_ceil(BLOCK_SIZE) * BLOCK_SIZE
}

/// Number of whole blocks needed to hold `len` bytes.
///
/// # Examples
///
/// ```
/// use nvfs_types::block::blocks_for_len;
///
/// assert_eq!(blocks_for_len(0), 0);
/// assert_eq!(blocks_for_len(4097), 2);
/// ```
pub const fn blocks_for_len(len: u64) -> u64 {
    len.div_ceil(BLOCK_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_of_empty_range_is_empty() {
        let (lo, hi) = block_span(ByteRange::new(5000, 5000));
        assert_eq!(lo, hi);
    }

    #[test]
    fn span_covers_partial_blocks() {
        assert_eq!(block_span(ByteRange::new(0, 4096)), (0, 1));
        assert_eq!(block_span(ByteRange::new(1, 2)), (0, 1));
        assert_eq!(block_span(ByteRange::new(4096, 4097)), (1, 2));
        assert_eq!(block_span(ByteRange::new(0, 12288)), (0, 3));
    }

    #[test]
    fn blocks_of_range_yields_ids_in_order() {
        let ids: Vec<_> = blocks_of_range(FileId(7), ByteRange::new(4000, 9000)).collect();
        assert_eq!(
            ids,
            vec![
                BlockId::new(FileId(7), 0),
                BlockId::new(FileId(7), 1),
                BlockId::new(FileId(7), 2)
            ]
        );
    }

    #[test]
    fn rounding_helpers() {
        assert_eq!(round_up_to_block(4095), 4096);
        assert_eq!(round_up_to_block(8192), 8192);
        assert_eq!(blocks_for_len(BLOCK_SIZE * 3), 3);
        assert_eq!(blocks_for_len(BLOCK_SIZE * 3 + 1), 4);
    }
}
