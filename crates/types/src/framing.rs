//! Checksummed record framing shared by the LFS segment summaries and the
//! NVRAM write-ahead log.
//!
//! Two layers live here:
//!
//! * [`Fnv64`] — the 64-bit FNV-1a hasher. It is bit-identical to the
//!   `nvfs-obs` digest (pinned by the same test vectors) but duplicated
//!   because `nvfs-types` sits below `nvfs-obs` in the crate graph; both
//!   the segment summary-block checksum and the WAL record checksum are
//!   produced by this one implementation.
//! * [`encode_record`] / [`decode_stream`] — the sequence-numbered,
//!   length-prefixed, checksummed record framing the WAL appends to
//!   NVRAM. The framing's contract is the roll-forward invariant: decoding
//!   any torn byte prefix of a framed stream yields exactly the records
//!   that were fully written and whose checksums survive, in order, and
//!   nothing after the first record that was not.
//!
//! # Examples
//!
//! ```
//! use nvfs_types::framing::{decode_stream, encode_record};
//!
//! let mut buf = Vec::new();
//! encode_record(0, b"0:0:4096", &mut buf);
//! encode_record(1, b"2:0:512", &mut buf);
//! let whole = decode_stream(&buf);
//! assert_eq!(whole.records.len(), 2);
//! // A tear inside the second record leaves exactly the first decodable.
//! let torn = decode_stream(&buf[..buf.len() - 1]);
//! assert_eq!(torn.records.len(), 1);
//! assert_eq!(torn.records[0].seq, 0);
//! ```

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Bytes of framing per record: sequence number (8), payload length (4),
/// checksum (8).
pub const RECORD_HEADER_BYTES: u64 = 20;

/// Incremental 64-bit FNV-1a hasher (xor-then-multiply per byte).
#[derive(Debug, Clone, Copy)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Folds `bytes` into the hash.
    pub fn update_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds the UTF-8 bytes of `text` into the hash.
    pub fn update(&mut self, text: &str) {
        self.update_bytes(text.as_bytes());
    }

    /// The current hash value.
    pub fn value(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// One record recovered from a framed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FramedRecord {
    /// The sequence number the record was framed with.
    pub seq: u64,
    /// The payload bytes, verbatim.
    pub payload: Vec<u8>,
}

/// The result of decoding a (possibly torn) framed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedStream {
    /// Every record that decoded intact, in stream order.
    pub records: Vec<FramedRecord>,
    /// Length in bytes of the valid prefix the records came from. Bytes at
    /// and beyond this offset belong to a torn or corrupt record.
    pub valid_bytes: usize,
}

impl DecodedStream {
    /// Whether the whole input decoded (no torn tail).
    pub fn is_complete(&self, input_len: usize) -> bool {
        self.valid_bytes == input_len
    }
}

/// The checksum stored in a record's frame: FNV-1a over the sequence
/// number (little-endian) followed by the payload, so neither can be
/// swapped or truncated undetected.
pub fn record_checksum(seq: u64, payload: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update_bytes(&seq.to_le_bytes());
    h.update_bytes(payload);
    h.value()
}

/// Appends one framed record to `out`:
/// `[seq: u64 LE][len: u32 LE][checksum: u64 LE][payload]`.
///
/// # Panics
///
/// Panics if the payload exceeds `u32::MAX` bytes.
pub fn encode_record(seq: u64, payload: &[u8], out: &mut Vec<u8>) {
    let len = u32::try_from(payload.len()).expect("payload too large to frame");
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&record_checksum(seq, payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Decodes records from the front of `buf` until the first record that is
/// incomplete (torn frame or payload) or fails its checksum. The returned
/// [`DecodedStream::valid_bytes`] is the roll-forward truncation point.
pub fn decode_stream(buf: &[u8]) -> DecodedStream {
    let mut records = Vec::new();
    let mut at = 0usize;
    loop {
        let header = RECORD_HEADER_BYTES as usize;
        if buf.len() - at < header {
            break;
        }
        let seq = u64::from_le_bytes(buf[at..at + 8].try_into().expect("sized"));
        let len = u32::from_le_bytes(buf[at + 8..at + 12].try_into().expect("sized")) as usize;
        let stored = u64::from_le_bytes(buf[at + 12..at + 20].try_into().expect("sized"));
        if buf.len() - at - header < len {
            break;
        }
        let payload = &buf[at + header..at + header + len];
        if record_checksum(seq, payload) != stored {
            break;
        }
        records.push(FramedRecord {
            seq,
            payload: payload.to_vec(),
        });
        at += header + len;
    }
    DecodedStream {
        records,
        valid_bytes: at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_the_published_vectors() {
        // The same vectors pin the nvfs-obs digest; the two implementations
        // must never drift apart.
        let of = |s: &str| {
            let mut h = Fnv64::new();
            h.update(s);
            h.value()
        };
        assert_eq!(of(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(of("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(of("foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn update_is_chunking_invariant() {
        let mut a = Fnv64::new();
        a.update("hello world");
        let mut b = Fnv64::new();
        b.update("hello ");
        b.update_bytes(b"world");
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn round_trip_decodes_every_record() {
        let mut buf = Vec::new();
        let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; i as usize * 3]).collect();
        for (i, p) in payloads.iter().enumerate() {
            encode_record(i as u64, p, &mut buf);
        }
        let out = decode_stream(&buf);
        assert!(out.is_complete(buf.len()));
        assert_eq!(out.records.len(), payloads.len());
        for (i, r) in out.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.payload, payloads[i]);
        }
    }

    #[test]
    fn corrupt_byte_truncates_from_that_record() {
        let mut buf = Vec::new();
        encode_record(0, b"aaaa", &mut buf);
        let second_at = buf.len();
        encode_record(1, b"bbbb", &mut buf);
        encode_record(2, b"cccc", &mut buf);
        // Flip one payload byte of record 1: its checksum dies, and
        // everything from it onward is truncated — valid-prefix semantics,
        // not a sieve.
        buf[second_at + RECORD_HEADER_BYTES as usize] ^= 0xff;
        let out = decode_stream(&buf);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].seq, 0);
        assert_eq!(out.valid_bytes, second_at);
    }

    /// Deterministic xorshift64* for the property test (the crate has no
    /// RNG dependency).
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }

    #[test]
    fn every_torn_prefix_decodes_to_the_surviving_records() {
        // The satellite property: for ANY tear point, decoding returns
        // exactly the records that were fully written before the tear.
        let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
        let mut buf = Vec::new();
        let mut ends = Vec::new(); // byte offset at which record i ends
        for seq in 0..24u64 {
            let len = (rng.next() % 40) as usize;
            let payload: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
            encode_record(seq, &payload, &mut buf);
            ends.push(buf.len());
        }
        for cut in 0..=buf.len() {
            let out = decode_stream(&buf[..cut]);
            let survivors = ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(out.records.len(), survivors, "cut at {cut}");
            assert_eq!(
                out.valid_bytes,
                if survivors == 0 {
                    0
                } else {
                    ends[survivors - 1]
                },
                "cut at {cut}"
            );
            for (i, r) in out.records.iter().enumerate() {
                assert_eq!(r.seq, i as u64, "cut at {cut}");
            }
        }
    }

    #[test]
    fn every_single_bit_flip_truncates_at_the_damaged_record() {
        // The corruption property: flipping ANY single bit of a framed
        // stream never panics the decoder and never yields a damaged
        // record — decode returns exactly the intact records before the
        // one containing the flipped bit. (A flip in a length field may
        // masquerade as a tear; the checksum still refuses to let a
        // damaged payload through.)
        let mut rng = Rng(0x0123_4567_89ab_cdef);
        let mut buf = Vec::new();
        let mut ends = Vec::new();
        let mut originals = Vec::new();
        for seq in 0..12u64 {
            let len = (rng.next() % 32) as usize;
            let payload: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
            encode_record(seq, &payload, &mut buf);
            ends.push(buf.len());
            originals.push(FramedRecord { seq, payload });
        }
        for bit in 0..buf.len() * 8 {
            let byte = bit / 8;
            buf[byte] ^= 1 << (bit % 8);
            let out = decode_stream(&buf);
            // The record containing the flipped byte is the first whose
            // end lies beyond it; everything before decodes verbatim.
            let damaged = ends.iter().filter(|&&e| e <= byte).count();
            assert_eq!(out.records, originals[..damaged], "bit {bit} (byte {byte})");
            assert_eq!(
                out.valid_bytes,
                if damaged == 0 { 0 } else { ends[damaged - 1] },
                "bit {bit} (byte {byte})"
            );
            buf[byte] ^= 1 << (bit % 8);
        }
    }

    #[test]
    fn empty_and_header_only_streams_decode_to_nothing() {
        assert_eq!(decode_stream(&[]).records.len(), 0);
        let mut buf = Vec::new();
        encode_record(7, b"xy", &mut buf);
        let torn = decode_stream(&buf[..RECORD_HEADER_BYTES as usize]);
        assert!(torn.records.is_empty());
        assert_eq!(torn.valid_bytes, 0);
    }
}
