//! Simulated time.
//!
//! All simulators in `nvfs` are trace-driven and use a single global clock
//! with microsecond resolution. [`SimTime`] is an instant on that clock and
//! [`SimDuration`] a span between instants. Both are thin wrappers over `u64`
//! microsecond counts so they are `Copy`, totally ordered, and cheap to hash.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Microseconds in one second.
const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant of simulated time, measured in microseconds since the start of
/// a trace.
///
/// # Examples
///
/// ```
/// use nvfs_types::{SimDuration, SimTime};
///
/// let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
/// assert_eq!(t.as_micros(), 10_500_000);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the trace.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant, useful as an "infinitely far in the
    /// future" sentinel for the omniscient replacement policy.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a microsecond count.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from a millisecond count.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant from a second count.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Creates an instant from a minute count.
    pub const fn from_mins(mins: u64) -> Self {
        SimTime::from_secs(mins * 60)
    }

    /// Creates an instant from an hour count.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime::from_secs(hours * 3600)
    }

    /// Returns the microsecond count since the start of the trace.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the (truncated) whole seconds since the start of the trace.
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Returns the fractional seconds since the start of the trace.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// actually later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration (never wraps past [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    /// Saturating: never goes below [`SimTime::ZERO`].
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

/// A span of simulated time, measured in microseconds.
///
/// # Examples
///
/// ```
/// use nvfs_types::SimDuration;
///
/// let d = SimDuration::from_secs(30);
/// assert_eq!(d.as_secs_f64(), 30.0);
/// assert!(d > SimDuration::from_millis(29_999));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from a microsecond count.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from a millisecond count.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from a second count.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Creates a duration from a minute count.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration::from_secs(mins * 60)
    }

    /// Creates a duration from an hour count.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration::from_secs(hours * 3600)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Returns the microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the (truncated) whole-second count.
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Returns the fractional second count.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

/// Sprite's delayed write-back age: dirty data older than this is flushed
/// from a volatile cache (§2.1 of the paper).
pub const DELAYED_WRITE_BACK: SimDuration = SimDuration::from_secs(30);

/// Period at which Sprite's block cleaner scans for old dirty blocks (§2.1).
pub const BLOCK_CLEANER_PERIOD: SimDuration = SimDuration::from_secs(5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_mins(2).as_secs(), 120);
        assert_eq!(SimTime::from_hours(1).as_secs(), 3600);
        assert_eq!(SimDuration::from_millis(1500).as_secs(), 1);
        assert_eq!(SimDuration::from_hours(2).as_secs(), 7200);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::from_secs(10);
        let t1 = t0 + SimDuration::from_secs(5);
        assert_eq!(t1 - t0, SimDuration::from_secs(5));
        // Subtraction saturates rather than wrapping.
        assert_eq!(t0 - t1, SimDuration::ZERO);
        assert_eq!(t1.since(t0).as_secs(), 5);
        assert_eq!(t0.since(t1), SimDuration::ZERO);
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn duration_from_secs_f64() {
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn duration_from_negative_secs_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn policy_constants_match_paper() {
        assert_eq!(DELAYED_WRITE_BACK.as_secs(), 30);
        assert_eq!(BLOCK_CLEANER_PERIOD.as_secs(), 5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_micros(1) > SimDuration::ZERO);
    }
}
