//! Randomized model tests for the `RangeSet` interval algebra, which
//! underpins all byte-level dirty tracking in the simulator.
//!
//! Formerly proptest-based; now driven by the workspace's own seeded
//! [`nvfs_rng::StdRng`] so the suite builds offline. Cases are
//! deterministic per seed, so failures reproduce exactly.

use nvfs_rng::{Rng, SeedableRng, StdRng};
use nvfs_types::{ByteRange, RangeSet};
use std::collections::BTreeSet;

/// A small byte universe keeps the naive model cheap while still exercising
/// every merge/split path.
const UNIVERSE: u64 = 256;

fn rand_range(rng: &mut StdRng) -> ByteRange {
    let a = rng.gen_range(0..UNIVERSE);
    let b = rng.gen_range(0..UNIVERSE);
    ByteRange::new(a.min(b), a.max(b))
}

#[derive(Debug, Clone)]
enum Action {
    Insert(ByteRange),
    Remove(ByteRange),
    Truncate(u64),
}

fn rand_action(rng: &mut StdRng) -> Action {
    match rng.gen_range(0..3u32) {
        0 => Action::Insert(rand_range(rng)),
        1 => Action::Remove(rand_range(rng)),
        _ => Action::Truncate(rng.gen_range(0..UNIVERSE)),
    }
}

/// Naive model: an explicit set of byte offsets.
fn model_bytes(r: ByteRange) -> BTreeSet<u64> {
    (r.start..r.end).collect()
}

#[test]
fn matches_naive_model() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    for _case in 0..300 {
        let n_actions = rng.gen_range(1..40usize);
        let actions: Vec<Action> = (0..n_actions).map(|_| rand_action(&mut rng)).collect();
        let mut real = RangeSet::new();
        let mut model: BTreeSet<u64> = BTreeSet::new();
        for action in &actions {
            match *action {
                Action::Insert(r) => {
                    let added = real.insert(r);
                    let before = model.len();
                    model.extend(model_bytes(r));
                    assert_eq!(added, (model.len() - before) as u64, "{actions:?}");
                }
                Action::Remove(r) => {
                    let removed = real.remove(r);
                    let before = model.len();
                    model.retain(|b| !r.contains(*b));
                    assert_eq!(removed, (before - model.len()) as u64, "{actions:?}");
                }
                Action::Truncate(off) => {
                    let removed = real.truncate(off);
                    let before = model.len();
                    model.retain(|b| *b < off);
                    assert_eq!(removed, (before - model.len()) as u64, "{actions:?}");
                }
            }
            assert!(real.check_invariants(), "{actions:?}");
            assert_eq!(real.len_bytes(), model.len() as u64, "{actions:?}");
        }
        // Byte membership agrees everywhere.
        for b in 0..UNIVERSE {
            assert_eq!(
                real.contains(b),
                model.contains(&b),
                "byte {b}: {actions:?}"
            );
        }
    }
}

#[test]
fn overlap_bytes_matches_model() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0002);
    for _case in 0..500 {
        let n = rng.gen_range(1..10usize);
        let ranges: Vec<ByteRange> = (0..n).map(|_| rand_range(&mut rng)).collect();
        let probe = rand_range(&mut rng);
        let mut real = RangeSet::new();
        let mut model: BTreeSet<u64> = BTreeSet::new();
        for &r in &ranges {
            real.insert(r);
            model.extend(model_bytes(r));
        }
        let expected = model.iter().filter(|b| probe.contains(**b)).count() as u64;
        assert_eq!(
            real.overlap_bytes(probe),
            expected,
            "{ranges:?} probe {probe:?}"
        );
        // overlapping() pieces are disjoint, sorted, and sum to overlap_bytes.
        let pieces: Vec<ByteRange> = real.overlapping(probe).collect();
        let mut last_end = 0;
        let mut sum = 0;
        for p in &pieces {
            assert!(p.start >= last_end, "{ranges:?}");
            assert!(probe.contains_range(*p), "{ranges:?}");
            last_end = p.end;
            sum += p.len();
        }
        assert_eq!(sum, expected, "{ranges:?} probe {probe:?}");
    }
}

#[test]
fn insert_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0003);
    for _case in 0..500 {
        let n = rng.gen_range(1..10usize);
        let ranges: Vec<ByteRange> = (0..n).map(|_| rand_range(&mut rng)).collect();
        let mut s = RangeSet::new();
        for r in &ranges {
            s.insert(*r);
        }
        let snapshot = s.clone();
        for r in &ranges {
            assert_eq!(s.insert(*r), 0, "{ranges:?}");
        }
        assert_eq!(s, snapshot, "{ranges:?}");
    }
}

/// Reference implementation of `insert` that always takes the general
/// overlap-scan path: rebuild the set from scratch out of the existing
/// pieces plus `r` (piecewise single-byte inserts can never hit the tail
/// fast path mid-set), and count added bytes with the naive model.
fn slow_insert(s: &RangeSet, r: ByteRange) -> (RangeSet, u64) {
    let mut model: BTreeSet<u64> = s.iter().flat_map(model_bytes).collect();
    let before = model.len();
    model.extend(model_bytes(r));
    let added = (model.len() - before) as u64;
    let rebuilt: RangeSet = model
        .iter()
        .map(|&b| ByteRange::new(b, b + 1))
        .rev() // descending single bytes defeat the append fast path
        .collect();
    (rebuilt, added)
}

/// The tail fast paths in `insert` (append past the tail, extend/abut the
/// tail, fully-covered-by-tail) must agree exactly with the general path.
/// The workload is append-biased so the fast paths are actually taken.
#[test]
fn insert_fast_paths_match_slow_path() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0005);
    for _case in 0..300 {
        let mut s = RangeSet::new();
        let mut cursor = 0u64;
        for _ in 0..rng.gen_range(1..30usize) {
            let r = match rng.gen_range(0..5u32) {
                // Sequential append directly at the tail (abutting).
                0 => ByteRange::at(cursor, rng.gen_range(1..16)),
                // Append with a gap.
                1 => ByteRange::at(cursor + rng.gen_range(1..8), rng.gen_range(1..16)),
                // Extend the tail from inside it.
                2 if cursor > 0 => {
                    let start = rng.gen_range(0..cursor);
                    ByteRange::new(start, cursor + rng.gen_range(0..16))
                }
                // Re-dirty bytes already covered (returns 0 on the fast path).
                3 if cursor > 1 => {
                    let start = rng.gen_range(0..cursor - 1);
                    ByteRange::new(start, rng.gen_range(start + 1..=cursor))
                }
                // Occasional arbitrary range to force the general path too.
                _ => rand_range(&mut rng),
            };
            let (expected_set, expected_added) = slow_insert(&s, r);
            let added = s.insert(r);
            assert_eq!(added, expected_added, "insert {r} into {s}");
            assert_eq!(s, expected_set, "insert {r}");
            assert!(s.check_invariants(), "insert {r}");
            cursor = cursor.max(r.end);
        }
    }
}

/// `union_with` into an empty set (the clone fast path) and `subtract` of
/// span-disjoint sets (the early-out) must match the range-by-range path.
#[test]
fn union_subtract_fast_paths_match_slow_path() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0006);
    for _case in 0..300 {
        let n = rng.gen_range(0..8usize);
        let ranges: Vec<ByteRange> = (0..n).map(|_| rand_range(&mut rng)).collect();
        let other: RangeSet = ranges.iter().copied().collect();

        // Union into empty == clone of other, and reports every byte added.
        let mut empty = RangeSet::new();
        let added = empty.union_with(&other);
        assert_eq!(empty, other, "{ranges:?}");
        assert_eq!(added, other.len_bytes(), "{ranges:?}");

        // Subtract with a span guaranteed past the other's coverage: the
        // early-out must leave the set untouched, same as removing
        // range-by-range would.
        let mut high = RangeSet::from_range(ByteRange::at(UNIVERSE + 10, 64));
        let snapshot = high.clone();
        assert_eq!(high.subtract(&other), 0, "{ranges:?}");
        assert_eq!(high, snapshot, "{ranges:?}");

        // And a genuinely overlapping subtract agrees with the naive model.
        let mut real = RangeSet::from_range(ByteRange::new(0, UNIVERSE));
        let removed = real.subtract(&other);
        assert_eq!(removed, other.len_bytes(), "{ranges:?}");
        assert_eq!(real.len_bytes(), UNIVERSE - other.len_bytes(), "{ranges:?}");
    }
}

/// Adjacency edge cases around the tail fast path: abutting ranges must
/// coalesce into one canonical range exactly like the general path.
#[test]
fn tail_append_adjacency_coalesces() {
    let mut s = RangeSet::new();
    assert_eq!(s.insert(ByteRange::new(0, 10)), 10);
    // Abuts the tail exactly: must extend in place, not create a fragment.
    assert_eq!(s.insert(ByteRange::new(10, 20)), 10);
    assert_eq!(s.fragment_count(), 1);
    // Gap of one byte: must stay separate.
    assert_eq!(s.insert(ByteRange::new(21, 30)), 9);
    assert_eq!(s.fragment_count(), 2);
    // Fully covered by the tail: zero added, set unchanged.
    let snap = s.clone();
    assert_eq!(s.insert(ByteRange::new(22, 29)), 0);
    assert_eq!(s, snap);
    // Starts inside the tail, extends past it.
    assert_eq!(s.insert(ByteRange::new(25, 40)), 10);
    assert_eq!(s.fragment_count(), 2);
    assert_eq!(s.len_bytes(), 39);
    assert!(s.check_invariants());
}

#[test]
fn union_subtract_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0004);
    for _case in 0..500 {
        let na = rng.gen_range(0..8usize);
        let nb = rng.gen_range(0..8usize);
        let a: Vec<ByteRange> = (0..na).map(|_| rand_range(&mut rng)).collect();
        let b: Vec<ByteRange> = (0..nb).map(|_| rand_range(&mut rng)).collect();
        let sa: RangeSet = a.iter().copied().collect();
        let sb: RangeSet = b.iter().copied().collect();
        let mut u = sa.clone();
        let added = u.union_with(&sb);
        assert!(u.len_bytes() == sa.len_bytes() + added, "{a:?} {b:?}");
        let mut back = u.clone();
        back.subtract(&sb);
        // After removing b, exactly a-minus-b remains.
        let mut expected = sa.clone();
        expected.subtract(&sb);
        assert_eq!(back, expected, "{a:?} {b:?}");
    }
}
