//! Randomized model tests for the `RangeSet` interval algebra, which
//! underpins all byte-level dirty tracking in the simulator.
//!
//! Formerly proptest-based; now driven by the workspace's own seeded
//! [`nvfs_rng::StdRng`] so the suite builds offline. Cases are
//! deterministic per seed, so failures reproduce exactly.

use nvfs_rng::{Rng, SeedableRng, StdRng};
use nvfs_types::{ByteRange, RangeSet};
use std::collections::BTreeSet;

/// A small byte universe keeps the naive model cheap while still exercising
/// every merge/split path.
const UNIVERSE: u64 = 256;

fn rand_range(rng: &mut StdRng) -> ByteRange {
    let a = rng.gen_range(0..UNIVERSE);
    let b = rng.gen_range(0..UNIVERSE);
    ByteRange::new(a.min(b), a.max(b))
}

#[derive(Debug, Clone)]
enum Action {
    Insert(ByteRange),
    Remove(ByteRange),
    Truncate(u64),
}

fn rand_action(rng: &mut StdRng) -> Action {
    match rng.gen_range(0..3u32) {
        0 => Action::Insert(rand_range(rng)),
        1 => Action::Remove(rand_range(rng)),
        _ => Action::Truncate(rng.gen_range(0..UNIVERSE)),
    }
}

/// Naive model: an explicit set of byte offsets.
fn model_bytes(r: ByteRange) -> BTreeSet<u64> {
    (r.start..r.end).collect()
}

#[test]
fn matches_naive_model() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    for _case in 0..300 {
        let n_actions = rng.gen_range(1..40usize);
        let actions: Vec<Action> = (0..n_actions).map(|_| rand_action(&mut rng)).collect();
        let mut real = RangeSet::new();
        let mut model: BTreeSet<u64> = BTreeSet::new();
        for action in &actions {
            match *action {
                Action::Insert(r) => {
                    let added = real.insert(r);
                    let before = model.len();
                    model.extend(model_bytes(r));
                    assert_eq!(added, (model.len() - before) as u64, "{actions:?}");
                }
                Action::Remove(r) => {
                    let removed = real.remove(r);
                    let before = model.len();
                    model.retain(|b| !r.contains(*b));
                    assert_eq!(removed, (before - model.len()) as u64, "{actions:?}");
                }
                Action::Truncate(off) => {
                    let removed = real.truncate(off);
                    let before = model.len();
                    model.retain(|b| *b < off);
                    assert_eq!(removed, (before - model.len()) as u64, "{actions:?}");
                }
            }
            assert!(real.check_invariants(), "{actions:?}");
            assert_eq!(real.len_bytes(), model.len() as u64, "{actions:?}");
        }
        // Byte membership agrees everywhere.
        for b in 0..UNIVERSE {
            assert_eq!(
                real.contains(b),
                model.contains(&b),
                "byte {b}: {actions:?}"
            );
        }
    }
}

#[test]
fn overlap_bytes_matches_model() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0002);
    for _case in 0..500 {
        let n = rng.gen_range(1..10usize);
        let ranges: Vec<ByteRange> = (0..n).map(|_| rand_range(&mut rng)).collect();
        let probe = rand_range(&mut rng);
        let mut real = RangeSet::new();
        let mut model: BTreeSet<u64> = BTreeSet::new();
        for &r in &ranges {
            real.insert(r);
            model.extend(model_bytes(r));
        }
        let expected = model.iter().filter(|b| probe.contains(**b)).count() as u64;
        assert_eq!(
            real.overlap_bytes(probe),
            expected,
            "{ranges:?} probe {probe:?}"
        );
        // overlapping() pieces are disjoint, sorted, and sum to overlap_bytes.
        let pieces: Vec<ByteRange> = real.overlapping(probe).collect();
        let mut last_end = 0;
        let mut sum = 0;
        for p in &pieces {
            assert!(p.start >= last_end, "{ranges:?}");
            assert!(probe.contains_range(*p), "{ranges:?}");
            last_end = p.end;
            sum += p.len();
        }
        assert_eq!(sum, expected, "{ranges:?} probe {probe:?}");
    }
}

#[test]
fn insert_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0003);
    for _case in 0..500 {
        let n = rng.gen_range(1..10usize);
        let ranges: Vec<ByteRange> = (0..n).map(|_| rand_range(&mut rng)).collect();
        let mut s = RangeSet::new();
        for r in &ranges {
            s.insert(*r);
        }
        let snapshot = s.clone();
        for r in &ranges {
            assert_eq!(s.insert(*r), 0, "{ranges:?}");
        }
        assert_eq!(s, snapshot, "{ranges:?}");
    }
}

#[test]
fn union_subtract_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0004);
    for _case in 0..500 {
        let na = rng.gen_range(0..8usize);
        let nb = rng.gen_range(0..8usize);
        let a: Vec<ByteRange> = (0..na).map(|_| rand_range(&mut rng)).collect();
        let b: Vec<ByteRange> = (0..nb).map(|_| rand_range(&mut rng)).collect();
        let sa: RangeSet = a.iter().copied().collect();
        let sb: RangeSet = b.iter().copied().collect();
        let mut u = sa.clone();
        let added = u.union_with(&sb);
        assert!(u.len_bytes() == sa.len_bytes() + added, "{a:?} {b:?}");
        let mut back = u.clone();
        back.subtract(&sb);
        // After removing b, exactly a-minus-b remains.
        let mut expected = sa.clone();
        expected.subtract(&sb);
        assert_eq!(back, expected, "{a:?} {b:?}");
    }
}
