//! Property tests for the `RangeSet` interval algebra, which underpins all
//! byte-level dirty tracking in the simulator.

use nvfs_types::{ByteRange, RangeSet};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A small byte universe keeps the naive model cheap while still exercising
/// every merge/split path.
const UNIVERSE: u64 = 256;

fn arb_range() -> impl Strategy<Value = ByteRange> {
    (0..UNIVERSE, 0..UNIVERSE).prop_map(|(a, b)| ByteRange::new(a.min(b), a.max(b)))
}

#[derive(Debug, Clone)]
enum Action {
    Insert(ByteRange),
    Remove(ByteRange),
    Truncate(u64),
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        arb_range().prop_map(Action::Insert),
        arb_range().prop_map(Action::Remove),
        (0..UNIVERSE).prop_map(Action::Truncate),
    ]
}

/// Naive model: an explicit set of byte offsets.
fn model_bytes(r: ByteRange) -> BTreeSet<u64> {
    (r.start..r.end).collect()
}

proptest! {
    #[test]
    fn matches_naive_model(actions in proptest::collection::vec(arb_action(), 1..40)) {
        let mut real = RangeSet::new();
        let mut model: BTreeSet<u64> = BTreeSet::new();
        for action in actions {
            match action {
                Action::Insert(r) => {
                    let added = real.insert(r);
                    let before = model.len();
                    model.extend(model_bytes(r));
                    prop_assert_eq!(added, (model.len() - before) as u64);
                }
                Action::Remove(r) => {
                    let removed = real.remove(r);
                    let before = model.len();
                    model.retain(|b| !r.contains(*b));
                    prop_assert_eq!(removed, (before - model.len()) as u64);
                }
                Action::Truncate(off) => {
                    let removed = real.truncate(off);
                    let before = model.len();
                    model.retain(|b| *b < off);
                    prop_assert_eq!(removed, (before - model.len()) as u64);
                }
            }
            prop_assert!(real.check_invariants());
            prop_assert_eq!(real.len_bytes(), model.len() as u64);
        }
        // Byte membership agrees everywhere.
        for b in 0..UNIVERSE {
            prop_assert_eq!(real.contains(b), model.contains(&b));
        }
    }

    #[test]
    fn overlap_bytes_matches_model(
        ranges in proptest::collection::vec(arb_range(), 1..10),
        probe in arb_range(),
    ) {
        let mut real = RangeSet::new();
        let mut model: BTreeSet<u64> = BTreeSet::new();
        for r in ranges {
            real.insert(r);
            model.extend(model_bytes(r));
        }
        let expected = model.iter().filter(|b| probe.contains(**b)).count() as u64;
        prop_assert_eq!(real.overlap_bytes(probe), expected);
        // overlapping() pieces are disjoint, sorted, and sum to overlap_bytes.
        let pieces: Vec<ByteRange> = real.overlapping(probe).collect();
        let mut last_end = 0;
        let mut sum = 0;
        for p in &pieces {
            prop_assert!(p.start >= last_end);
            prop_assert!(probe.contains_range(*p));
            last_end = p.end;
            sum += p.len();
        }
        prop_assert_eq!(sum, expected);
    }

    #[test]
    fn insert_is_idempotent(ranges in proptest::collection::vec(arb_range(), 1..10)) {
        let mut s = RangeSet::new();
        for r in &ranges {
            s.insert(*r);
        }
        let snapshot = s.clone();
        for r in &ranges {
            prop_assert_eq!(s.insert(*r), 0);
        }
        prop_assert_eq!(s, snapshot);
    }

    #[test]
    fn union_subtract_round_trip(
        a in proptest::collection::vec(arb_range(), 0..8),
        b in proptest::collection::vec(arb_range(), 0..8),
    ) {
        let sa: RangeSet = a.into_iter().collect();
        let sb: RangeSet = b.into_iter().collect();
        let mut u = sa.clone();
        let added = u.union_with(&sb);
        prop_assert!(u.len_bytes() == sa.len_bytes() + added);
        let mut back = u.clone();
        back.subtract(&sb);
        // After removing b, exactly a-minus-b remains.
        let mut expected = sa.clone();
        expected.subtract(&sb);
        prop_assert_eq!(back, expected);
    }
}
