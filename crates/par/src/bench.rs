//! Wall-clock timing harness for the experiment pipeline.
//!
//! Deliberately minimal — `std::time::Instant` around a closure, no
//! statistical machinery — because the artifact it feeds
//! (`BENCH_pr1.json`) tracks coarse sequential-vs-parallel wall-clock
//! ratios across PRs, not microbenchmark noise floors.

use std::fmt::Write as _;
use std::time::Instant;

/// One timed run: an experiment name, its wall-clock milliseconds, and
/// the job count it ran with.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Experiment or stage name (e.g. `"gen-traces"`, `"fig3"`).
    pub name: String,
    /// Wall-clock duration in milliseconds.
    pub wall_ms: f64,
    /// Job count the stage ran with.
    pub jobs: usize,
}

/// Times `f`, returning its result and the elapsed milliseconds.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Times `f` and appends a [`BenchRecord`] for it to `records`.
pub fn timed<R>(
    records: &mut Vec<BenchRecord>,
    name: &str,
    jobs: usize,
    f: impl FnOnce() -> R,
) -> R {
    let (out, wall_ms) = time(f);
    records.push(BenchRecord {
        name: name.to_string(),
        wall_ms,
        jobs,
    });
    out
}

/// Serializes records as a JSON array of `{name, wall_ms, jobs}` rows.
///
/// Hand-rolled (the workspace builds offline, without serde); names are
/// plain ASCII experiment identifiers, escaped defensively anyway.
pub fn to_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "  {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"jobs\": {}}}{sep}",
            escape(&r.name),
            r.wall_ms,
            r.jobs
        );
    }
    out.push_str("]\n");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_result_and_positive_duration() {
        let (v, ms) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }

    #[test]
    fn timed_appends_records_in_order() {
        let mut records = Vec::new();
        let a = timed(&mut records, "first", 1, || 1);
        let b = timed(&mut records, "second", 4, || 2);
        assert_eq!((a, b), (1, 2));
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "first");
        assert_eq!(records[1].jobs, 4);
    }

    #[test]
    fn json_shape_is_stable() {
        let records = vec![
            BenchRecord {
                name: "gen-traces".into(),
                wall_ms: 12.5,
                jobs: 1,
            },
            BenchRecord {
                name: "fig3".into(),
                wall_ms: 0.25,
                jobs: 4,
            },
        ];
        let json = to_json(&records);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains("{\"name\": \"gen-traces\", \"wall_ms\": 12.500, \"jobs\": 1},"));
        assert!(json.contains("{\"name\": \"fig3\", \"wall_ms\": 0.250, \"jobs\": 4}\n"));
    }

    #[test]
    fn json_escapes_control_and_quote_characters() {
        let records = vec![BenchRecord {
            name: "a\"b\\c\nd".into(),
            wall_ms: 1.0,
            jobs: 1,
        }];
        let json = to_json(&records);
        assert!(json.contains("a\\\"b\\\\c\\u000ad"));
    }

    #[test]
    fn empty_record_set_is_valid_json() {
        assert_eq!(to_json(&[]), "[\n]\n");
    }
}
