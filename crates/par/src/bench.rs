//! Wall-clock timing harness for the experiment pipeline.
//!
//! Thin shim over [`nvfs_obs::timing`] spans: each stage reports both
//! inclusive wall time and **exclusive** wall time (children subtracted),
//! so a stage timed inside another stage no longer bills its milliseconds
//! twice in the `BENCH_*.json` trajectory. Spans also land in the run
//! manifest's `meta` section, keeping the two reports consistent.

use std::fmt::Write as _;

/// One timed run: an experiment name, its wall-clock milliseconds
/// (inclusive and exclusive of nested stages), the job count it ran with,
/// and the run provenance (workload scale, git revision, iteration).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Experiment or stage name (e.g. `"gen-traces"`, `"fig3"`).
    pub name: String,
    /// Inclusive wall-clock duration in milliseconds.
    pub wall_ms: f64,
    /// Exclusive wall-clock milliseconds: inclusive minus same-thread
    /// nested stages.
    pub excl_ms: f64,
    /// Job count the stage ran with.
    pub jobs: usize,
    /// Workload scale name the stage ran at (e.g. `"tiny"`); empty until
    /// [`annotate`]d.
    pub scale: String,
    /// Git revision of the working tree, or `"unknown"`; empty until
    /// [`annotate`]d.
    pub rev: String,
    /// 1-based repetition this record belongs to (`--iters`).
    pub iter: usize,
}

/// Times `f` as an observability span and appends a [`BenchRecord`] for
/// it to `records`. Provenance fields start blank (iteration 1); callers
/// that know the scale/revision/iteration stamp them with [`annotate`].
pub fn timed<R>(
    records: &mut Vec<BenchRecord>,
    name: &str,
    jobs: usize,
    f: impl FnOnce() -> R,
) -> R {
    let (out, span) = nvfs_obs::timing::timed(name, f);
    records.push(BenchRecord {
        name: span.name,
        wall_ms: span.wall_ms,
        excl_ms: span.excl_ms,
        jobs,
        scale: String::new(),
        rev: String::new(),
        iter: 1,
    });
    out
}

/// Stamps run provenance onto `records`: the workload scale, the git
/// revision, and which repetition the records belong to.
pub fn annotate(records: &mut [BenchRecord], scale: &str, rev: &str, iter: usize) {
    for r in records {
        r.scale = scale.to_string();
        r.rev = rev.to_string();
        r.iter = iter;
    }
}

/// Serializes records as a JSON array of
/// `{name, wall_ms, excl_ms, jobs, scale, rev, iter}` rows.
///
/// Hand-rolled (the workspace builds offline, without serde); names are
/// plain ASCII experiment identifiers, escaped defensively anyway.
pub fn to_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "  {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"excl_ms\": {:.3}, \"jobs\": {}, \
             \"scale\": \"{}\", \"rev\": \"{}\", \"iter\": {}}}{sep}",
            nvfs_obs::json::escape(&r.name),
            r.wall_ms,
            r.excl_ms,
            r.jobs,
            nvfs_obs::json::escape(&r.scale),
            nvfs_obs::json::escape(&r.rev),
            r.iter
        );
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_appends_records_in_order() {
        let mut records = Vec::new();
        let a = timed(&mut records, "first", 1, || 1);
        let b = timed(&mut records, "second", 4, || 2);
        assert_eq!((a, b), (1, 2));
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "first");
        assert_eq!(records[1].jobs, 4);
    }

    #[test]
    fn nested_stages_report_exclusive_time() {
        let mut records = Vec::new();
        timed(&mut records, "outer", 1, || {
            let mut inner_records = Vec::new();
            timed(&mut inner_records, "inner", 1, || {
                std::thread::sleep(std::time::Duration::from_millis(20));
            });
        });
        let outer = &records[0];
        assert!(outer.wall_ms >= 18.0, "wall {}", outer.wall_ms);
        // Exclusive time excludes the nested stage's sleep: summing
        // excl_ms across stages counts each millisecond once.
        assert!(
            outer.excl_ms < outer.wall_ms - 15.0,
            "excl {} vs wall {}",
            outer.excl_ms,
            outer.wall_ms
        );
    }

    #[test]
    fn annotate_stamps_provenance_on_every_record() {
        let mut records = Vec::new();
        timed(&mut records, "first", 1, || ());
        timed(&mut records, "second", 2, || ());
        annotate(&mut records, "tiny", "abc123", 3);
        for r in &records {
            assert_eq!(r.scale, "tiny");
            assert_eq!(r.rev, "abc123");
            assert_eq!(r.iter, 3);
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let records = vec![
            BenchRecord {
                name: "gen-traces".into(),
                wall_ms: 12.5,
                excl_ms: 12.5,
                jobs: 1,
                scale: "tiny".into(),
                rev: "abc123".into(),
                iter: 1,
            },
            BenchRecord {
                name: "fig3".into(),
                wall_ms: 0.25,
                excl_ms: 0.25,
                jobs: 4,
                scale: "mega".into(),
                rev: "abc123".into(),
                iter: 2,
            },
        ];
        let json = to_json(&records);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains(
            "{\"name\": \"gen-traces\", \"wall_ms\": 12.500, \"excl_ms\": 12.500, \"jobs\": 1, \
             \"scale\": \"tiny\", \"rev\": \"abc123\", \"iter\": 1},"
        ));
        assert!(json.contains(
            "{\"name\": \"fig3\", \"wall_ms\": 0.250, \"excl_ms\": 0.250, \"jobs\": 4, \
             \"scale\": \"mega\", \"rev\": \"abc123\", \"iter\": 2}\n"
        ));
    }

    #[test]
    fn json_escapes_control_and_quote_characters() {
        let records = vec![BenchRecord {
            name: "a\"b\\c\nd".into(),
            wall_ms: 1.0,
            excl_ms: 1.0,
            jobs: 1,
            scale: String::new(),
            rev: String::new(),
            iter: 1,
        }];
        let json = to_json(&records);
        assert!(json.contains("a\\\"b\\\\c\\u000ad"));
    }

    #[test]
    fn empty_record_set_is_valid_json() {
        assert_eq!(to_json(&[]), "[\n]\n");
    }
}
