//! Deterministic parallel execution for the experiment pipeline.
//!
//! Every artifact in this reproduction is assembled from independent
//! trace-driven simulations — eight synthetic Sprite traces, per-trace
//! cache analyses, cache-size and policy sweeps. [`par_map`] fans those
//! tasks out over scoped threads (`std::thread::scope`, no external
//! dependencies) while keeping a hard invariant: **the output is
//! byte-identical to the sequential run at any job count.**
//!
//! Three rules uphold the invariant, and every caller in the workspace
//! follows them:
//!
//! 1. results are joined in submission order ([`par_map`] returns
//!    `Vec<R>` indexed exactly like its input);
//! 2. each task seeds its own RNG from its input, never from shared or
//!    ambient state;
//! 3. tasks share no mutable state (enforced by the `Sync` bound on the
//!    closure — interior mutability would need locks a caller has no
//!    reason to add).
//!
//! The effective job count is resolved once per process by [`jobs`]:
//! an explicit [`set_jobs`] (the CLI's `--jobs N`) wins, then the
//! `NVFS_JOBS` environment variable, then
//! [`std::thread::available_parallelism`]. `jobs = 1` short-circuits to a
//! plain sequential loop, so single-core runs pay no threading overhead.
//!
//! Every task runs inside an `nvfs-obs` *task frame* tagged with the
//! item's submission index, so metrics and trace events recorded by task
//! bodies merge in submission order — the observability layer inherits
//! the same any-job-count invariant as the results themselves. Task wall
//! time accumulates into the manifest's volatile `meta` section via
//! [`nvfs_obs::timing::add_task_wall`].
//!
//! The [`bench`] module is the matching timing harness: nesting-safe
//! [`nvfs_obs::timing`] spans serialized as JSON rows
//! (`{name, wall_ms, excl_ms, jobs}`) for the repository's
//! `BENCH_*.json` trajectory.
//!
//! # Examples
//!
//! ```
//! let squares = nvfs_par::par_map((0..100u64).collect(), 4, |x| x * x);
//! assert_eq!(squares[7], 49); // input order preserved
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod bench;

/// Applies `f` to every item on up to `jobs` scoped worker threads,
/// returning the results **in input order**.
///
/// Work is claimed item-by-item from a shared atomic cursor, so uneven
/// task sizes (trace 3 and 4 are several times larger than the typical
/// traces) load-balance automatically. With `jobs <= 1` or a single item
/// the call degenerates to a sequential loop on the calling thread.
///
/// # Panics
///
/// Propagates the first panic raised inside `f` (the scope joins every
/// worker before unwinding).
pub fn par_map<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    // Capture the submitting context's task path before fan-out: worker
    // threads have empty thread-local paths, and nested par_map tasks must
    // record under `outer_index/inner_index` for deterministic merging.
    let base = nvfs_obs::task_path();
    let permits = if jobs <= 1 || n <= 1 {
        WorkerPermits(0)
    } else {
        acquire_extra_workers(jobs.min(n) - 1)
    };
    if permits.0 == 0 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| run_task(&base, i as u32, || f(item)))
            .collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let work = || loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let item = slots[i].lock().expect("input slot poisoned").take();
        let item = item.expect("each index is claimed exactly once");
        let out = run_task(&base, i as u32, || f(item));
        *results[i].lock().expect("result slot poisoned") = Some(out);
    };
    std::thread::scope(|scope| {
        for _ in 0..permits.0 {
            scope.spawn(work);
        }
        // The calling thread is a worker too: `permits.0` extra threads
        // plus this one, never more than `jobs.min(n)` in total.
        work();
    });
    drop(permits);
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker stored every claimed slot")
        })
        .collect()
}

/// Extra worker threads currently alive across *all* in-flight `par_map`
/// calls in the process. The calling thread of each `par_map` is free, so
/// with `jobs = J` at most `J - 1` extras may exist at once.
static EXTRA_WORKERS_IN_USE: AtomicUsize = AtomicUsize::new(0);

/// Leased extra-worker slots; returned to the pool on drop (including
/// unwinds, so a panicking task cannot leak capacity).
struct WorkerPermits(usize);

impl Drop for WorkerPermits {
    fn drop(&mut self) {
        if self.0 > 0 {
            EXTRA_WORKERS_IN_USE.fetch_sub(self.0, Ordering::Relaxed);
        }
    }
}

/// Tries to lease up to `want` extra worker threads against the global
/// `jobs() - 1` cap. Grants whatever is available (possibly zero): a
/// nested `par_map` whose outer fan-out already holds every slot simply
/// runs sequentially on its calling thread, so nesting never multiplies
/// threads — the process-wide worker count stays bounded by `jobs()`.
///
/// Results are unaffected either way: `par_map` output is byte-identical
/// at any worker count, so an under-granted lease only changes timing.
fn acquire_extra_workers(want: usize) -> WorkerPermits {
    let cap = jobs().saturating_sub(1);
    if want == 0 || cap == 0 {
        return WorkerPermits(0);
    }
    let mut granted = 0;
    let _ = EXTRA_WORKERS_IN_USE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |in_use| {
        granted = want.min(cap.saturating_sub(in_use));
        (granted > 0).then_some(in_use + granted)
    });
    WorkerPermits(granted)
}

/// Runs one `par_map` item inside its observability task frame (shared by
/// the sequential and parallel paths, which is what keeps shard layout
/// independent of the job count) and accumulates its wall time into the
/// manifest's volatile per-task totals.
fn run_task<R>(base: &[u32], index: u32, f: impl FnOnce() -> R) -> R {
    let start = std::time::Instant::now();
    let out = nvfs_obs::task_frame(base, index, || {
        nvfs_obs::counter_add("par.tasks", 1);
        f()
    });
    nvfs_obs::timing::add_task_wall(start.elapsed());
    out
}

/// Job count explicitly requested for this process (0 = unset).
static CONFIGURED_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide job count (the CLI's `--jobs N`).
///
/// Values are clamped to at least 1. Call before the first [`jobs`] read;
/// later calls still take effect for subsequent reads.
pub fn set_jobs(n: usize) {
    CONFIGURED_JOBS.store(n.max(1), Ordering::Relaxed);
}

/// Resolves the effective job count: [`set_jobs`] > `NVFS_JOBS` >
/// [`std::thread::available_parallelism`].
///
/// Unparsable or zero `NVFS_JOBS` values are ignored rather than
/// honored, so a broken environment degrades to hardware parallelism.
pub fn jobs() -> usize {
    let configured = CONFIGURED_JOBS.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    if let Some(n) = env_jobs() {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn env_jobs() -> Option<usize> {
    let raw = std::env::var("NVFS_JOBS").ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), 4, |x| x + 1);
        assert!(out.is_empty());
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(items, 8, |i| i * 2);
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_at_every_job_count() {
        let expected: Vec<u64> = (0..64u64).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
        for jobs in [1, 2, 3, 4, 7, 64, 100] {
            let out = par_map((0..64u64).collect(), jobs, |i| i.wrapping_mul(0x9E3779B9));
            assert_eq!(out, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn propagates_worker_panics() {
        let result = std::panic::catch_unwind(|| {
            par_map((0..16u32).collect(), 4, |i| {
                if i == 9 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn single_job_runs_on_calling_thread() {
        let caller = std::thread::current().id();
        let out = par_map(vec![(), ()], 1, |()| std::thread::current().id());
        assert!(out.iter().all(|&id| id == caller));
    }

    #[test]
    fn non_clone_items_and_results_work() {
        // Ownership is moved through the slots; no Clone bound anywhere.
        let items: Vec<String> = (0..10).map(|i| i.to_string()).collect();
        let out = par_map(items, 4, |s| s + "!");
        assert_eq!(out[3], "3!");
    }

    #[test]
    fn env_jobs_parses_defensively() {
        // Unit-tests the parser only; the env var itself is process-global
        // and not mutated here.
        assert_eq!(
            "4".trim().parse::<usize>().ok().filter(|n| *n >= 1),
            Some(4)
        );
        assert_eq!("0".trim().parse::<usize>().ok().filter(|n| *n >= 1), None);
        assert_eq!("x".trim().parse::<usize>().ok().filter(|n| *n >= 1), None);
    }

    #[test]
    fn jobs_is_at_least_one() {
        assert!(jobs() >= 1);
    }

    #[test]
    fn nested_par_map_stays_within_worker_cap() {
        // With the permit system, an outer fan-out holding every extra
        // worker forces inner par_map calls onto their calling threads:
        // concurrent task bodies never exceed the process-wide job count.
        set_jobs(3);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let body = |x: u64| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(2));
            live.fetch_sub(1, Ordering::SeqCst);
            x
        };
        let out = par_map((0..4u64).collect(), 4, |outer| {
            par_map((0..4u64).collect(), 4, |inner| body(outer * 10 + inner))
        });
        assert_eq!(out[3], vec![30, 31, 32, 33]);
        assert!(
            peak.load(Ordering::SeqCst) <= 3,
            "peak {} exceeded the jobs=3 cap",
            peak.load(Ordering::SeqCst)
        );
    }
}
