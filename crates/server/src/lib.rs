//! File-server models: synchronous-write protocols, Prestoserve-style
//! server NVRAM, and the end-to-end client→LFS composition.
//!
//! The paper's §3 contrasts NFS (synchronous writes, where server NVRAM
//! buys "up to 50%" gains) with write-optimized file systems like Sprite
//! LFS (asynchronous, where NVRAM still removes the fsync-forced partial
//! segments). This crate provides:
//!
//! * [`presto`] — NFS-synchronous vs Prestoserve-buffered write servicing
//!   over the parametric disk model;
//! * [`e2e`] — a composed pipeline that feeds the client-cache simulator's
//!   actual server-bound write stream into the LFS simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod e2e;
pub mod presto;

pub use e2e::{
    client_server_pipeline, client_server_pipeline_wal, server_workload_from_writes,
    PipelineReport, WalPipelineReport,
};
pub use presto::{
    nfs_synchronous, prestoserve, sprite_delayed, PrestoConfig, WriteOutcome, WriteRequest,
};
