//! End-to-end composition: client caches in front of an LFS server.
//!
//! §3 observes that "fsync requests from clients often force LFS to write
//! to disk before it has accumulated much data". This module closes the
//! loop: it runs the client-cache simulation, converts the resulting
//! client→server write stream into server-side LFS operations, and runs the
//! LFS simulator over it — so the effect of *client* NVRAM on the *server's*
//! segment behaviour can be measured directly.

use std::collections::BTreeMap;

use nvfs_core::client::{FlushCause, ServerWrite};
use nvfs_core::{ClusterSim, NetReport, SimConfig, TrafficStats};
use nvfs_faults::net::NetFaultPlan;
use nvfs_faults::ReliabilityStats;
use nvfs_lfs::fs::{run_filesystem, FsReport, LfsConfig};
use nvfs_lfs::wal_fs::{run_filesystem_wal, WalConfig, WalFsReport};
use nvfs_trace::op::OpStream;
use nvfs_trace::synth::lfs_workload::{FsWorkload, LfsOp, LfsOpKind};
use nvfs_types::{ByteRange, FileId, SimDuration};

/// Combined result of a client + server pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Client-side traffic statistics.
    pub client: TrafficStats,
    /// Server-side LFS report over the client-generated write stream.
    pub server: FsReport,
}

/// Combined result of a net-faulted client + server pipeline run
/// ([`client_server_pipeline_net`]).
#[derive(Debug, Clone)]
pub struct NetPipelineReport {
    /// Client-side traffic statistics (shed bytes excluded — they never
    /// reached the server).
    pub client: TrafficStats,
    /// Server-side LFS report over the writes that survived the wire.
    pub server: FsReport,
    /// Wire-layer counters, judge summary and verdicts.
    pub net: NetReport,
    /// Reliability accounting; partition sheds land in
    /// [`ReliabilityStats::bytes_lost_partition`].
    pub reliability: ReliabilityStats,
}

/// Combined result of a client + WAL-mode server pipeline run
/// ([`client_server_pipeline_wal`]).
#[derive(Debug, Clone)]
pub struct WalPipelineReport {
    /// Client-side traffic statistics.
    pub client: TrafficStats,
    /// WAL-mode server report over the client-generated write stream.
    pub server: WalFsReport,
}

/// Combined result of a net-faulted client + WAL-mode server pipeline run
/// ([`client_server_pipeline_wal_net`]).
#[derive(Debug, Clone)]
pub struct WalNetPipelineReport {
    /// Client-side traffic statistics (shed bytes excluded).
    pub client: TrafficStats,
    /// WAL-mode server report over the writes that survived the wire.
    pub server: WalFsReport,
    /// Wire-layer counters, judge summary and verdicts.
    pub net: NetReport,
    /// Reliability accounting for the degraded wire.
    pub reliability: ReliabilityStats,
}

/// Converts the client→server write log into a server-side LFS workload.
///
/// Each flushed byte run becomes a sequential write at a per-file cursor
/// (the server sees sizes and arrival times; precise offsets do not affect
/// segment accounting). Fsync-caused flushes are followed by an explicit
/// fsync, which is what forces partial segments at the server.
pub fn server_workload_from_writes(writes: &[ServerWrite]) -> FsWorkload {
    let mut cursors: BTreeMap<FileId, u64> = BTreeMap::new();
    let mut ops = Vec::with_capacity(writes.len());
    for w in writes {
        if w.bytes == 0 {
            continue;
        }
        let cursor = cursors.entry(w.file).or_insert(0);
        ops.push(LfsOp {
            time: w.time,
            kind: LfsOpKind::Write {
                file: w.file,
                range: ByteRange::at(*cursor, w.bytes),
            },
        });
        *cursor += w.bytes;
        if w.cause == FlushCause::Fsync {
            ops.push(LfsOp {
                time: w.time + SimDuration::from_millis(1),
                kind: LfsOpKind::Fsync { file: w.file },
            });
        }
    }
    FsWorkload {
        name: "/clients",
        ops,
    }
}

/// Runs the full pipeline: client caches over `ops`, then the LFS server
/// over the writes the clients actually sent.
///
/// # Examples
///
/// ```
/// use nvfs_core::SimConfig;
/// use nvfs_lfs::fs::LfsConfig;
/// use nvfs_server::e2e::client_server_pipeline;
/// use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
///
/// let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
/// let report = client_server_pipeline(
///     traces.trace(0).ops(),
///     &SimConfig::volatile(1 << 20),
///     &LfsConfig::direct(),
/// );
/// assert!(report.server.disk_write_accesses() > 0);
/// ```
pub fn client_server_pipeline(
    ops: &OpStream,
    client_cfg: &SimConfig,
    lfs_cfg: &LfsConfig,
) -> PipelineReport {
    let (client, writes) = ClusterSim::new(client_cfg.clone()).run_detailed(ops);
    let workload = server_workload_from_writes(&writes);
    let server = run_filesystem(&workload, lfs_cfg);
    PipelineReport { client, server }
}

/// Runs the pipeline with the server in write-ahead-log mode: the server's
/// consistency commit path changes so a client fsync RPC is acknowledged
/// the moment its record is durably appended to the NVRAM log — the
/// segment writes the paper's commit path would have waited for happen
/// lazily in the background drain instead.
pub fn client_server_pipeline_wal(
    ops: &OpStream,
    client_cfg: &SimConfig,
    wal_cfg: &WalConfig,
) -> WalPipelineReport {
    let (client, writes) = ClusterSim::new(client_cfg.clone()).run_detailed(ops);
    let workload = server_workload_from_writes(&writes);
    let server = run_filesystem_wal(&workload, wal_cfg);
    WalPipelineReport { client, server }
}

/// Like [`client_server_pipeline`], but with the client↔server wire driven
/// through a compiled [`NetFaultPlan`]: every client interaction becomes an
/// RPC subject to drops, duplicates, delays and timed partitions, and the
/// LFS only sees the writes that actually survived the network. Flushes
/// shed at a severed link never enter the server workload — they are
/// accounted in [`ReliabilityStats::bytes_lost_partition`] instead — so
/// the server-side segment behaviour of a degraded cluster can be measured
/// directly.
pub fn client_server_pipeline_net(
    ops: &OpStream,
    client_cfg: &SimConfig,
    lfs_cfg: &LfsConfig,
    net: &NetFaultPlan,
) -> NetPipelineReport {
    let report = ClusterSim::new(client_cfg.clone()).run_with_net_faults(ops, net);
    let workload = server_workload_from_writes(&report.writes);
    let server = run_filesystem(&workload, lfs_cfg);
    NetPipelineReport {
        client: report.stats,
        server,
        net: report.net,
        reliability: report.reliability,
    }
}

/// [`client_server_pipeline_wal`] with the wire driven through a compiled
/// [`NetFaultPlan`]: drops, duplicates, delays and partitions shape which
/// writes the WAL-mode server ever sees, so degraded-cluster behaviour of
/// the logging commit path can be measured under the same wire contract as
/// the paging one.
pub fn client_server_pipeline_wal_net(
    ops: &OpStream,
    client_cfg: &SimConfig,
    wal_cfg: &WalConfig,
    net: &NetFaultPlan,
) -> WalNetPipelineReport {
    let report = ClusterSim::new(client_cfg.clone()).run_with_net_faults(ops, net);
    let workload = server_workload_from_writes(&report.writes);
    let server = run_filesystem_wal(&workload, wal_cfg);
    WalNetPipelineReport {
        client: report.stats,
        server,
        net: report.net,
        reliability: report.reliability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfs_lfs::layout::SegmentCause;
    use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
    use nvfs_types::SimTime;

    #[test]
    fn write_log_converts_to_workload() {
        use nvfs_types::ClientId;
        let writes = vec![
            ServerWrite {
                time: SimTime::from_secs(1),
                client: ClientId(0),
                file: FileId(3),
                bytes: 8192,
                cause: FlushCause::Fsync,
            },
            ServerWrite {
                time: SimTime::from_secs(2),
                client: ClientId(0),
                file: FileId(3),
                bytes: 4096,
                cause: FlushCause::WriteBack,
            },
        ];
        let w = server_workload_from_writes(&writes);
        assert_eq!(w.ops.len(), 3); // write, fsync, write
        assert_eq!(w.fsync_count(), 1);
        assert_eq!(w.write_bytes(), 12288);
        // Cursors advance so writes do not overlap.
        match (&w.ops[0].kind, &w.ops[2].kind) {
            (LfsOpKind::Write { range: a, .. }, LfsOpKind::Write { range: b, .. }) => {
                assert_eq!(a.end, b.start);
            }
            other => panic!("unexpected ops {other:?}"),
        }
    }

    #[test]
    fn client_nvram_removes_server_fsync_partials() {
        let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        let ops = traces.trace(0).ops();
        let volatile =
            client_server_pipeline(ops, &SimConfig::volatile(2 << 20), &LfsConfig::direct());
        let unified = client_server_pipeline(
            ops,
            &SimConfig::unified(2 << 20, 1 << 20),
            &LfsConfig::direct(),
        );
        // With volatile clients, application fsyncs reach the server and
        // force partial segments; client NVRAM absorbs them entirely.
        assert!(volatile.server.count(SegmentCause::Fsync) > 0);
        assert_eq!(unified.server.count(SegmentCause::Fsync), 0);
        // Client NVRAM also shrinks the total server write volume.
        assert!(unified.client.server_write_bytes < volatile.client.server_write_bytes);
    }

    #[test]
    fn partitioned_pipeline_starves_the_server_by_model() {
        use nvfs_faults::net::NetFaultPlanConfig;
        let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        let trace = traces.trace(0);
        let cfg = NetFaultPlanConfig::new(trace.clients() as u32, trace.duration())
            .with_server_partitions(2)
            .with_partition_duration(SimDuration::from_secs(900));
        let net = NetFaultPlan::compile(9, &cfg).unwrap();
        let run = |sim_cfg: SimConfig| {
            client_server_pipeline_net(trace.ops(), &sim_cfg, &LfsConfig::direct(), &net)
        };
        let volatile = run(SimConfig::volatile(2 << 20));
        let unified = run(SimConfig::unified(2 << 20, 2 << 20));
        // Sheds never enter the server workload, and the wire contract
        // holds for both models.
        for r in [&volatile, &unified] {
            assert!(r.server.app_write_bytes >= r.client.server_write_bytes);
            assert_eq!(r.net.summary.violations(), 0, "{:?}", r.net.verdicts);
        }
        // A volatile client loses its aged write-backs at the severed
        // server; a whole-cache NVRAM client just defers and reconciles.
        assert!(
            volatile.reliability.bytes_lost_partition > unified.reliability.bytes_lost_partition
        );
    }

    #[test]
    fn wal_server_acks_fsyncs_from_the_log() {
        let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        let ops = traces.trace(0).ops();
        let client_cfg = SimConfig::volatile(2 << 20);
        let direct = client_server_pipeline(ops, &client_cfg, &LfsConfig::direct());
        let wal = client_server_pipeline_wal(ops, &client_cfg, &WalConfig::sprite());
        // Same client traffic feeds both servers.
        assert_eq!(
            wal.client.server_write_bytes,
            direct.client.server_write_bytes
        );
        // The fsyncs that forced partial segments in direct mode are all
        // absorbed by log appends in WAL mode.
        assert!(direct.server.count(SegmentCause::Fsync) > 0);
        assert_eq!(wal.server.fs.count(SegmentCause::Fsync), 0);
        assert_eq!(
            wal.server.wal.appends,
            direct.server.count(SegmentCause::Fsync) as u64
        );
        // No fsync ever waited on a disk write: every ack came straight
        // from the NVRAM append, the logging path's latency claim.
        assert!(wal
            .server
            .fsync_samples
            .iter()
            .all(|s| s.forced_segments == 0));
    }

    #[test]
    fn net_faulted_wal_pipeline_keeps_the_wire_contract() {
        use nvfs_faults::net::NetFaultPlanConfig;
        let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        let trace = traces.trace(2);
        let cfg = NetFaultPlanConfig::new(trace.clients() as u32, trace.duration())
            .with_drop_probability(0.05)
            .with_duplicate_probability(0.02)
            .with_server_partitions(1)
            .with_partition_duration(SimDuration::from_secs(300));
        let net = NetFaultPlan::compile(17, &cfg).unwrap();
        let r = client_server_pipeline_wal_net(
            trace.ops(),
            &SimConfig::volatile(2 << 20),
            &WalConfig::sprite(),
            &net,
        );
        assert_eq!(r.net.summary.violations(), 0, "{:?}", r.net.verdicts);
        // Whatever survived the wire is conserved into the WAL server.
        assert!(r.server.fs.app_write_bytes >= r.client.server_write_bytes);
    }

    #[test]
    fn pipeline_conserves_bytes() {
        let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        let ops = traces.trace(4).ops();
        let report =
            client_server_pipeline(ops, &SimConfig::volatile(2 << 20), &LfsConfig::direct());
        // Everything the clients sent reaches the LFS (block rounding can
        // only add bytes).
        assert!(report.server.app_write_bytes >= report.client.server_write_bytes);
        assert!(report.server.data_bytes() >= report.client.server_write_bytes);
    }
}
