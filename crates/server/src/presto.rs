//! Server-side NVRAM for synchronous-write protocols (§3).
//!
//! "The Legato Systems Prestoserve board caches NFS server requests in
//! non-volatile memory to reduce the latency of synchronous writes to the
//! file system, and performance improvements of up to 50% have been
//! reported." This module models the three server write disciplines the
//! paper contrasts:
//!
//! * **NFS synchronous** — every client write blocks until the disk has it;
//! * **Prestoserve** — writes complete as soon as they are in server NVRAM,
//!   which drains to disk in sorted batches in the background;
//! * **Sprite delayed** — writes complete on reaching the server's volatile
//!   cache (fast, but unsafe until the delayed write-back runs).

use nvfs_disk::{Discipline, DiskQueue, DiskRequest};
use nvfs_types::SimTime;

/// One synchronous write request arriving at the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRequest {
    /// Arrival time.
    pub time: SimTime,
    /// Target disk address (for seek modelling).
    pub addr: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Latency/throughput outcome of servicing a request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteOutcome {
    /// Requests serviced.
    pub requests: usize,
    /// Mean per-request completion latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Maximum per-request latency in milliseconds.
    pub max_latency_ms: f64,
    /// Total disk busy time in milliseconds.
    pub disk_busy_ms: f64,
    /// Number of disk write accesses issued.
    pub disk_accesses: usize,
}

/// Prestoserve configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrestoConfig {
    /// NVRAM capacity in bytes (Prestoserve boards held ~1 MB).
    pub capacity: u64,
    /// Time to copy one kilobyte into NVRAM, in milliseconds.
    pub nvram_copy_ms_per_kb: f64,
    /// Drain the buffer once it is this full (fraction of capacity).
    pub drain_threshold: f64,
}

impl Default for PrestoConfig {
    fn default() -> Self {
        PrestoConfig {
            capacity: 1 << 20,
            nvram_copy_ms_per_kb: 0.005,
            drain_threshold: 0.5,
        }
    }
}

/// Services every request synchronously against the disk, as the NFS
/// protocol demands.
///
/// # Examples
///
/// ```
/// use nvfs_disk::DiskParams;
/// use nvfs_server::presto::{nfs_synchronous, WriteRequest};
/// use nvfs_types::SimTime;
///
/// let reqs = vec![WriteRequest { time: SimTime::ZERO, addr: 0, len: 8192 }];
/// let out = nfs_synchronous(&reqs, DiskParams::sprite_era());
/// assert_eq!(out.disk_accesses, 1);
/// assert!(out.mean_latency_ms > 1.0);
/// ```
pub fn nfs_synchronous(requests: &[WriteRequest], disk: nvfs_disk::DiskParams) -> WriteOutcome {
    let mut q = DiskQueue::new(disk);
    let mut disk_free_ms = 0.0f64; // absolute ms timeline
    let mut total_latency = 0.0;
    let mut max_latency = 0.0f64;
    let mut busy = 0.0;
    for r in requests {
        let arrive_ms = r.time.as_micros() as f64 / 1000.0;
        let start = disk_free_ms.max(arrive_ms);
        let service = q.service_one(DiskRequest {
            addr: r.addr,
            len: r.len,
        });
        busy += service;
        disk_free_ms = start + service;
        let latency = disk_free_ms - arrive_ms;
        total_latency += latency;
        max_latency = max_latency.max(latency);
    }
    WriteOutcome {
        requests: requests.len(),
        mean_latency_ms: if requests.is_empty() {
            0.0
        } else {
            total_latency / requests.len() as f64
        },
        max_latency_ms: max_latency,
        disk_busy_ms: busy,
        disk_accesses: requests.len(),
    }
}

/// Services requests through a Prestoserve-style NVRAM: a request completes
/// once copied into NVRAM; the buffer drains to disk in sorted batches. A
/// request that finds the buffer full stalls until the in-flight drain
/// completes.
pub fn prestoserve(
    requests: &[WriteRequest],
    disk: nvfs_disk::DiskParams,
    cfg: PrestoConfig,
) -> WriteOutcome {
    let mut q = DiskQueue::new(disk);
    let mut buffered: Vec<DiskRequest> = Vec::new();
    let mut buffered_bytes = 0u64;
    let mut disk_free_ms = 0.0f64;
    let mut total_latency = 0.0;
    let mut max_latency = 0.0f64;
    let mut busy = 0.0;
    let mut accesses = 0usize;

    let drain = |q: &mut DiskQueue,
                 buffered: &mut Vec<DiskRequest>,
                 now: f64,
                 disk_free: &mut f64|
     -> f64 {
        if buffered.is_empty() {
            return 0.0;
        }
        let out = q.service_batch(buffered, Discipline::Elevator);
        buffered.clear();
        let start = disk_free.max(now);
        *disk_free = start + out.total_ms;
        out.total_ms
    };

    for r in requests {
        let arrive_ms = r.time.as_micros() as f64 / 1000.0;
        let mut latency = cfg.nvram_copy_ms_per_kb * (r.len as f64 / 1024.0);
        if buffered_bytes + r.len > cfg.capacity {
            // Stall until the oldest drain completes, then flush.
            let t = drain(&mut q, &mut buffered, arrive_ms, &mut disk_free_ms);
            busy += t;
            accesses += 1;
            buffered_bytes = 0;
            latency += (disk_free_ms - arrive_ms).max(0.0);
        }
        buffered.push(DiskRequest {
            addr: r.addr,
            len: r.len,
        });
        buffered_bytes += r.len;
        if buffered_bytes as f64 >= cfg.capacity as f64 * cfg.drain_threshold
            && disk_free_ms <= arrive_ms
        {
            // Disk is idle: start a background drain.
            let t = drain(&mut q, &mut buffered, arrive_ms, &mut disk_free_ms);
            busy += t;
            accesses += 1;
            buffered_bytes = 0;
        }
        total_latency += latency;
        max_latency = max_latency.max(latency);
    }
    if !buffered.is_empty() {
        let t = drain(&mut q, &mut buffered, disk_free_ms, &mut disk_free_ms);
        busy += t;
        accesses += 1;
    }
    WriteOutcome {
        requests: requests.len(),
        mean_latency_ms: if requests.is_empty() {
            0.0
        } else {
            total_latency / requests.len() as f64
        },
        max_latency_ms: max_latency,
        disk_busy_ms: busy,
        disk_accesses: accesses,
    }
}

/// Services requests the Sprite way: a write completes as soon as it is in
/// the server's volatile cache (a fixed memory-copy latency); dirty data is
/// written to disk in sorted batches by the delayed write-back. Fast like
/// Prestoserve, but the buffered data is vulnerable until the flush — the
/// §3 trade-off between NFS's safety and Sprite's speed that server NVRAM
/// resolves.
pub fn sprite_delayed(
    requests: &[WriteRequest],
    disk: nvfs_disk::DiskParams,
    batch_bytes: u64,
) -> WriteOutcome {
    let mut q = DiskQueue::new(disk);
    let mut buffered: Vec<DiskRequest> = Vec::new();
    let mut buffered_bytes = 0u64;
    let mut busy = 0.0;
    let mut accesses = 0usize;
    let mut total_latency = 0.0;
    let mut max_latency = 0.0f64;
    for r in requests {
        // Memory-copy latency only; permanence is NOT guaranteed.
        let latency = 0.01 + r.len as f64 / 1.0e6; // ~1 GB/s copy
        total_latency += latency;
        max_latency = max_latency.max(latency);
        buffered.push(DiskRequest {
            addr: r.addr,
            len: r.len,
        });
        buffered_bytes += r.len;
        if buffered_bytes >= batch_bytes {
            let out = q.service_batch(&buffered, Discipline::Elevator);
            busy += out.total_ms;
            accesses += 1;
            buffered.clear();
            buffered_bytes = 0;
        }
    }
    if !buffered.is_empty() {
        let out = q.service_batch(&buffered, Discipline::Elevator);
        busy += out.total_ms;
        accesses += 1;
    }
    WriteOutcome {
        requests: requests.len(),
        mean_latency_ms: if requests.is_empty() {
            0.0
        } else {
            total_latency / requests.len() as f64
        },
        max_latency_ms: max_latency,
        disk_busy_ms: busy,
        disk_accesses: accesses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfs_disk::DiskParams;
    use nvfs_rng::StdRng;
    use nvfs_rng::{Rng, SeedableRng};

    fn workload(n: usize, gap_ms: u64, len: u64) -> Vec<WriteRequest> {
        let mut rng = StdRng::seed_from_u64(42);
        (0..n)
            .map(|i| WriteRequest {
                time: SimTime::from_millis(i as u64 * gap_ms),
                addr: rng.gen_range(0..(250u64 << 20)),
                len,
            })
            .collect()
    }

    #[test]
    fn nvram_collapses_synchronous_latency() {
        let reqs = workload(500, 40, 8192);
        let disk = DiskParams::sprite_era();
        let nfs = nfs_synchronous(&reqs, disk);
        let presto = prestoserve(&reqs, disk, PrestoConfig::default());
        // The paper reports "up to 50%" end-to-end gains; per-write latency
        // improves by far more than that.
        assert!(
            presto.mean_latency_ms < nfs.mean_latency_ms * 0.5,
            "nfs {:.2} ms vs presto {:.2} ms",
            nfs.mean_latency_ms,
            presto.mean_latency_ms
        );
    }

    #[test]
    fn nvram_reduces_disk_busy_time() {
        let reqs = workload(500, 40, 8192);
        let disk = DiskParams::sprite_era();
        let nfs = nfs_synchronous(&reqs, disk);
        let presto = prestoserve(&reqs, disk, PrestoConfig::default());
        assert!(presto.disk_busy_ms < nfs.disk_busy_ms);
        assert!(presto.disk_accesses < nfs.disk_accesses);
    }

    #[test]
    fn overload_stalls_but_completes() {
        // Requests arrive far faster than the disk drains: the buffer fills
        // and writes stall, but everything is serviced.
        let reqs = workload(2000, 0, 16 << 10);
        let disk = DiskParams::sprite_era();
        let presto = prestoserve(&reqs, disk, PrestoConfig::default());
        assert_eq!(presto.requests, 2000);
        assert!(presto.max_latency_ms > presto.mean_latency_ms);
        assert!(presto.disk_accesses > 1);
    }

    #[test]
    fn sprite_delayed_is_fast_but_unsafe() {
        let reqs = workload(500, 40, 8192);
        let disk = DiskParams::sprite_era();
        let sprite = sprite_delayed(&reqs, disk, 1 << 20);
        let nfs = nfs_synchronous(&reqs, disk);
        let presto = prestoserve(&reqs, disk, PrestoConfig::default());
        // Sprite's latency is on par with Prestoserve (both are memory
        // copies) and far below synchronous NFS…
        assert!(sprite.mean_latency_ms < nfs.mean_latency_ms / 10.0);
        assert!(sprite.mean_latency_ms < 1.0);
        // …and its batched flushes use the disk as efficiently.
        assert!(sprite.disk_busy_ms <= nfs.disk_busy_ms);
        assert!(sprite.disk_accesses <= presto.disk_accesses * 2);
    }

    #[test]
    fn empty_stream() {
        let disk = DiskParams::sprite_era();
        let out = prestoserve(&[], disk, PrestoConfig::default());
        assert_eq!(out.requests, 0);
        assert_eq!(out.mean_latency_ms, 0.0);
        assert_eq!(out.disk_accesses, 0);
    }
}
