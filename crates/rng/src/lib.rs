//! Deterministic pseudo-random numbers with no external dependencies.
//!
//! The build environment is offline, so the workspace cannot pull in the
//! `rand` crate. This crate provides the small API subset the simulators
//! actually use — [`StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! `gen`, `gen_range`, and `gen_bool` on the [`Rng`] trait — backed by
//! xoshiro256++ with SplitMix64 seed expansion.
//!
//! Determinism is the point, not cryptographic quality: every simulation
//! in this workspace derives its workload from a configured seed, and the
//! same seed must produce the same stream on every platform and at every
//! thread count. All state lives inside the generator value; nothing here
//! touches global or thread-local state, which is what makes per-task
//! seeding safe under [`nvfs-par`](https://example.org/nvfs)'s fan-out.
//!
//! # Examples
//!
//! ```
//! use nvfs_rng::{Rng, SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(1992);
//! let u: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&u));
//! let d = rng.gen_range(0..6u64);
//! assert!(d < 6);
//! let replay: Vec<u64> = {
//!     let mut r = StdRng::seed_from_u64(1992);
//!     (0..4).map(|_| r.next_u64()).collect()
//! };
//! let again: Vec<u64> = {
//!     let mut r = StdRng::seed_from_u64(1992);
//!     (0..4).map(|_| r.next_u64()).collect()
//! };
//! assert_eq!(replay, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types constructible from a seed. Mirrors `rand::SeedableRng` for the
/// one constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of uniformly distributed pseudo-random values.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T` (for `f64`: in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniformly distributed value in `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values samplable uniformly over their "standard" domain (the unit
/// interval for floats, the full range for integers).
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// Types with a uniform sampler over an arbitrary sub-range.
pub trait SampleUniform: Sized {
    /// A uniform value in `[lo, hi]` (both ends inclusive).
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// A uniform integer in `[0, span]` via Lemire's widening-multiply method
/// with rejection, so every value is exactly equally likely.
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == u64::MAX {
        return rng.next_u64();
    }
    let n = span + 1;
    // Reject the biased tail: accept x only when x * n has no wrap-around
    // collision, i.e. the low word is >= the bias threshold.
    let threshold = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        let wide = (x as u128) * (n as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u64;
                let off = uniform_u64(rng, span);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let u = f64::sample_standard(rng);
        // Half-open by construction (u < 1); the inclusive distinction is
        // immaterial for continuous draws.
        lo + u * (hi - lo)
    }
}

impl<T: SampleUniform + PartialOrd + HalfOpenEnd> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_inclusive(rng, self.start, self.end.half_open_max())
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Converts a half-open upper bound into the inclusive maximum it admits.
pub trait HalfOpenEnd: Sized {
    /// The largest value strictly below `self` (identity for floats, where
    /// the sampler is half-open already).
    fn half_open_max(self) -> Self;
}

macro_rules! impl_half_open_int {
    ($($t:ty),*) => {$(
        impl HalfOpenEnd for $t {
            fn half_open_max(self) -> $t {
                self - 1
            }
        }
    )*};
}

impl_half_open_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl HalfOpenEnd for f64 {
    fn half_open_max(self) -> f64 {
        self
    }
}

/// The workspace's standard generator: xoshiro256++ seeded by SplitMix64.
///
/// Small (32 bytes), fast, passes BigCrush, and — unlike `rand`'s ChaCha12
/// `StdRng` — implementable in a page of dependency-free code. The stream
/// is stable: changing it invalidates every calibrated workload, so treat
/// the constants below as frozen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// `rand`-style module path compatibility (`nvfs_rng::rngs::StdRng`).
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn gen_range_half_open_and_inclusive() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(3..7u64);
            assert!((3..7).contains(&v));
            let w = r.gen_range(3..=7u64);
            assert!((3..=7).contains(&w));
            let f = r.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
            let i = r.gen_range(-5..5i32);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_range_single_value() {
        let mut r = StdRng::seed_from_u64(1);
        assert_eq!(r.gen_range(4..5u64), 4);
        assert_eq!(r.gen_range(4..=4u64), 4);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(1);
        let _ = r.gen_range(5..5u64);
    }

    #[test]
    fn gen_range_hits_all_values() {
        let mut r = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 6];
        for _ in 0..6000 {
            counts[r.gen_range(0..6usize)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!((700..1300).contains(c), "value {i} drawn {c} times");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
        let mut r = StdRng::seed_from_u64(3);
        assert_eq!((0..100).filter(|_| r.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| r.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn trait_object_friendly_generics() {
        // The `R: Rng + ?Sized` bounds used across the workspace.
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            f64::sample_standard(rng)
        }
        let mut r = StdRng::seed_from_u64(5);
        assert!((0.0..1.0).contains(&draw(&mut r)));
    }
}
