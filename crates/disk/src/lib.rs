//! Parametric disk model with FIFO and elevator scheduling.
//!
//! Supports the §3 arguments of Baker et al. (ASPLOS 1992): how much disk
//! bandwidth random block writes waste, how much a sorted NVRAM-buffered
//! batch recovers, and the per-access service times the LFS simulator uses
//! to account segment writes.
//!
//! # Examples
//!
//! ```
//! use nvfs_disk::{DiskParams, DiskQueue, Discipline, DiskRequest};
//!
//! let batch: Vec<DiskRequest> =
//!     (0..100).map(|i| DiskRequest { addr: i * 7_919 * 4096 % (200 << 20), len: 4096 }).collect();
//! let fifo = DiskQueue::new(DiskParams::sprite_era()).service_batch(&batch, Discipline::Fifo);
//! let sorted = DiskQueue::new(DiskParams::sprite_era()).service_batch(&batch, Discipline::Elevator);
//! assert!(sorted.total_ms < fifo.total_ms);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod sched;

pub use model::DiskParams;
pub use sched::{BatchOutcome, Discipline, DiskQueue, DiskRequest};
