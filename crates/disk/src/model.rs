//! Parametric disk model.
//!
//! §3 of the paper reasons about disks in terms of seeks, rotational
//! latency, and transfer bandwidth: LFS amortizes one seek over a 512 KB
//! segment, while the cited simulation results (\[20\]) show that writing
//! dirty 4 KB blocks at random places uses only ~7% of the disk bandwidth,
//! and that sorting a large buffered batch recovers ~40%. [`DiskParams`]
//! captures a late-80s/early-90s disk; [`DiskParams::service_time_ms`] and
//! the utilization helpers reproduce that arithmetic.

/// Physical parameters of a disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskParams {
    /// Average seek time in milliseconds.
    pub avg_seek_ms: f64,
    /// Minimum (track-to-track) seek time in milliseconds.
    pub min_seek_ms: f64,
    /// Rotation speed in RPM.
    pub rpm: f64,
    /// Sustained transfer bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Track capacity in bytes (the paper cites 25–35 KB tracks; "two disk
    /// tracks, typically 50 - 70 kilobytes").
    pub track_bytes: u64,
    /// Number of recording surfaces (tracks per cylinder).
    pub surfaces: u32,
    /// Usable capacity in bytes.
    pub capacity: u64,
}

impl DiskParams {
    /// A disk typical of the paper's era (Wren-class): ~16 ms average seek,
    /// 3600 RPM, ~2 MB/s transfer, ~35 KB tracks, 9 surfaces, 300 MB.
    pub fn sprite_era() -> Self {
        DiskParams {
            avg_seek_ms: 16.0,
            min_seek_ms: 3.0,
            rpm: 3600.0,
            bandwidth: 2.0e6,
            track_bytes: 35 * 1024,
            surfaces: 9,
            capacity: 300 << 20,
        }
    }

    /// Bytes per cylinder (track capacity times surfaces): accesses within
    /// a cylinder need no head movement, only rotational positioning.
    pub fn cylinder_bytes(&self) -> u64 {
        self.track_bytes * self.surfaces as u64
    }

    /// Time for half a rotation (average rotational latency) in ms.
    pub fn avg_rotation_ms(&self) -> f64 {
        30_000.0 / self.rpm
    }

    /// Pure transfer time for `bytes`, in ms.
    pub fn transfer_ms(&self, bytes: u64) -> f64 {
        bytes as f64 * 1000.0 / self.bandwidth
    }

    /// Service time of one random access of `bytes`: average seek +
    /// average rotational latency + transfer.
    pub fn service_time_ms(&self, bytes: u64) -> f64 {
        self.avg_seek_ms + self.avg_rotation_ms() + self.transfer_ms(bytes)
    }

    /// Service time of a near-sequential access: after sorting, successive
    /// requests usually land in the same or an adjacent cylinder, so only
    /// rotational positioning remains.
    pub fn sorted_service_time_ms(&self, bytes: u64) -> f64 {
        self.avg_rotation_ms() / 2.0 + self.transfer_ms(bytes)
    }

    /// Fraction of the disk's raw bandwidth achieved by issuing `count`
    /// random accesses of `bytes` each.
    ///
    /// # Examples
    ///
    /// ```
    /// use nvfs_disk::model::DiskParams;
    ///
    /// // Random 4 KB writes achieve only single-digit utilization (\[20\]).
    /// let u = DiskParams::sprite_era().random_utilization(4096);
    /// assert!(u > 0.03 && u < 0.12, "utilization was {u}");
    /// ```
    pub fn random_utilization(&self, bytes: u64) -> f64 {
        self.transfer_ms(bytes) / self.service_time_ms(bytes)
    }

    /// Fraction of raw bandwidth achieved by sorted (elevator-order)
    /// accesses of `bytes` each.
    pub fn sorted_utilization(&self, bytes: u64) -> f64 {
        self.transfer_ms(bytes) / self.sorted_service_time_ms(bytes)
    }
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams::sprite_era()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_latency_matches_rpm() {
        let d = DiskParams::sprite_era();
        // 3600 RPM -> full rotation 16.7 ms, average latency half that.
        assert!((d.avg_rotation_ms() - 8.33).abs() < 0.05);
        assert_eq!(d.cylinder_bytes(), 9 * 35 * 1024);
    }

    #[test]
    fn service_time_components_add_up() {
        let d = DiskParams::sprite_era();
        let t = d.service_time_ms(0);
        assert!((t - (16.0 + d.avg_rotation_ms())).abs() < 1e-9);
        assert!(d.service_time_ms(1 << 20) > t);
    }

    #[test]
    fn random_4k_utilization_is_single_digit() {
        // The paper's cited figure: ~7% of bandwidth for random dirty-block
        // writes.
        let u = DiskParams::sprite_era().random_utilization(4096);
        assert!((0.04..0.12).contains(&u), "utilization {u}");
    }

    #[test]
    fn sorting_multiplies_utilization() {
        let d = DiskParams::sprite_era();
        let random = d.random_utilization(4096);
        let sorted = d.sorted_utilization(4096);
        assert!(sorted > 3.0 * random, "random {random} sorted {sorted}");
    }

    #[test]
    fn big_sequential_writes_approach_full_bandwidth() {
        let d = DiskParams::sprite_era();
        assert!(d.sorted_utilization(512 << 10) > 0.95);
    }
}
