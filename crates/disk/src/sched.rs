//! Request scheduling: FIFO versus elevator (sorted) order.
//!
//! §3 of the paper motivates write buffering with a result from \[20\]:
//! "only 7% of disk bandwidth is used when writing dirty data randomly to
//! a disk. Instead of writing blocks randomly, 1000 I/O's, requiring four
//! megabytes of NVRAM, can be buffered and sorted to utilize 40% of the
//! disk bandwidth." This module replays a request batch through both
//! disciplines and measures achieved bandwidth.

use crate::model::DiskParams;

/// One disk request: an absolute byte address and a length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskRequest {
    /// Starting byte address on the platter.
    pub addr: u64,
    /// Transfer length in bytes.
    pub len: u64,
}

/// Scheduling discipline for a batch of requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// Service requests in arrival order.
    Fifo,
    /// Sort the batch by address and service it in one elevator sweep —
    /// what a server can do once requests sit in an NVRAM buffer.
    Elevator,
}

/// Outcome of servicing a batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchOutcome {
    /// Number of requests serviced.
    pub requests: usize,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Total service time in milliseconds.
    pub total_ms: f64,
    /// Pure transfer time in milliseconds.
    pub transfer_ms: f64,
}

impl BatchOutcome {
    /// Fraction of raw disk bandwidth achieved.
    pub fn utilization(&self) -> f64 {
        if self.total_ms == 0.0 {
            return 0.0;
        }
        self.transfer_ms / self.total_ms
    }

    /// Achieved throughput in bytes per second.
    pub fn throughput(&self) -> f64 {
        if self.total_ms == 0.0 {
            return 0.0;
        }
        self.bytes as f64 * 1000.0 / self.total_ms
    }
}

/// A disk with a head position, servicing batches of requests.
///
/// # Examples
///
/// ```
/// use nvfs_disk::model::DiskParams;
/// use nvfs_disk::sched::{Discipline, DiskQueue, DiskRequest};
///
/// let mut q = DiskQueue::new(DiskParams::sprite_era());
/// let reqs = vec![
///     DiskRequest { addr: 0, len: 4096 },
///     DiskRequest { addr: 100 << 20, len: 4096 },
/// ];
/// let fifo = q.service_batch(&reqs, Discipline::Fifo);
/// assert_eq!(fifo.requests, 2);
/// assert!(fifo.utilization() < 0.25);
/// ```
#[derive(Debug, Clone)]
pub struct DiskQueue {
    params: DiskParams,
    head: u64,
}

impl DiskQueue {
    /// Creates a disk with its head parked at address zero.
    pub fn new(params: DiskParams) -> Self {
        DiskQueue { params, head: 0 }
    }

    /// The disk parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Seek time as a function of the distance travelled, using the usual
    /// square-root model scaled so a third-of-the-disk seek costs the
    /// catalogued average.
    pub fn seek_ms(&self, distance: u64) -> f64 {
        if distance == 0 {
            return 0.0;
        }
        let p = &self.params;
        let max_seek = 2.0 * p.avg_seek_ms - p.min_seek_ms;
        let frac = (distance as f64 / p.capacity as f64).min(1.0);
        p.min_seek_ms + (max_seek - p.min_seek_ms) * frac.sqrt()
    }

    /// Services one request from the current head position.
    /// Contiguous requests (head already at `addr`) pay no positioning
    /// cost; requests landing within the same track pay only a partial
    /// rotation; everything else pays seek plus average rotational delay.
    pub fn service_one(&mut self, req: DiskRequest) -> f64 {
        let distance = req.addr.abs_diff(self.head);
        let positioning = if distance == 0 {
            0.0
        } else if distance < 3 * self.params.cylinder_bytes() {
            // Same or adjacent cylinders: head switches and track-to-track
            // moves hide inside the rotational positioning.
            self.params.avg_rotation_ms() / 2.0
        } else {
            self.seek_ms(distance) + self.params.avg_rotation_ms()
        };
        self.head = req.addr + req.len;
        positioning + self.params.transfer_ms(req.len)
    }

    /// Services a whole batch under `discipline`, returning the outcome.
    pub fn service_batch(&mut self, reqs: &[DiskRequest], discipline: Discipline) -> BatchOutcome {
        let mut ordered: Vec<DiskRequest> = reqs.to_vec();
        if discipline == Discipline::Elevator {
            ordered.sort_by_key(|r| r.addr);
        }
        let mut total_ms = 0.0;
        let mut bytes = 0;
        for r in &ordered {
            total_ms += self.service_one(*r);
            bytes += r.len;
        }
        nvfs_obs::counter_add("disk.requests", ordered.len() as u64);
        nvfs_obs::counter_add("disk.bytes", bytes);
        // Simulated service time in whole µs: f64 arithmetic here is IEEE
        // (add/mul only), so the truncation is identical on every platform.
        nvfs_obs::counter_add("disk.service_us", (total_ms * 1e3) as u64);
        BatchOutcome {
            requests: ordered.len(),
            bytes,
            total_ms,
            transfer_ms: self.params.transfer_ms(bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfs_rng::StdRng;
    use nvfs_rng::{Rng, SeedableRng};

    fn random_batch(n: usize, len: u64, seed: u64) -> Vec<DiskRequest> {
        let mut rng = StdRng::seed_from_u64(seed);
        let cap = DiskParams::sprite_era().capacity - len;
        (0..n)
            .map(|_| DiskRequest {
                addr: rng.gen_range(0..cap),
                len,
            })
            .collect()
    }

    #[test]
    fn seek_time_is_monotone_in_distance() {
        let q = DiskQueue::new(DiskParams::sprite_era());
        assert_eq!(q.seek_ms(0), 0.0);
        let near = q.seek_ms(1 << 20);
        let far = q.seek_ms(100 << 20);
        assert!(near > 0.0 && far > near);
        // Never exceeds the max-seek model.
        assert!(q.seek_ms(u64::MAX) <= 2.0 * 16.0 - 3.0 + 1e-9);
    }

    #[test]
    fn contiguous_requests_pay_no_positioning() {
        let mut q = DiskQueue::new(DiskParams::sprite_era());
        let t1 = q.service_one(DiskRequest { addr: 0, len: 4096 });
        let t2 = q.service_one(DiskRequest {
            addr: 4096,
            len: 4096,
        });
        assert!(t2 < t1 || (t1 - t2).abs() < 1e-9);
        assert_eq!(t2, q.params().transfer_ms(4096));
    }

    #[test]
    fn random_4k_writes_waste_bandwidth() {
        // The paper's cited number: ~7% utilization for random block writes.
        let mut q = DiskQueue::new(DiskParams::sprite_era());
        let out = q.service_batch(&random_batch(1000, 4096, 1), Discipline::Fifo);
        let u = out.utilization();
        assert!((0.03..0.12).contains(&u), "random utilization {u}");
    }

    #[test]
    fn sorted_batch_reaches_forty_percent() {
        // "1000 I/O's … buffered and sorted to utilize 40% of the disk
        // bandwidth."
        let mut q = DiskQueue::new(DiskParams::sprite_era());
        let out = q.service_batch(&random_batch(1000, 4096, 1), Discipline::Elevator);
        let u = out.utilization();
        assert!((0.25..0.60).contains(&u), "sorted utilization {u}");
    }

    #[test]
    fn sorting_beats_fifo_severalfold() {
        let batch = random_batch(500, 4096, 7);
        let fifo = DiskQueue::new(DiskParams::sprite_era()).service_batch(&batch, Discipline::Fifo);
        let sorted =
            DiskQueue::new(DiskParams::sprite_era()).service_batch(&batch, Discipline::Elevator);
        assert_eq!(fifo.bytes, sorted.bytes);
        assert!(sorted.total_ms < fifo.total_ms / 2.5);
        assert!(sorted.throughput() > 2.5 * fifo.throughput());
    }

    #[test]
    fn batch_outcome_accounting() {
        let mut q = DiskQueue::new(DiskParams::sprite_era());
        let out = q.service_batch(&[], Discipline::Fifo);
        assert_eq!(out.requests, 0);
        assert_eq!(out.utilization(), 0.0);
        assert_eq!(out.throughput(), 0.0);
    }
}
