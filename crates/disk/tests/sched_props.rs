//! Property tests on the disk model: service times are physical (positive,
//! bounded), elevator scheduling never loses against FIFO, and byte
//! accounting is exact.

use nvfs_disk::{Discipline, DiskParams, DiskQueue, DiskRequest};
use proptest::prelude::*;

fn arb_batch() -> impl Strategy<Value = Vec<DiskRequest>> {
    proptest::collection::vec(
        (0u64..(290 << 20), prop_oneof![Just(512u64), Just(4096), Just(64 << 10), Just(512 << 10)])
            .prop_map(|(addr, len)| DiskRequest { addr, len }),
        1..60,
    )
}

proptest! {
    #[test]
    fn service_times_are_physical(batch in arb_batch()) {
        let p = DiskParams::sprite_era();
        let mut q = DiskQueue::new(p);
        for r in &batch {
            let t = q.service_one(*r);
            // At least the transfer time, at most transfer + max seek + a
            // full rotation.
            prop_assert!(t >= p.transfer_ms(r.len) - 1e-9);
            let bound = p.transfer_ms(r.len) + 2.0 * p.avg_seek_ms + 2.0 * p.avg_rotation_ms();
            prop_assert!(t <= bound, "t={t} bound={bound}");
        }
    }

    #[test]
    fn elevator_never_loses_to_fifo(batch in arb_batch()) {
        let p = DiskParams::sprite_era();
        let fifo = DiskQueue::new(p).service_batch(&batch, Discipline::Fifo);
        let sorted = DiskQueue::new(p).service_batch(&batch, Discipline::Elevator);
        prop_assert_eq!(fifo.bytes, sorted.bytes);
        prop_assert_eq!(fifo.requests, sorted.requests);
        // Sorting can only shrink head movement; allow a tiny numeric slop.
        prop_assert!(
            sorted.total_ms <= fifo.total_ms * 1.0001 + 1e-6,
            "sorted {} > fifo {}",
            sorted.total_ms,
            fifo.total_ms
        );
        prop_assert!(sorted.utilization() <= 1.0 + 1e-9);
        prop_assert!(fifo.utilization() >= 0.0);
    }

    #[test]
    fn utilization_matches_definition(batch in arb_batch()) {
        let p = DiskParams::sprite_era();
        let out = DiskQueue::new(p).service_batch(&batch, Discipline::Elevator);
        let expected = p.transfer_ms(out.bytes);
        prop_assert!((out.transfer_ms - expected).abs() < 1e-6);
        prop_assert!(out.total_ms >= out.transfer_ms - 1e-9);
    }

    #[test]
    fn seek_time_is_monotone(d1 in 0u64..(300 << 20), d2 in 0u64..(300 << 20)) {
        let q = DiskQueue::new(DiskParams::sprite_era());
        let (lo, hi) = (d1.min(d2), d1.max(d2));
        prop_assert!(q.seek_ms(lo) <= q.seek_ms(hi) + 1e-12);
    }
}
