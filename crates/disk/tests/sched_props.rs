//! Randomized tests on the disk model: service times are physical
//! (positive, bounded), elevator scheduling never loses against FIFO, and
//! byte accounting is exact.
//!
//! Formerly proptest-based; now driven by a seeded [`nvfs_rng::StdRng`] so
//! the suite builds offline and failures reproduce exactly.

use nvfs_disk::{Discipline, DiskParams, DiskQueue, DiskRequest};
use nvfs_rng::{Rng, SeedableRng, StdRng};

const LENS: [u64; 4] = [512, 4096, 64 << 10, 512 << 10];

fn rand_batch(rng: &mut StdRng) -> Vec<DiskRequest> {
    let n = rng.gen_range(1..60usize);
    (0..n)
        .map(|_| DiskRequest {
            addr: rng.gen_range(0..(290u64 << 20)),
            len: LENS[rng.gen_range(0..LENS.len())],
        })
        .collect()
}

#[test]
fn service_times_are_physical() {
    let mut rng = StdRng::seed_from_u64(0xD15C_0001);
    for _case in 0..128 {
        let batch = rand_batch(&mut rng);
        let p = DiskParams::sprite_era();
        let mut q = DiskQueue::new(p);
        for r in &batch {
            let t = q.service_one(*r);
            // At least the transfer time, at most transfer + max seek + a
            // full rotation.
            assert!(t >= p.transfer_ms(r.len) - 1e-9, "{batch:?}");
            let bound = p.transfer_ms(r.len) + 2.0 * p.avg_seek_ms + 2.0 * p.avg_rotation_ms();
            assert!(t <= bound, "t={t} bound={bound}: {batch:?}");
        }
    }
}

#[test]
fn elevator_never_loses_to_fifo() {
    let mut rng = StdRng::seed_from_u64(0xD15C_0002);
    for _case in 0..128 {
        let batch = rand_batch(&mut rng);
        let p = DiskParams::sprite_era();
        let fifo = DiskQueue::new(p).service_batch(&batch, Discipline::Fifo);
        let sorted = DiskQueue::new(p).service_batch(&batch, Discipline::Elevator);
        assert_eq!(fifo.bytes, sorted.bytes, "{batch:?}");
        assert_eq!(fifo.requests, sorted.requests, "{batch:?}");
        // Sorting can only shrink head movement; allow a tiny numeric slop.
        assert!(
            sorted.total_ms <= fifo.total_ms * 1.0001 + 1e-6,
            "sorted {} > fifo {}: {batch:?}",
            sorted.total_ms,
            fifo.total_ms
        );
        assert!(sorted.utilization() <= 1.0 + 1e-9, "{batch:?}");
        assert!(fifo.utilization() >= 0.0, "{batch:?}");
    }
}

#[test]
fn utilization_matches_definition() {
    let mut rng = StdRng::seed_from_u64(0xD15C_0003);
    for _case in 0..128 {
        let batch = rand_batch(&mut rng);
        let p = DiskParams::sprite_era();
        let out = DiskQueue::new(p).service_batch(&batch, Discipline::Elevator);
        let expected = p.transfer_ms(out.bytes);
        assert!((out.transfer_ms - expected).abs() < 1e-6, "{batch:?}");
        assert!(out.total_ms >= out.transfer_ms - 1e-9, "{batch:?}");
    }
}

#[test]
fn seek_time_is_monotone() {
    let mut rng = StdRng::seed_from_u64(0xD15C_0004);
    let q = DiskQueue::new(DiskParams::sprite_era());
    for _case in 0..512 {
        let d1 = rng.gen_range(0..(300u64 << 20));
        let d2 = rng.gen_range(0..(300u64 << 20));
        let (lo, hi) = (d1.min(d2), d1.max(d2));
        assert!(q.seek_ms(lo) <= q.seek_ms(hi) + 1e-12, "lo={lo} hi={hi}");
    }
}
