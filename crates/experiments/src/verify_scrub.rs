//! Corruption sweep — protection modes × corruption kinds × crash points
//! (`nvfs verify-scrub`).
//!
//! `verify-crash` proves recovery honest when the hardware is; this sweep
//! asks what happens when it is not. Every protection mode
//! ([`ProtectionMode`]) is replayed against every corruption kind
//! ([`CorruptionKind`]) across a lattice of crash points and all eight
//! traces, with the background checksum scrub running throughout, and each
//! run is double-judged: the durability oracle must stay clean (corruption
//! is pure metadata — it never changes what recovery produces), and the
//! [`ScrubReport`] must satisfy the conservation identity
//! `detected + silent + vacated + repaired == corrupted` byte for byte.
//!
//! The defense claims the sweep proves:
//!
//! * `Verified` never lets a corrupt byte pass silently — every
//!   propagation is caught by a checksum read-back
//!   ([`Verdict::Corrupted`](nvfs_oracle::Verdict::Corrupted), honest
//!   loss), so its silent column is all zeros;
//! * `Unprotected` does ship silent corruption under the same schedules
//!   — the undetected-corruption number the paper's §2.3 defenses exist
//!   to eliminate;
//! * `WriteProtected` bounces stray writes that miss the open protect
//!   window, shrinking damage without detecting the rest.
//!
//! Everything is a pure function of `(seed, scale)` and byte-identical at
//! any `--jobs` count; CI diffs the rendered report against a golden copy.

use nvfs_core::{ClusterSim, ScrubReport, SimConfig};
use nvfs_faults::corrupt::{CorruptionKind, CorruptionPlanConfig, CorruptionSchedule};
use nvfs_faults::{CrashPointKind, FaultError, FaultPlanConfig, FaultSchedule};
use nvfs_nvram::protect::ProtectionMode;
use nvfs_oracle::OracleSummary;
use nvfs_report::{Cell, Table};
use nvfs_types::{SimDuration, BLOCK_SIZE};

use crate::env::Env;
use crate::faults::{BASE_BYTES, DEFAULT_SEED};
use crate::verify_crash::{FLUSH_TICK, NVRAM_BLOCKS};

/// Background scrub period for the sweep: long against the 5-second
/// flush tick, so propagation races the scrub realistically.
pub const SCRUB_INTERVAL: SimDuration = SimDuration::from_secs(60);

/// The crash points each (mode, kind) pair is swept through: a full
/// drain, a dead board, a mid-drain tear, and a crash pinned just before
/// a flush boundary.
pub const CRASH_POINTS: [CrashPointKind; 4] = [
    CrashPointKind::FullDrain,
    CrashPointKind::DeadBoard,
    CrashPointKind::TornDrainBlocks(2),
    CrashPointKind::PreFlush,
];

/// The corruption plan for one trace: a handful of each damage kind, one
/// kind per row so the sweep isolates each defense against each threat.
pub fn corruption_plan(
    clients: u32,
    duration: SimDuration,
    kind: CorruptionKind,
) -> CorruptionPlanConfig {
    let plan = CorruptionPlanConfig::new(clients, duration);
    match kind {
        CorruptionKind::StrayWrite => plan.with_stray_writes(6),
        CorruptionKind::BitFlip => plan.with_bit_flips(6),
        CorruptionKind::Decay => plan.with_decay_events(2),
    }
}

/// One row of the sweep: a protection mode replayed against one
/// corruption kind through one crash point across every trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrubRow {
    /// Protection mode under judgment.
    pub mode: ProtectionMode,
    /// Corruption kind injected.
    pub kind: CorruptionKind,
    /// The crash-point dimension pinned for this row.
    pub point: CrashPointKind,
    /// Merged durability-oracle verdicts across the trace set.
    pub summary: OracleSummary,
    /// Merged corruption accounting across the trace set.
    pub report: ScrubReport,
}

impl ScrubRow {
    /// Oracle violations, plus a broken conservation identity, plus any
    /// silent corruption under `Verified` (the mode that promises zero).
    /// Silent corruption under the other modes is the expected finding,
    /// not a violation.
    pub fn violations(&self) -> u64 {
        let broken = u64::from(!self.report.conservation_holds());
        let verified_silent =
            u64::from(self.mode == ProtectionMode::Verified && self.report.bytes_silent > 0);
        self.summary.violations() + broken + verified_silent
    }
}

/// Output of the corruption sweep.
#[derive(Debug, Clone)]
pub struct VerifyScrub {
    /// The sweep seed.
    pub seed: u64,
    /// Verified runs folded into the rows.
    pub runs: u64,
    /// Rows in mode × kind × crash-point order.
    pub rows: Vec<ScrubRow>,
    /// Rendered sweep table.
    pub table: Table,
}

impl VerifyScrub {
    /// Total violations across the sweep.
    pub fn violations(&self) -> u64 {
        self.rows.iter().map(ScrubRow::violations).sum()
    }

    /// Whether every row held its contract.
    pub fn is_clean(&self) -> bool {
        self.violations() == 0
    }

    /// Total silent bytes shipped by one mode across the sweep.
    pub fn silent_bytes(&self, mode: ProtectionMode) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.mode == mode)
            .map(|r| r.report.bytes_silent)
            .sum()
    }

    /// One-line machine-readable verdict (stable key order), as printed
    /// by `nvfs verify-scrub` and parsed by CI.
    pub fn verdict_json(&self) -> String {
        let total =
            |f: fn(&ScrubReport) -> u64| self.rows.iter().map(|r| f(&r.report)).sum::<u64>();
        format!(
            concat!(
                "{{\"scrub\":\"{}\",\"seed\":{},\"runs\":{},\"events\":{},",
                "\"corrupted\":{},\"detected\":{},\"silent\":{},\"repaired\":{},",
                "\"vacated\":{},\"bounced\":{},\"silent_verified\":{},\"violations\":{}}}"
            ),
            if self.is_clean() { "clean" } else { "violated" },
            self.seed,
            self.runs,
            total(|r| r.events),
            total(|r| r.bytes_corrupted_dirty + r.bytes_corrupted_clean),
            total(|r| r.bytes_detected),
            total(|r| r.bytes_silent),
            total(|r| r.bytes_repaired),
            total(|r| r.bytes_vacated),
            total(|r| r.bytes_bounced),
            self.silent_bytes(ProtectionMode::Verified),
            self.violations(),
        )
    }

    /// The table plus the verdict line, as printed by `nvfs verify-scrub`.
    pub fn render(&self) -> String {
        format!("{}\n{}\n", self.table.render(), self.verdict_json())
    }
}

/// Renders the sweep table.
pub fn scrub_table(seed: u64, rows: &[ScrubRow]) -> Table {
    let mut table = Table::new(
        &format!("Corruption sweep — protection modes under fire (seed {seed})"),
        &[
            "mode",
            "corruption",
            "crash point",
            "events",
            "corrupt KB",
            "detect KB",
            "silent KB",
            "repair KB",
            "vacate KB",
            "bounce KB",
            "viol",
        ],
    );
    let kb = |b: u64| Cell::f1(b as f64 / 1024.0);
    for row in rows {
        let r = &row.report;
        table.push_row(vec![
            Cell::from(row.mode.label()),
            Cell::from(row.kind.label()),
            Cell::Text(row.point.to_string()),
            Cell::Int(r.events as i64),
            kb(r.bytes_corrupted_dirty + r.bytes_corrupted_clean),
            kb(r.bytes_detected),
            kb(r.bytes_silent),
            kb(r.bytes_repaired),
            kb(r.bytes_vacated),
            kb(r.bytes_bounced),
            Cell::Int(row.violations() as i64),
        ]);
    }
    table
}

/// Runs the full sweep under `seed`: every protection mode × corruption
/// kind × crash point × trace, on the unified model (the one whose clean
/// region holds repairable read-cache data).
pub fn run_seeded(env: &Env, seed: u64) -> Result<VerifyScrub, FaultError> {
    let mut jobs = Vec::new();
    for mode in ProtectionMode::ALL {
        for kind in CorruptionKind::ALL {
            for point in CRASH_POINTS {
                for i in 0..env.traces.traces().len() {
                    jobs.push((mode, kind, point, i));
                }
            }
        }
    }
    let runs_total = jobs.len() as u64;
    let runs = nvfs_par::par_map(jobs, nvfs_par::jobs(), |(mode, kind, point, i)| {
        let trace = env.traces.trace(i);
        let clients = trace.clients() as u32;
        let crashes = (clients / 2).clamp(1, 4);
        let plan = FaultPlanConfig::new(clients, trace.duration())
            .with_client_crashes(crashes)
            .with_torn_probability(0.5);
        let run_seed = seed ^ trace.number() as u64;
        let schedule =
            FaultSchedule::compile(run_seed, &plan)?.apply_crash_point(point, FLUSH_TICK);
        let corruption = CorruptionSchedule::compile(
            run_seed,
            &corruption_plan(clients, trace.duration(), kind),
        )?;
        let config = SimConfig::unified(BASE_BYTES, NVRAM_BLOCKS * BLOCK_SIZE);
        let (_, oracle, report) = ClusterSim::new(config).run_with_corruption_verified(
            trace.ops(),
            &schedule,
            &corruption,
            mode,
            Some(SCRUB_INTERVAL),
        );
        Ok((mode, kind, point, oracle.summary(), report))
    });
    // par_map preserves submission order, so folding in run order gives
    // the same rows at any job count.
    let mut rows: Vec<ScrubRow> = Vec::new();
    for run in runs {
        let (mode, kind, point, summary, report) = run?;
        match rows.last_mut() {
            Some(row) if row.mode == mode && row.kind == kind && row.point == point => {
                row.summary.merge(&summary);
                row.report.merge(&report);
            }
            _ => rows.push(ScrubRow {
                mode,
                kind,
                point,
                summary,
                report,
            }),
        }
    }
    Ok(VerifyScrub {
        seed,
        runs: runs_total,
        table: scrub_table(seed, &rows),
        rows,
    })
}

/// Runs the full sweep under the default seed.
pub fn run(env: &Env) -> Result<VerifyScrub, FaultError> {
    run_seeded(env, DEFAULT_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_is_clean_and_covers_the_lattice() {
        let out = run(&Env::tiny()).unwrap();
        assert!(out.is_clean(), "{}", out.render());
        assert_eq!(
            out.rows.len(),
            ProtectionMode::ALL.len() * CorruptionKind::ALL.len() * CRASH_POINTS.len()
        );
        // Every unbounced row lands events; write-protected stray rows
        // may legitimately bounce everything.
        assert!(out
            .rows
            .iter()
            .filter(|r| r.mode != ProtectionMode::WriteProtected
                || r.kind != CorruptionKind::StrayWrite)
            .all(|r| r.report.events > 0));
        // The headline claims: Verified ships zero silent bytes, while
        // Unprotected — same schedules — does not.
        assert_eq!(out.silent_bytes(ProtectionMode::Verified), 0);
        assert!(
            out.silent_bytes(ProtectionMode::Unprotected) > 0,
            "the unprotected sweep must exhibit the failure the defenses exist for"
        );
        // Write protection actually bounces something somewhere.
        assert!(out
            .rows
            .iter()
            .filter(|r| r.mode == ProtectionMode::WriteProtected)
            .any(|r| r.report.bytes_bounced > 0));
        // The scrub actually repairs clean-region damage somewhere.
        assert!(out.rows.iter().any(|r| r.report.bytes_repaired > 0));
        assert!(out.verdict_json().starts_with("{\"scrub\":\"clean\""));
    }

    #[test]
    fn sweep_is_reproducible() {
        let env = Env::tiny();
        let a = run_seeded(&env, 7).unwrap();
        let b = run_seeded(&env, 7).unwrap();
        assert_eq!(a.render(), b.render());
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn conservation_holds_for_every_mode_interval_and_seed() {
        // The satellite property: bytes repaired + bytes unrecoverable ==
        // bytes corrupted, for every protection mode and scrub interval,
        // across seeds — no corrupt byte is ever dropped or counted twice.
        let env = Env::tiny();
        let trace = env.traces.trace(6);
        let clients = trace.clients() as u32;
        let config = SimConfig::unified(BASE_BYTES, NVRAM_BLOCKS * BLOCK_SIZE);
        let plan = FaultPlanConfig::new(clients, trace.duration())
            .with_client_crashes(2)
            .with_torn_probability(0.5);
        for seed in [7u64, 42, 1234] {
            let schedule = FaultSchedule::compile(seed, &plan).unwrap();
            let corruption = CorruptionSchedule::compile(
                seed,
                &CorruptionPlanConfig::new(clients, trace.duration())
                    .with_stray_writes(4)
                    .with_bit_flips(3)
                    .with_decay_events(1),
            )
            .unwrap();
            for mode in ProtectionMode::ALL {
                for interval in [
                    None,
                    Some(SimDuration::from_secs(1)),
                    Some(SCRUB_INTERVAL),
                    Some(SimDuration::from_secs(3600)),
                ] {
                    let (_, oracle, report) = ClusterSim::new(config.clone())
                        .run_with_corruption_verified(
                            trace.ops(),
                            &schedule,
                            &corruption,
                            mode,
                            interval,
                        );
                    assert_eq!(
                        report.bytes_repaired + report.bytes_unrecoverable(),
                        report.bytes_corrupted_dirty + report.bytes_corrupted_clean,
                        "seed {seed} {mode} {interval:?}: {report:?}"
                    );
                    assert!(report.conservation_holds());
                    assert_eq!(oracle.summary().violations(), 0);
                    if mode == ProtectionMode::Verified {
                        assert_eq!(report.bytes_silent, 0, "seed {seed} {interval:?}");
                    }
                }
            }
        }
    }
}
