//! Quantifying the paper's cold-start caveat.
//!
//! "In reality, more bytes will die in the cache than suggested by
//! Figure 2 … the simulation started with empty caches, thereby
//! misclassifying some writes as new data rather than overwrites." This
//! experiment replays the steady-state suffix of a trace twice — once from
//! empty caches (the paper's method) and once with caches warmed by the
//! prefix — and measures how much absorption the cold start under-reports.

use nvfs_core::{warmup_cut, ClusterSim, SimConfig, TrafficStats};
use nvfs_report::{Cell, Table};
use nvfs_trace::op::OpStream;

use crate::env::Env;

/// Output of the warm-up comparison.
#[derive(Debug, Clone)]
pub struct Warmup {
    /// The rendered comparison.
    pub table: Table,
    /// Steady-state stats from cold caches.
    pub cold: TrafficStats,
    /// Steady-state stats from warmed caches.
    pub warm: TrafficStats,
}

impl Warmup {
    /// Additional absorbed bytes the warm run sees (the cold-start bias).
    pub fn absorption_bias_bytes(&self) -> u64 {
        self.warm
            .absorbed_bytes()
            .saturating_sub(self.cold.absorbed_bytes())
    }

    /// Read-hit-ratio gain from warm caches, in points.
    ///
    /// (Net-traffic percentages are *not* compared: dirty blocks inherited
    /// from the warm-up window are flushed during the measured suffix and
    /// would be charged against it without a matching write in the
    /// denominator.)
    pub fn hit_ratio_gain(&self) -> f64 {
        self.warm.read_hit_ratio() - self.cold.read_hit_ratio()
    }
}

/// Runs the comparison on Trace 7 with the unified model (8 MB + 1 MB),
/// warming with the first 30% of the trace.
pub fn run(env: &Env) -> Warmup {
    let ops = env.trace7().ops();
    let cfg = SimConfig::unified(8 << 20, 1 << 20);
    let warm = ClusterSim::new(cfg.clone()).run_with_warmup(ops, 0.3);
    // The same rounding rule `run_with_warmup` uses, so the cold suffix is
    // exactly the ops the warm run measures.
    let cut = warmup_cut(ops.len(), 0.3);
    let suffix: OpStream = ops.as_slice()[cut..].iter().cloned().collect();
    let cold = ClusterSim::new(cfg).run(&suffix);

    let mut table = Table::new(
        "Cold-start bias: the same steady-state suffix, empty vs warmed caches",
        &[
            "Caches",
            "Absorbed MB",
            "Net write traffic",
            "Read hit ratio",
        ],
    );
    for (name, s) in [
        ("empty (paper's method)", &cold),
        ("warmed by 30% prefix", &warm),
    ] {
        table.push_row(vec![
            Cell::from(name),
            Cell::f2(s.absorbed_bytes() as f64 / (1 << 20) as f64),
            Cell::Pct(s.net_write_traffic_pct()),
            Cell::Pct(100.0 * s.read_hit_ratio()),
        ]);
    }
    Warmup { table, cold, warm }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_start_understates_absorption() {
        let out = run(&Env::tiny());
        // The paper's predicted direction: warm caches absorb at least as
        // much (overwrites of warm-up-era data are classified correctly)
        // and hit at least as often.
        assert!(out.warm.absorbed_bytes() >= out.cold.absorbed_bytes());
        assert!(
            out.hit_ratio_gain() >= 0.0,
            "gain {:.4}",
            out.hit_ratio_gain()
        );
        // Identical inputs on both sides.
        assert_eq!(out.warm.app_write_bytes, out.cold.app_write_bytes);
    }
}
