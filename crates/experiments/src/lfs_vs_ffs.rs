//! LFS versus the traditional update-in-place baseline.
//!
//! §3 frames LFS as "optimized for writing": it "amortizes the cost of
//! writes by collecting large segments … while traditional file systems
//! seek to a predefined disk location to update metadata or to write
//! different files". This experiment services the same eight Sprite
//! file-system workloads both ways and compares disk cost.

use nvfs_disk::DiskParams;
use nvfs_lfs::ffs_baseline::{run_update_in_place, FfsConfig};
use nvfs_lfs::fs::{run_server, LfsConfig};
use nvfs_report::{Cell, Table};

use crate::env::Env;

/// Per-filesystem comparison row.
#[derive(Debug, Clone)]
pub struct Row {
    /// File system name.
    pub name: String,
    /// LFS disk busy time in ms.
    pub lfs_ms: f64,
    /// FFS disk busy time in ms.
    pub ffs_ms: f64,
    /// LFS disk write accesses (segments).
    pub lfs_accesses: usize,
    /// FFS disk write accesses (blocks + inodes).
    pub ffs_accesses: usize,
}

impl Row {
    /// FFS time divided by LFS time (the amortization factor).
    pub fn speedup(&self) -> f64 {
        self.ffs_ms / self.lfs_ms.max(1e-9)
    }
}

/// Output of the comparison.
#[derive(Debug, Clone)]
pub struct LfsVsFfs {
    /// The rendered table.
    pub table: Table,
    /// Per-filesystem rows, paper order.
    pub rows: Vec<Row>,
}

impl LfsVsFfs {
    /// The row for a named file system.
    pub fn of(&self, name: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// Runs both file systems over all eight workloads.
pub fn run(env: &Env) -> LfsVsFfs {
    let disk = DiskParams::sprite_era();
    let lfs = run_server(&env.server, &LfsConfig::direct());
    let mut table = Table::new(
        "LFS vs update-in-place (FFS-style): disk cost of the same workloads",
        &[
            "File system",
            "LFS busy (ms)",
            "FFS busy (ms)",
            "Speedup",
            "LFS ops",
            "FFS ops",
        ],
    );
    let mut rows = Vec::new();
    for (workload, lfs_report) in env.server.iter().zip(&lfs) {
        let ffs = run_update_in_place(workload, &FfsConfig::default());
        let lfs_time = lfs_report.disk_time(&disk);
        let row = Row {
            name: workload.name.to_string(),
            lfs_ms: lfs_time.total_ms,
            ffs_ms: ffs.disk_busy_ms,
            lfs_accesses: lfs_report.disk_write_accesses(),
            ffs_accesses: ffs.disk_write_accesses,
        };
        table.push_row(vec![
            Cell::from(row.name.clone()),
            Cell::f1(row.lfs_ms),
            Cell::f1(row.ffs_ms),
            Cell::f2(row.speedup()),
            Cell::from(row.lfs_accesses),
            Cell::from(row.ffs_accesses),
        ]);
        rows.push(row);
    }
    LfsVsFfs { table, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfs_wins_on_write_heavy_filesystems() {
        let out = run(&Env::tiny());
        // The bulk-write file systems show clear amortization.
        for name in ["/swap1", "/local"] {
            let r = out.of(name).unwrap();
            assert!(r.speedup() > 1.2, "{name}: speedup {:.2}", r.speedup());
        }
        // LFS always issues far fewer disk operations.
        for r in &out.rows {
            if r.ffs_accesses > 0 {
                assert!(r.lfs_accesses <= r.ffs_accesses, "{}", r.name);
            }
        }
    }

    #[test]
    fn fsync_bound_user6_gains_least_without_nvram() {
        // /user6's tiny fsync-forced writes defeat amortization — exactly
        // why §3 adds the NVRAM buffer on top of LFS.
        let out = run(&Env::tiny());
        let u6 = out.of("/user6").unwrap().speedup();
        let swap = out.of("/swap1").unwrap().speedup();
        assert!(u6 < swap, "user6 {u6:.2} vs swap {swap:.2}");
    }
}
