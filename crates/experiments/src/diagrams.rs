//! Figures 1 and 7 — the paper's two architecture diagrams, rendered as
//! ASCII and backed by live data structures.
//!
//! These figures carry no measurements; we render them for completeness
//! and use real simulator state to label them, so the diagrams cannot
//! drift from the implementation.

use nvfs_core::{ClusterSim, SimConfig};
use nvfs_lfs::layout::SegmentCause;
use nvfs_lfs::{SegmentWriter, SEGMENT_BYTES};
use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
use nvfs_types::{ByteRange, FileId, RangeSet, SimTime};

/// Renders Figure 1: the write-aside and unified cache models.
///
/// The annotations are live numbers from a tiny simulation, so the diagram
/// always reflects actual model behaviour.
pub fn figure1() -> String {
    let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
    let ops = traces.trace(0).ops();
    let wa = ClusterSim::new(SimConfig::write_aside(1 << 20, 512 << 10)).run(ops);
    let uni = ClusterSim::new(SimConfig::unified(1 << 20, 512 << 10)).run(ops);
    format!(
        r#"Figure 1: NVRAM cache models (annotated from a live tiny run)

      Write-aside model                      Unified model
   ┌───────────────────────┐          ┌───────────────────────┐
   │      Application      │          │      Application      │
   └──────────┬────────────┘          └──────────┬────────────┘
        writes│ (duplicated)               writes│ (to NVRAM only)
      ┌───────┴───────┐                          │
      ▼               ▼                          ▼
 ┌─────────┐    ┌──────────┐          ┌─────────┐    ┌──────────┐
 │ Volatile│    │  NVRAM   │          │ Volatile│◄──►│  NVRAM   │
 │  cache  │    │ (write-  │          │  cache  │demote │ dirty │
 │         │    │  only)   │          │ (clean) │promote│ +clean│
 └────┬────┘    └──────────┘          └────┬────┘    └────┬─────┘
      │ reads served here                  └──────┬───────┘
      ▼                                     reads │ served from either
 ┌──────────┐                                     ▼
 │  Server  │                               ┌──────────┐
 └──────────┘                               │  Server  │
      │                                     └──────────┘
      ▼                                          │
 ┌──────────┐                                    ▼
 │   Disk   │                               ┌──────────┐
 └──────────┘                               │   Disk   │
                                            └──────────┘
 NVRAM accesses: {:>8}              NVRAM accesses: {:>8}
 NVRAM reads:    {:>8}              NVRAM reads:    {:>8}
 bus bytes:      {:>8}              bus bytes:      {:>8}
"#,
        wa.nvram_accesses(),
        uni.nvram_accesses(),
        wa.nvram_reads,
        uni.nvram_reads,
        wa.bus_bytes,
        uni.bus_bytes,
    )
}

/// Renders Figure 7: LFS segment layout, built by actually writing files
/// through the segment writer (as the paper's figure narrates: file1 and
/// file2, then a block of file2 modified, file3 created, file1 extended).
pub fn figure7() -> String {
    let mut w = SegmentWriter::new(SEGMENT_BYTES);
    let chunk = |f: u32, bytes: u64| (FileId(f), RangeSet::from_range(ByteRange::new(0, bytes)));
    // (a) file1 and file2 written.
    w.write_all(
        SimTime::from_secs(1),
        &vec![chunk(1, 12 << 10), chunk(2, 12 << 10)],
        SegmentCause::Timeout,
        false,
    );
    // (b) middle block of file2 modified; file3 created; file1 extended.
    w.write_all(
        SimTime::from_secs(2),
        &vec![
            (FileId(2), RangeSet::from_range(ByteRange::at(4096, 4096))),
            chunk(3, 8 << 10),
            (
                FileId(1),
                RangeSet::from_range(ByteRange::at(12 << 10, 8 << 10)),
            ),
        ],
        SegmentCause::Timeout,
        false,
    );
    let mut out = String::from(
        "Figure 7: a log-structured file system (built live through the segment writer)\n\n",
    );
    for r in w.records() {
        out.push_str(&format!(
            "  SEGMENT {}: [{} data blocks from {} file(s)][{} metadata block(s)][summary {}B]  cause: {:?}\n",
            r.id,
            r.data_bytes / 4096,
            r.file_count,
            r.metadata_bytes() / 4096,
            nvfs_lfs::layout::SUMMARY_BYTES,
            r.cause,
        ));
    }
    // The usage table knows the modified block of file2 moved segments.
    let file2_first_block = nvfs_types::BlockId::new(FileId(2), 1);
    let _ = file2_first_block;
    out.push_str(&format!(
        "\n  live bytes after the rewrites: {} KB (old copies are dead, awaiting the cleaner)\n",
        w.usage().total_live_bytes() / 1024,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_reflects_model_behaviour() {
        let d = figure1();
        assert!(d.contains("Write-aside model"));
        assert!(d.contains("Unified model"));
        // The annotation encodes the §2.6 claims: write-aside NVRAM is
        // write-only.
        assert!(d.contains("NVRAM reads:           0"), "{d}");
    }

    #[test]
    fn figure7_shows_two_segments_with_metadata() {
        let d = figure7();
        assert!(d.contains("SEGMENT 0"));
        assert!(d.contains("SEGMENT 1"));
        assert!(d.contains("metadata block"));
        assert!(d.contains("live bytes"));
    }
}
