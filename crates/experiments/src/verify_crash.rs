//! Durability oracle — deterministic crash-point sweep (`nvfs verify-crash`).
//!
//! The other fault runners *account* for what crashes cost; this one
//! *verifies* that recovery is exactly correct. From one `(seed, scale)`
//! pair it enumerates every interesting crash point for every cache model
//! — full drains, mid-drain tears at each 4 KB block boundary, boards with
//! every battery dead, battery deaths one microsecond after the drain, and
//! crashes pinned just before and just after a flush-tick boundary — and
//! replays each one under the shadow durability model
//! ([`nvfs_oracle::Oracle`]). Any byte the durability contract promised
//! that recovery failed to produce is a [`LostDurable`] verdict; any byte
//! recovery produced that was never promised is [`Resurrected`]; any byte
//! replayed twice for one crash incident is a [`DoubleReplay`].
//!
//! The server half sweeps torn replay-segment writes: a crash tears the
//! recovery write at a fraction of its blocks, the segment's summary
//! checksum fails, [`roll_forward`] truncates it, and the rewrite from
//! NVRAM must reconverge byte-for-byte with an untorn baseline run.
//!
//! The WAL half sweeps the write-ahead-log server mode through its four
//! crash points (mid-append, post-append, mid-truncation, torn record) at
//! a seed-chosen quartile of every workload, replaying each run's event
//! stream through [`nvfs_oracle::WalJudge`] — a byte is promised the
//! instant its record is durably appended, so a lost acked record, a
//! resurrected torn record, or a truncation that outran writeback all
//! surface as typed verdicts.
//!
//! Everything is a pure function of `(seed, scale)` and byte-identical at
//! any `--jobs` count; CI diffs the rendered report against a golden copy.
//!
//! [`LostDurable`]: nvfs_oracle::Verdict::LostDurable
//! [`Resurrected`]: nvfs_oracle::Verdict::Resurrected
//! [`DoubleReplay`]: nvfs_oracle::Verdict::DoubleReplay
//! [`roll_forward`]: nvfs_lfs::SegmentWriter::roll_forward

use nvfs_core::{CacheModelKind, ClusterSim, SimConfig};
use nvfs_faults::{
    CrashPointKind, FaultError, FaultPlanConfig, FaultSchedule, ServerCrashFault, WalCrashFault,
    WalCrashPoint,
};
use nvfs_lfs::wal_fs::{run_filesystem_wal_faulted, WalFsReport, WalTraceEvent};
use nvfs_lfs::{run_filesystem_faulted, Chunks, LfsConfig, WalConfig, SEGMENT_BYTES};
use nvfs_oracle::{DurableMap, OracleSummary, WalEvent, WalJudge};
use nvfs_report::{Cell, Table};
use nvfs_types::{ClientId, SimDuration, SimTime, BLOCK_SIZE};

use crate::env::Env;
use crate::faults::{batteries_for, model_name, BASE_BYTES, DEFAULT_SEED, MODELS};

/// NVRAM board size for the sweep: four 4 KB blocks, so the mid-drain
/// sweep `TornDrainBlocks(0..=4)` crosses every interior block boundary of
/// a full board.
pub const NVRAM_BLOCKS: u64 = 4;

/// Flush-tick period the pre/post-flush crash points are pinned against
/// (the cache models' 5-second write-back sweep).
pub const FLUSH_TICK: SimDuration = SimDuration::from_secs(5);

/// Torn replay-write fractions swept on the server side.
pub const SERVER_FRACTIONS: [f64; 3] = [0.3, 0.6, 0.9];

/// The crash points swept per cache model, in report order.
pub fn crash_points() -> Vec<CrashPointKind> {
    let mut kinds = vec![
        CrashPointKind::FullDrain,
        CrashPointKind::DeadBoard,
        CrashPointKind::BatteryEdgeAlive,
        CrashPointKind::PreFlush,
        CrashPointKind::PostFlush,
    ];
    for blocks in 0..=NVRAM_BLOCKS {
        kinds.push(CrashPointKind::TornDrainBlocks(blocks));
    }
    kinds
}

/// One row of the client sweep: a cache model replayed through one crash
/// point across every trace, judged by the shadow oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashPointRow {
    /// Cache model swept.
    pub model: CacheModelKind,
    /// The crash-point dimension pinned for this row.
    pub kind: CrashPointKind,
    /// Merged oracle verdicts across the trace set.
    pub summary: OracleSummary,
    /// Bytes the reliability accounting says recoveries produced — must
    /// equal `summary.bytes_observed` or the row counts a violation.
    pub bytes_recovered: u64,
}

impl CrashPointRow {
    /// Oracle violations plus any oracle-vs-accounting disagreement.
    pub fn violations(&self) -> u64 {
        let mismatch = u64::from(self.summary.bytes_observed != self.bytes_recovered);
        self.summary.violations() + mismatch
    }
}

/// One row of the server sweep: a write-buffer mode torn at one fraction,
/// aggregated over workloads and crash-time quartiles, checked for
/// equivalence with its untorn baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerCheckRow {
    /// Write-buffer mode name.
    pub mode: &'static str,
    /// Torn fraction applied to the replay write.
    pub fraction: f64,
    /// Crash cases checked.
    pub crashes: u64,
    /// NVRAM bytes replayed across the cases.
    pub bytes_replayed: u64,
    /// Bytes rewritten after checksum-detected truncation.
    pub bytes_rewritten: u64,
    /// Equivalence checks evaluated.
    pub checks: u64,
    /// Checks that failed.
    pub violations: u64,
}

/// One row of the WAL sweep: one [`WalCrashPoint`] judged across every
/// server workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WalSweepRow {
    /// The WAL crash point swept.
    pub point: WalCrashPoint,
    /// Merged oracle verdicts across the workload set (each run's
    /// shutdown truncation-invariant check included).
    pub summary: OracleSummary,
}

/// Output of the crash-point sweep.
#[derive(Debug, Clone)]
pub struct VerifyCrash {
    /// The sweep seed.
    pub seed: u64,
    /// Client rows, in `MODELS` × [`crash_points`] order.
    pub rows: Vec<CrashPointRow>,
    /// Merged oracle summary (client and WAL halves).
    pub summary: OracleSummary,
    /// Server rows, in mode × fraction order.
    pub server_rows: Vec<ServerCheckRow>,
    /// WAL rows, in [`WalCrashPoint::ALL`] order.
    pub wal_rows: Vec<WalSweepRow>,
    /// Client sweep table.
    pub client_table: Table,
    /// Server sweep table.
    pub server_table: Table,
    /// WAL sweep table.
    pub wal_table: Table,
}

impl VerifyCrash {
    /// Total violations across all three halves of the sweep.
    pub fn violations(&self) -> u64 {
        self.rows.iter().map(CrashPointRow::violations).sum::<u64>()
            + self.server_rows.iter().map(|r| r.violations).sum::<u64>()
            + self
                .wal_rows
                .iter()
                .map(|r| r.summary.violations())
                .sum::<u64>()
    }

    /// Whether every crash point recovered exactly the durable contract.
    pub fn is_clean(&self) -> bool {
        self.violations() == 0
    }

    /// One-line machine-readable verdict (stable key order), as printed by
    /// `nvfs verify-crash` and parsed by CI.
    pub fn verdict_json(&self) -> String {
        let server_checks: u64 = self.server_rows.iter().map(|r| r.checks).sum();
        let server_violations: u64 = self.server_rows.iter().map(|r| r.violations).sum();
        format!(
            concat!(
                "{{\"oracle\":\"{}\",\"seed\":{},\"crash_points\":{},\"clean\":{},",
                "\"lost_durable\":{},\"resurrected\":{},\"double_replay\":{},",
                "\"server_checks\":{},\"server_violations\":{}}}"
            ),
            if self.is_clean() { "clean" } else { "violated" },
            self.seed,
            self.summary.crash_points,
            self.summary.clean,
            self.summary.lost_durable,
            self.summary.resurrected,
            self.summary.double_replay,
            server_checks,
            server_violations,
        )
    }

    /// All three tables plus the verdict line, as printed by
    /// `nvfs verify-crash`.
    pub fn render(&self) -> String {
        format!(
            "{}\n{}\n{}\n{}\n",
            self.client_table.render(),
            self.server_table.render(),
            self.wal_table.render(),
            self.verdict_json()
        )
    }

    /// Merged summary of the WAL rows alone.
    pub fn wal_summary(&self) -> OracleSummary {
        let mut s = OracleSummary::default();
        for row in &self.wal_rows {
            s.merge(&row.summary);
        }
        s
    }

    /// The WAL table plus its own verdict line, as printed by
    /// `nvfs verify-crash --wal` (the CI smoke golden).
    pub fn render_wal(&self) -> String {
        format!(
            "{}\n{}\n",
            self.wal_table.render(),
            self.wal_summary().verdict_json(self.seed)
        )
    }
}

/// The base fault plan for one trace: crash half the clients, torn drains
/// on half the crashes, batteries aging on an accelerated clock. Each
/// crash point then pins one dimension of this plan via
/// [`FaultSchedule::apply_crash_point`], leaving the rest seeded.
fn sweep_plan(clients: u32, duration: SimDuration, model: CacheModelKind) -> FaultPlanConfig {
    let micros = duration.as_micros();
    FaultPlanConfig::new(clients, duration)
        .with_client_crashes((clients / 2).max(1).min(clients))
        .with_batteries(batteries_for(model))
        .with_battery_mtbf(SimDuration::from_micros(micros.saturating_mul(4).max(1)))
        .with_torn_probability(0.5)
}

fn model_config(model: CacheModelKind) -> SimConfig {
    let nvram = NVRAM_BLOCKS * BLOCK_SIZE;
    match model {
        CacheModelKind::Volatile => SimConfig::volatile(BASE_BYTES),
        CacheModelKind::WriteAside => SimConfig::write_aside(BASE_BYTES, nvram),
        CacheModelKind::Unified => SimConfig::unified(BASE_BYTES, nvram),
        CacheModelKind::Hybrid => SimConfig::hybrid(BASE_BYTES, nvram),
    }
}

/// Runs the client half: every trace × model × crash point, one verified
/// run each, merged into per-(model, crash point) rows in sweep order.
pub fn client_sweep(env: &Env, seed: u64) -> Result<Vec<CrashPointRow>, FaultError> {
    let kinds = crash_points();
    let mut jobs = Vec::new();
    for model in MODELS {
        for kind in &kinds {
            for i in 0..env.traces.traces().len() {
                jobs.push((model, *kind, i));
            }
        }
    }
    let runs = nvfs_par::par_map(jobs, nvfs_par::jobs(), |(model, kind, i)| {
        let trace = env.traces.trace(i);
        let plan = sweep_plan(trace.clients() as u32, trace.duration(), model);
        let schedule = FaultSchedule::compile(seed ^ trace.number() as u64, &plan)?
            .apply_crash_point(kind, FLUSH_TICK);
        let (report, oracle) =
            ClusterSim::new(model_config(model)).run_with_faults_verified(trace.ops(), &schedule);
        Ok((
            model,
            kind,
            oracle.summary(),
            report.reliability.bytes_recovered,
        ))
    });
    // par_map preserves submission order, so folding in run order gives
    // the same rows at any job count.
    let mut rows: Vec<CrashPointRow> = Vec::new();
    for run in runs {
        let (model, kind, summary, recovered) = run?;
        match rows.last_mut() {
            Some(row) if row.model == model && row.kind == kind => {
                row.summary.merge(&summary);
                row.bytes_recovered += recovered;
            }
            _ => rows.push(CrashPointRow {
                model,
                kind,
                summary,
                bytes_recovered: recovered,
            }),
        }
    }
    Ok(rows)
}

/// Verified replay of the plain `nvfs faults` client schedules: the exact
/// plans [`crate::faults::model_reliability`] runs, judged by the shadow
/// oracle. Backs the `nvfs faults --oracle` flag, which must exit nonzero
/// if the accounted scorecard ever disagrees with the durability contract.
pub fn faults_oracle_summary(env: &Env, seed: u64) -> Result<OracleSummary, FaultError> {
    let mut jobs = Vec::new();
    for model in MODELS {
        for i in 0..env.traces.traces().len() {
            jobs.push((model, i));
        }
    }
    let runs = nvfs_par::par_map(jobs, nvfs_par::jobs(), |(model, i)| {
        let trace = env.traces.trace(i);
        let plan = crate::faults::client_plan(trace.clients() as u32, trace.duration(), model);
        let schedule = FaultSchedule::compile(seed ^ trace.number() as u64, &plan)?;
        let cfg = match model {
            CacheModelKind::Volatile => SimConfig::volatile(BASE_BYTES),
            CacheModelKind::WriteAside => {
                SimConfig::write_aside(BASE_BYTES, crate::faults::NVRAM_BYTES)
            }
            CacheModelKind::Unified => SimConfig::unified(BASE_BYTES, crate::faults::NVRAM_BYTES),
            CacheModelKind::Hybrid => SimConfig::hybrid(BASE_BYTES, crate::faults::NVRAM_BYTES),
        };
        let (_, oracle) = ClusterSim::new(cfg).run_with_faults_verified(trace.ops(), &schedule);
        Ok(oracle.summary())
    });
    let mut merged = OracleSummary::default();
    for run in runs {
        merged.merge(&run?);
    }
    Ok(merged)
}

/// Server write-buffer modes swept (the volatile `none` mode has nothing
/// to replay, hence nothing for a torn write to tear).
fn server_modes() -> Vec<(&'static str, LfsConfig)> {
    vec![
        ("fsync-absorb", LfsConfig::with_fsync_buffer(512 << 10)),
        ("stage-all", LfsConfig::with_staging_buffer(SEGMENT_BYTES)),
    ]
}

/// Runs the server half: each write-buffer mode crashed at the quartiles
/// of every workload, torn at each fraction, and checked for byte-exact
/// equivalence with the untorn baseline crash.
pub fn server_sweep(env: &Env) -> Vec<ServerCheckRow> {
    let duration = env.trace_config.duration().as_micros();
    let quartiles: Vec<SimTime> = (1..=3)
        .map(|q| SimTime::from_micros(duration * q / 4))
        .collect();
    let mut jobs = Vec::new();
    for (mode, config) in server_modes() {
        for &at in &quartiles {
            for i in 0..env.server.len() {
                jobs.push((mode, config, at, i));
            }
        }
    }
    let cases = nvfs_par::par_map(jobs, nvfs_par::jobs(), |(mode, config, at, i)| {
        let workload = &env.server[i];
        let untorn = ServerCrashFault {
            time: at,
            torn_segment: None,
        };
        let (base_report, base_rel) = run_filesystem_faulted(workload, &config, &[untorn]);
        let mut out = Vec::with_capacity(SERVER_FRACTIONS.len());
        for &fraction in &SERVER_FRACTIONS {
            let torn = ServerCrashFault {
                time: at,
                torn_segment: Some(fraction),
            };
            let (report, rel) = run_filesystem_faulted(workload, &config, &[torn]);
            // The torn run must reconverge with the untorn baseline: the
            // tear may cost a rewrite but never change what reaches disk.
            let checks: [bool; 5] = [
                report.data_bytes() == base_report.data_bytes(),
                rel.bytes_replayed == base_rel.bytes_replayed,
                rel.bytes_lost() == base_rel.bytes_lost(),
                report.records.iter().all(|r| r.is_valid()),
                rel.bytes_rewritten_torn % BLOCK_SIZE == 0,
            ];
            out.push(ServerCheckRow {
                mode,
                fraction,
                crashes: 1,
                bytes_replayed: rel.bytes_replayed,
                bytes_rewritten: rel.bytes_rewritten_torn,
                checks: checks.len() as u64,
                violations: checks.iter().filter(|ok| !**ok).count() as u64,
            });
        }
        out
    });
    // Aggregate per (mode, fraction), keeping mode × fraction order.
    let mut rows: Vec<ServerCheckRow> = Vec::new();
    for case in cases.into_iter().flatten() {
        match rows
            .iter_mut()
            .find(|r| r.mode == case.mode && r.fraction == case.fraction)
        {
            Some(row) => {
                row.crashes += case.crashes;
                row.bytes_replayed += case.bytes_replayed;
                row.bytes_rewritten += case.bytes_rewritten;
                row.checks += case.checks;
                row.violations += case.violations;
            }
            None => rows.push(case),
        }
    }
    rows
}

fn chunks_to_map(chunks: &Chunks) -> DurableMap {
    let mut m = DurableMap::new();
    for (file, ranges) in chunks {
        let slot = m.entry(*file).or_default();
        for r in ranges.iter() {
            slot.insert(r);
        }
    }
    m
}

/// Replays a WAL run's event stream through [`WalJudge`], including the
/// shutdown truncation-invariant check at `finish_at` (which must lie
/// strictly after the last crash).
pub fn judge_wal_report(
    client: ClientId,
    report: &WalFsReport,
    finish_at: SimTime,
) -> OracleSummary {
    let events: Vec<WalEvent> = report
        .trace
        .events
        .iter()
        .map(|e| match e {
            WalTraceEvent::Append { t, file, ranges } => WalEvent::Append {
                t: *t,
                file: *file,
                ranges: ranges.clone(),
            },
            WalTraceEvent::Delete { t, file } => WalEvent::Delete { t: *t, file: *file },
            WalTraceEvent::Crash(incident) => WalEvent::Crash {
                at: incident.at,
                replayed: chunks_to_map(&incident.replayed),
                disk: chunks_to_map(&incident.disk),
            },
        })
        .collect();
    let mut judge = WalJudge::new(client);
    judge.run(&events);
    judge.finish(finish_at, &chunks_to_map(&report.trace.final_disk));
    judge.summary()
}

/// Runs the WAL half: every [`WalCrashPoint`] crashed into every server
/// workload at a seed-chosen quartile, judged through [`WalJudge`], merged
/// into per-point rows in lattice order.
pub fn wal_sweep(env: &Env, seed: u64) -> Vec<WalSweepRow> {
    let duration = env.trace_config.duration().as_micros();
    let config = WalConfig::sprite();
    let mut jobs = Vec::new();
    for (point_idx, point) in WalCrashPoint::ALL.iter().enumerate() {
        for i in 0..env.server.len() {
            jobs.push((point_idx, *point, i));
        }
    }
    let runs = nvfs_par::par_map(jobs, nvfs_par::jobs(), |(point_idx, point, i)| {
        // A deterministic but seed- and case-varying quartile, so the
        // sweep crosses different log/dirty states without RNG state.
        let quartile = 1 + ((seed ^ i as u64 ^ point_idx as u64) % 3);
        let crash = WalCrashFault {
            time: SimTime::from_micros(duration * quartile / 4),
            point,
        };
        let (report, _) = run_filesystem_wal_faulted(&env.server[i], &config, &[crash]);
        let finish_at = SimTime::from_micros(duration * 2);
        (
            point,
            judge_wal_report(ClientId(i as u32), &report, finish_at),
        )
    });
    let mut rows: Vec<WalSweepRow> = Vec::new();
    for (point, summary) in runs {
        match rows.last_mut() {
            Some(row) if row.point == point => row.summary.merge(&summary),
            _ => rows.push(WalSweepRow { point, summary }),
        }
    }
    rows
}

/// Renders the WAL sweep table.
pub fn wal_table(seed: u64, rows: &[WalSweepRow]) -> Table {
    let mut table = Table::new(
        &format!("Durability oracle — WAL crash-point sweep (seed {seed})"),
        &[
            "crash point",
            "incidents",
            "clean",
            "lost",
            "resurrected",
            "double-replay",
            "expected KB",
            "observed KB",
        ],
    );
    let kb = |b: u64| Cell::f1(b as f64 / 1024.0);
    for row in rows {
        let s = &row.summary;
        table.push_row(vec![
            Cell::from(row.point.label()),
            Cell::Int(s.crash_points as i64),
            Cell::Int(s.clean as i64),
            Cell::Int(s.lost_durable as i64),
            Cell::Int(s.resurrected as i64),
            Cell::Int(s.double_replay as i64),
            kb(s.bytes_expected),
            kb(s.bytes_observed),
        ]);
    }
    table
}

/// Renders the client sweep table.
pub fn client_table(seed: u64, rows: &[CrashPointRow]) -> Table {
    let mut table = Table::new(
        &format!("Durability oracle — client crash-point sweep (seed {seed})"),
        &[
            "model",
            "crash point",
            "crashes",
            "clean",
            "lost",
            "resurrected",
            "double-replay",
            "expected KB",
            "observed KB",
        ],
    );
    let kb = |b: u64| Cell::f1(b as f64 / 1024.0);
    for row in rows {
        let s = &row.summary;
        table.push_row(vec![
            Cell::from(model_name(row.model)),
            Cell::Text(row.kind.to_string()),
            Cell::Int(s.crash_points as i64),
            Cell::Int(s.clean as i64),
            Cell::Int(s.lost_durable as i64),
            Cell::Int(s.resurrected as i64),
            Cell::Int(s.double_replay as i64),
            kb(s.bytes_expected),
            kb(s.bytes_observed),
        ]);
    }
    table
}

/// Renders the server sweep table.
pub fn server_table(seed: u64, rows: &[ServerCheckRow]) -> Table {
    let mut table = Table::new(
        &format!("Durability oracle — torn replay-write sweep (seed {seed})"),
        &[
            "write buffer",
            "torn fraction",
            "crashes",
            "replayed KB",
            "rewritten KB",
            "checks",
            "violations",
        ],
    );
    let kb = |b: u64| Cell::f1(b as f64 / 1024.0);
    for row in rows {
        table.push_row(vec![
            Cell::from(row.mode),
            Cell::Float {
                value: row.fraction,
                precision: 1,
            },
            Cell::Int(row.crashes as i64),
            kb(row.bytes_replayed),
            kb(row.bytes_rewritten),
            Cell::Int(row.checks as i64),
            Cell::Int(row.violations as i64),
        ]);
    }
    table
}

/// Runs the full sweep under `seed`.
pub fn run_seeded(env: &Env, seed: u64) -> Result<VerifyCrash, FaultError> {
    let rows = client_sweep(env, seed)?;
    let mut summary = OracleSummary::default();
    for row in &rows {
        summary.merge(&row.summary);
    }
    let server_rows = server_sweep(env);
    let wal_rows = wal_sweep(env, seed);
    for row in &wal_rows {
        summary.merge(&row.summary);
    }
    Ok(VerifyCrash {
        seed,
        client_table: client_table(seed, &rows),
        server_table: server_table(seed, &server_rows),
        wal_table: wal_table(seed, &wal_rows),
        rows,
        summary,
        server_rows,
        wal_rows,
    })
}

/// Runs the full sweep under the default seed.
pub fn run(env: &Env) -> Result<VerifyCrash, FaultError> {
    run_seeded(env, DEFAULT_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_is_clean_everywhere() {
        let out = run(&Env::tiny()).unwrap();
        assert!(out.is_clean(), "{}", out.render());
        assert!(out.summary.crash_points > 0);
        assert_eq!(out.summary.clean, out.summary.crash_points);
        // Every model × crash point row actually judged something.
        assert!(out.rows.iter().all(|r| r.summary.crash_points > 0));
        // The dead-board rows must observe zero bytes.
        for row in &out.rows {
            if row.kind == CrashPointKind::DeadBoard {
                assert_eq!(row.summary.bytes_observed, 0, "{}", row.kind);
            }
        }
        assert!(out.verdict_json().starts_with("{\"oracle\":\"clean\""));
    }

    #[test]
    fn sweep_is_reproducible() {
        let env = Env::tiny();
        let a = run_seeded(&env, 7).unwrap();
        let b = run_seeded(&env, 7).unwrap();
        assert_eq!(a.render(), b.render());
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.server_rows, b.server_rows);
    }

    #[test]
    fn plain_faults_schedules_are_clean_under_the_oracle() {
        let seed = crate::faults::DEFAULT_SEED;
        let s = faults_oracle_summary(&Env::tiny(), seed).unwrap();
        assert_eq!(s.violations(), 0, "{}", s.verdict_json(seed));
        assert!(s.crash_points > 0);
        assert!(s
            .verdict_json(seed)
            .starts_with("{\"oracle\":\"clean\",\"seed\":42"));
    }

    #[test]
    fn wal_rows_cover_the_crash_point_lattice() {
        let out = run(&Env::tiny()).unwrap();
        assert_eq!(out.wal_rows.len(), WalCrashPoint::ALL.len());
        for (row, point) in out.wal_rows.iter().zip(WalCrashPoint::ALL) {
            assert_eq!(row.point, point);
            // 8 workload crashes + 8 shutdown truncation checks per point.
            assert_eq!(row.summary.crash_points, 16, "{point}");
            assert_eq!(row.summary.violations(), 0, "{point}");
        }
        // Post-append crashes force real replays, so the sweep exercises
        // the promise machinery rather than judging empty incidents.
        assert!(out.wal_summary().bytes_observed > 0);
        assert!(out.render_wal().contains("WAL crash-point sweep"));
        assert!(out
            .wal_summary()
            .verdict_json(out.seed)
            .starts_with("{\"oracle\":\"clean\""));
    }

    #[test]
    fn server_rows_cover_every_mode_and_fraction() {
        let out = run(&Env::tiny()).unwrap();
        assert_eq!(out.server_rows.len(), 2 * SERVER_FRACTIONS.len());
        assert!(out.server_rows.iter().all(|r| r.violations == 0));
        assert!(
            out.server_rows.iter().any(|r| r.bytes_rewritten > 0),
            "some torn write must actually be detected and rewritten"
        );
    }
}
