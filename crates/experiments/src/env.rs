//! Shared workload environment for experiment runners.
//!
//! Generating the synthetic trace set is the most expensive step of most
//! experiments, so runners share one [`Env`]. The [`Scale`] enum is the
//! single source of truth for the four workload sizes (`tiny`, `small`,
//! `paper`, `mega`) — the CLI parses `--scale` straight into it via
//! [`FromStr`] and every consumer derives its trace/server configuration
//! from the same value.

use std::fmt;
use std::str::FromStr;

use nvfs_trace::synth::lfs_workload::{sprite_server_workloads, FsWorkload, ServerWorkloadConfig};
use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};

/// Workload scale: one name selecting both the client-trace and
/// server-workload configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Scale {
    /// Minimal workloads for unit tests.
    Tiny,
    /// Reduced-scale workloads preserving all shapes; the CLI default.
    #[default]
    Small,
    /// Full paper-scale workloads (24-hour traces; slow).
    Paper,
    /// Cluster-scale workloads: 256 mostly-idle clients over two days —
    /// the width stress for the sharded drive loop.
    Mega,
}

impl Scale {
    /// Every scale, smallest first.
    pub const ALL: [Scale; 4] = [Scale::Tiny, Scale::Small, Scale::Paper, Scale::Mega];

    /// The canonical lowercase name (`"tiny"`, `"small"`, `"paper"`,
    /// `"mega"`).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Paper => "paper",
            Scale::Mega => "mega",
        }
    }

    /// Client-trace configuration at this scale.
    pub fn trace_config(self) -> TraceSetConfig {
        match self {
            Scale::Tiny => TraceSetConfig::tiny(),
            Scale::Small => TraceSetConfig::small(),
            Scale::Paper => TraceSetConfig::paper(),
            Scale::Mega => TraceSetConfig::mega(),
        }
    }

    /// Server LFS-workload configuration at this scale.
    pub fn server_config(self) -> ServerWorkloadConfig {
        match self {
            Scale::Tiny => ServerWorkloadConfig::tiny(),
            Scale::Small => ServerWorkloadConfig::small(),
            Scale::Paper => ServerWorkloadConfig::paper(),
            Scale::Mega => ServerWorkloadConfig::mega(),
        }
    }

    /// Generates the full workload environment at this scale.
    pub fn env(self) -> Env {
        Env::new(self.trace_config(), self.server_config())
    }
}

impl FromStr for Scale {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tiny" => Ok(Scale::Tiny),
            "small" => Ok(Scale::Small),
            "paper" => Ok(Scale::Paper),
            "mega" => Ok(Scale::Mega),
            other => Err(format!("unknown scale {other:?} (tiny|small|paper|mega)")),
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Pre-generated workloads at a chosen scale.
#[derive(Debug, Clone)]
pub struct Env {
    /// The eight client traces.
    pub traces: SpriteTraceSet,
    /// The eight server file-system workloads.
    pub server: Vec<FsWorkload>,
    /// The client trace configuration used.
    pub trace_config: TraceSetConfig,
}

impl Env {
    /// Builds an environment from explicit configurations.
    pub fn new(trace_config: TraceSetConfig, server_config: ServerWorkloadConfig) -> Self {
        Env {
            traces: SpriteTraceSet::generate(&trace_config),
            server: sprite_server_workloads(&server_config),
            trace_config,
        }
    }

    /// Paper-scale environment (24-hour traces; slow — intended for the
    /// final benchmark runs).
    pub fn paper() -> Self {
        Scale::Paper.env()
    }

    /// Reduced-scale environment preserving all workload shapes; the
    /// default for examples and integration tests.
    pub fn small() -> Self {
        Scale::Small.env()
    }

    /// Minimal environment for unit tests.
    pub fn tiny() -> Self {
        Scale::Tiny.env()
    }

    /// The paper's "typical" trace 7 (zero-based index 6), used by
    /// Figures 4–6.
    pub fn trace7(&self) -> &nvfs_trace::synth::Trace {
        self.traces.trace(6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_env_has_all_workloads() {
        let env = Env::tiny();
        assert_eq!(env.traces.traces().len(), 8);
        assert_eq!(env.server.len(), 8);
        assert_eq!(env.trace7().number(), 7);
    }

    #[test]
    fn scale_round_trips_through_name() {
        for scale in Scale::ALL {
            assert_eq!(scale.name().parse::<Scale>(), Ok(scale));
            assert_eq!(scale.to_string(), scale.name());
        }
        assert_eq!(Scale::default(), Scale::Small);
    }

    #[test]
    fn experiments_doc_enumerates_every_scale() {
        // The CLI and EXPERIMENTS.md must agree on the valid scale set —
        // `mega` once existed in code but not in the docs.
        let doc =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../EXPERIMENTS.md"))
                .unwrap();
        let enumeration = Scale::ALL
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join("|");
        assert!(
            doc.contains(&format!("--scale {enumeration}")),
            "EXPERIMENTS.md does not enumerate `--scale {enumeration}`"
        );
    }

    #[test]
    fn scale_rejects_unknown_names_with_the_valid_set() {
        let err = "huge".parse::<Scale>().unwrap_err();
        assert_eq!(err, "unknown scale \"huge\" (tiny|small|paper|mega)");
    }
}
