//! Shared workload environment for experiment runners.
//!
//! Generating the synthetic trace set is the most expensive step of most
//! experiments, so runners share one [`Env`].

use nvfs_trace::synth::lfs_workload::{sprite_server_workloads, FsWorkload, ServerWorkloadConfig};
use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};

/// Pre-generated workloads at a chosen scale.
#[derive(Debug, Clone)]
pub struct Env {
    /// The eight client traces.
    pub traces: SpriteTraceSet,
    /// The eight server file-system workloads.
    pub server: Vec<FsWorkload>,
    /// The client trace configuration used.
    pub trace_config: TraceSetConfig,
}

impl Env {
    /// Builds an environment from explicit configurations.
    pub fn new(trace_config: TraceSetConfig, server_config: ServerWorkloadConfig) -> Self {
        Env {
            traces: SpriteTraceSet::generate(&trace_config),
            server: sprite_server_workloads(&server_config),
            trace_config,
        }
    }

    /// Paper-scale environment (24-hour traces; slow — intended for the
    /// final benchmark runs).
    pub fn paper() -> Self {
        Env::new(TraceSetConfig::paper(), ServerWorkloadConfig::paper())
    }

    /// Reduced-scale environment preserving all workload shapes; the
    /// default for examples and integration tests.
    pub fn small() -> Self {
        Env::new(TraceSetConfig::small(), ServerWorkloadConfig::small())
    }

    /// Minimal environment for unit tests.
    pub fn tiny() -> Self {
        Env::new(TraceSetConfig::tiny(), ServerWorkloadConfig::tiny())
    }

    /// The paper's "typical" trace 7 (zero-based index 6), used by
    /// Figures 4–6.
    pub fn trace7(&self) -> &nvfs_trace::synth::Trace {
        self.traces.trace(6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_env_has_all_workloads() {
        let env = Env::tiny();
        assert_eq!(env.traces.traces().len(), 8);
        assert_eq!(env.server.len(), 8);
        assert_eq!(env.trace7().number(), 7);
    }
}
