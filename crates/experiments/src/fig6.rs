//! Figure 6 — benefits of additional memory: volatile versus unified NVRAM
//! at 8 MB and 16 MB base caches, plus the §2.7 cost-effectiveness verdict.

use nvfs_core::cost::{evaluate_against_volatile, CostVerdict, TrafficPoint};
use nvfs_core::CacheModelKind;
use nvfs_report::{Figure, Series};

use crate::env::Env;
use crate::fig5::model_curve;

/// Extra memory swept, in megabytes.
pub const EXTRA_MB: [f64; 6] = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0];

/// Output of the Figure 6 reproduction.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Series `Volatile-8MB`, `Volatile-16MB`, `Unified-8MB`,
    /// `Unified-16MB`: x = extra MB, y = net total traffic %.
    pub figure: Figure,
    /// §2.7 verdicts for NVRAM added on an 8 MB volatile base.
    pub verdicts_8mb: Vec<CostVerdict>,
    /// §2.7 verdicts for NVRAM added on a 16 MB volatile base.
    pub verdicts_16mb: Vec<CostVerdict>,
}

fn to_points(curve: &[(f64, f64)]) -> Vec<TrafficPoint> {
    curve
        .iter()
        .map(|&(x, y)| TrafficPoint {
            extra_mb: x,
            traffic_pct: y,
        })
        .collect()
}

/// Runs the volatile-vs-NVRAM comparison on both base sizes.
pub fn run(env: &Env) -> Fig6 {
    let mut figure = Figure::new(
        "Figure 6: Benefits of additional memory (Trace 7)",
        "Megabytes extra memory",
        "Net total traffic (%)",
    );
    let mut verdicts = Vec::new();
    for base_mb in [8u64, 16] {
        let base = base_mb << 20;
        let vol = model_curve(env, CacheModelKind::Volatile, base, &EXTRA_MB);
        let uni = model_curve(env, CacheModelKind::Unified, base, &EXTRA_MB);
        figure.push(Series::new(&format!("Volatile-{base_mb}MB"), vol.clone()));
        figure.push(Series::new(&format!("Unified-{base_mb}MB"), uni.clone()));
        // Drop the degenerate 0-extra point from the unified verdicts.
        let uni_points: Vec<TrafficPoint> = to_points(&uni)
            .into_iter()
            .filter(|p| p.extra_mb > 0.0)
            .collect();
        verdicts.push(evaluate_against_volatile(&uni_points, &to_points(&vol)));
    }
    let verdicts_16mb = verdicts.pop().expect("two bases evaluated");
    let verdicts_8mb = verdicts.pop().expect("two bases evaluated");
    Fig6 {
        figure,
        verdicts_8mb,
        verdicts_16mb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_series_present() {
        let out = run(&Env::tiny());
        assert_eq!(out.figure.all_series().len(), 4);
        for s in out.figure.all_series() {
            assert_eq!(s.points.len(), EXTRA_MB.len());
        }
    }

    #[test]
    fn bigger_base_means_less_traffic() {
        let out = run(&Env::tiny());
        let v8 = out
            .figure
            .series("Volatile-8MB")
            .unwrap()
            .y_at(0.0)
            .unwrap();
        let v16 = out
            .figure
            .series("Volatile-16MB")
            .unwrap()
            .y_at(0.0)
            .unwrap();
        assert!(
            v16 <= v8 + 1e-9,
            "16 MB base should not be worse: {v16} vs {v8}"
        );
    }

    #[test]
    fn nvram_equivalent_dram_grows_with_base_size() {
        // §2.7: with a large volatile cache already absorbing reads, a
        // little NVRAM matches many megabytes of DRAM.
        let out = run(&Env::tiny());
        let eq = |vs: &[CostVerdict], mb: f64| {
            vs.iter()
                .find(|v| (v.nvram_mb - mb).abs() < 1e-9)
                .and_then(|v| v.equivalent_dram_mb)
        };
        // At a 16 MB base, half a megabyte of NVRAM is worth at least as
        // many DRAM megabytes as at an 8 MB base (or is unreachable by
        // DRAM entirely, i.e. None).
        match (eq(&out.verdicts_8mb, 0.5), eq(&out.verdicts_16mb, 0.5)) {
            (Some(a), Some(b)) => assert!(b >= a * 0.5, "8MB-base {a}, 16MB-base {b}"),
            (_, None) => {} // DRAM cannot match it at all: NVRAM wins outright.
            (None, Some(_)) => panic!("DRAM unreachable at small base but reachable at large"),
        }
    }
}
