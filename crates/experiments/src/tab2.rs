//! Table 2 — summary of types of write traffic: the fate of every byte
//! written into an infinite non-volatile cache.

use nvfs_core::{ByteFate, LifetimeLog};
use nvfs_report::{Cell, Table};

use crate::env::Env;
use crate::fig2;

/// Aggregated fate totals for a set of traces.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FateTotals {
    /// Bytes overwritten in the cache.
    pub overwritten: u64,
    /// Bytes deleted/truncated in the cache.
    pub deleted: u64,
    /// Bytes recalled by consistency (includes migration flushes).
    pub called_back: u64,
    /// Bytes written through during concurrent write-sharing.
    pub concurrent: u64,
    /// Bytes remaining in the cache at trace end.
    pub remaining: u64,
    /// Total application writes.
    pub total: u64,
}

impl FateTotals {
    fn add(&mut self, log: &LifetimeLog) {
        let fates = log.bytes_by_fate();
        let get = |f: ByteFate| fates.get(&f).copied().unwrap_or(0);
        self.overwritten += get(ByteFate::Overwritten);
        self.deleted += get(ByteFate::Deleted);
        self.called_back += get(ByteFate::CalledBack) + get(ByteFate::Migrated);
        self.concurrent += get(ByteFate::Concurrent);
        self.remaining += get(ByteFate::Remaining);
        self.total += log.total_write_bytes;
    }

    /// Fraction absorbed (overwritten + deleted).
    pub fn absorbed_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.overwritten + self.deleted) as f64 / self.total as f64
    }

    /// Fraction causing server traffic (called back + concurrent).
    pub fn server_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.called_back + self.concurrent) as f64 / self.total as f64
    }

    fn pct(&self, v: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * v as f64 / self.total as f64
        }
    }
}

/// Output of the Table 2 reproduction.
#[derive(Debug, Clone)]
pub struct Tab2 {
    /// The rendered table (rows as in the paper, columns for All traces and
    /// for the typical traces only).
    pub table: Table,
    /// Totals over all eight traces.
    pub all: FateTotals,
    /// Totals excluding traces 3 and 4.
    pub typical: FateTotals,
}

/// Runs the fate analysis over every trace in `env`.
pub fn run(env: &Env) -> Tab2 {
    run_with_logs(env, &fig2::run(env).logs)
}

/// Builds Table 2 from precomputed lifetime logs (callers that already ran
/// the Figure 2 analysis, such as the scorecard, avoid repeating it).
pub fn run_with_logs(env: &Env, logs: &[LifetimeLog]) -> Tab2 {
    let mut all = FateTotals::default();
    let mut typical = FateTotals::default();
    for (trace, log) in env.traces.traces().iter().zip(logs) {
        all.add(log);
        if !trace.is_large_file_workload() {
            typical.add(log);
        }
    }

    let mb = |v: u64| Cell::f1(v as f64 / (1 << 20) as f64);
    let mut table = Table::new(
        "Table 2: Summary of types of write traffic",
        &[
            "Traffic type",
            "MB (all)",
            "% (all)",
            "MB (no 3 or 4)",
            "% (no 3 or 4)",
        ],
    );
    let mut row = |name: &str, a: u64, t: u64| {
        table.push_row(vec![
            Cell::from(name),
            mb(a),
            Cell::Pct(all.pct(a)),
            mb(t),
            Cell::Pct(typical.pct(t)),
        ]);
    };
    row("Overwritten", all.overwritten, typical.overwritten);
    row("Deleted", all.deleted, typical.deleted);
    row(
        "Total absorbed",
        all.overwritten + all.deleted,
        typical.overwritten + typical.deleted,
    );
    row("Called back", all.called_back, typical.called_back);
    row("Concurrent writes", all.concurrent, typical.concurrent);
    row(
        "Total server writes",
        all.called_back + all.concurrent,
        typical.called_back + typical.concurrent,
    );
    row("Remaining", all.remaining, typical.remaining);
    row("Total application writes", all.total, typical.total);

    Tab2 {
        table,
        all,
        typical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fates_partition_total_writes() {
        let out = run(&Env::tiny());
        for t in [&out.all, &out.typical] {
            let sum = t.overwritten + t.deleted + t.called_back + t.concurrent + t.remaining;
            assert_eq!(sum, t.total);
        }
        assert_eq!(out.table.row_count(), 8);
    }

    #[test]
    fn all_traces_absorb_more_than_typical() {
        // Traces 3 and 4 are dominated by short-lived simulation output, so
        // including them raises the absorbed fraction (85% vs 65% in the
        // paper).
        let out = run(&Env::tiny());
        assert!(out.all.absorbed_fraction() > out.typical.absorbed_fraction());
    }

    #[test]
    fn concurrent_writes_are_minuscule() {
        let out = run(&Env::tiny());
        assert!(out.all.pct(out.all.concurrent) < 2.0);
    }
}
