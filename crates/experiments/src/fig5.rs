//! Figure 5 — effect of the cache models on net total (read + write)
//! traffic, Trace 7, 8 MB of base volatile cache.

use nvfs_core::{CacheModelKind, ClusterSim, SimConfig};
use nvfs_report::{Figure, Series};

use crate::env::Env;

/// Extra memory swept, in megabytes.
pub const EXTRA_MB: [f64; 5] = [0.0, 1.0, 2.0, 4.0, 8.0];

/// Base volatile cache size.
pub const BASE_BYTES: u64 = 8 << 20;

/// Output of the Figure 5 reproduction.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// Series `volatile`, `unified`, `write-aside`: x = extra MB,
    /// y = net total traffic %.
    pub figure: Figure,
}

impl Fig5 {
    /// Total traffic of `model` with `extra` megabytes added.
    pub fn traffic(&self, model: &str, extra: f64) -> Option<f64> {
        self.figure.series(model)?.y_at(extra)
    }
}

/// Builds the total-traffic curve of one model over the extra-memory grid.
pub fn model_curve(env: &Env, model: CacheModelKind, base: u64, grid: &[f64]) -> Vec<(f64, f64)> {
    let trace = env.trace7();
    // Grid points are independent simulations; fan out and rejoin in grid
    // order, so the curve matches the sequential build exactly.
    nvfs_par::par_map(grid.to_vec(), nvfs_par::jobs(), |extra| {
        let nv = (extra * (1 << 20) as f64) as u64;
        let cfg = match model {
            CacheModelKind::Volatile => SimConfig::volatile(base + nv),
            CacheModelKind::WriteAside if nv > 0 => SimConfig::write_aside(base, nv),
            CacheModelKind::Unified if nv > 0 => SimConfig::unified(base, nv),
            // Zero extra NVRAM degenerates to the volatile model.
            _ => SimConfig::volatile(base),
        };
        (
            extra,
            ClusterSim::new(cfg)
                .run(trace.ops())
                .net_total_traffic_pct(),
        )
    })
}

/// Runs the model comparison of Figure 5.
pub fn run(env: &Env) -> Fig5 {
    let mut figure = Figure::new(
        "Figure 5: Effect of cache models on net total traffic (Trace 7, 8 MB base)",
        "Megabytes extra memory",
        "Net total traffic (%)",
    );
    figure.push(Series::new(
        "volatile",
        model_curve(env, CacheModelKind::Volatile, BASE_BYTES, &EXTRA_MB),
    ));
    figure.push(Series::new(
        "unified",
        model_curve(env, CacheModelKind::Unified, BASE_BYTES, &EXTRA_MB),
    ));
    figure.push(Series::new(
        "write-aside",
        model_curve(env, CacheModelKind::WriteAside, BASE_BYTES, &EXTRA_MB),
    ));
    Fig5 { figure }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unified_beats_write_aside_with_enough_nvram() {
        let out = run(&Env::tiny());
        let at = |m: &str, x: f64| out.traffic(m, x).unwrap();
        // "The unified model performs better than the write-aside model
        // because it reduces both read traffic and write traffic."
        assert!(at("unified", 8.0) <= at("write-aside", 8.0) + 1e-9);
    }

    #[test]
    fn all_models_start_from_the_same_baseline() {
        let out = run(&Env::tiny());
        let v = out.traffic("volatile", 0.0).unwrap();
        let u = out.traffic("unified", 0.0).unwrap();
        let w = out.traffic("write-aside", 0.0).unwrap();
        assert_eq!(v, u);
        assert_eq!(v, w);
    }

    #[test]
    fn nvram_models_cut_write_traffic_vs_baseline() {
        let out = run(&Env::tiny());
        let base = out.traffic("volatile", 0.0).unwrap();
        assert!(out.traffic("unified", 4.0).unwrap() < base);
        assert!(out.traffic("write-aside", 4.0).unwrap() < base);
    }
}
