//! The reproduction scorecard: every paper claim evaluated programmatically.
//!
//! Each entry names a claim from Baker et al. (ASPLOS 1992), the paper's
//! number, the value this reproduction measures, and the tolerance band the
//! measurement must fall in (the same bands `tests/paper_shapes.rs`
//! asserts). [`run`] produces a table a release pipeline can gate on.

use nvfs_report::{Cell, Table};

use crate::env::Env;
use crate::{
    bus_nvram, disk_sort, fig2, fig3, fig4, fig5, lfs_wal_vs_buffer, presto, read_latency,
    scrub_overhead, tab1, tab2, tab3, verify_net, write_buffer,
};

/// One evaluated claim.
#[derive(Debug, Clone)]
pub struct Check {
    /// Claim identifier (matches DESIGN.md's experiment index).
    pub id: &'static str,
    /// The paper's statement of the number.
    pub paper: &'static str,
    /// The measured value.
    pub measured: f64,
    /// Inclusive tolerance band.
    pub band: (f64, f64),
}

impl Check {
    /// Whether the measurement lies inside the band.
    pub fn passed(&self) -> bool {
        self.measured >= self.band.0 && self.measured <= self.band.1
    }
}

/// The full scorecard.
#[derive(Debug, Clone)]
pub struct Scorecard {
    /// All evaluated claims.
    pub checks: Vec<Check>,
    /// The rendered table.
    pub table: Table,
}

impl Scorecard {
    /// Number of passing checks.
    pub fn passed(&self) -> usize {
        self.checks.iter().filter(|c| c.passed()).count()
    }

    /// Whether every check passed.
    pub fn all_passed(&self) -> bool {
        self.passed() == self.checks.len()
    }

    /// A failing check's id, if any (for error messages).
    pub fn first_failure(&self) -> Option<&Check> {
        self.checks.iter().find(|c| !c.passed())
    }
}

/// The independent sub-experiment results the scorecard evaluates.
///
/// Gathered up front (in parallel when jobs > 1) so every check below
/// reads from an already-computed result; the check order — and therefore
/// the rendered table — is identical either way.
#[allow(clippy::type_complexity)]
fn gather(
    env: &Env,
) -> (
    tab1::Tab1,
    fig2::Fig2,
    fig3::Fig3,
    fig4::Fig4,
    fig5::Fig5,
    tab3::Tab3,
    write_buffer::WriteBuffer,
    disk_sort::DiskSort,
    bus_nvram::BusNvram,
    presto::Presto,
    read_latency::ReadLatency,
    verify_net::VerifyNet,
    lfs_wal_vs_buffer::WalVsBuffer,
    scrub_overhead::ScrubOverhead,
) {
    // Each sub-experiment runs in its own submission-indexed obs task
    // frame (the same contract `par_map` gives its items) so the metric
    // shards it records land in the global registry with a deterministic
    // path — on worker threads the frame is also what flushes them at
    // all; a bare `scope.spawn` would drop its thread-locals on exit.
    let base = nvfs_obs::task_path();
    if nvfs_par::jobs() <= 1 {
        return (
            nvfs_obs::task_frame(&base, 0, tab1::run),
            nvfs_obs::task_frame(&base, 1, || fig2::run(env)),
            nvfs_obs::task_frame(&base, 2, || fig3::run(env)),
            nvfs_obs::task_frame(&base, 3, || fig4::run(env)),
            nvfs_obs::task_frame(&base, 4, || fig5::run(env)),
            nvfs_obs::task_frame(&base, 5, || tab3::run(env)),
            nvfs_obs::task_frame(&base, 6, || write_buffer::run(env)),
            nvfs_obs::task_frame(&base, 7, disk_sort::run),
            nvfs_obs::task_frame(&base, 8, || bus_nvram::run(env)),
            nvfs_obs::task_frame(&base, 9, presto::run),
            nvfs_obs::task_frame(&base, 10, read_latency::run),
            nvfs_obs::task_frame(&base, 11, || {
                verify_net::run(env).expect("verify-net sweep failed")
            }),
            nvfs_obs::task_frame(&base, 12, || lfs_wal_vs_buffer::run(env)),
            nvfs_obs::task_frame(&base, 13, || scrub_overhead::run(env)),
        );
    }
    // The sub-experiments return heterogeneous types, so fan out with
    // scoped spawns rather than par_map; joins happen in a fixed order and
    // every run seeds its own RNGs, so the results match a sequential run.
    std::thread::scope(|s| {
        let base = &base;
        let t1 = s.spawn(move || nvfs_obs::task_frame(base, 0, tab1::run));
        let f2 = s.spawn(move || nvfs_obs::task_frame(base, 1, || fig2::run(env)));
        let f3 = s.spawn(move || nvfs_obs::task_frame(base, 2, || fig3::run(env)));
        let f4 = s.spawn(move || nvfs_obs::task_frame(base, 3, || fig4::run(env)));
        let f5 = s.spawn(move || nvfs_obs::task_frame(base, 4, || fig5::run(env)));
        let t3 = s.spawn(move || nvfs_obs::task_frame(base, 5, || tab3::run(env)));
        let wb = s.spawn(move || nvfs_obs::task_frame(base, 6, || write_buffer::run(env)));
        let ds = s.spawn(move || nvfs_obs::task_frame(base, 7, disk_sort::run));
        let bn = s.spawn(move || nvfs_obs::task_frame(base, 8, || bus_nvram::run(env)));
        let p = s.spawn(move || nvfs_obs::task_frame(base, 9, presto::run));
        let rl = s.spawn(move || nvfs_obs::task_frame(base, 10, read_latency::run));
        let vn = s.spawn(move || {
            nvfs_obs::task_frame(base, 11, || {
                verify_net::run(env).expect("verify-net sweep failed")
            })
        });
        let wl = s.spawn(move || nvfs_obs::task_frame(base, 12, || lfs_wal_vs_buffer::run(env)));
        let so = s.spawn(move || nvfs_obs::task_frame(base, 13, || scrub_overhead::run(env)));
        (
            t1.join().expect("tab1 panicked"),
            f2.join().expect("fig2 panicked"),
            f3.join().expect("fig3 panicked"),
            f4.join().expect("fig4 panicked"),
            f5.join().expect("fig5 panicked"),
            t3.join().expect("tab3 panicked"),
            wb.join().expect("write_buffer panicked"),
            ds.join().expect("disk_sort panicked"),
            bn.join().expect("bus_nvram panicked"),
            p.join().expect("presto panicked"),
            rl.join().expect("read_latency panicked"),
            vn.join().expect("verify_net panicked"),
            wl.join().expect("lfs_wal_vs_buffer panicked"),
            so.join().expect("scrub_overhead panicked"),
        )
    })
}

/// Evaluates every claim over `env`.
pub fn run(env: &Env) -> Scorecard {
    let (t1, f2, f3, f4, f5, t3, wb, ds, bn, p, rl, vn, wl, so) = gather(env);

    let mut checks = Vec::new();
    let mut push = |id, paper, measured, band| {
        checks.push(Check {
            id,
            paper,
            measured,
            band,
        })
    };

    // Table 1.
    push(
        "tab1.ratio16",
        "NVRAM ≈4x DRAM per MB at 16 MB",
        t1.ratio_at_16mb,
        (3.5, 4.5),
    );

    // Figure 2.
    let typical_30s: f64 = f2
        .die_within_30s
        .iter()
        .filter(|(n, _)| *n != 3 && *n != 4)
        .map(|(_, f)| 100.0 * f)
        .sum::<f64>()
        / 6.0;
    let large_30s: f64 = f2
        .die_within_30s
        .iter()
        .filter(|(n, _)| *n == 3 || *n == 4)
        .map(|(_, f)| 100.0 * f)
        .sum::<f64>()
        / 2.0;
    let large_30m: f64 = f2
        .die_within_30m
        .iter()
        .filter(|(n, _)| *n == 3 || *n == 4)
        .map(|(_, f)| 100.0 * f)
        .sum::<f64>()
        / 2.0;
    push(
        "fig2.typical30s",
        "35-50% of bytes die in 30 s (typical)",
        typical_30s,
        (25.0, 55.0),
    );
    push(
        "fig2.large30s",
        "5-10% die in 30 s (traces 3-4)",
        large_30s,
        (2.0, 18.0),
    );
    push(
        "fig2.large30m",
        ">80% die in 30 min (traces 3-4)",
        large_30m,
        (65.0, 100.0),
    );

    // Table 2 (reusing the Figure 2 lifetime logs).
    let t2 = tab2::run_with_logs(env, &f2.logs);
    push(
        "tab2.absorbed.all",
        "85% absorbed (all traces)",
        100.0 * t2.all.absorbed_fraction(),
        (75.0, 92.0),
    );
    push(
        "tab2.absorbed.typical",
        "65% absorbed (excl. 3-4)",
        100.0 * t2.typical.absorbed_fraction(),
        (55.0, 80.0),
    );
    push(
        "tab2.concurrent",
        "concurrent writes minuscule (<1%)",
        100.0 * t2.all.concurrent as f64 / t2.all.total.max(1) as f64,
        (0.0, 2.0),
    );

    // Figure 3 (Trace 7).
    let at = |mb: f64| f3.traffic(7, mb).expect("trace 7 swept");
    push(
        "fig3.1mb",
        "1 MB NVRAM cuts ~50% of write traffic",
        100.0 - at(1.0),
        (40.0, 80.0),
    );
    push(
        "fig3.tail",
        "<10% more from 1 MB to 8 MB",
        at(1.0) - at(8.0),
        (0.0, 12.0),
    );

    // Figure 4.
    let lru = f4.traffic("lru", 1.0).expect("swept");
    let omni = f4.traffic("omniscient", 1.0).expect("swept");
    let random = f4.traffic("random", 1.0).expect("swept");
    push(
        "fig4.omniscient",
        "omniscient 10-15% better than LRU (<=22%)",
        100.0 * (lru - omni) / lru,
        (0.0, 30.0),
    );
    push(
        "fig4.random",
        "random almost as good as LRU",
        100.0 * (random - lru) / lru,
        (-10.0, 30.0),
    );

    // Figure 5.
    let vol8 = f5.traffic("volatile", 8.0).expect("swept");
    let uni8 = f5.traffic("unified", 8.0).expect("swept");
    let wa8 = f5.traffic("write-aside", 8.0).expect("swept");
    push(
        "fig5.unified",
        "unified beats volatile at +8 MB",
        vol8 - uni8,
        (0.0, 40.0),
    );
    // The crossover needs read working sets larger than the cache, which
    // the tiny test scale lacks; `tests/paper_shapes.rs` asserts it
    // strictly at the small scale.
    push(
        "fig5.writeaside",
        "write-aside trails volatile at +8 MB",
        wa8 - vol8,
        (-5.0, 40.0),
    );

    // Table 3.
    let u6 = t3.report("/user6").expect("present");
    push(
        "tab3.user6.partial",
        "/user6 97% partial",
        u6.pct_partial(),
        (90.0, 100.0),
    );
    push(
        "tab3.user6.fsync",
        "/user6 92% fsync partials",
        u6.pct_fsync_partial(),
        (85.0, 100.0),
    );
    push(
        "tab3.user6.share",
        "/user6 has 89% of segment writes",
        t3.shares[0].1,
        (75.0, 95.0),
    );
    push(
        "tab3.swap.fsync",
        "/swap1 has no fsync partials",
        t3.report("/swap1").expect("present").pct_fsync_partial(),
        (0.0, 0.0),
    );

    // Write buffer.
    push(
        "wb.user6",
        "/user6 disk writes cut ~90%",
        100.0 * wb.of("/user6").expect("present").reduction,
        (80.0, 99.0),
    );
    let typical_red: f64 = ["/user1", "/user4", "/sprite/src/kernel", "/user2"]
        .iter()
        .map(|n| 100.0 * wb.of(n).expect("present").reduction)
        .sum::<f64>()
        / 4.0;
    push(
        "wb.typical",
        "most file systems cut 10-25%",
        typical_red,
        (5.0, 35.0),
    );
    push(
        "wb.staging",
        "full staging leaves zero partials",
        wb.staged_partials as f64,
        (0.0, 0.0),
    );

    // Disk sorting.
    let (fifo, sorted) = ds.at(1000).expect("1000-I/O batch swept");
    push(
        "sort.random",
        "random block writes use ~7% of bandwidth",
        100.0 * fifo,
        (3.0, 12.0),
    );
    push(
        "sort.sorted",
        "1000 sorted I/Os reach ~40%",
        100.0 * sorted,
        (25.0, 60.0),
    );

    // §2.6.
    push(
        "bus.ratio",
        "unified uses >=25% less bus traffic",
        bn.bus_ratio(),
        (4.0 / 3.0 * 0.95, 10.0),
    );
    push(
        "bus.accesses",
        "unified makes 2-2.5x NVRAM accesses",
        bn.access_ratio(),
        (1.5, 8.0),
    );

    // Prestoserve.
    push(
        "presto.latency",
        "server NVRAM slashes sync-write latency",
        p.latency_improvement(),
        (2.0, 1e9),
    );

    // Read latency ([3]).
    push(
        "readlat.optimal",
        "optimal write ~2 tracks (50-70 KB)",
        (rl.optimal_bytes >> 10) as f64,
        (32.0, 160.0),
    );
    push(
        "readlat.typical",
        "full segments cost ~14% read latency",
        rl.typical_penalty_pct,
        (8.0, 30.0),
    );
    push(
        "readlat.heavy",
        "up to ~37% under heavy load",
        rl.heavy_penalty_pct,
        (25.0, 100.0),
    );

    // Network judge (§2.3 degraded modes under partitions).
    push(
        "net.ordering",
        "partition loss: volatile > write-aside > unified",
        f64::from(vn.loss_ordering_holds()),
        (1.0, 1.0),
    );
    push(
        "net.contract",
        "no acked byte lost, none double-applied",
        (vn.summary.acked_lost + vn.summary.double_apply + vn.summary.partition_leak) as f64,
        (0.0, 0.0),
    );
    push(
        "net.dedup",
        "server dedup suppresses every duplicate",
        vn.summary.duplicates as f64,
        (1.0, 1e12),
    );

    // Write-ahead log (logging vs paging extension).
    push(
        "wal.latency",
        "WAL fsync <= write buffer's on >=6 of 8 FSs",
        wl.non_regressions() as f64,
        (6.0, 8.0),
    );
    push(
        "wal.loss",
        "post-append crashes lose no acknowledged byte",
        wl.post_append_violations as f64,
        (0.0, 0.0),
    );

    // NVRAM corruption defenses (§2.3 protection & scrub extension).
    use nvfs_nvram::protect::ProtectionMode;
    push(
        "scrub.verified",
        "verified + scrub ships zero silent bytes",
        f64::from(so.row(ProtectionMode::Verified).report.bytes_silent == 0),
        (1.0, 1.0),
    );
    push(
        "scrub.unprotected",
        "unprotected ships silent corruption",
        f64::from(so.row(ProtectionMode::Unprotected).report.bytes_silent > 0),
        (1.0, 1.0),
    );
    push(
        "scrub.overhead",
        "overhead ordered: none < write-protect < verified",
        f64::from(so.ordering_holds()),
        (1.0, 1.0),
    );
    push(
        "scrub.conservation",
        "every corrupt byte accounted to exactly one fate",
        f64::from(so.rows.iter().all(|r| r.report.conservation_holds())),
        (1.0, 1.0),
    );

    let mut table = Table::new(
        "Reproduction scorecard",
        &["Check", "Paper claim", "Measured", "Band", "Verdict"],
    );
    for c in &checks {
        table.push_row(vec![
            Cell::from(c.id),
            Cell::from(c.paper),
            Cell::f2(c.measured),
            Cell::from(format!("{:.1}..{:.1}", c.band.0, c.band.1)),
            Cell::from(if c.passed() { "PASS" } else { "FAIL" }),
        ]);
    }
    Scorecard { checks, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_claim_passes_at_tiny_scale() {
        let card = run(&Env::tiny());
        assert!(
            card.all_passed(),
            "failed: {:?} ({} of {} passed)",
            card.first_failure(),
            card.passed(),
            card.checks.len()
        );
        assert!(card.checks.len() >= 20, "scorecard covers the paper");
    }

    #[test]
    fn table_mirrors_checks() {
        let card = run(&Env::tiny());
        assert_eq!(card.table.row_count(), card.checks.len());
        assert!(card.table.render().contains("PASS"));
    }
}
