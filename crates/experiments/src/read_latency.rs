//! The §3 closing analysis: read response time versus LFS write size.
//!
//! Reproduces the two numbers the paper quotes from \[3\]: "the optimal
//! write size for an LFS is approximately two disk tracks, typically
//! 50 - 70 kilobytes", and "the increase in mean read response time due to
//! full segment writes is sometimes as much as 37%, but typically about
//! 14%."

use nvfs_lfs::read_latency::{ReadLatencyModel, WRITE_SIZE_GRID};
use nvfs_report::{Cell, Figure, Series, Table};

/// Output of the read-latency analysis.
#[derive(Debug, Clone)]
pub struct ReadLatency {
    /// Mean read response vs write size, one series per load level.
    pub figure: Figure,
    /// The summary table.
    pub table: Table,
    /// Optimal write size under the typical load, in bytes.
    pub optimal_bytes: u64,
    /// Full-segment penalty under the typical load, percent.
    pub typical_penalty_pct: f64,
    /// Full-segment penalty under the heavy load, percent.
    pub heavy_penalty_pct: f64,
}

/// Runs the analysis at the typical and heavy load points.
pub fn run() -> ReadLatency {
    let typical = ReadLatencyModel::typical();
    let heavy = ReadLatencyModel::heavy();
    let mut figure = Figure::new(
        "§3: mean read response time vs LFS write size",
        "Write size (KB)",
        "Mean read response (ms)",
    );
    for (name, model) in [("typical", &typical), ("heavy", &heavy)] {
        let points: Vec<(f64, f64)> = WRITE_SIZE_GRID
            .iter()
            .filter_map(|&w| {
                model
                    .mean_read_response_ms(w)
                    .map(|r| ((w >> 10) as f64, r))
            })
            .collect();
        figure.push(Series::new(name, points));
    }
    let optimal_bytes = typical.optimal_write_bytes(&WRITE_SIZE_GRID);
    let typical_penalty_pct = typical.full_segment_penalty_pct(&WRITE_SIZE_GRID, 512 << 10);
    let heavy_penalty_pct = heavy.full_segment_penalty_pct(&WRITE_SIZE_GRID, 512 << 10);

    let mut table = Table::new(
        "§3: optimal write size and full-segment read penalty",
        &[
            "Load",
            "Optimal write (KB)",
            "Response at optimum (ms)",
            "Response at 512 KB (ms)",
            "Penalty",
        ],
    );
    for (name, model) in [("typical", &typical), ("heavy", &heavy)] {
        let best = model.optimal_write_bytes(&WRITE_SIZE_GRID);
        table.push_row(vec![
            Cell::from(name),
            Cell::from((best >> 10) as usize),
            Cell::f1(
                model
                    .mean_read_response_ms(best)
                    .expect("optimum is stable"),
            ),
            Cell::f1(
                model
                    .mean_read_response_ms(512 << 10)
                    .expect("stable at 512 KB"),
            ),
            Cell::Pct(model.full_segment_penalty_pct(&WRITE_SIZE_GRID, 512 << 10)),
        ]);
    }
    ReadLatency {
        figure,
        table,
        optimal_bytes,
        typical_penalty_pct,
        heavy_penalty_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_paper_bands() {
        let out = run();
        assert!(
            (32 << 10..=160 << 10).contains(&out.optimal_bytes),
            "optimum {} KB",
            out.optimal_bytes >> 10
        );
        assert!(
            (8.0..=30.0).contains(&out.typical_penalty_pct),
            "{}",
            out.typical_penalty_pct
        );
        assert!(out.heavy_penalty_pct > out.typical_penalty_pct);
        assert_eq!(out.figure.all_series().len(), 2);
        assert_eq!(out.table.row_count(), 2);
    }
}
