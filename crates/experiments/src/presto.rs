//! The §3 NFS claim: server NVRAM (Prestoserve-style) slashes synchronous
//! write cost; improvements "of up to 50%" were reported on real systems.

use nvfs_rng::{Rng, SeedableRng, StdRng};

use nvfs_disk::DiskParams;
use nvfs_report::{Cell, Table};
use nvfs_server::presto::{
    nfs_synchronous, prestoserve, sprite_delayed, PrestoConfig, WriteOutcome, WriteRequest,
};
use nvfs_types::SimTime;

/// Output of the Prestoserve experiment.
#[derive(Debug, Clone)]
pub struct Presto {
    /// The rendered comparison.
    pub table: Table,
    /// NFS-synchronous outcome.
    pub nfs: WriteOutcome,
    /// Prestoserve outcome.
    pub presto: WriteOutcome,
    /// Sprite delayed-write outcome (fast but unsafe until the flush).
    pub sprite: WriteOutcome,
}

impl Presto {
    /// Mean-latency improvement factor.
    pub fn latency_improvement(&self) -> f64 {
        self.nfs.mean_latency_ms / self.presto.mean_latency_ms.max(1e-9)
    }
}

/// Runs a 1000-request NFS-style synchronous write stream through both
/// server configurations.
pub fn run() -> Presto {
    run_with(1000, 30, 8192, 7)
}

/// Parameterized variant: `n` requests, `gap_ms` apart, `len` bytes each.
pub fn run_with(n: usize, gap_ms: u64, len: u64, seed: u64) -> Presto {
    let disk = DiskParams::sprite_era();
    let mut rng = StdRng::seed_from_u64(seed);
    let reqs: Vec<WriteRequest> = (0..n)
        .map(|i| WriteRequest {
            time: SimTime::from_millis(i as u64 * gap_ms),
            addr: rng.gen_range(0..disk.capacity - len),
            len,
        })
        .collect();
    let nfs = nfs_synchronous(&reqs, disk);
    let presto = prestoserve(&reqs, disk, PrestoConfig::default());
    let sprite = sprite_delayed(&reqs, disk, 1 << 20);
    let mut table = Table::new(
        "Synchronous writes: NFS direct vs Prestoserve NVRAM vs Sprite delayed",
        &[
            "Server",
            "Mean latency (ms)",
            "Max latency (ms)",
            "Disk busy (ms)",
            "Disk accesses",
        ],
    );
    for (name, o) in [
        ("NFS direct", &nfs),
        ("Prestoserve", &presto),
        ("Sprite delayed (unsafe)", &sprite),
    ] {
        table.push_row(vec![
            Cell::from(name),
            Cell::f2(o.mean_latency_ms),
            Cell::f2(o.max_latency_ms),
            Cell::f1(o.disk_busy_ms),
            Cell::from(o.disk_accesses),
        ]);
    }
    Presto {
        table,
        nfs,
        presto,
        sprite,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvram_improves_latency_by_more_than_half() {
        let out = run();
        assert!(
            out.latency_improvement() > 2.0,
            "improvement only {:.2}x",
            out.latency_improvement()
        );
    }

    #[test]
    fn nvram_spends_less_disk_time() {
        let out = run();
        assert!(out.presto.disk_busy_ms < out.nfs.disk_busy_ms);
        assert!(out.presto.disk_accesses < out.nfs.disk_accesses);
    }

    #[test]
    fn nvram_matches_sprite_speed_with_nfs_safety() {
        // The §3 synthesis: server NVRAM gives Sprite-like latency while
        // keeping NFS's guarantee that acknowledged writes survive crashes.
        let out = run();
        assert!(out.presto.mean_latency_ms < out.sprite.mean_latency_ms * 10.0);
        assert!(out.sprite.mean_latency_ms < out.nfs.mean_latency_ms / 10.0);
    }
}
