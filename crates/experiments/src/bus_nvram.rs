//! The §2.6 secondary comparisons: memory-bus traffic and NVRAM access
//! counts of the write-aside versus unified models.
//!
//! "The unified model generates at least 25% less file cache traffic on
//! the local memory bus than the write-aside model" and "for an
//! eight-megabyte volatile memory and an eight-megabyte NVRAM … the
//! unified model generates from two to two-and-a-half times as many NVRAM
//! accesses."

use nvfs_core::{ClusterSim, SimConfig, TrafficStats};
use nvfs_report::{Cell, Table};

use crate::env::Env;

/// Output of the bus/NVRAM-access comparison.
#[derive(Debug, Clone)]
pub struct BusNvram {
    /// The rendered comparison.
    pub table: Table,
    /// Unified-model stats.
    pub unified: TrafficStats,
    /// Write-aside stats.
    pub write_aside: TrafficStats,
}

impl BusNvram {
    /// Write-aside bus bytes divided by unified bus bytes (≥ ~1.33 per the
    /// paper's "at least 25% less" claim).
    pub fn bus_ratio(&self) -> f64 {
        self.write_aside.bus_bytes as f64 / self.unified.bus_bytes.max(1) as f64
    }

    /// Unified NVRAM accesses divided by write-aside NVRAM accesses
    /// (2–2.5× in the paper).
    pub fn access_ratio(&self) -> f64 {
        self.unified.nvram_accesses() as f64 / self.write_aside.nvram_accesses().max(1) as f64
    }
}

/// Runs both NVRAM models with 8 MB volatile + 8 MB NVRAM on Trace 7.
pub fn run(env: &Env) -> BusNvram {
    run_sized(env, 8 << 20, 8 << 20)
}

/// Parameterized variant.
pub fn run_sized(env: &Env, volatile: u64, nvram: u64) -> BusNvram {
    let trace = env.trace7();
    let unified = ClusterSim::new(SimConfig::unified(volatile, nvram)).run(trace.ops());
    let write_aside = ClusterSim::new(SimConfig::write_aside(volatile, nvram)).run(trace.ops());
    let mut table = Table::new(
        "§2.6: memory-bus traffic and NVRAM accesses (Trace 7)",
        &["Model", "Bus MB", "NVRAM accesses", "NVRAM MB"],
    );
    for (name, s) in [("unified", &unified), ("write-aside", &write_aside)] {
        table.push_row(vec![
            Cell::from(name),
            Cell::f1(s.bus_bytes as f64 / (1 << 20) as f64),
            Cell::from(s.nvram_accesses() as usize),
            Cell::f1(s.nvram_bytes as f64 / (1 << 20) as f64),
        ]);
    }
    BusNvram {
        table,
        unified,
        write_aside,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_aside_doubles_bus_traffic() {
        let out = run(&Env::tiny());
        // Unified uses at least ~25% less bus bandwidth.
        assert!(out.bus_ratio() > 1.25, "bus ratio {:.2}", out.bus_ratio());
    }

    #[test]
    fn unified_makes_many_more_nvram_accesses() {
        let out = run(&Env::tiny());
        assert!(
            out.access_ratio() > 1.5,
            "access ratio {:.2}",
            out.access_ratio()
        );
    }

    #[test]
    fn write_aside_nvram_is_write_only() {
        let out = run(&Env::tiny());
        assert_eq!(out.write_aside.nvram_reads, 0);
        assert!(out.unified.nvram_reads > 0);
    }
}
