//! The §3 headline claim: a ½ MB NVRAM write buffer per file system
//! reduces disk write accesses by 10–25% on most file systems and by ~90%
//! on /user6, plus the stronger full-staging ablation that eliminates
//! partial segments altogether.

use nvfs_lfs::fs::{run_server, FsReport, LfsConfig};
use nvfs_lfs::SegmentCause;
use nvfs_report::{Cell, Table};

use crate::env::Env;

/// Per-filesystem reduction results.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// File-system name.
    pub name: String,
    /// Disk write accesses without a buffer.
    pub direct: usize,
    /// Disk write accesses with the fsync-absorbing buffer.
    pub buffered: usize,
    /// Disk write accesses with the full staging buffer.
    pub staged: usize,
    /// Fractional reduction from the fsync-absorbing buffer.
    pub reduction: f64,
    /// Fractional reduction from full staging.
    pub staged_reduction: f64,
}

/// Output of the write-buffer experiment.
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    /// The rendered table.
    pub table: Table,
    /// Per-filesystem reductions, paper order.
    pub reductions: Vec<Reduction>,
    /// Partial-segment counts remaining under full staging (excluding the
    /// final shutdown flush), summed over all file systems — the "NVRAM
    /// would eliminate partial segment writes" check.
    pub staged_partials: usize,
}

impl WriteBuffer {
    /// The reduction entry for a named file system.
    pub fn of(&self, name: &str) -> Option<&Reduction> {
        self.reductions.iter().find(|r| r.name == name)
    }
}

/// Runs the three buffer configurations over all eight file systems with
/// the paper's ½ MB buffer.
pub fn run(env: &Env) -> WriteBuffer {
    run_with_capacity(env, 512 << 10)
}

/// Runs with an explicit buffer capacity (for the capacity-sweep bench).
pub fn run_with_capacity(env: &Env, capacity: u64) -> WriteBuffer {
    let direct = run_server(&env.server, &LfsConfig::direct());
    let buffered = run_server(&env.server, &LfsConfig::with_fsync_buffer(capacity));
    let staged = run_server(
        &env.server,
        &LfsConfig::with_staging_buffer(capacity.max(nvfs_lfs::SEGMENT_BYTES)),
    );

    let mut table = Table::new(
        "NVRAM write buffer: disk write accesses per file system",
        &[
            "File system",
            "Direct",
            "Fsync buffer",
            "Reduction",
            "Full staging",
            "Reduction",
        ],
    );
    let mut reductions = Vec::new();
    let mut staged_partials = 0;
    for ((d, b), s) in direct.iter().zip(&buffered).zip(&staged) {
        let reduction = reduction(d, b);
        let staged_reduction = reduction_of(d.disk_write_accesses(), s.disk_write_accesses());
        table.push_row(vec![
            Cell::from(d.name.clone()),
            Cell::from(d.disk_write_accesses()),
            Cell::from(b.disk_write_accesses()),
            Cell::Pct(100.0 * reduction),
            Cell::from(s.disk_write_accesses()),
            Cell::Pct(100.0 * staged_reduction),
        ]);
        staged_partials += s
            .records
            .iter()
            .filter(|r| {
                r.is_partial() && !matches!(r.cause, SegmentCause::Shutdown | SegmentCause::Cleaner)
            })
            .count();
        reductions.push(Reduction {
            name: d.name.clone(),
            direct: d.disk_write_accesses(),
            buffered: b.disk_write_accesses(),
            staged: s.disk_write_accesses(),
            reduction,
            staged_reduction,
        });
    }
    WriteBuffer {
        table,
        reductions,
        staged_partials,
    }
}

fn reduction(direct: &FsReport, buffered: &FsReport) -> f64 {
    reduction_of(direct.disk_write_accesses(), buffered.disk_write_accesses())
}

fn reduction_of(direct: usize, buffered: usize) -> f64 {
    if direct == 0 {
        0.0
    } else {
        1.0 - buffered as f64 / direct as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user6_reduction_is_dramatic() {
        let out = run(&Env::tiny());
        let u6 = out.of("/user6").unwrap();
        assert!(u6.reduction > 0.75, "reduction {:.2}", u6.reduction);
    }

    #[test]
    fn fsync_free_filesystems_see_no_benefit() {
        let out = run(&Env::tiny());
        for name in ["/swap1", "/scratch4"] {
            let r = out.of(name).unwrap();
            assert!(r.reduction.abs() < 0.05, "{name}: {:.2}", r.reduction);
        }
    }

    #[test]
    fn staging_eliminates_partial_segments() {
        let out = run(&Env::tiny());
        assert_eq!(out.staged_partials, 0);
        for r in &out.reductions {
            assert!(r.staged <= r.direct, "{}", r.name);
        }
    }

    #[test]
    fn buffered_never_exceeds_direct_materially() {
        // An fsync in the direct path flushes *all* dirty data in one
        // segment, while the buffered path may split the same bytes between
        // the NVRAM and a later timeout partial — so an occasional +1
        // access is legitimate; anything more would be a bug.
        let out = run(&Env::tiny());
        for r in &out.reductions {
            assert!(
                r.buffered <= r.direct + 1,
                "{}: {} > {}",
                r.name,
                r.buffered,
                r.direct
            );
        }
    }
}
