//! Table 3 — percent of forced partial segments on the eight LFS file
//! systems of the Sprite file server.

use nvfs_lfs::fs::{run_server, segment_share, FsReport, LfsConfig};
use nvfs_report::{Cell, Table};

use crate::env::Env;

/// Output of the Table 3 reproduction.
#[derive(Debug, Clone)]
pub struct Tab3 {
    /// The rendered table, one row per file system in paper order.
    pub table: Table,
    /// The underlying per-filesystem reports (reused by Table 4).
    pub reports: Vec<FsReport>,
    /// Share of all segment writes per file system.
    pub shares: Vec<(String, f64)>,
}

impl Tab3 {
    /// The report for a named file system.
    pub fn report(&self, name: &str) -> Option<&FsReport> {
        self.reports.iter().find(|r| r.name == name)
    }
}

/// Runs the direct (no-buffer) LFS simulation over all eight file systems.
pub fn run(env: &Env) -> Tab3 {
    let reports = run_server(&env.server, &LfsConfig::direct());
    let shares = segment_share(&reports);
    let mut table = Table::new(
        "Table 3: Percent of forced partial segments on LFS file systems",
        &[
            "File system",
            "% total segments that are partial",
            "% partial due to fsync",
            "% segments from this file system",
        ],
    );
    for (r, (_, share)) in reports.iter().zip(&shares) {
        table.push_row(vec![
            Cell::from(r.name.clone()),
            Cell::Pct(r.pct_partial()),
            Cell::Pct(r.pct_fsync_partial()),
            Cell::Pct(*share),
        ]);
    }
    Tab3 {
        table,
        reports,
        shares,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_rows_in_paper_order() {
        let out = run(&Env::tiny());
        assert_eq!(out.table.row_count(), 8);
        assert_eq!(out.reports[0].name, "/user6");
    }

    #[test]
    fn user6_is_dominated_by_fsync_partials() {
        let out = run(&Env::tiny());
        let u6 = out.report("/user6").unwrap();
        assert!(u6.pct_partial() > 80.0, "{}", u6.pct_partial());
        assert!(u6.pct_fsync_partial() > 70.0, "{}", u6.pct_fsync_partial());
        // …and issues the bulk of all segment writes.
        assert!(out.shares[0].1 > 50.0);
    }

    #[test]
    fn swap_has_no_fsync_partials() {
        let out = run(&Env::tiny());
        let swap = out.report("/swap1").unwrap();
        assert_eq!(swap.pct_fsync_partial(), 0.0);
        assert!(swap.pct_partial() > 0.0, "timeout partials still occur");
    }
}
