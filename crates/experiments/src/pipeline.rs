//! Extension experiment: client NVRAM's effect on the *server's* LFS.
//!
//! §3 notes that client fsyncs are what force LFS to write partial
//! segments. Client-side NVRAM (§2) absorbs those fsyncs before they ever
//! reach the server, so the two halves of the paper compose: this
//! experiment runs the full client→server pipeline under volatile and
//! unified client caches and compares the server's segment behaviour.

use nvfs_core::SimConfig;
use nvfs_lfs::fs::LfsConfig;
use nvfs_lfs::SegmentCause;
use nvfs_report::{Cell, Table};
use nvfs_server::e2e::{client_server_pipeline, PipelineReport};

use crate::env::Env;

/// Output of the pipeline experiment.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// The rendered comparison.
    pub table: Table,
    /// Pipeline with volatile clients.
    pub volatile: PipelineReport,
    /// Pipeline with unified-NVRAM clients.
    pub unified: PipelineReport,
}

/// Runs the composed pipeline on Trace 7 with 8 MB client caches (the
/// unified configuration adds 1 MB of client NVRAM).
pub fn run(env: &Env) -> Pipeline {
    run_sized(env, 8 << 20, 1 << 20)
}

/// Parameterized variant.
pub fn run_sized(env: &Env, volatile_bytes: u64, nvram_bytes: u64) -> Pipeline {
    let ops = env.trace7().ops();
    let lfs = LfsConfig::direct();
    let volatile = client_server_pipeline(ops, &SimConfig::volatile(volatile_bytes), &lfs);
    let unified =
        client_server_pipeline(ops, &SimConfig::unified(volatile_bytes, nvram_bytes), &lfs);
    let mut table = Table::new(
        "Client NVRAM vs the server's LFS (Trace 7)",
        &[
            "Client cache",
            "Server write MB",
            "Server segments",
            "Fsync partials",
            "% partial",
        ],
    );
    for (name, p) in [("volatile", &volatile), ("unified + NVRAM", &unified)] {
        table.push_row(vec![
            Cell::from(name),
            Cell::f1(p.client.server_write_bytes as f64 / (1 << 20) as f64),
            Cell::from(p.server.disk_write_accesses()),
            Cell::from(p.server.count(SegmentCause::Fsync)),
            Cell::Pct(p.server.pct_partial()),
        ]);
    }
    Pipeline {
        table,
        volatile,
        unified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_nvram_removes_server_fsync_partials() {
        let out = run(&Env::tiny());
        assert!(out.volatile.server.count(SegmentCause::Fsync) > 0);
        assert_eq!(out.unified.server.count(SegmentCause::Fsync), 0);
    }

    #[test]
    fn client_nvram_shrinks_server_load() {
        let out = run(&Env::tiny());
        assert!(out.unified.client.server_write_bytes < out.volatile.client.server_write_bytes);
        assert!(
            out.unified.server.disk_write_accesses() <= out.volatile.server.disk_write_accesses()
        );
    }
}
