//! Ablations beyond the paper's main figures:
//!
//! * the **hybrid** model §2.6 sketches ("an even more closely integrated
//!   NVRAM model that allows dirty blocks to be written both to the NVRAM
//!   and to the volatile cache … would provide superior performance …
//!   however, this model would allow some dirty data to be vulnerable for
//!   at least 30 seconds");
//! * Sprite's real **dirty-block replacement preference**, which the paper
//!   deliberately simplified away ("giving dirty blocks preference helps
//!   reduce write traffic, but at the expense of increasing read traffic").

use nvfs_core::{ClusterSim, SimConfig, TrafficStats};
use nvfs_report::{Cell, Figure, Series, Table};

use crate::env::Env;

/// Output of the hybrid-model ablation.
#[derive(Debug, Clone)]
pub struct HybridAblation {
    /// Net write traffic per model over the NVRAM grid.
    pub figure: Figure,
    /// Bytes exposed to a crash for the 30-second window at 1 MB NVRAM.
    pub exposed_bytes_1mb: u64,
    /// Application write bytes of the trace.
    pub app_write_bytes: u64,
}

/// NVRAM grid for the hybrid comparison, in megabytes.
pub const HYBRID_NVRAM_MB: [f64; 4] = [0.125, 0.25, 0.5, 1.0];

/// Compares the hybrid model against unified at small NVRAM sizes, where
/// the paper predicts its advantage (the whole volatile cache absorbs
/// write bursts).
pub fn hybrid(env: &Env) -> HybridAblation {
    let trace = env.trace7();
    let base = 8u64 << 20;
    let mut figure = Figure::new(
        "Ablation: hybrid (§2.6 sketch) vs unified, Trace 7",
        "Megabytes NVRAM",
        "Net write traffic (%)",
    );
    let mut exposed_bytes_1mb = 0;
    let mut app_write_bytes = 0;
    for (name, make) in [
        ("unified", SimConfig::unified as fn(u64, u64) -> SimConfig),
        ("hybrid", SimConfig::hybrid as fn(u64, u64) -> SimConfig),
    ] {
        let points: Vec<(f64, f64)> = HYBRID_NVRAM_MB
            .iter()
            .map(|&mb| {
                let nv = (mb * (1 << 20) as f64) as u64;
                let stats = ClusterSim::new(make(base, nv)).run(trace.ops());
                if name == "hybrid" && (mb - 1.0).abs() < 1e-9 {
                    exposed_bytes_1mb = stats.aged_into_nvram_bytes;
                    app_write_bytes = stats.app_write_bytes;
                }
                (mb, stats.net_write_traffic_pct())
            })
            .collect();
        figure.push(Series::new(name, points));
    }
    HybridAblation {
        figure,
        exposed_bytes_1mb,
        app_write_bytes,
    }
}

/// Output of the dirty-preference ablation.
#[derive(Debug, Clone)]
pub struct DirtyPreferenceAblation {
    /// The rendered comparison.
    pub table: Table,
    /// Plain LRU stats.
    pub strict_lru: TrafficStats,
    /// Dirty-preference stats.
    pub dirty_preference: TrafficStats,
}

/// Compares the volatile model with and without Sprite's dirty-block
/// replacement preference (256 KB cache, Trace 7 — the regime where
/// residency is shorter than the 30-second write-back).
pub fn dirty_preference(env: &Env) -> DirtyPreferenceAblation {
    // A deliberately tiny cache: the preference only matters when blocks
    // are evicted while still inside the 30-second dirty window, i.e. when
    // cache residency is shorter than the write-back delay. With caches of
    // megabytes (residency of minutes) both policies behave identically —
    // which is why the paper could drop the preference "for simplicity".
    let trace = env.trace7();
    let cache = 64 * nvfs_types::BLOCK_SIZE; // 256 KB
    let strict_lru = ClusterSim::new(SimConfig::volatile(cache)).run(trace.ops());
    let pref = ClusterSim::new(SimConfig::volatile(cache).with_dirty_preference()).run(trace.ops());
    let mut table = Table::new(
        "Ablation: Sprite's dirty-block replacement preference (Trace 7, 256 KB)",
        &[
            "Policy",
            "Replacement write MB",
            "Server read MB",
            "Net total traffic",
        ],
    );
    for (name, s) in [("strict LRU", &strict_lru), ("dirty preference", &pref)] {
        table.push_row(vec![
            Cell::from(name),
            Cell::f2(s.replacement_bytes as f64 / (1 << 20) as f64),
            Cell::f1(s.server_read_bytes as f64 / (1 << 20) as f64),
            Cell::Pct(s.net_total_traffic_pct()),
        ]);
    }
    DirtyPreferenceAblation {
        table,
        strict_lru,
        dirty_preference: pref,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_beats_unified_at_small_nvram() {
        let out = hybrid(&Env::tiny());
        let uni = out.figure.series("unified").unwrap();
        let hyb = out.figure.series("hybrid").unwrap();
        // §2.6: with a tiny NVRAM, the pool of replaceable blocks for new
        // writes is the whole volatile cache, so hybrid wins.
        for &mb in &[0.125, 0.25] {
            let (u, h) = (uni.y_at(mb).unwrap(), hyb.y_at(mb).unwrap());
            assert!(
                h <= u + 1.0,
                "at {mb} MB: hybrid {h:.1}% vs unified {u:.1}%"
            );
        }
    }

    #[test]
    fn hybrid_exposes_data_for_thirty_seconds() {
        let out = hybrid(&Env::tiny());
        // The price of the hybrid model: a material fraction of written
        // bytes sat vulnerable in volatile memory for the full window.
        assert!(out.exposed_bytes_1mb > 0);
        assert!(out.exposed_bytes_1mb < out.app_write_bytes);
    }

    #[test]
    fn dirty_preference_trades_reads_for_writes() {
        let out = dirty_preference(&Env::tiny());
        // "Giving dirty blocks preference helps reduce write traffic…"
        assert!(
            out.dirty_preference.replacement_bytes < out.strict_lru.replacement_bytes,
            "pref {} vs lru {}",
            out.dirty_preference.replacement_bytes,
            out.strict_lru.replacement_bytes
        );
        // The paper expects read traffic to rise in exchange. In this
        // simulator the direction is workload-dependent (evicting a dirty
        // block also forces a read-modify-write fetch when it is partially
        // rewritten), so we only check that the read-side change is small
        // relative to the write-side gain.
        let write_gain = out
            .strict_lru
            .replacement_bytes
            .saturating_sub(out.dirty_preference.replacement_bytes);
        let read_change = out
            .dirty_preference
            .server_read_bytes
            .abs_diff(out.strict_lru.server_read_bytes);
        assert!(
            read_change < 4 * write_gain.max(1),
            "read {read_change} vs write {write_gain}"
        );
    }
}
