//! Logging vs paging: the NVRAM write-ahead log against the §3 write buffer.
//!
//! The paper's write buffer is a *paging* design — an fsync copies the
//! file's dirty 4 KB pages into NVRAM, and when the buffer fills, the
//! pages are pushed to disk synchronously ([`SegmentCause::NvramFull`]).
//! The WAL server mode is the *logging* alternative: an fsync appends the
//! exact dirty bytes as one checksummed record and acks as soon as the
//! append is durable, deferring all segment writes to the background
//! drain. This experiment contrasts the two under the same eight server
//! workloads and the same Table-1 NVRAM timing
//! ([`nvfs_wal::NVRAM_NS_PER_BYTE`]):
//!
//! * **fsync latency** — per acknowledged fsync, the paging path pays the
//!   page-granular NVRAM copy plus any synchronous buffer-full segment
//!   write; the logging path pays the byte-exact record append plus any
//!   synchronous log-overflow drain.
//! * **disk bandwidth utilization** — fraction of busy time spent
//!   transferring data, from [`FsReport::disk_time`] on the era disk.
//! * **partial-segment overhead** — the space fraction lost to summary
//!   and metadata blocks.
//!
//! The measured trade runs both ways: logging wins fsync latency outright
//! (byte-exact appends, no synchronous waits), while paging keeps a
//! bandwidth edge on fsync-bound workloads — its buffer-full flushes are
//! large, well-amortized segments, where the WAL's age-based drains ship
//! smaller partials.
//!
//! The durability side of the trade is not assumed: for every workload a
//! post-append crash (the WAL's riskiest acknowledged moment) is injected
//! and the run is judged by the shadow oracle — the latency win only
//! counts alongside zero lost-durable bytes.

use nvfs_disk::DiskParams;
use nvfs_faults::{WalCrashFault, WalCrashPoint};
use nvfs_lfs::fs::FsReport;
use nvfs_lfs::wal_fs::{run_filesystem_wal_faulted, WalFsReport};
use nvfs_lfs::{run_server, run_server_wal, LfsConfig, WalConfig};
use nvfs_report::{Cell, Table};
use nvfs_types::{ClientId, SimTime};
use nvfs_wal::append_latency_ns;

use crate::env::Env;
use crate::verify_crash::judge_wal_report;

/// The paper's ½ MB buffer, used for both designs (buffer capacity on the
/// paging side, log capacity on the logging side).
pub const NVRAM_BYTES: u64 = 512 << 10;

/// Nanoseconds per NVRAM byte moved, from the Table-1 board timing.
const NS_PER_BYTE: u64 = nvfs_wal::NVRAM_NS_PER_BYTE;

/// One workload's head-to-head outcome.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// File-system name.
    pub name: String,
    /// Acknowledged fsyncs (identical for both designs).
    pub fsyncs: u64,
    /// Mean fsync latency under the paging write buffer, in ms.
    pub buffer_mean_ms: f64,
    /// Mean fsync latency under the logging WAL, in ms.
    pub wal_mean_ms: f64,
    /// Disk bandwidth utilization under the write buffer.
    pub buffer_utilization: f64,
    /// Disk bandwidth utilization under the WAL.
    pub wal_utilization: f64,
    /// Partial-segment space overhead under the write buffer, percent.
    pub buffer_overhead_pct: f64,
    /// Partial-segment space overhead under the WAL, percent.
    pub wal_overhead_pct: f64,
}

impl Outcome {
    /// Whether the logging path's mean fsync latency is strictly below the
    /// paging path's (workloads with no fsyncs cannot be won).
    pub fn wal_wins(&self) -> bool {
        self.fsyncs > 0 && self.wal_mean_ms < self.buffer_mean_ms
    }
}

/// Output of the logging-vs-paging study.
#[derive(Debug, Clone)]
pub struct WalVsBuffer {
    /// The rendered table.
    pub table: Table,
    /// Per-workload outcomes, paper order.
    pub outcomes: Vec<Outcome>,
    /// Oracle violations summed over the post-append crash runs — the
    /// latency claim is void unless this is zero.
    pub post_append_violations: u64,
}

impl WalVsBuffer {
    /// Workloads where the WAL's mean fsync latency is strictly lower.
    pub fn wins(&self) -> usize {
        self.outcomes.iter().filter(|o| o.wal_wins()).count()
    }

    /// Workloads that issue at least one fsync (the contestable set).
    pub fn contested(&self) -> usize {
        self.outcomes.iter().filter(|o| o.fsyncs > 0).count()
    }

    /// Workloads where the WAL's mean fsync latency is no worse than the
    /// buffer's: a strict win where fsyncs exist, a vacuous tie at zero
    /// where none do. This is the scorecard's `wal.latency` measure.
    pub fn non_regressions(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.fsyncs == 0 || o.wal_wins())
            .count()
    }
}

/// Mean fsync latency of the paging path, in ns: every absorbed fsync
/// copies its distinct dirty pages into NVRAM; fsyncs that fill the buffer
/// additionally wait for the synchronous `NvramFull` segment write.
fn buffer_mean_ns(report: &FsReport, disk: &DiskParams) -> f64 {
    if report.fsyncs_absorbed == 0 {
        return 0.0;
    }
    let copy_ns = (report.fsync_absorbed_page_bytes * NS_PER_BYTE) as f64;
    let forced_ns: f64 = report
        .records
        .iter()
        .filter(|r| r.cause == nvfs_lfs::SegmentCause::NvramFull)
        .map(|r| {
            (disk.avg_seek_ms + disk.avg_rotation_ms() + disk.transfer_ms(r.on_disk_bytes())) * 1e6
        })
        .sum();
    (copy_ns + forced_ns) / report.fsyncs_absorbed as f64
}

/// Mean fsync latency of the logging path, in ns: every ack pays the
/// byte-exact record append; overflow drains add their forced segment
/// writes to the fsync that triggered them.
fn wal_mean_ns(report: &WalFsReport, disk: &DiskParams) -> f64 {
    if report.fsync_samples.is_empty() {
        return 0.0;
    }
    let total: f64 = report
        .fsync_samples
        .iter()
        .map(|s| {
            append_latency_ns(s.payload_bytes) as f64
                + s.forced_segments as f64 * (disk.avg_seek_ms + disk.avg_rotation_ms()) * 1e6
                + disk.transfer_ms(s.forced_on_disk_bytes) * 1e6
        })
        .sum();
    total / report.fsync_samples.len() as f64
}

/// Runs the study over all eight server workloads.
pub fn run(env: &Env) -> WalVsBuffer {
    let disk = DiskParams::sprite_era();
    let buffered = run_server(&env.server, &LfsConfig::with_fsync_buffer(NVRAM_BYTES));
    let wal_cfg = WalConfig {
        log_capacity: NVRAM_BYTES,
        ..WalConfig::sprite()
    };
    let wal = run_server_wal(&env.server, &wal_cfg);

    // The durability side: crash every workload just after an acknowledged
    // append (the point where the buffer design has nothing at risk but
    // the log design has an un-drained promise), and judge the recovery.
    let post_append_violations: u64 = env
        .server
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let micros = env.trace_config.duration().as_micros();
            let crash = WalCrashFault {
                time: SimTime::from_micros(micros / 2),
                point: WalCrashPoint::PostAppend,
            };
            let (report, _) = run_filesystem_wal_faulted(w, &wal_cfg, &[crash]);
            let finish_at = SimTime::from_micros(micros * 2);
            judge_wal_report(ClientId(i as u32), &report, finish_at).violations()
        })
        .sum();

    let mut table = Table::new(
        "Logging vs paging: NVRAM write-ahead log vs write buffer",
        &[
            "File system",
            "Fsyncs",
            "Buffer fsync ms",
            "WAL fsync ms",
            "Winner",
            "Buffer util",
            "WAL util",
            "Buffer ovh %",
            "WAL ovh %",
        ],
    );
    let mut outcomes = Vec::new();
    for (b, w) in buffered.iter().zip(&wal) {
        let o = Outcome {
            name: b.name.clone(),
            fsyncs: b.fsyncs_absorbed,
            buffer_mean_ms: buffer_mean_ns(b, &disk) / 1e6,
            wal_mean_ms: wal_mean_ns(w, &disk) / 1e6,
            buffer_utilization: b.disk_time(&disk).utilization(),
            wal_utilization: w.fs.disk_time(&disk).utilization(),
            buffer_overhead_pct: 100.0 * b.overhead_fraction(),
            wal_overhead_pct: 100.0 * w.fs.overhead_fraction(),
        };
        table.push_row(vec![
            Cell::from(o.name.clone()),
            Cell::Int(o.fsyncs as i64),
            Cell::Float {
                value: o.buffer_mean_ms,
                precision: 3,
            },
            Cell::Float {
                value: o.wal_mean_ms,
                precision: 3,
            },
            Cell::from(if o.wal_wins() {
                "wal"
            } else if o.fsyncs == 0 {
                "—"
            } else {
                "buffer"
            }),
            Cell::f2(o.buffer_utilization),
            Cell::f2(o.wal_utilization),
            Cell::f1(o.buffer_overhead_pct),
            Cell::f1(o.wal_overhead_pct),
        ]);
        outcomes.push(o);
    }
    WalVsBuffer {
        table,
        outcomes,
        post_append_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_wins_every_contested_workload() {
        let out = run(&Env::tiny());
        assert_eq!(out.outcomes.len(), 8);
        // The acceptance bar: WAL mean fsync latency never above the
        // buffer's, strictly below wherever fsyncs exist, on at least 6
        // of the 8 workloads.
        assert!(out.non_regressions() >= 6, "{}", out.table.render());
        assert_eq!(out.wins(), out.contested(), "{}", out.table.render());
        assert!(out.contested() >= 3, "{}", out.table.render());
    }

    #[test]
    fn post_append_crashes_lose_nothing_acknowledged() {
        let out = run(&Env::tiny());
        assert_eq!(out.post_append_violations, 0);
    }

    #[test]
    fn the_trade_is_latency_for_bandwidth() {
        let out = run(&Env::tiny());
        // /user6 is the fsync-bound workload where the trade is starkest:
        // logging acks each fsync from the NVRAM append (winning latency
        // outright), while paging holds absorbed pages until the buffer
        // fills and then writes one large, well-amortized segment — so the
        // buffer keeps the bandwidth edge that the WAL's eager 5-second
        // drains give up as extra partial segments.
        let u6 = out
            .outcomes
            .iter()
            .find(|o| o.name == "/user6")
            .expect("present");
        assert!(u6.wal_wins());
        assert!(u6.buffer_mean_ms > 1.2 * u6.wal_mean_ms);
        assert!(u6.buffer_utilization >= u6.wal_utilization);
    }
}
