//! Table 1 — current (1992) NVRAM costs.

use nvfs_nvram::cost::{dram, nvram_catalogue, nvram_to_dram_ratio};
use nvfs_report::{Cell, Table};

/// Output of the Table 1 reproduction.
#[derive(Debug, Clone)]
pub struct Tab1 {
    /// The rendered catalogue.
    pub table: Table,
    /// Cheapest-NVRAM-to-DRAM price ratio at a 16 MB configuration.
    pub ratio_at_16mb: f64,
    /// Cheapest-NVRAM-to-DRAM price ratio at a 1 MB configuration.
    pub ratio_at_1mb: f64,
}

/// Reproduces Table 1 from the cost catalogue.
pub fn run() -> Tab1 {
    let mut table = Table::new(
        "Table 1: Current NVRAM costs (1992 list prices)",
        &[
            "Component",
            "Kind",
            "Speed (ns)",
            "Li batteries",
            "$ / MB",
            "Min config (MB)",
        ],
    );
    for p in nvram_catalogue() {
        table.push_row(vec![
            Cell::from(p.component),
            Cell::from(p.kind.to_string()),
            Cell::from(p.speed_ns as usize),
            Cell::from(p.lithium_batteries as usize),
            Cell::Float {
                value: p.price_per_mb,
                precision: 0,
            },
            Cell::f1(p.min_config_mb),
        ]);
    }
    let d = dram();
    table.push_row(vec![
        Cell::from(d.component),
        Cell::from(d.kind.to_string()),
        Cell::from(d.speed_ns as usize),
        Cell::from(0usize),
        Cell::Float {
            value: d.price_per_mb,
            precision: 0,
        },
        Cell::f1(d.min_config_mb),
    ]);
    Tab1 {
        table,
        ratio_at_16mb: nvram_to_dram_ratio(16.0),
        ratio_at_1mb: nvram_to_dram_ratio(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_eight_rows() {
        let t = run();
        assert_eq!(t.table.row_count(), 8);
    }

    #[test]
    fn ratios_match_paper_rules_of_thumb() {
        let t = run();
        // "only four times the cost of an equivalent amount of DRAM" at 16 MB…
        assert!(
            (3.5..=4.5).contains(&t.ratio_at_16mb),
            "{}",
            t.ratio_at_16mb
        );
        // …and "four to six times more expensive" in general.
        assert!(t.ratio_at_1mb >= 4.0, "{}", t.ratio_at_1mb);
    }
}
