//! Protection overhead vs undetected corruption (`nvfs experiments
//! --only scrub-overhead`).
//!
//! The §2.3 trade-off, measured: each protection mode is charged its
//! Table-1 NVRAM-rate time cost — write-protect toggles around every
//! NVRAM write, checksum verification over every NVRAM byte, scrub scans
//! over every swept block — and run against the same corruption schedule
//! on trace 7's unified model. The `unprotected` baseline runs bare (no
//! toggles, no checksums, no scrub — that is what unprotected means);
//! each defended mode carries its machinery plus the 60-second
//! background scrub. The table shows what each defense costs (as a
//! percentage of the raw NVRAM access time the cache already pays)
//! against what it buys (the silent-corruption column it drives to
//! zero).
//!
//! The acceptance checks: overhead must be ordered `unprotected <
//! write-protect < verified`, `verified` must ship zero silent bytes,
//! and `unprotected` must ship some — otherwise the study would prove
//! nothing.

use nvfs_core::{ClusterSim, ScrubReport, SimConfig};
use nvfs_faults::corrupt::{CorruptionPlanConfig, CorruptionSchedule};
use nvfs_faults::{FaultPlanConfig, FaultSchedule};
use nvfs_nvram::protect::{
    scrub_overhead_ns, verify_overhead_ns, write_protect_overhead_ns, ProtectionMode,
    NVRAM_NS_PER_BYTE,
};
use nvfs_report::{Cell, Table};
use nvfs_types::{SimDuration, BLOCK_SIZE};

use crate::env::Env;
use crate::faults::{BASE_BYTES, DEFAULT_SEED};
use crate::verify_crash::NVRAM_BLOCKS;

/// Background scrub period charged in the defended modes.
pub const SCRUB_INTERVAL: SimDuration = SimDuration::from_secs(60);

/// The scrub each mode runs: the unprotected baseline has no checksums
/// to scrub; both defended modes sweep every [`SCRUB_INTERVAL`].
pub fn scrub_interval_for(mode: ProtectionMode) -> Option<SimDuration> {
    match mode {
        ProtectionMode::Unprotected => None,
        ProtectionMode::WriteProtected | ProtectionMode::Verified => Some(SCRUB_INTERVAL),
    }
}

/// One protection mode's cost/benefit row.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRow {
    /// Protection mode measured.
    pub mode: ProtectionMode,
    /// Protection time charged (mode machinery + scrub scans), in ns.
    pub overhead_ns: u64,
    /// Overhead as a percentage of the raw NVRAM access time.
    pub overhead_pct: f64,
    /// Corruption accounting for the run.
    pub report: ScrubReport,
}

/// Output of the overhead study.
#[derive(Debug, Clone)]
pub struct ScrubOverhead {
    /// The study seed.
    pub seed: u64,
    /// One row per protection mode, in [`ProtectionMode::ALL`] order.
    pub rows: Vec<OverheadRow>,
    /// Rendered table.
    pub table: Table,
}

impl ScrubOverhead {
    /// The row for one mode.
    pub fn row(&self, mode: ProtectionMode) -> &OverheadRow {
        self.rows
            .iter()
            .find(|r| r.mode == mode)
            .expect("every mode has a row")
    }

    /// Whether overhead is strictly ordered
    /// `unprotected < write-protect < verified`.
    pub fn ordering_holds(&self) -> bool {
        let o = |m| self.row(m).overhead_ns;
        o(ProtectionMode::Unprotected) < o(ProtectionMode::WriteProtected)
            && o(ProtectionMode::WriteProtected) < o(ProtectionMode::Verified)
    }

    /// Whether the modes deliver what they charge for: `verified` ships
    /// zero silent bytes, `unprotected` ships some, and every ledger
    /// balances.
    pub fn defense_holds(&self) -> bool {
        self.row(ProtectionMode::Verified).report.bytes_silent == 0
            && self.row(ProtectionMode::Unprotected).report.bytes_silent > 0
            && self.rows.iter().all(|r| r.report.conservation_holds())
    }
}

/// Runs the study under `seed`: trace 7's unified model, one run per
/// protection mode against the same corruption schedule, no crashes (so
/// overhead is measured on the pure caching path).
pub fn run_seeded(env: &Env, seed: u64) -> ScrubOverhead {
    let trace = env.trace7();
    let clients = trace.clients() as u32;
    let schedule = FaultSchedule::compile(seed, &FaultPlanConfig::new(clients, trace.duration()))
        .expect("empty fault plan compiles");
    let corruption = CorruptionSchedule::compile(
        seed,
        &CorruptionPlanConfig::new(clients, trace.duration())
            .with_stray_writes(24)
            .with_bit_flips(16)
            .with_decay_events(6),
    )
    .expect("corruption plan compiles");
    let config = SimConfig::unified(BASE_BYTES, NVRAM_BLOCKS * BLOCK_SIZE);
    let runs = nvfs_par::par_map(ProtectionMode::ALL.to_vec(), nvfs_par::jobs(), |mode| {
        let (out, _, report) = ClusterSim::new(config.clone()).run_with_corruption_verified(
            trace.ops(),
            &schedule,
            &corruption,
            mode,
            scrub_interval_for(mode),
        );
        (mode, out.stats, report)
    });
    let mut rows = Vec::new();
    for (mode, stats, report) in runs {
        let machinery = match mode {
            ProtectionMode::Unprotected => 0,
            ProtectionMode::WriteProtected => write_protect_overhead_ns(stats.nvram_writes),
            ProtectionMode::Verified => verify_overhead_ns(stats.nvram_bytes),
        };
        let overhead_ns = machinery + scrub_overhead_ns(report.blocks_scanned);
        let base_ns = stats.nvram_bytes * NVRAM_NS_PER_BYTE;
        let overhead_pct = if base_ns == 0 {
            0.0
        } else {
            100.0 * overhead_ns as f64 / base_ns as f64
        };
        rows.push(OverheadRow {
            mode,
            overhead_ns,
            overhead_pct,
            report,
        });
    }
    let mut table = Table::new(
        &format!("Protection overhead vs undetected corruption (seed {seed}, trace 7)"),
        &[
            "mode",
            "overhead ms",
            "overhead %",
            "events",
            "corrupt KB",
            "silent KB",
            "detect KB",
            "repair KB",
            "bounce KB",
        ],
    );
    let kb = |b: u64| Cell::f1(b as f64 / 1024.0);
    for row in &rows {
        let r = &row.report;
        table.push_row(vec![
            Cell::from(row.mode.label()),
            Cell::Float {
                value: row.overhead_ns as f64 / 1e6,
                precision: 3,
            },
            Cell::Pct(row.overhead_pct),
            Cell::Int(r.events as i64),
            kb(r.bytes_corrupted_dirty + r.bytes_corrupted_clean),
            kb(r.bytes_silent),
            kb(r.bytes_detected),
            kb(r.bytes_repaired),
            kb(r.bytes_bounced),
        ]);
    }
    ScrubOverhead { seed, rows, table }
}

/// Runs the study under the default seed.
pub fn run(env: &Env) -> ScrubOverhead {
    run_seeded(env, DEFAULT_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_ordered_and_defenses_deliver() {
        let out = run(&Env::tiny());
        assert_eq!(out.rows.len(), ProtectionMode::ALL.len());
        assert!(out.ordering_holds(), "{}", out.table.render());
        assert!(out.defense_holds(), "{}", out.table.render());
        // The verified mode's overhead stays within the same order of
        // magnitude as the raw NVRAM cost (checksum = one extra pass).
        assert!(out.row(ProtectionMode::Verified).overhead_pct <= 200.0);
    }

    #[test]
    fn study_is_reproducible() {
        let env = Env::tiny();
        let a = run_seeded(&env, 9);
        let b = run_seeded(&env, 9);
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.table.render(), b.table.render());
    }
}
