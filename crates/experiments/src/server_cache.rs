//! The §3 opening remark: "Servers can also use NVRAM file caches to
//! absorb write traffic, producing reductions in the server-disk traffic
//! similar to those in the client-server traffic."
//!
//! We feed the write stream that volatile clients actually send to the
//! server (repeated flushes of the same files) into a single cache — the
//! server's — and compare a volatile server cache against one with NVRAM.
//! The same mechanism that absorbed overwrites at the clients absorbs the
//! repeat-flush traffic at the server before it reaches the disk.

use nvfs_core::client::ServerWrite;
use nvfs_core::{ClusterSim, SimConfig, TrafficStats};
use nvfs_report::{Cell, Table};
use nvfs_trace::event::OpenMode;
use nvfs_trace::op::{Op, OpKind, OpStream};
use nvfs_types::{ByteRange, ClientId};

use crate::env::Env;

/// Output of the server-cache experiment.
#[derive(Debug, Clone)]
pub struct ServerCache {
    /// The rendered comparison.
    pub table: Table,
    /// Bytes arriving at the server from the clients.
    pub arriving_bytes: u64,
    /// Disk-bound bytes with a volatile server cache.
    pub volatile: TrafficStats,
    /// Disk-bound bytes with an NVRAM server cache.
    pub nvram: TrafficStats,
}

impl ServerCache {
    /// Fractional reduction in disk-bound write traffic from server NVRAM.
    pub fn reduction(&self) -> f64 {
        let v = self.volatile.server_write_bytes + self.volatile.remaining_dirty_bytes;
        let n = self.nvram.server_write_bytes + self.nvram.remaining_dirty_bytes;
        if v == 0 {
            0.0
        } else {
            1.0 - n as f64 / v as f64
        }
    }
}

/// Re-expresses the client→server write log as ops against the *server's*
/// cache: each flush of a file rewrites its head bytes, so repeated flushes
/// of the same data overwrite in the server cache just as repeated
/// application writes did in the client caches.
pub fn server_ops_from_writes(writes: &[ServerWrite]) -> OpStream {
    let server = ClientId(0);
    let mut ops = Vec::with_capacity(writes.len() * 2);
    let mut opened = std::collections::BTreeSet::new();
    for w in writes {
        if w.bytes == 0 {
            continue;
        }
        if opened.insert(w.file) {
            ops.push(Op {
                time: w.time,
                client: server,
                kind: OpKind::Open {
                    file: w.file,
                    mode: OpenMode::Write,
                },
            });
        }
        ops.push(Op {
            time: w.time,
            client: server,
            kind: OpKind::Write {
                file: w.file,
                range: ByteRange::new(0, w.bytes),
            },
        });
    }
    ops.into_iter().collect()
}

/// Runs the comparison on Trace 7: volatile clients (8 MB) produce the
/// server's arrival stream; the server then uses either a 4 MB volatile
/// cache or the same cache with 1 MB of NVRAM (unified).
pub fn run(env: &Env) -> ServerCache {
    let (_, writes) =
        ClusterSim::new(SimConfig::volatile(8 << 20)).run_detailed(env.trace7().ops());
    let server_ops = server_ops_from_writes(&writes);
    let arriving_bytes = server_ops.app_write_bytes();

    let volatile = ClusterSim::new(SimConfig::volatile(4 << 20)).run(&server_ops);
    let nvram = ClusterSim::new(SimConfig::unified(4 << 20, 1 << 20)).run(&server_ops);

    let mut table = Table::new(
        "§3: a server NVRAM cache absorbs client write traffic before the disk",
        &[
            "Server cache",
            "Arriving MB",
            "Disk-bound MB",
            "Absorbed MB",
        ],
    );
    let mb = |b: u64| Cell::f1(b as f64 / (1 << 20) as f64);
    for (name, s) in [("volatile 4 MB", &volatile), ("4 MB + 1 MB NVRAM", &nvram)] {
        table.push_row(vec![
            Cell::from(name),
            mb(arriving_bytes),
            mb(s.server_write_bytes + s.remaining_dirty_bytes),
            mb(s.absorbed_bytes()),
        ]);
    }
    ServerCache {
        table,
        arriving_bytes,
        volatile,
        nvram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_nvram_absorbs_like_client_nvram() {
        let out = run(&Env::tiny());
        assert!(out.arriving_bytes > 0);
        // "…producing reductions in the server-disk traffic similar to
        // those in the client-server traffic."
        assert!(
            out.reduction() > 0.15,
            "reduction {:.2} (volatile {:?} nvram {:?})",
            out.reduction(),
            out.volatile.server_write_bytes,
            out.nvram.server_write_bytes
        );
        // The NVRAM cache absorbed overwrites the volatile cache could not.
        assert!(out.nvram.absorbed_bytes() > out.volatile.absorbed_bytes());
    }

    #[test]
    fn ops_conversion_preserves_bytes_and_order() {
        use nvfs_core::client::FlushCause;
        use nvfs_types::{FileId, SimTime};
        let writes = vec![
            ServerWrite {
                time: SimTime::from_secs(1),
                client: ClientId(3),
                file: FileId(7),
                bytes: 1000,
                cause: FlushCause::WriteBack,
            },
            ServerWrite {
                time: SimTime::from_secs(2),
                client: ClientId(3),
                file: FileId(7),
                bytes: 800,
                cause: FlushCause::WriteBack,
            },
        ];
        let ops = server_ops_from_writes(&writes);
        assert_eq!(ops.app_write_bytes(), 1800);
        // One open, two writes; the second write overlaps the first.
        assert_eq!(ops.len(), 3);
    }
}
