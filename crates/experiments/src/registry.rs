//! The unified experiment registry: every paper artifact behind one table.
//!
//! Each CLI-visible experiment is an [`Entry`] — a name, the paper
//! artifact it reproduces, the scales it supports, whether it belongs to
//! the default `nvfs experiments` run, the CSV files it exports, and a
//! run function producing [`Artifacts`]. The `nvfs` binary routes
//! `experiments`, `export-csv`, the scorecard, and its usage text through
//! this one registry, so adding an experiment is a single new row here —
//! no per-module match arms anywhere else.
//!
//! Ordering is part of the contract: [`all`] yields entries in the
//! canonical output order, the default-run subset preserves the historic
//! `nvfs experiments` order, and the CSV-bearing subset preserves the
//! historic `export-csv` file order. Every run function is deterministic
//! for a given [`Env`], so rendered artifacts are byte-identical at any
//! `--jobs` count.

use nvfs_report::{render_plot, Figure, PlotOptions};

use crate::env::{Env, Scale};

/// Everything one experiment run produces: the rendered text artifact,
/// zero or more named CSV exports, and an optional failure verdict (an
/// experiment can render successfully yet still fail its acceptance
/// check — the scorecard does exactly that).
#[derive(Debug, Clone, Default)]
pub struct Artifacts {
    /// Rendered tables/figures, printed verbatim to stdout.
    pub text: String,
    /// `(file name, CSV body)` pairs exported by `nvfs export-csv`.
    pub csv: Vec<(&'static str, String)>,
    /// `Some(reason)` when the experiment ran but its verdict is a fail.
    pub failure: Option<String>,
}

impl Artifacts {
    /// Text-only artifacts.
    pub fn new(text: String) -> Self {
        Artifacts {
            text,
            ..Artifacts::default()
        }
    }

    /// Attaches one named CSV export.
    pub fn with_csv(mut self, name: &'static str, body: String) -> Self {
        self.csv.push((name, body));
        self
    }
}

/// A runnable, registered experiment. [`Entry`] is the one implementor in
/// this crate; the trait exists so harnesses can wrap or mock entries.
pub trait Experiment {
    /// The CLI id (e.g. `"fig3"`).
    fn name(&self) -> &'static str;
    /// One-line description of the paper artifact reproduced.
    fn artifact(&self) -> &'static str;
    /// Scales this experiment supports.
    fn scales(&self) -> &'static [Scale] {
        &Scale::ALL
    }
    /// Whether a bare `nvfs experiments` includes this entry.
    fn default_run(&self) -> bool;
    /// Runs the experiment against a pre-generated environment.
    fn run(&self, env: &Env) -> Result<Artifacts, String>;
}

/// One registry row: static metadata plus the run function.
pub struct Entry {
    name: &'static str,
    artifact: &'static str,
    default_run: bool,
    csv: &'static [&'static str],
    run_fn: fn(&Env) -> Result<Artifacts, String>,
}

impl Entry {
    const fn new(
        name: &'static str,
        artifact: &'static str,
        default_run: bool,
        csv: &'static [&'static str],
        run_fn: fn(&Env) -> Result<Artifacts, String>,
    ) -> Self {
        Entry {
            name,
            artifact,
            default_run,
            csv,
            run_fn,
        }
    }

    /// The CLI id (e.g. `"fig3"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description of the paper artifact reproduced.
    pub fn artifact(&self) -> &'static str {
        self.artifact
    }

    /// Scales this experiment supports (currently every entry runs at
    /// every scale; the registry records it so callers don't assume).
    pub fn scales(&self) -> &'static [Scale] {
        &Scale::ALL
    }

    /// Whether a bare `nvfs experiments` includes this entry.
    pub fn default_run(&self) -> bool {
        self.default_run
    }

    /// CSV file names this entry exports, in output order.
    pub fn csv_names(&self) -> &'static [&'static str] {
        self.csv
    }

    /// Runs the experiment against a pre-generated environment.
    pub fn run(&self, env: &Env) -> Result<Artifacts, String> {
        (self.run_fn)(env)
    }
}

impl std::fmt::Debug for Entry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry")
            .field("name", &self.name)
            .field("artifact", &self.artifact)
            .field("default_run", &self.default_run)
            .field("csv", &self.csv)
            .finish_non_exhaustive()
    }
}

impl Experiment for Entry {
    fn name(&self) -> &'static str {
        Entry::name(self)
    }
    fn artifact(&self) -> &'static str {
        Entry::artifact(self)
    }
    fn scales(&self) -> &'static [Scale] {
        Entry::scales(self)
    }
    fn default_run(&self) -> bool {
        Entry::default_run(self)
    }
    fn run(&self, env: &Env) -> Result<Artifacts, String> {
        Entry::run(self, env)
    }
}

/// The registry, in canonical output order: the default-run artifacts
/// first (the historic `nvfs experiments` order), then the opt-in
/// entries (`nvram-speed`, `faults`, `verify-net`, `lfs-wal-vs-buffer`,
/// `scorecard`).
static REGISTRY: [Entry; 28] = [
    Entry::new(
        "tab1",
        "Table 1 — NVRAM costs",
        true,
        &["tab1_costs.csv"],
        run_tab1,
    ),
    Entry::new(
        "fig2",
        "Figure 2 — byte lifetimes",
        true,
        &["fig2_byte_lifetimes.csv"],
        run_fig2,
    ),
    Entry::new(
        "tab2",
        "Table 2 — fate of written bytes",
        true,
        &["tab2_write_fates.csv"],
        run_tab2,
    ),
    Entry::new(
        "fig3",
        "Figure 3 — omniscient policy vs NVRAM size",
        true,
        &["fig3_omniscient.csv"],
        run_fig3,
    ),
    Entry::new(
        "fig4",
        "Figure 4 — replacement policies",
        true,
        &["fig4_policies.csv"],
        run_fig4,
    ),
    Entry::new(
        "fig5",
        "Figure 5 — cache models, total traffic",
        true,
        &["fig5_models.csv"],
        run_fig5,
    ),
    Entry::new(
        "fig6",
        "Figure 6 — NVRAM vs volatile cost-effectiveness",
        true,
        &["fig6_cost_effectiveness.csv"],
        run_fig6,
    ),
    Entry::new(
        "tab3",
        "Table 3 — forced partial segments",
        true,
        &["tab3_partial_segments.csv"],
        run_tab3,
    ),
    Entry::new(
        "tab4",
        "Table 4 — partial segment sizes & space cost",
        true,
        &["tab4_partial_sizes.csv"],
        run_tab4,
    ),
    Entry::new(
        "write-buffer",
        "§3 — ½ MB write buffer reductions",
        true,
        &["write_buffer.csv"],
        run_write_buffer,
    ),
    Entry::new(
        "disk-sort",
        "§3 — random vs sorted disk writes",
        true,
        &["disk_sort.csv"],
        run_disk_sort,
    ),
    Entry::new(
        "bus-nvram",
        "§2.6 — bus traffic & NVRAM access counts",
        true,
        &["bus_nvram.csv"],
        run_bus_nvram,
    ),
    Entry::new(
        "presto",
        "§3 — NFS synchronous writes vs server NVRAM",
        true,
        &["presto.csv"],
        run_presto,
    ),
    Entry::new(
        "pipeline",
        "extension — client NVRAM's effect on the server's LFS",
        true,
        &["pipeline.csv"],
        run_pipeline,
    ),
    Entry::new(
        "ablations",
        "extensions — §2.6 hybrid model, dirty-block preference",
        true,
        &[],
        run_ablations,
    ),
    Entry::new(
        "consistency",
        "extension — block-by-block consistency",
        true,
        &[],
        run_consistency,
    ),
    Entry::new(
        "read-latency",
        "§3 closing analysis — optimal write size, read penalty",
        true,
        &[],
        run_read_latency,
    ),
    Entry::new(
        "lfs-vs-ffs",
        "§3 framing — LFS amortization vs update-in-place",
        true,
        &[],
        run_lfs_vs_ffs,
    ),
    Entry::new(
        "server-cache",
        "§3 opening — server NVRAM cache absorbs client writes",
        true,
        &[],
        run_server_cache,
    ),
    Entry::new(
        "diagrams",
        "Figures 1 and 7 rendered from live simulator state",
        true,
        &[],
        run_diagrams,
    ),
    Entry::new(
        "warmup",
        "methodology — quantifying the cold-start caveat",
        true,
        &[],
        run_warmup,
    ),
    Entry::new(
        "nvram-speed",
        "extension — §2.6 NVRAM access-time sensitivity",
        false,
        &["nvram_speed.csv"],
        run_nvram_speed,
    ),
    Entry::new(
        "faults",
        "§2.3/§4 — bytes lost under a seeded fault schedule",
        false,
        &[],
        run_faults,
    ),
    Entry::new(
        "verify-net",
        "robustness — network judge: partitions, retries, degraded modes",
        false,
        &[],
        run_verify_net,
    ),
    Entry::new(
        "lfs-wal-vs-buffer",
        "extension — logging vs paging: NVRAM WAL vs write buffer",
        false,
        &[],
        run_lfs_wal_vs_buffer,
    ),
    Entry::new(
        "scorecard",
        "every paper claim evaluated with PASS/FAIL verdicts",
        false,
        &[],
        run_scorecard,
    ),
    Entry::new(
        "verify-scrub",
        "robustness — corruption sweep: protection modes under fire",
        false,
        &[],
        run_verify_scrub,
    ),
    Entry::new(
        "scrub-overhead",
        "robustness — protection overhead vs undetected corruption",
        false,
        &[],
        run_scrub_overhead,
    ),
];

/// Every registered experiment, in canonical output order.
pub fn all() -> &'static [Entry] {
    &REGISTRY
}

/// Looks up an entry by CLI id.
pub fn find(name: &str) -> Option<&'static Entry> {
    REGISTRY.iter().find(|e| e.name == name)
}

/// Looks up an entry by CLI id, failing with a message that lists every
/// valid id (so a typo at the command line is self-correcting).
pub fn find_or_suggest(name: &str) -> Result<&'static Entry, String> {
    find(name).ok_or_else(|| {
        let valid: Vec<&str> = REGISTRY.iter().map(|e| e.name).collect();
        format!(
            "unknown experiment {name:?}; valid ids: {}",
            valid.join(", ")
        )
    })
}

/// The entries a bare `nvfs experiments` runs, in output order.
pub fn default_entries() -> impl Iterator<Item = &'static Entry> {
    REGISTRY.iter().filter(|e| e.default_run)
}

/// The entries `nvfs export-csv` runs (those exporting at least one CSV
/// file), in output order.
pub fn csv_entries() -> impl Iterator<Item = &'static Entry> {
    REGISTRY.iter().filter(|e| !e.csv.is_empty())
}

/// One line per entry — `id  artifact` — for `nvfs experiments --list`
/// and the CI drift check against `nvfs help`.
pub fn list_text() -> String {
    let mut s = String::new();
    for e in &REGISTRY {
        s.push_str(&format!("{:<13} {}\n", e.name, e.artifact));
    }
    s
}

/// The README experiment table, regenerated from the registry (a test
/// asserts the README embeds this verbatim).
pub fn readme_table() -> String {
    let mut s =
        String::from("| id | paper artifact | default run | CSV export |\n|---|---|---|---|\n");
    for e in &REGISTRY {
        s.push_str(&format!(
            "| `{}` | {} | {} | {} |\n",
            e.name,
            e.artifact,
            if e.default_run { "yes" } else { "—" },
            if e.csv.is_empty() {
                "—".to_string()
            } else {
                e.csv.join(", ")
            },
        ));
    }
    s
}

/// Point list plus an ASCII plot for a figure artifact.
fn fig_text(figure: &Figure, log_x: bool) -> String {
    format!(
        "{}{}",
        figure.render(),
        render_plot(
            figure,
            PlotOptions {
                log_x,
                ..PlotOptions::default()
            }
        )
    )
}

fn run_tab1(_env: &Env) -> Result<Artifacts, String> {
    let table = crate::tab1::run().table;
    Ok(Artifacts::new(table.render()).with_csv("tab1_costs.csv", table.to_csv()))
}

fn run_fig2(env: &Env) -> Result<Artifacts, String> {
    let out = crate::fig2::run(env);
    Ok(Artifacts::new(fig_text(&out.figure, true))
        .with_csv("fig2_byte_lifetimes.csv", out.figure.to_csv()))
}

fn run_tab2(env: &Env) -> Result<Artifacts, String> {
    let table = crate::tab2::run(env).table;
    Ok(Artifacts::new(table.render()).with_csv("tab2_write_fates.csv", table.to_csv()))
}

fn run_fig3(env: &Env) -> Result<Artifacts, String> {
    let out = crate::fig3::run(env);
    Ok(Artifacts::new(fig_text(&out.figure, true))
        .with_csv("fig3_omniscient.csv", out.figure.to_csv()))
}

fn run_fig4(env: &Env) -> Result<Artifacts, String> {
    let out = crate::fig4::run(env);
    Ok(Artifacts::new(fig_text(&out.figure, true))
        .with_csv("fig4_policies.csv", out.figure.to_csv()))
}

fn run_fig5(env: &Env) -> Result<Artifacts, String> {
    let out = crate::fig5::run(env);
    Ok(Artifacts::new(fig_text(&out.figure, false))
        .with_csv("fig5_models.csv", out.figure.to_csv()))
}

fn run_fig6(env: &Env) -> Result<Artifacts, String> {
    let out = crate::fig6::run(env);
    Ok(Artifacts::new(fig_text(&out.figure, false))
        .with_csv("fig6_cost_effectiveness.csv", out.figure.to_csv()))
}

fn run_tab3(env: &Env) -> Result<Artifacts, String> {
    let table = crate::tab3::run(env).table;
    Ok(Artifacts::new(table.render()).with_csv("tab3_partial_segments.csv", table.to_csv()))
}

fn run_tab4(env: &Env) -> Result<Artifacts, String> {
    let table = crate::tab4::run(env).table;
    Ok(Artifacts::new(table.render()).with_csv("tab4_partial_sizes.csv", table.to_csv()))
}

fn run_write_buffer(env: &Env) -> Result<Artifacts, String> {
    let table = crate::write_buffer::run(env).table;
    Ok(Artifacts::new(table.render()).with_csv("write_buffer.csv", table.to_csv()))
}

fn run_disk_sort(_env: &Env) -> Result<Artifacts, String> {
    let table = crate::disk_sort::run().table;
    Ok(Artifacts::new(table.render()).with_csv("disk_sort.csv", table.to_csv()))
}

fn run_bus_nvram(env: &Env) -> Result<Artifacts, String> {
    let table = crate::bus_nvram::run(env).table;
    Ok(Artifacts::new(table.render()).with_csv("bus_nvram.csv", table.to_csv()))
}

fn run_presto(_env: &Env) -> Result<Artifacts, String> {
    let table = crate::presto::run().table;
    Ok(Artifacts::new(table.render()).with_csv("presto.csv", table.to_csv()))
}

fn run_pipeline(env: &Env) -> Result<Artifacts, String> {
    let table = crate::pipeline::run(env).table;
    Ok(Artifacts::new(table.render()).with_csv("pipeline.csv", table.to_csv()))
}

fn run_ablations(env: &Env) -> Result<Artifacts, String> {
    let h = crate::ablations::hybrid(env);
    let d = crate::ablations::dirty_preference(env);
    Ok(Artifacts::new(format!(
        "{}{}",
        h.figure.render(),
        d.table.render()
    )))
}

fn run_consistency(env: &Env) -> Result<Artifacts, String> {
    Ok(Artifacts::new(
        crate::consistency_protocol::run(env).table.render(),
    ))
}

fn run_read_latency(_env: &Env) -> Result<Artifacts, String> {
    let out = crate::read_latency::run();
    Ok(Artifacts::new(format!(
        "{}{}",
        out.table.render(),
        fig_text(&out.figure, false)
    )))
}

fn run_lfs_vs_ffs(env: &Env) -> Result<Artifacts, String> {
    Ok(Artifacts::new(crate::lfs_vs_ffs::run(env).table.render()))
}

fn run_server_cache(env: &Env) -> Result<Artifacts, String> {
    Ok(Artifacts::new(crate::server_cache::run(env).table.render()))
}

fn run_diagrams(_env: &Env) -> Result<Artifacts, String> {
    Ok(Artifacts::new(format!(
        "{}\n{}",
        crate::diagrams::figure1(),
        crate::diagrams::figure7()
    )))
}

fn run_warmup(env: &Env) -> Result<Artifacts, String> {
    Ok(Artifacts::new(crate::warmup::run(env).table.render()))
}

fn run_nvram_speed(env: &Env) -> Result<Artifacts, String> {
    let table = crate::nvram_speed::run(env).table;
    Ok(Artifacts::new(table.render()).with_csv("nvram_speed.csv", table.to_csv()))
}

fn run_faults(env: &Env) -> Result<Artifacts, String> {
    let out = crate::faults::run(env).map_err(|e| e.to_string())?;
    Ok(Artifacts::new(out.render()))
}

fn run_verify_net(env: &Env) -> Result<Artifacts, String> {
    let out = crate::verify_net::run(env)?;
    let failure = (!out.is_clean()).then(|| "network judge has violations".to_string());
    Ok(Artifacts {
        text: out.render(),
        csv: Vec::new(),
        failure,
    })
}

fn run_lfs_wal_vs_buffer(env: &Env) -> Result<Artifacts, String> {
    let out = crate::lfs_wal_vs_buffer::run(env);
    let failure = if out.post_append_violations > 0 {
        Some(format!(
            "{} oracle violations after post-append crashes",
            out.post_append_violations
        ))
    } else if out.non_regressions() < 6 {
        Some(format!(
            "WAL fsync latency holds on only {} of 8 workloads (need >= 6)",
            out.non_regressions()
        ))
    } else {
        None
    };
    Ok(Artifacts {
        text: out.table.render(),
        csv: Vec::new(),
        failure,
    })
}

fn run_scorecard(env: &Env) -> Result<Artifacts, String> {
    let card = crate::scorecard::run(env);
    let text = format!(
        "{}\n{} of {} checks passed\n",
        card.table.render(),
        card.passed(),
        card.checks.len()
    );
    let failure = (!card.all_passed()).then(|| "scorecard has failures".to_string());
    Ok(Artifacts {
        text,
        csv: Vec::new(),
        failure,
    })
}

fn run_verify_scrub(env: &Env) -> Result<Artifacts, String> {
    let out = crate::verify_scrub::run(env).map_err(|e| e.to_string())?;
    let failure = (!out.is_clean()).then(|| "corruption sweep has violations".to_string());
    Ok(Artifacts {
        text: out.render(),
        csv: Vec::new(),
        failure,
    })
}

fn run_scrub_overhead(env: &Env) -> Result<Artifacts, String> {
    let out = crate::scrub_overhead::run(env);
    let failure = if !out.ordering_holds() {
        Some("protection overhead is not ordered unprotected < write-protect < verified".into())
    } else {
        (!out.defense_holds())
            .then(|| "protection modes do not deliver their corruption guarantees".to_string())
    };
    Ok(Artifacts {
        text: out.table.render(),
        csv: Vec::new(),
        failure,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_lookup_works() {
        let mut seen = std::collections::BTreeSet::new();
        for e in all() {
            assert!(seen.insert(e.name()), "duplicate id {}", e.name());
            assert!(std::ptr::eq(find(e.name()).unwrap(), e));
            assert!(!e.artifact().is_empty());
            assert_eq!(e.scales(), &Scale::ALL);
        }
    }

    #[test]
    fn default_entries_preserve_the_historic_experiments_order() {
        let ids: Vec<&str> = default_entries().map(Entry::name).collect();
        assert_eq!(
            ids,
            [
                "tab1",
                "fig2",
                "tab2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "tab3",
                "tab4",
                "write-buffer",
                "disk-sort",
                "bus-nvram",
                "presto",
                "pipeline",
                "ablations",
                "consistency",
                "read-latency",
                "lfs-vs-ffs",
                "server-cache",
                "diagrams",
                "warmup",
            ]
        );
    }

    #[test]
    fn csv_entries_preserve_the_historic_export_order() {
        let names: Vec<&str> = csv_entries().flat_map(Entry::csv_names).copied().collect();
        assert_eq!(
            names,
            [
                "tab1_costs.csv",
                "fig2_byte_lifetimes.csv",
                "tab2_write_fates.csv",
                "fig3_omniscient.csv",
                "fig4_policies.csv",
                "fig5_models.csv",
                "fig6_cost_effectiveness.csv",
                "tab3_partial_segments.csv",
                "tab4_partial_sizes.csv",
                "write_buffer.csv",
                "disk_sort.csv",
                "bus_nvram.csv",
                "presto.csv",
                "pipeline.csv",
                "nvram_speed.csv",
            ]
        );
    }

    #[test]
    fn typo_error_lists_every_valid_id() {
        let err = find_or_suggest("fig9").unwrap_err();
        assert!(err.starts_with("unknown experiment \"fig9\""));
        for e in all() {
            assert!(err.contains(e.name()), "error omits {}", e.name());
        }
    }

    #[test]
    fn entries_export_exactly_their_declared_csvs() {
        let env = Env::tiny();
        for id in ["tab1", "disk-sort", "diagrams"] {
            let e = find(id).unwrap();
            let art = e.run(&env).unwrap();
            let names: Vec<&str> = art.csv.iter().map(|(n, _)| *n).collect();
            assert_eq!(names, e.csv_names(), "{id}");
            assert!(!art.text.is_empty(), "{id}");
            assert!(art.failure.is_none(), "{id}");
        }
    }
}
