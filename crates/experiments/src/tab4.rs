//! Table 4 — sizes of partial segments and their disk-space cost.
//!
//! The paper's Table 4 column layout is partially garbled in surviving
//! copies; we reconstruct it as: average KB of file data per fsync-forced
//! partial segment, average KB per partial segment (all causes), this file
//! system's share of total write traffic, and (from the §3 prose) the
//! metadata + summary space overhead of its partial segments.

use nvfs_lfs::layout::SegmentRecord;
use nvfs_report::{Cell, Table};

use crate::env::Env;
use crate::tab3;

/// Output of the Table 4 reproduction.
#[derive(Debug, Clone)]
pub struct Tab4 {
    /// The rendered table.
    pub table: Table,
    /// Per-FS `(name, avg KB per partial)`.
    pub partial_kb: Vec<(String, Option<f64>)>,
    /// Per-FS `(name, partial-segment overhead fraction)`.
    pub partial_overhead: Vec<(String, f64)>,
}

impl Tab4 {
    /// Average partial size for a named file system.
    pub fn partial_kb_of(&self, name: &str) -> Option<f64> {
        self.partial_kb
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| *v)
    }

    /// Partial-segment overhead fraction for a named file system.
    pub fn overhead_of(&self, name: &str) -> Option<f64> {
        self.partial_overhead
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

fn partial_overhead_fraction(records: &[SegmentRecord]) -> f64 {
    let partials: Vec<&SegmentRecord> = records
        .iter()
        .filter(|r| r.is_partial() && r.cause != nvfs_lfs::SegmentCause::Cleaner)
        .collect();
    let total: u64 = partials.iter().map(|r| r.on_disk_bytes()).sum();
    let data: u64 = partials.iter().map(|r| r.data_bytes).sum();
    if total == 0 {
        0.0
    } else {
        1.0 - data as f64 / total as f64
    }
}

/// Runs the partial-segment size analysis.
pub fn run(env: &Env) -> Tab4 {
    let tab3 = tab3::run(env);
    let total_bytes: u64 = tab3.reports.iter().map(|r| r.data_bytes()).sum();
    let mut table = Table::new(
        "Table 4: Partial segment sizes and disk-space cost",
        &[
            "File system",
            "KB / fsync partial",
            "KB / partial",
            "% total write traffic",
            "Partial overhead",
        ],
    );
    let mut partial_kb = Vec::new();
    let mut partial_overhead = Vec::new();
    for r in &tab3.reports {
        let fsync_kb = r.avg_fsync_partial_kb();
        let part_kb = r.avg_partial_kb();
        let share = if total_bytes == 0 {
            0.0
        } else {
            100.0 * r.data_bytes() as f64 / total_bytes as f64
        };
        let overhead = partial_overhead_fraction(&r.records);
        table.push_row(vec![
            Cell::from(r.name.clone()),
            fsync_kb.map_or(Cell::Na, Cell::f1),
            part_kb.map_or(Cell::Na, Cell::f1),
            Cell::Pct(share),
            Cell::Pct(100.0 * overhead),
        ]);
        partial_kb.push((r.name.clone(), part_kb));
        partial_overhead.push((r.name.clone(), overhead));
    }
    Tab4 {
        table,
        partial_kb,
        partial_overhead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_partials_carry_heavy_overhead() {
        let out = run(&Env::tiny());
        // /user6's ~8 KB fsync partials lose roughly a third of their
        // space to metadata and summary blocks (§3).
        let u6 = out.overhead_of("/user6").unwrap();
        assert!(u6 > 0.2, "overhead {u6}");
        // Larger partials (kernel area) are proportionally cheaper.
        let kern = out.overhead_of("/sprite/src/kernel").unwrap();
        assert!(kern < u6, "kernel {kern} vs user6 {u6}");
    }

    #[test]
    fn user6_partials_are_small() {
        let out = run(&Env::tiny());
        let u6 = out.partial_kb_of("/user6").unwrap();
        let kern = out.partial_kb_of("/sprite/src/kernel").unwrap();
        assert!(u6 < kern, "user6 {u6} KB vs kernel {kern} KB");
        assert!(u6 < 20.0, "user6 partials should be tiny, got {u6} KB");
    }

    #[test]
    fn swap_has_na_fsync_column() {
        let out = run(&Env::tiny());
        let row = out
            .table
            .rows()
            .iter()
            .find(|r| matches!(&r[0], Cell::Text(n) if n == "/swap1"))
            .unwrap();
        assert_eq!(row[1], Cell::Na);
    }
}
