//! Experiment runners that regenerate every table and figure of Baker et
//! al., *Non-Volatile Memory for Fast, Reliable File Systems* (ASPLOS
//! 1992).
//!
//! Each module reproduces one artifact and returns both a rendered
//! [`nvfs_report::Table`]/[`nvfs_report::Figure`] and a findings struct the
//! integration tests assert tolerance bands on:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`tab1`] | Table 1 — NVRAM costs |
//! | [`fig2`] | Figure 2 — byte lifetimes |
//! | [`tab2`] | Table 2 — fate of written bytes |
//! | [`fig3`] | Figure 3 — omniscient policy vs NVRAM size |
//! | [`fig4`] | Figure 4 — replacement policies |
//! | [`fig5`] | Figure 5 — cache models, total traffic |
//! | [`fig6`] | Figure 6 — NVRAM vs volatile cost-effectiveness |
//! | [`tab3`] | Table 3 — forced partial segments |
//! | [`tab4`] | Table 4 — partial segment sizes & space cost |
//! | [`write_buffer`] | §3 — ½ MB write buffer reductions (10–25%, 90%) |
//! | [`disk_sort`] | §3 — random vs sorted disk writes (7% → 40%) |
//! | [`bus_nvram`] | §2.6 — bus traffic & NVRAM access counts |
//! | [`presto`] | §3 — NFS synchronous writes vs server NVRAM |
//! | [`pipeline`] | extension — client NVRAM's effect on the server's LFS |
//! | [`ablations`] | extensions — §2.6 hybrid model, dirty-block preference |
//! | [`consistency_protocol`] | extension — block-by-block consistency (\[21\]) |
//! | [`nvram_speed`] | extension — §2.6 NVRAM access-time sensitivity |
//! | [`read_latency`] | §3 closing analysis — optimal write size ≈ 2 tracks, full-segment read penalty |
//! | [`diagrams`] | Figures 1 and 7 rendered from live simulator state |
//! | [`lfs_vs_ffs`] | §3 framing — LFS amortization vs the update-in-place baseline |
//! | [`lfs_wal_vs_buffer`] | extension — logging vs paging: NVRAM write-ahead log vs write buffer |
//! | [`server_cache`] | §3 opening — a server NVRAM cache absorbs client write traffic |
//! | [`warmup`] | methodology — quantifying the paper's cold-start caveat |
//! | [`faults`] | §2.3/§4 — bytes lost under a seeded fault schedule, per cache model |
//! | [`verify_crash`] | robustness — durability oracle crash-point sweep with typed verdicts |
//! | [`verify_net`] | robustness — network judge: RPC retries, partitions, degraded modes |
//! | [`verify_scrub`] | robustness — corruption sweep: protection modes × corruption kinds × crash points |
//! | [`scrub_overhead`] | robustness — protection overhead vs undetected corruption |
//! | [`scorecard`] | every claim above evaluated programmatically with PASS/FAIL verdicts |
//!
//! All runners share an [`env::Env`] so the synthetic workloads are only
//! generated once, and every CLI-visible artifact above is also a row in
//! the [`registry`] — the single dispatch table behind `nvfs
//! experiments`, `export-csv`, and the scorecard.
//!
//! # Examples
//!
//! ```
//! use nvfs_experiments::{env::Env, tab3};
//!
//! let env = Env::tiny();
//! let out = tab3::run(&env);
//! println!("{}", out.table.render());
//! assert!(out.report("/user6").unwrap().pct_fsync_partial() > 70.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod bus_nvram;
pub mod consistency_protocol;
pub mod diagrams;
pub mod disk_sort;
pub mod env;
pub mod faults;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod lfs_vs_ffs;
pub mod lfs_wal_vs_buffer;
pub mod nvram_speed;
pub mod pipeline;
pub mod presto;
pub mod read_latency;
pub mod registry;
pub mod scorecard;
pub mod scrub_overhead;
pub mod server_cache;
pub mod tab1;
pub mod tab2;
pub mod tab3;
pub mod tab4;
pub mod verify_crash;
pub mod verify_net;
pub mod verify_scrub;
pub mod warmup;
pub mod write_buffer;

pub use env::{Env, Scale};
