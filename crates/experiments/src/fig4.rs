//! Figure 4 — replacement policies (LRU, random, omniscient) on Trace 7.

use nvfs_core::{ClusterSim, PolicyKind, SimConfig};
use nvfs_report::{Figure, Series};

use crate::env::Env;
use crate::fig3::{NVRAM_MB, VOLATILE_BYTES};

/// Output of the Figure 4 reproduction.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Series `lru`, `random`, `omniscient`: x = NVRAM MB, y = traffic %.
    pub figure: Figure,
}

impl Fig4 {
    /// Traffic of `policy` at `mb` megabytes of NVRAM.
    pub fn traffic(&self, policy: &str, mb: f64) -> Option<f64> {
        self.figure.series(policy)?.y_at(mb)
    }
}

/// Runs the policy comparison on Trace 7.
pub fn run(env: &Env) -> Fig4 {
    let trace = env.trace7();
    let mut figure = Figure::new(
        "Figure 4: Replacement policies (Trace 7)",
        "Megabytes NVRAM",
        "Net write traffic (%)",
    );
    const POLICIES: [(&str, PolicyKind); 3] = [
        ("lru", PolicyKind::Lru),
        ("random", PolicyKind::Random { seed: 1992 }),
        ("omniscient", PolicyKind::Omniscient),
    ];
    // Flatten the (policy × size) grid into one task list; results rejoin
    // in grid order, so the figure matches the sequential build exactly.
    let tasks: Vec<(PolicyKind, f64)> = POLICIES
        .iter()
        .flat_map(|&(_, policy)| NVRAM_MB.iter().map(move |&mb| (policy, mb)))
        .collect();
    let cells = nvfs_par::par_map(tasks, nvfs_par::jobs(), |(policy, mb)| {
        let nv = (mb * (1 << 20) as f64) as u64;
        let cfg = SimConfig::unified(VOLATILE_BYTES, nv).with_policy(policy);
        (
            mb,
            ClusterSim::new(cfg)
                .run(trace.ops())
                .net_write_traffic_pct(),
        )
    });
    for ((name, _), points) in POLICIES.iter().zip(cells.chunks(NVRAM_MB.len())) {
        figure.push(Series::new(name, points.to_vec()));
    }
    Fig4 { figure }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omniscient_is_best_and_random_is_competitive() {
        let out = run(&Env::tiny());
        let at = |p: &str, mb: f64| out.traffic(p, mb).unwrap();
        for &mb in &[0.5, 1.0, 4.0] {
            assert!(
                at("omniscient", mb) <= at("lru", mb) * 1.05,
                "omniscient worse than LRU at {mb} MB"
            );
            // The paper's surprise: random behaves almost as well as LRU —
            // within the 22% worst-case gap it reports across all traces.
            assert!(
                at("random", mb) <= at("lru", mb) * 1.3 + 5.0,
                "random catastrophically worse at {mb} MB: {} vs {}",
                at("random", mb),
                at("lru", mb)
            );
        }
    }

    #[test]
    fn three_policies_present() {
        let out = run(&Env::tiny());
        assert_eq!(out.figure.all_series().len(), 3);
    }
}
