//! Extension: block-by-block consistency (§2.3's pointer to \[21\]).
//!
//! "Reducing write traffic beyond 10 to 17% would require choosing a cache
//! consistency policy more efficient than Sprite's, such as a protocol
//! based on block-by-block invalidation and flushing, rather than
//! whole-file invalidation and flushing." This experiment runs the unified
//! model under both protocols and measures how much callback traffic the
//! lazy protocol avoids.

use nvfs_core::{ClusterSim, ConsistencyMode, SimConfig, TrafficStats};
use nvfs_report::{Cell, Table};

use crate::env::Env;

/// Output of the consistency-protocol comparison.
#[derive(Debug, Clone)]
pub struct ConsistencyProtocol {
    /// The rendered comparison over the typical traces.
    pub table: Table,
    /// Per-trace `(number, whole_file, block_on_demand)` stats.
    pub per_trace: Vec<(usize, TrafficStats, TrafficStats)>,
}

impl ConsistencyProtocol {
    /// Total callback bytes under each protocol.
    pub fn callback_totals(&self) -> (u64, u64) {
        self.per_trace.iter().fold((0, 0), |(a, b), (_, w, l)| {
            (a + w.callback_bytes, b + l.callback_bytes)
        })
    }
}

/// Runs the unified model (8 MB + 1 MB) under both protocols on the
/// typical traces.
pub fn run(env: &Env) -> ConsistencyProtocol {
    let mut table = Table::new(
        "Extension: whole-file vs block-by-block consistency (unified, 8 MB + 1 MB)",
        &[
            "Trace",
            "Callback MB (whole-file)",
            "Callback MB (block)",
            "Net write (whole-file)",
            "Net write (block)",
        ],
    );
    let mut per_trace = Vec::new();
    for trace in env.traces.typical() {
        let whole = ClusterSim::new(SimConfig::unified(8 << 20, 1 << 20)).run(trace.ops());
        let block = ClusterSim::new(
            SimConfig::unified(8 << 20, 1 << 20).with_consistency(ConsistencyMode::BlockOnDemand),
        )
        .run(trace.ops());
        table.push_row(vec![
            Cell::from(format!("Trace {}", trace.number())),
            Cell::f2(whole.callback_bytes as f64 / (1 << 20) as f64),
            Cell::f2(block.callback_bytes as f64 / (1 << 20) as f64),
            Cell::Pct(whole.net_write_traffic_pct()),
            Cell::Pct(block.net_write_traffic_pct()),
        ]);
        per_trace.push((trace.number(), whole, block));
    }
    ConsistencyProtocol { table, per_trace }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_protocol_recalls_less() {
        let out = run(&Env::tiny());
        let (whole, block) = out.callback_totals();
        assert!(block <= whole, "block {block} vs whole-file {whole}");
        assert!(whole > 0, "the workload must exercise callbacks");
    }

    #[test]
    fn lazy_protocol_never_raises_write_traffic() {
        let out = run(&Env::tiny());
        for (n, whole, block) in &out.per_trace {
            assert!(
                block.net_write_traffic_pct() <= whole.net_write_traffic_pct() + 1.0,
                "trace {n}: block {:.1}% vs whole {:.1}%",
                block.net_write_traffic_pct(),
                whole.net_write_traffic_pct()
            );
        }
    }

    #[test]
    fn conservation_holds_under_lazy_protocol() {
        let out = run(&Env::tiny());
        for (n, _, block) in &out.per_trace {
            let accounted = block.server_write_bytes
                + block.concurrent_write_bytes
                + block.overwritten_dead_bytes
                + block.deleted_dead_bytes
                + block.remaining_dirty_bytes;
            assert_eq!(accounted, block.app_write_bytes, "trace {n}");
        }
    }
}
