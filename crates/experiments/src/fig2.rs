//! Figure 2 — byte lifetimes: net write traffic versus a fixed write-back
//! delay, with an infinite non-volatile cache.

use nvfs_core::LifetimeLog;
use nvfs_report::{Figure, Series};
use nvfs_types::SimDuration;

use crate::env::Env;

/// Delay grid in minutes (log scale, 0.01 to 10 000 as in the paper).
pub const DELAY_MINUTES: [f64; 13] = [
    0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 240.0, 1000.0, 10_000.0,
];

/// Output of the Figure 2 reproduction.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// One series per trace: x = delay (minutes), y = net write traffic %.
    pub figure: Figure,
    /// Per-trace fraction of bytes dying within 30 seconds.
    pub die_within_30s: Vec<(usize, f64)>,
    /// Per-trace fraction of bytes dying within 30 minutes.
    pub die_within_30m: Vec<(usize, f64)>,
    /// Per-trace median age of dying bytes (the half-life of dirty data).
    pub median_death_age: Vec<(usize, Option<nvfs_types::SimDuration>)>,
    /// The per-trace lifetime logs (reused by Table 2).
    pub logs: Vec<LifetimeLog>,
}

/// Runs the lifetime analysis over every trace in `env`.
pub fn run(env: &Env) -> Fig2 {
    let mut figure = Figure::new(
        "Figure 2: Byte lifetimes",
        "Time in minutes",
        "Net write traffic (%)",
    );
    let mut die_within_30s = Vec::new();
    let mut die_within_30m = Vec::new();
    let mut median_death_age = Vec::new();
    let mut logs = Vec::new();
    // Each trace's lifetime pass is independent; fan out and join in trace
    // order so the figure is identical to the sequential build.
    let analyzed = nvfs_par::par_map(
        env.traces.traces().iter().collect(),
        nvfs_par::jobs(),
        |trace| {
            let log = LifetimeLog::analyze(trace.ops());
            (trace.number(), log)
        },
    );
    for (number, log) in analyzed {
        let points: Vec<(f64, f64)> = DELAY_MINUTES
            .iter()
            .map(|&m| {
                let d = SimDuration::from_secs_f64(m * 60.0);
                (m, log.net_write_traffic_at_delay(d))
            })
            .collect();
        figure.push(Series::new(&format!("Trace {number}"), points));
        die_within_30s.push((
            number,
            log.death_fraction_within(SimDuration::from_secs(30)),
        ));
        die_within_30m.push((
            number,
            log.death_fraction_within(SimDuration::from_mins(30)),
        ));
        median_death_age.push((number, log.median_death_age()));
        logs.push(log);
    }
    Fig2 {
        figure,
        die_within_30s,
        die_within_30m,
        median_death_age,
        logs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_are_nonincreasing_and_complete() {
        let out = run(&Env::tiny());
        assert_eq!(out.figure.all_series().len(), 8);
        for s in out.figure.all_series() {
            assert!(s.is_nonincreasing(), "{} increased", s.name);
            assert_eq!(s.points.len(), DELAY_MINUTES.len());
        }
    }

    #[test]
    fn median_death_ages_are_minutes_not_hours() {
        let out = run(&Env::tiny());
        for (n, age) in &out.median_death_age {
            let age = age.expect("every trace has dying bytes");
            // "most file data in Sprite is overwritten or deleted within
            // half an hour of its creation."
            assert!(
                age <= nvfs_types::SimDuration::from_mins(45),
                "trace {n}: median death age {age}"
            );
        }
    }

    #[test]
    fn large_traces_die_slower_at_30s() {
        let out = run(&Env::tiny());
        let typical_avg: f64 = out
            .die_within_30s
            .iter()
            .filter(|(n, _)| *n != 3 && *n != 4)
            .map(|(_, f)| f)
            .sum::<f64>()
            / 6.0;
        for (n, f) in &out.die_within_30s {
            if *n == 3 || *n == 4 {
                assert!(*f < typical_avg, "trace {n}: {f} vs typical {typical_avg}");
            }
        }
    }
}
