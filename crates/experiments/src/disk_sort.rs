//! The §3 disk-scheduling claim (via \[20\]): random 4 KB writes use ~7% of
//! disk bandwidth; 1000 buffered-and-sorted I/Os (4 MB of NVRAM) reach
//! ~40%.

use nvfs_rng::{Rng, SeedableRng, StdRng};

use nvfs_disk::{Discipline, DiskParams, DiskQueue, DiskRequest};
use nvfs_report::{Cell, Table};

/// Output of the disk-sorting experiment.
#[derive(Debug, Clone)]
pub struct DiskSort {
    /// Utilization per batch size and discipline.
    pub table: Table,
    /// `(batch, fifo_utilization, sorted_utilization)` rows.
    pub rows: Vec<(usize, f64, f64)>,
}

impl DiskSort {
    /// The `(fifo, sorted)` utilizations for a batch size.
    pub fn at(&self, batch: usize) -> Option<(f64, f64)> {
        self.rows
            .iter()
            .find(|(b, _, _)| *b == batch)
            .map(|&(_, f, s)| (f, s))
    }
}

/// Sweeps batch sizes of random 4 KB writes through both disciplines.
pub fn run() -> DiskSort {
    run_with(
        DiskParams::sprite_era(),
        &[10, 50, 100, 250, 500, 1000, 2000],
        4096,
        1992,
    )
}

/// Parameterized variant (used by the bench sweep).
pub fn run_with(disk: DiskParams, batches: &[usize], len: u64, seed: u64) -> DiskSort {
    let mut table = Table::new(
        "Disk bandwidth utilization: random vs sorted block writes",
        &[
            "Batch (I/Os)",
            "Buffer (MB)",
            "FIFO util",
            "Sorted util",
            "Speedup",
        ],
    );
    let mut rows = Vec::new();
    for &n in batches {
        let mut rng = StdRng::seed_from_u64(seed);
        let reqs: Vec<DiskRequest> = (0..n)
            .map(|_| DiskRequest {
                addr: rng.gen_range(0..disk.capacity - len),
                len,
            })
            .collect();
        let fifo = DiskQueue::new(disk).service_batch(&reqs, Discipline::Fifo);
        let sorted = DiskQueue::new(disk).service_batch(&reqs, Discipline::Elevator);
        table.push_row(vec![
            Cell::from(n),
            Cell::f2(n as f64 * len as f64 / (1 << 20) as f64),
            Cell::Pct(100.0 * fifo.utilization()),
            Cell::Pct(100.0 * sorted.utilization()),
            Cell::f1(fifo.total_ms / sorted.total_ms),
        ]);
        rows.push((n, fifo.utilization(), sorted.utilization()));
    }
    DiskSort { table, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousand_sorted_ios_recover_bandwidth() {
        let out = run();
        let (fifo, sorted) = out.at(1000).unwrap();
        // Paper: ~7% random, ~40% sorted. Accept the shape bands.
        assert!((0.03..0.12).contains(&fifo), "fifo {fifo}");
        assert!((0.25..0.60).contains(&sorted), "sorted {sorted}");
        assert!(sorted > 3.0 * fifo);
    }

    #[test]
    fn bigger_batches_sort_better() {
        let out = run();
        let (_, s10) = out.at(10).unwrap();
        let (_, s1000) = out.at(1000).unwrap();
        assert!(s1000 > s10, "sorting gains grow with batch size");
    }
}
