//! The §2.6 caveat, quantified: "If NVRAM access times were significantly
//! slower than volatile memory access times, this could make NVRAM less
//! appealing" — because the unified model makes 2–2.5× as many NVRAM
//! accesses as write-aside, a slow NVRAM taxes it harder.
//!
//! We charge every byte moved over the memory bus one unit at DRAM speed
//! and every byte moved through the NVRAM an extra `(ratio − 1)` units,
//! then sweep the ratio to find where the unified model's memory-time
//! advantage over write-aside disappears.

use nvfs_core::TrafficStats;
use nvfs_report::{Cell, Table};

use crate::bus_nvram;
use crate::env::Env;

/// Output of the access-ratio sweep.
#[derive(Debug, Clone)]
pub struct NvramSpeed {
    /// Memory-time comparison per ratio.
    pub table: Table,
    /// The smallest swept ratio at which write-aside's memory time drops
    /// below unified's, if any (the paper's "less appealing" point).
    pub crossover_ratio: Option<f64>,
    /// `(ratio, unified_cost, write_aside_cost)` rows in arbitrary units.
    pub rows: Vec<(f64, f64, f64)>,
}

/// Ratios swept (1.0 = NVRAM as fast as DRAM).
pub const RATIOS: [f64; 7] = [1.0, 1.25, 1.5, 2.0, 2.5, 3.0, 4.0];

/// Memory time in arbitrary units: bus bytes at DRAM speed plus the
/// slowdown surcharge on bytes that moved through the NVRAM.
pub fn memory_cost(stats: &TrafficStats, ratio: f64) -> f64 {
    stats.bus_bytes as f64 + (ratio - 1.0) * stats.nvram_bytes as f64
}

/// Runs the sweep over the 8 MB + 8 MB configuration of §2.6.
pub fn run(env: &Env) -> NvramSpeed {
    let base = bus_nvram::run(env);
    let mut table = Table::new(
        "§2.6: memory time vs NVRAM access ratio (8 MB + 8 MB, Trace 7)",
        &[
            "NVRAM/DRAM ratio",
            "Unified (rel.)",
            "Write-aside (rel.)",
            "Winner",
        ],
    );
    let mut rows = Vec::new();
    let mut crossover_ratio = None;
    let unit = memory_cost(&base.unified, 1.0);
    for &ratio in &RATIOS {
        let u = memory_cost(&base.unified, ratio) / unit;
        let w = memory_cost(&base.write_aside, ratio) / unit;
        if w < u && crossover_ratio.is_none() {
            crossover_ratio = Some(ratio);
        }
        table.push_row(vec![
            Cell::f2(ratio),
            Cell::f2(u),
            Cell::f2(w),
            Cell::from(if u <= w { "unified" } else { "write-aside" }),
        ]);
        rows.push((ratio, u, w));
    }
    NvramSpeed {
        table,
        crossover_ratio,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unified_wins_at_parity() {
        let out = run(&Env::tiny());
        let (_, u, w) = out.rows[0];
        assert!(u <= w, "at ratio 1.0 unified must win: {u} vs {w}");
    }

    #[test]
    fn slow_nvram_eventually_favors_write_aside() {
        let out = run(&Env::tiny());
        // Unified moves far more bytes through NVRAM, so some finite
        // slowdown flips the comparison — the §2.6 caveat.
        assert!(
            out.crossover_ratio.is_some(),
            "no crossover found up to {}x: {:?}",
            RATIOS.last().unwrap(),
            out.rows
        );
        let r = out.crossover_ratio.unwrap();
        assert!(
            r > 1.0,
            "crossover at parity would contradict the parity win"
        );
    }

    #[test]
    fn costs_increase_monotonically_with_ratio() {
        let out = run(&Env::tiny());
        for pair in out.rows.windows(2) {
            assert!(pair[1].1 >= pair[0].1);
            assert!(pair[1].2 >= pair[0].2);
        }
    }
}
