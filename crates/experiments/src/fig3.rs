//! Figure 3 — net write traffic under the omniscient replacement policy as
//! a function of NVRAM size, for all eight traces.

use nvfs_core::{ClusterSim, PolicyKind, SimConfig};
use nvfs_report::{Figure, Series};

use crate::env::Env;

/// NVRAM sizes swept, in megabytes (log-ish scale as in the paper).
pub const NVRAM_MB: [f64; 7] = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

/// Volatile cache size behind the NVRAM (the Sprite average was ~7 MB).
pub const VOLATILE_BYTES: u64 = 8 << 20;

/// Output of the Figure 3 reproduction.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// One series per trace: x = NVRAM MB, y = net write traffic %.
    pub figure: Figure,
}

impl Fig3 {
    /// Net write traffic of `trace` (1-based) at `mb` of NVRAM.
    pub fn traffic(&self, trace: usize, mb: f64) -> Option<f64> {
        self.figure.series(&format!("Trace {trace}"))?.y_at(mb)
    }
}

/// Runs the omniscient-policy sweep for every trace.
pub fn run(env: &Env) -> Fig3 {
    let mut figure = Figure::new(
        "Figure 3: Results of an omniscient replacement policy",
        "Megabytes NVRAM",
        "Net write traffic (%)",
    );
    // Flatten the (trace × size) grid into one task list so the sweep
    // load-balances across workers; results rejoin in grid order, so the
    // figure is byte-identical to the sequential build.
    let tasks: Vec<(&nvfs_trace::synth::Trace, f64)> = env
        .traces
        .traces()
        .iter()
        .flat_map(|trace| NVRAM_MB.iter().map(move |&mb| (trace, mb)))
        .collect();
    let cells = nvfs_par::par_map(tasks, nvfs_par::jobs(), |(trace, mb)| {
        let nv = (mb * (1 << 20) as f64) as u64;
        let cfg = SimConfig::unified(VOLATILE_BYTES, nv).with_policy(PolicyKind::Omniscient);
        (
            mb,
            ClusterSim::new(cfg)
                .run(trace.ops())
                .net_write_traffic_pct(),
        )
    });
    for (trace, points) in env.traces.traces().iter().zip(cells.chunks(NVRAM_MB.len())) {
        figure.push(Series::new(
            &format!("Trace {}", trace.number()),
            points.to_vec(),
        ));
    }
    Fig3 { figure }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diminishing_returns() {
        let out = run(&Env::tiny());
        for s in out.figure.all_series() {
            let first = s.points.first().unwrap().1;
            let last = s.points.last().unwrap().1;
            assert!(last <= first + 1e-9, "{}: {first} -> {last}", s.name);
            // "For most of the traces" (the paper excludes 3 and 4 too):
            // the first megabyte buys at least as much as everything after.
            if s.name != "Trace 3" && s.name != "Trace 4" {
                let mid = s.y_at(1.0).unwrap();
                assert!(first - mid >= mid - last - 1e-9, "{}", s.name);
            }
        }
    }

    #[test]
    fn small_nvram_already_cuts_traffic() {
        let out = run(&Env::tiny());
        let typical: Vec<&Series> = out
            .figure
            .all_series()
            .iter()
            .filter(|s| s.name != "Trace 3" && s.name != "Trace 4")
            .collect();
        for s in typical {
            let at_1mb = s.y_at(1.0).unwrap();
            assert!(at_1mb < 90.0, "{}: {at_1mb}", s.name);
        }
    }
}
