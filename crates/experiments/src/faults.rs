//! Reliability scorecard — bytes lost under an identical seeded fault
//! schedule, per cache model and per server write-buffer mode.
//!
//! The paper's argument is ultimately about *reliability*: NVRAM makes
//! cached writes "as permanent as data on disk" (§2.3, §4). This runner
//! compiles one deterministic [`FaultSchedule`] per trace and replays it
//! against each client cache model, so the models are compared on bytes
//! lost under the *same* crashes: the volatile baseline loses its whole
//! 30-second delayed-write window, the write-aside board (one battery)
//! loses only what dies with its battery, and the triply-redundant unified
//! board loses next to nothing. A second table does the §3 study server
//! side: a server crash costs the volatile dirty buffer, while NVRAM-staged
//! data is replayed into the log on restart.
//!
//! Everything is a pure function of `(seed, scale)`, so the rendered
//! scorecard is byte-identical across runs and `--jobs` counts.

use nvfs_core::{CacheModelKind, ClusterSim, SimConfig};
use nvfs_faults::{FaultError, FaultPlanConfig, FaultSchedule, ReliabilityStats};
use nvfs_lfs::{run_server_faulted, LfsConfig, SEGMENT_BYTES};
use nvfs_report::{Cell, Table};
use nvfs_types::SimDuration;

use crate::env::Env;

/// Default schedule seed; `nvfs faults --seed` overrides it.
pub const DEFAULT_SEED: u64 = 42;

/// Volatile cache size shared by every model (as in `nvfs client-sim`).
pub const BASE_BYTES: u64 = 8 << 20;

/// NVRAM size for the models that have a board: a single block, so the
/// dirty bytes one board exposes to a battery failure stay comparable to
/// the ≤ 30 seconds of writes the volatile baseline exposes at every
/// crash. (The NVRAM models cap dirty data at board capacity — pressure
/// forces a write-through — so board size directly bounds per-crash loss.)
pub const NVRAM_BYTES: u64 = 4096;

/// Client cache models compared, ordered by expected bytes lost.
pub const MODELS: [CacheModelKind; 4] = [
    CacheModelKind::Volatile,
    CacheModelKind::WriteAside,
    CacheModelKind::Hybrid,
    CacheModelKind::Unified,
];

/// Battery redundancy per model: Table 1's SIMM-style parts carry one or
/// two cells, full boards are triply redundant. The volatile model has no
/// board at all; its entry only keeps the plan valid.
pub const fn batteries_for(model: CacheModelKind) -> u8 {
    match model {
        CacheModelKind::Volatile => 1,
        CacheModelKind::WriteAside => 1,
        CacheModelKind::Hybrid => 2,
        CacheModelKind::Unified => 3,
    }
}

/// Display name of a model, matching `nvfs client-sim --model`.
pub const fn model_name(model: CacheModelKind) -> &'static str {
    match model {
        CacheModelKind::Volatile => "volatile",
        CacheModelKind::WriteAside => "write-aside",
        CacheModelKind::Hybrid => "hybrid",
        CacheModelKind::Unified => "unified",
    }
}

/// Parses a `model_name` back into a kind (for the CLI `--model` flag).
pub fn parse_model(name: &str) -> Option<CacheModelKind> {
    MODELS.into_iter().find(|m| model_name(*m) == name)
}

/// Output of the reliability study.
#[derive(Debug, Clone)]
pub struct Faults {
    /// The schedule seed everything was compiled from.
    pub seed: u64,
    /// Per-model client-crash accounting, in [`MODELS`] order.
    pub models: Vec<(CacheModelKind, ReliabilityStats)>,
    /// Per-buffer-mode server-crash accounting.
    pub server_modes: Vec<(&'static str, ReliabilityStats)>,
    /// Client-side scorecard table.
    pub client_table: Table,
    /// Server-side scorecard table.
    pub server_table: Table,
}

impl Faults {
    /// The merged reliability accounting of one cache model.
    pub fn model(&self, kind: CacheModelKind) -> Option<&ReliabilityStats> {
        self.models.iter().find(|(m, _)| *m == kind).map(|(_, s)| s)
    }

    /// §2.3/§4's qualitative claim as a strict ordering on bytes lost.
    pub fn loss_ordering_holds(&self) -> bool {
        match (
            self.model(CacheModelKind::Volatile),
            self.model(CacheModelKind::WriteAside),
            self.model(CacheModelKind::Unified),
        ) {
            (Some(v), Some(w), Some(u)) => {
                v.bytes_lost() > w.bytes_lost() && w.bytes_lost() > u.bytes_lost()
            }
            _ => false,
        }
    }

    /// Both tables plus the ordering verdict, as printed by `nvfs faults`.
    pub fn render(&self) -> String {
        format!(
            "{}\n{}\nloss ordering (bytes lost): volatile > write-aside > unified — {}\n",
            self.client_table.render(),
            self.server_table.render(),
            if self.loss_ordering_holds() {
                "HOLDS"
            } else {
                "VIOLATED"
            }
        )
    }
}

/// The fault plan applied to one client trace: crash half the clients,
/// batteries aging on an accelerated clock (mean lifetime four trace
/// lengths, so single-battery boards die occasionally while triply
/// redundant ones essentially never do), boards relocated after about a
/// sixth of the trace. Torn drains are left to the server half so the
/// client comparison isolates the window-vs-battery story.
pub(crate) fn client_plan(
    clients: u32,
    duration: SimDuration,
    model: CacheModelKind,
) -> FaultPlanConfig {
    let micros = duration.as_micros();
    FaultPlanConfig::new(clients, duration)
        .with_client_crashes((clients / 2).max(1).min(clients))
        .with_batteries(batteries_for(model))
        .with_battery_mtbf(SimDuration::from_micros(micros.saturating_mul(4).max(1)))
        .with_relocation_delay(SimDuration::from_micros((micros / 6).max(1)))
}

/// Runs every trace against `model` under the seeded schedule and merges
/// the accounting in trace order (deterministic at any job count).
pub fn model_reliability(
    env: &Env,
    seed: u64,
    model: CacheModelKind,
) -> Result<ReliabilityStats, FaultError> {
    let indices: Vec<usize> = (0..env.traces.traces().len()).collect();
    let runs = nvfs_par::par_map(indices, nvfs_par::jobs(), |i| {
        let trace = env.traces.trace(i);
        let plan = client_plan(trace.clients() as u32, trace.duration(), model);
        // Each trace gets its own schedule stream; the per-model plans
        // share everything except battery redundancy, so all models see
        // the same crashes at the same times.
        let schedule = FaultSchedule::compile(seed ^ trace.number() as u64, &plan)?;
        let cfg = match model {
            CacheModelKind::Volatile => SimConfig::volatile(BASE_BYTES),
            CacheModelKind::WriteAside => SimConfig::write_aside(BASE_BYTES, NVRAM_BYTES),
            CacheModelKind::Unified => SimConfig::unified(BASE_BYTES, NVRAM_BYTES),
            CacheModelKind::Hybrid => SimConfig::hybrid(BASE_BYTES, NVRAM_BYTES),
        };
        Ok(ClusterSim::new(cfg)
            .run_with_faults(trace.ops(), &schedule)
            .reliability)
    });
    let mut merged = ReliabilityStats::default();
    for run in runs {
        merged.merge(&run?);
    }
    Ok(merged)
}

/// Server write-buffer modes compared under the same crash schedule.
fn server_configs() -> Vec<(&'static str, LfsConfig)> {
    vec![
        ("none", LfsConfig::direct()),
        ("fsync-absorb", LfsConfig::with_fsync_buffer(512 << 10)),
        ("stage-all", LfsConfig::with_staging_buffer(SEGMENT_BYTES)),
    ]
}

/// Runs the eight server file systems under `config` with the seeded
/// server-crash schedule.
pub fn server_reliability(
    env: &Env,
    seed: u64,
    config: &LfsConfig,
) -> Result<ReliabilityStats, FaultError> {
    let plan = FaultPlanConfig::new(0, env.trace_config.duration())
        .with_server_crashes(4)
        .with_torn_probability(0.6);
    let schedule = FaultSchedule::compile(seed, &plan)?;
    let (_, reliability) = run_server_faulted(&env.server, config, &schedule.server_crashes);
    Ok(reliability)
}

/// Renders the client-crash half of the scorecard for `models`.
pub fn client_table(seed: u64, models: &[(CacheModelKind, ReliabilityStats)]) -> Table {
    let mut table = Table::new(
        &format!("Reliability scorecard — client crashes (seed {seed})"),
        &[
            "model",
            "crashes",
            "at-risk KB",
            "in-NVRAM KB",
            "recovered KB",
            "lost KB",
            "lost %",
            "boards dead",
        ],
    );
    let kb = |b: u64| Cell::f1(b as f64 / 1024.0);
    for (model, s) in models {
        table.push_row(vec![
            Cell::from(model_name(*model)),
            Cell::Int(s.client_crashes as i64),
            kb(s.bytes_at_risk),
            kb(s.bytes_in_nvram),
            kb(s.bytes_recovered),
            kb(s.bytes_lost()),
            Cell::Pct(s.loss_pct()),
            Cell::Int(s.boards_dead as i64),
        ]);
    }
    table
}

/// Renders the server-crash half of the scorecard.
pub fn server_table(seed: u64, modes: &[(&'static str, ReliabilityStats)]) -> Table {
    let mut table = Table::new(
        &format!("Reliability scorecard — server crashes (seed {seed})"),
        &[
            "write buffer",
            "crashes",
            "buffer lost KB",
            "replayed KB",
            "torn rewrite KB",
            "lost %",
        ],
    );
    let kb = |b: u64| Cell::f1(b as f64 / 1024.0);
    for (name, s) in modes {
        table.push_row(vec![
            Cell::from(*name),
            Cell::Int(s.server_crashes as i64),
            kb(s.bytes_lost_buffer),
            kb(s.bytes_replayed),
            kb(s.bytes_rewritten_torn),
            Cell::Pct(s.loss_pct()),
        ]);
    }
    table
}

/// Runs the full study under `seed`.
pub fn run_seeded(env: &Env, seed: u64) -> Result<Faults, FaultError> {
    let mut models = Vec::with_capacity(MODELS.len());
    for model in MODELS {
        models.push((model, model_reliability(env, seed, model)?));
    }
    let mut server_modes = Vec::new();
    for (name, config) in server_configs() {
        server_modes.push((name, server_reliability(env, seed, &config)?));
    }
    Ok(Faults {
        seed,
        client_table: client_table(seed, &models),
        server_table: server_table(seed, &server_modes),
        models,
        server_modes,
    })
}

/// Runs the full study under the default seed.
pub fn run(env: &Env) -> Result<Faults, FaultError> {
    run_seeded(env, DEFAULT_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volatile_loses_more_than_write_aside_loses_more_than_unified() {
        let out = run(&Env::tiny()).unwrap();
        assert!(out.loss_ordering_holds(), "{}", out.render());
        let v = out.model(CacheModelKind::Volatile).unwrap();
        assert_eq!(
            v.bytes_in_nvram, 0,
            "the volatile model has no board to preserve anything"
        );
        assert_eq!(v.bytes_lost_window, v.bytes_at_risk);
    }

    #[test]
    fn all_models_see_the_same_crashes() {
        let out = run(&Env::tiny()).unwrap();
        let counts: Vec<u64> = out.models.iter().map(|(_, s)| s.client_crashes).collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    fn staging_buffer_turns_buffer_loss_into_replay() {
        let out = run(&Env::tiny()).unwrap();
        let of = |name: &str| {
            out.server_modes
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, s)| *s)
                .unwrap()
        };
        let none = of("none");
        let absorb = of("fsync-absorb");
        let staged = of("stage-all");
        assert!(none.bytes_lost_buffer > 0, "volatile buffer must lose data");
        assert_eq!(none.bytes_replayed, 0, "no NVRAM, nothing to replay");
        assert!(staged.bytes_replayed > absorb.bytes_replayed);
        assert!(absorb.bytes_replayed > 0, "staged data replays on restart");
        // The 30-second dirty cache is volatile in every mode; what the
        // NVRAM buffer changes is how much of the in-flight data survives.
        assert!(none.loss_pct() > absorb.loss_pct());
        assert!(absorb.loss_pct() > staged.loss_pct());
    }

    #[test]
    fn scorecard_is_reproducible() {
        let env = Env::tiny();
        let a = run_seeded(&env, 7).unwrap();
        let b = run_seeded(&env, 7).unwrap();
        assert_eq!(a.render(), b.render());
        assert_eq!(a.models, b.models);
    }
}
