//! Network judge — deterministic net-fault sweep (`nvfs verify-net`).
//!
//! The crash sweep (`verify-crash`) proves recovery is exact when machines
//! die; this sweep proves the *wire* contract when the network does. From
//! one `(seed, scale)` pair it drives every cache model through a fixed
//! set of network schedules — client partitions, whole-server partitions,
//! drop-heavy links, duplicate/reorder-heavy links, and partitions
//! composed with client crashes — replaying every client↔server
//! interaction as an explicit RPC through a compiled
//! [`NetFaultPlan`]. The wire transcript is judged by
//! [`nvfs_oracle::NetJudge`]: any acknowledged request whose bytes never
//! applied is an [`AckedLost`] verdict, any request applied twice is a
//! [`DoubleApply`], and any delivery inside a severing partition window is
//! a [`PartitionLeak`]. The composed schedule additionally runs the full
//! durability oracle on top.
//!
//! The sweep also proves the paper's loss ordering under pure partitions:
//! a volatile cache must shed strictly more bytes at an unreachable
//! server than a write-aside cache (whose NVRAM absorbs the write-through
//! stream until it overflows), which in turn sheds strictly more than a
//! unified whole-cache NVRAM client (which simply defers everything and
//! reconciles on heal).
//!
//! Everything is a pure function of `(seed, scale)` and byte-identical at
//! any `--jobs` count; CI diffs the rendered report against a golden copy.
//!
//! [`AckedLost`]: nvfs_oracle::NetVerdict::AckedLost
//! [`DoubleApply`]: nvfs_oracle::NetVerdict::DoubleApply
//! [`PartitionLeak`]: nvfs_oracle::NetVerdict::PartitionLeak

use nvfs_core::{CacheModelKind, ClusterSim, NetStats, SimConfig};
use nvfs_faults::net::{NetFaultPlan, NetFaultPlanConfig};
use nvfs_faults::FaultSchedule;
use nvfs_oracle::{NetSummary, OracleSummary};
use nvfs_report::{Cell, Table};
use nvfs_types::SimDuration;

use crate::env::Env;
use crate::faults::{model_name, BASE_BYTES, DEFAULT_SEED, MODELS};

/// NVRAM board size for the write-aside and hybrid rows: big enough to
/// coalesce overwrites during an outage, small enough that a long
/// partition overflows it — the middle rung of the loss ordering.
pub const WRITE_ASIDE_NVRAM: u64 = 1 << 20;

/// The network schedules swept per cache model, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetScheduleKind {
    /// Timed partitions severing individual clients.
    ClientPartition,
    /// Timed partitions severing the whole server.
    ServerPartition,
    /// Lossy link: heavy message drops, no partitions.
    DropHeavy,
    /// Chatty link: heavy duplication and wide delay spread (reordering).
    DupReorder,
    /// Client partitions and server partitions composed with the plain
    /// client crash schedule, judged by the durability oracle on top.
    PartitionCrash,
}

/// Sweep order for [`NetScheduleKind`].
pub const NET_KINDS: [NetScheduleKind; 5] = [
    NetScheduleKind::ClientPartition,
    NetScheduleKind::ServerPartition,
    NetScheduleKind::DropHeavy,
    NetScheduleKind::DupReorder,
    NetScheduleKind::PartitionCrash,
];

impl NetScheduleKind {
    /// Stable report label.
    pub fn name(self) -> &'static str {
        match self {
            NetScheduleKind::ClientPartition => "client-partition",
            NetScheduleKind::ServerPartition => "server-partition",
            NetScheduleKind::DropHeavy => "drop-heavy",
            NetScheduleKind::DupReorder => "dup-reorder",
            NetScheduleKind::PartitionCrash => "partition+crash",
        }
    }

    /// Whether this schedule's sheds feed the pure-partition loss-ordering
    /// claim (no drops, no crashes — loss can only come from partitions).
    pub fn pure_partition(self) -> bool {
        matches!(
            self,
            NetScheduleKind::ClientPartition | NetScheduleKind::ServerPartition
        )
    }

    /// The compiled plan for one trace. Partition windows are a quarter of
    /// the trace (floored at 90 s) so they always exceed the 30 s delayed
    /// write-back horizon: a volatile cache cannot simply age its dirty
    /// bytes past the outage.
    pub fn plan(self, clients: u32, duration: SimDuration) -> NetFaultPlanConfig {
        let part = SimDuration::from_micros((duration.as_micros() / 4).max(90_000_000));
        let base = NetFaultPlanConfig::new(clients, duration);
        match self {
            NetScheduleKind::ClientPartition => base
                .with_client_partitions(clients.max(1))
                .with_partition_duration(part),
            NetScheduleKind::ServerPartition => {
                base.with_server_partitions(2).with_partition_duration(part)
            }
            NetScheduleKind::DropHeavy => base
                .with_drop_probability(0.35)
                .with_delay_range(SimDuration::from_micros(500), SimDuration::from_millis(20)),
            NetScheduleKind::DupReorder => base
                .with_drop_probability(0.05)
                .with_duplicate_probability(0.35)
                .with_delay_range(SimDuration::from_micros(500), SimDuration::from_millis(50)),
            NetScheduleKind::PartitionCrash => base
                .with_client_partitions(clients.max(1))
                .with_server_partitions(1)
                .with_partition_duration(part)
                .with_drop_probability(0.1),
        }
    }
}

/// One row of the sweep: a cache model driven through one network
/// schedule across every trace, judged by the wire oracle (and, for the
/// composed schedule, the durability oracle).
#[derive(Debug, Clone, PartialEq)]
pub struct NetRow {
    /// Cache model swept.
    pub model: CacheModelKind,
    /// The network schedule pinned for this row.
    pub kind: NetScheduleKind,
    /// Merged wire-layer counters across the trace set.
    pub stats: NetStats,
    /// Merged wire-judge summary across the trace set.
    pub net: NetSummary,
    /// Bytes shed at the unreachable server
    /// ([`nvfs_faults::ReliabilityStats::bytes_lost_partition`]).
    pub shed_bytes: u64,
    /// Durability-oracle summary — nonzero only for the composed
    /// partition+crash schedule.
    pub oracle: OracleSummary,
}

impl NetRow {
    /// Wire-judge violations plus durability-oracle violations.
    pub fn violations(&self) -> u64 {
        self.net.violations() + self.oracle.violations()
    }
}

fn merge_stats(into: &mut NetStats, from: &NetStats) {
    into.requests += from.requests;
    into.retries += from.retries;
    into.timeouts += from.timeouts;
    into.degraded_ops += from.degraded_ops;
    into.dup_suppressed += from.dup_suppressed;
    into.gave_up += from.gave_up;
    into.shed_bytes += from.shed_bytes;
    into.shed_writes += from.shed_writes;
}

/// Output of the network sweep.
#[derive(Debug, Clone)]
pub struct VerifyNet {
    /// The sweep seed.
    pub seed: u64,
    /// Rows in [`MODELS`] × [`NET_KINDS`] order.
    pub rows: Vec<NetRow>,
    /// Merged wire-judge summary.
    pub summary: NetSummary,
    /// Merged durability-oracle summary over the composed rows.
    pub oracle: OracleSummary,
    /// The sweep table.
    pub table: Table,
}

impl VerifyNet {
    /// Bytes a model shed across the pure-partition schedules.
    pub fn partition_shed(&self, model: CacheModelKind) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.model == model && r.kind.pure_partition())
            .map(|r| r.shed_bytes)
            .sum()
    }

    /// The paper's loss ordering under pure network partitions: volatile
    /// sheds strictly more than write-aside, which sheds strictly more
    /// than unified.
    pub fn loss_ordering_holds(&self) -> bool {
        let volatile = self.partition_shed(CacheModelKind::Volatile);
        let aside = self.partition_shed(CacheModelKind::WriteAside);
        let unified = self.partition_shed(CacheModelKind::Unified);
        volatile > aside && aside > unified
    }

    /// Total wire + durability violations across the sweep.
    pub fn violations(&self) -> u64 {
        self.rows.iter().map(NetRow::violations).sum()
    }

    /// Whether no acknowledged byte was lost, no request double-applied,
    /// no delivery leaked through a partition, the composed crashes
    /// recovered exactly, and the loss ordering held.
    pub fn is_clean(&self) -> bool {
        self.violations() == 0 && self.loss_ordering_holds()
    }

    fn ordering_line(&self) -> String {
        let kb = |b: u64| b as f64 / 1024.0;
        format!(
            "loss ordering under pure partitions (KB shed): volatile {:.1} > write-aside {:.1} > unified {:.1} — {}",
            kb(self.partition_shed(CacheModelKind::Volatile)),
            kb(self.partition_shed(CacheModelKind::WriteAside)),
            kb(self.partition_shed(CacheModelKind::Unified)),
            if self.loss_ordering_holds() {
                "HOLDS"
            } else {
                "VIOLATED"
            }
        )
    }

    /// One-line machine-readable verdict (stable key order), as printed by
    /// `nvfs verify-net` and parsed by CI.
    pub fn verdict_json(&self) -> String {
        format!(
            concat!(
                "{{\"net_judge\":\"{}\",\"seed\":{},\"acked\":{},\"applied\":{},",
                "\"duplicates\":{},\"acked_lost\":{},\"double_apply\":{},",
                "\"partition_leak\":{},\"oracle_violations\":{},\"loss_ordering\":\"{}\"}}"
            ),
            if self.violations() == 0 {
                "clean"
            } else {
                "violated"
            },
            self.seed,
            self.summary.acked,
            self.summary.applied,
            self.summary.duplicates,
            self.summary.acked_lost,
            self.summary.double_apply,
            self.summary.partition_leak,
            self.oracle.violations(),
            if self.loss_ordering_holds() {
                "holds"
            } else {
                "violated"
            },
        )
    }

    /// The table, ordering line and verdict, as printed by
    /// `nvfs verify-net`.
    pub fn render(&self) -> String {
        format!(
            "{}\n{}\n{}\n",
            self.table.render(),
            self.ordering_line(),
            self.verdict_json()
        )
    }
}

/// Paper-faithful model configurations for the net sweep: unified gets a
/// whole-cache NVRAM (its defining trait in §2.1), write-aside and hybrid
/// a bounded board, volatile none.
fn model_config(model: CacheModelKind) -> SimConfig {
    match model {
        CacheModelKind::Volatile => SimConfig::volatile(BASE_BYTES),
        CacheModelKind::WriteAside => SimConfig::write_aside(BASE_BYTES, WRITE_ASIDE_NVRAM),
        CacheModelKind::Unified => SimConfig::unified(BASE_BYTES, BASE_BYTES),
        CacheModelKind::Hybrid => SimConfig::hybrid(BASE_BYTES, WRITE_ASIDE_NVRAM),
    }
}

/// Runs the sweep: every trace × model × schedule, one run each, merged
/// into per-(model, schedule) rows in sweep order.
pub fn sweep(env: &Env, seed: u64) -> Result<Vec<NetRow>, String> {
    let mut jobs = Vec::new();
    for model in MODELS {
        for kind in NET_KINDS {
            for i in 0..env.traces.traces().len() {
                jobs.push((model, kind, i));
            }
        }
    }
    let runs = nvfs_par::par_map(jobs, nvfs_par::jobs(), |(model, kind, i)| {
        let trace = env.traces.trace(i);
        let cfg = kind.plan(trace.clients() as u32, trace.duration());
        let net =
            NetFaultPlan::compile(seed ^ trace.number() as u64, &cfg).map_err(|e| e.to_string())?;
        let sim = ClusterSim::new(model_config(model));
        let (report, oracle) = if kind == NetScheduleKind::PartitionCrash {
            let plan = crate::faults::client_plan(trace.clients() as u32, trace.duration(), model);
            let schedule = FaultSchedule::compile(seed ^ trace.number() as u64, &plan)
                .map_err(|e| e.to_string())?;
            let (report, oracle) = sim.run_with_net_faults_verified(trace.ops(), &net, &schedule);
            (report, oracle.summary())
        } else {
            (
                sim.run_with_net_faults(trace.ops(), &net),
                OracleSummary::default(),
            )
        };
        Ok::<_, String>((
            model,
            kind,
            report.net.stats,
            report.net.summary,
            report.reliability.bytes_lost_partition,
            oracle,
        ))
    });
    // par_map preserves submission order, so folding in run order gives
    // the same rows at any job count.
    let mut rows: Vec<NetRow> = Vec::new();
    for run in runs {
        let (model, kind, stats, net, shed, oracle) = run?;
        match rows.last_mut() {
            Some(row) if row.model == model && row.kind == kind => {
                merge_stats(&mut row.stats, &stats);
                row.net.merge(&net);
                row.shed_bytes += shed;
                row.oracle.merge(&oracle);
            }
            _ => rows.push(NetRow {
                model,
                kind,
                stats,
                net,
                shed_bytes: shed,
                oracle,
            }),
        }
    }
    Ok(rows)
}

/// Renders the sweep table.
pub fn net_table(seed: u64, rows: &[NetRow]) -> Table {
    let mut table = Table::new(
        &format!("Network judge — net-fault sweep (seed {seed})"),
        &[
            "model",
            "schedule",
            "requests",
            "retries",
            "timeouts",
            "degraded",
            "dups",
            "shed KB",
            "net-viol",
            "oracle-viol",
        ],
    );
    let kb = |b: u64| Cell::f1(b as f64 / 1024.0);
    for row in rows {
        table.push_row(vec![
            Cell::from(model_name(row.model)),
            Cell::from(row.kind.name()),
            Cell::Int(row.stats.requests as i64),
            Cell::Int(row.stats.retries as i64),
            Cell::Int(row.stats.timeouts as i64),
            Cell::Int(row.stats.degraded_ops as i64),
            Cell::Int(row.net.duplicates as i64),
            kb(row.shed_bytes),
            Cell::Int(row.net.violations() as i64),
            Cell::Int(row.oracle.violations() as i64),
        ]);
    }
    table
}

/// Runs the full sweep under `seed`.
pub fn run_seeded(env: &Env, seed: u64) -> Result<VerifyNet, String> {
    let rows = sweep(env, seed)?;
    let mut summary = NetSummary::default();
    let mut oracle = OracleSummary::default();
    for row in &rows {
        summary.merge(&row.net);
        oracle.merge(&row.oracle);
    }
    Ok(VerifyNet {
        seed,
        table: net_table(seed, &rows),
        rows,
        summary,
        oracle,
    })
}

/// Runs the full sweep under the default seed.
pub fn run(env: &Env) -> Result<VerifyNet, String> {
    run_seeded(env, DEFAULT_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_is_clean_and_ordering_holds() {
        let out = run(&Env::tiny()).unwrap();
        assert!(out.is_clean(), "{}", out.render());
        assert!(out.loss_ordering_holds(), "{}", out.render());
        // Unified's whole-cache NVRAM absorbs almost everything: its shed
        // must be a small fraction of what write-aside loses to overflow.
        assert!(
            out.partition_shed(CacheModelKind::Unified) * 4
                < out.partition_shed(CacheModelKind::WriteAside),
            "{}",
            out.render()
        );
        assert_eq!(out.summary.double_apply, 0);
        assert_eq!(out.summary.acked_lost, 0);
        assert!(out.summary.acked > 0);
        assert!(out.rows.iter().all(|r| r.stats.requests > 0));
        // The partition schedules actually severed something.
        assert!(out
            .rows
            .iter()
            .any(|r| r.kind.pure_partition() && r.stats.timeouts > 0));
        // The dup-reorder schedule actually duplicated something, and
        // every duplicate was suppressed by server-side dedup.
        assert!(out
            .rows
            .iter()
            .any(|r| r.kind == NetScheduleKind::DupReorder && r.net.duplicates > 0));
        assert!(out.verdict_json().starts_with("{\"net_judge\":\"clean\""));
    }

    #[test]
    fn sweep_is_reproducible() {
        let env = Env::tiny();
        let a = run_seeded(&env, 7).unwrap();
        let b = run_seeded(&env, 7).unwrap();
        assert_eq!(a.render(), b.render());
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn composed_rows_run_the_durability_oracle() {
        let out = run(&Env::tiny()).unwrap();
        for row in &out.rows {
            if row.kind == NetScheduleKind::PartitionCrash {
                assert!(row.oracle.crash_points > 0, "{:?}", row.model);
                assert_eq!(row.oracle.violations(), 0, "{:?}", row.model);
            } else {
                assert_eq!(row.oracle.crash_points, 0, "{:?}", row.model);
            }
        }
    }
}
