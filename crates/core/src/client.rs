//! Per-client cache behaviour for the three cache models of §2.1/Figure 1.
//!
//! * **Volatile** — one LRU cache; dirty data is flushed by the 30-second
//!   delayed write-back (driven by [`ClientCache::writeback_older_than`])
//!   and by `fsync`; replacement is strict LRU with no preference for
//!   dirty blocks.
//! * **Write-aside** — the NVRAM shadows every dirty block of the volatile
//!   cache. It is written, never read (except after a crash). There is no
//!   30-second write-back and `fsync` is a no-op: NVRAM contents are as
//!   permanent as disk. When the NVRAM fills, the replacement policy picks
//!   a dirty block to send to the server; the copy in the volatile cache
//!   becomes clean.
//! * **Unified** — dirty blocks live *only* in the NVRAM; clean blocks may
//!   live in either memory. Writes go to the NVRAM, reads are served from
//!   either. When a write replaces an NVRAM block, the victim is flushed
//!   (if dirty) and demoted to the volatile cache as a clean copy when it
//!   is younger than the volatile LRU block.

use nvfs_nvram::NvramDevice;
use nvfs_types::{blocks_of_range, BlockId, ByteRange, ClientId, FileId, SimTime, BLOCK_SIZE};

use crate::block_store::{BlockEntry, BlockStore};
use crate::config::{CacheModelKind, SimConfig};
use crate::metrics::TrafficStats;
use crate::policy::Policy;

/// Why bytes were written from a client cache to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushCause {
    /// The 30-second delayed write-back (volatile model only).
    WriteBack,
    /// A dirty block was replaced to make room.
    Replacement,
    /// The consistency protocol recalled the data (or disabled caching).
    Callback,
    /// A process migrated away.
    Migration,
    /// An application fsync (volatile model only; NVRAM models treat
    /// NVRAM contents as already permanent).
    Fsync,
    /// A recovery agent drained a relocated NVRAM board after a client
    /// crash (§4).
    Recovery,
}

impl FlushCause {
    /// Stable lowercase label (trace events, reports).
    pub fn label(self) -> &'static str {
        match self {
            FlushCause::WriteBack => "write-back",
            FlushCause::Replacement => "replacement",
            FlushCause::Callback => "callback",
            FlushCause::Migration => "migration",
            FlushCause::Fsync => "fsync",
            FlushCause::Recovery => "recovery",
        }
    }
}

/// One write from a client cache to the file server, with its cause —
/// the event stream a server-side simulation (e.g. the LFS study) can
/// consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerWrite {
    /// When the bytes left the client.
    pub time: SimTime,
    /// The client that wrote them.
    pub client: ClientId,
    /// The file they belong to.
    pub file: FileId,
    /// Number of bytes.
    pub bytes: u64,
    /// Why they were flushed.
    pub cause: FlushCause,
}

/// One client workstation's cache state.
#[derive(Debug, Clone)]
pub struct ClientCache {
    model: CacheModelKind,
    dirty_preference: bool,
    client: ClientId,
    volatile: BlockStore,
    nvram: BlockStore,
    policy: Policy,
    device: NvramDevice,
    log: Vec<ServerWrite>,
    /// While a network partition severs this client's link, bytes the
    /// model is *forced* to push to the server are shed here instead of
    /// reaching the write log — the paper's degraded-mode loss (§2.3).
    severed: bool,
    shed_log: Vec<ServerWrite>,
    /// Reused buffer for per-tick dirty-block scans (cleaner hot path).
    scratch_blocks: Vec<BlockId>,
}

impl ClientCache {
    /// Creates an empty cache for `client` per `config`.
    pub fn new(config: &SimConfig, policy: Policy, client: ClientId) -> Self {
        ClientCache {
            model: config.model,
            dirty_preference: config.dirty_preference,
            client,
            volatile: BlockStore::new(config.volatile_blocks()),
            nvram: BlockStore::new(config.nvram_blocks()),
            policy,
            device: NvramDevice::new(config.nvram_bytes)
                .with_access_ratio(config.nvram_access_ratio),
            log: Vec::new(),
            severed: false,
            shed_log: Vec::new(),
            scratch_blocks: Vec::new(),
        }
    }

    /// Removes and returns the log of writes this cache sent to the server.
    pub fn take_server_writes(&mut self) -> Vec<ServerWrite> {
        std::mem::take(&mut self.log)
    }

    /// Marks this client's server link as severed (network partition) or
    /// healed. While severed, forced server flushes are shed.
    pub fn set_severed(&mut self, severed: bool) {
        self.severed = severed;
    }

    /// Whether the server link is currently severed.
    pub fn severed(&self) -> bool {
        self.severed
    }

    /// Removes and returns the writes shed while the link was severed.
    pub fn take_shed_writes(&mut self) -> Vec<ServerWrite> {
        std::mem::take(&mut self.shed_log)
    }

    /// Clears every accumulated counter (write log, shed log and NVRAM
    /// device counters) without touching cache contents — used by warm-up
    /// runs.
    pub fn reset_counters(&mut self) {
        self.log.clear();
        self.shed_log.clear();
        self.device.reset_counters();
    }

    /// Dirty ranges currently resident in the NVRAM store, in block order
    /// (crash-survivable state; see [`crate::recovery`]).
    ///
    /// Yields borrows of the per-block range sets rather than cloning and
    /// merging them — consumers (the recovery board) already merge ranges
    /// on insert, so grouping here would only allocate.
    pub(crate) fn nvram_dirty_by_file(
        &self,
    ) -> impl Iterator<Item = (FileId, &nvfs_types::RangeSet)> {
        self.nvram
            .iter()
            .filter(|(_, entry)| entry.is_dirty())
            .map(|(id, entry)| (id.file, &entry.dirty))
    }

    /// The NVRAM device (access counters).
    pub fn device(&self) -> &NvramDevice {
        &self.device
    }

    /// Dirty bytes still cached (counted once, even for write-aside where
    /// the NVRAM mirrors the volatile cache).
    pub fn remaining_dirty_bytes(&self) -> u64 {
        match self.model {
            CacheModelKind::Volatile | CacheModelKind::WriteAside => {
                self.volatile.total_dirty_bytes()
            }
            CacheModelKind::Unified => self.nvram.total_dirty_bytes(),
            CacheModelKind::Hybrid => {
                self.volatile.total_dirty_bytes() + self.nvram.total_dirty_bytes()
            }
        }
    }

    /// Application read of `range`. Accounts hits, misses and fetches.
    pub fn read(&mut self, file: FileId, range: ByteRange, t: SimTime, stats: &mut TrafficStats) {
        for block in blocks_of_range(file, range) {
            match self.model {
                CacheModelKind::Volatile | CacheModelKind::WriteAside => {
                    if self.volatile.contains(block) {
                        self.volatile.touch(block, t);
                        stats.read_hit_blocks += 1;
                    } else {
                        stats.read_miss_blocks += 1;
                        stats.server_read_bytes += BLOCK_SIZE;
                        self.make_room_volatile(t, stats);
                        self.volatile.insert(block, t);
                    }
                }
                CacheModelKind::Unified | CacheModelKind::Hybrid => {
                    if self.nvram.contains(block) {
                        self.nvram.touch(block, t);
                        let span = block
                            .byte_range()
                            .intersection(range)
                            .map_or(0, ByteRange::len);
                        self.device.record_read(span);
                        stats.read_hit_blocks += 1;
                    } else if self.volatile.contains(block) {
                        self.volatile.touch(block, t);
                        stats.read_hit_blocks += 1;
                    } else {
                        stats.read_miss_blocks += 1;
                        stats.server_read_bytes += BLOCK_SIZE;
                        self.place_clean_block(block, t, stats);
                    }
                }
            }
        }
    }

    /// Application write of `range`. Accounts bus traffic, NVRAM accesses,
    /// dirty deaths by overwrite, and any replacement flushes.
    pub fn write(&mut self, file: FileId, range: ByteRange, t: SimTime, stats: &mut TrafficStats) {
        for block in blocks_of_range(file, range) {
            let sub = block
                .byte_range()
                .intersection(range)
                .expect("blocks_of_range yields intersecting blocks");
            match self.model {
                CacheModelKind::Volatile => self.write_volatile(block, sub, t, stats),
                CacheModelKind::WriteAside => self.write_aside(block, sub, t, stats),
                CacheModelKind::Unified => self.write_unified(block, sub, t, stats),
                CacheModelKind::Hybrid => self.write_hybrid(block, sub, t, stats),
            }
        }
    }

    fn write_volatile(
        &mut self,
        block: BlockId,
        sub: ByteRange,
        t: SimTime,
        stats: &mut TrafficStats,
    ) {
        self.ensure_volatile_block(block, sub, t, stats);
        let out = self.volatile.mark_dirty(block, sub, t);
        stats.overwritten_dead_bytes += out.overwritten;
        stats.bus_bytes += sub.len();
    }

    fn write_aside(
        &mut self,
        block: BlockId,
        sub: ByteRange,
        t: SimTime,
        stats: &mut TrafficStats,
    ) {
        self.ensure_volatile_block(block, sub, t, stats);
        let out = self.volatile.mark_dirty(block, sub, t);
        stats.overwritten_dead_bytes += out.overwritten;
        // Duplicate the write into the NVRAM.
        if !self.nvram.contains(block) {
            if self.nvram.is_full() {
                self.replace_nvram_write_aside(t, stats);
            }
            self.nvram.insert(block, t);
        }
        self.nvram.mark_dirty(block, sub, t);
        self.device.record_write(sub.len());
        stats.bus_bytes += 2 * sub.len();
    }

    fn write_unified(
        &mut self,
        block: BlockId,
        sub: ByteRange,
        t: SimTime,
        stats: &mut TrafficStats,
    ) {
        let whole = sub == block.byte_range();
        if self.nvram.contains(block) {
            // Fast path: block already in NVRAM.
        } else if self.volatile.contains(block) {
            // Rare path (§2.6, "less than one percent of write events"):
            // promote the clean copy into the NVRAM and update it there.
            self.volatile.remove(block);
            self.ensure_nvram_space(t, stats);
            self.nvram.insert(block, t);
            if !whole {
                // The block's existing contents travel over the bus.
                stats.bus_bytes += BLOCK_SIZE;
                self.device.record_write(BLOCK_SIZE);
            }
        } else {
            if !whole {
                // Partial write to an uncached block: read-modify-write.
                stats.server_read_bytes += BLOCK_SIZE;
                self.device.record_write(BLOCK_SIZE);
            }
            self.ensure_nvram_space(t, stats);
            self.nvram.insert(block, t);
        }
        let out = self.nvram.mark_dirty(block, sub, t);
        stats.overwritten_dead_bytes += out.overwritten;
        self.device.record_write(sub.len());
        stats.bus_bytes += sub.len();
    }

    /// Hybrid write (§2.6 sketch): if the block already migrated to NVRAM
    /// it is updated there (still permanent); otherwise it is written into
    /// the volatile cache exactly like the volatile model — the whole cache
    /// absorbs write bursts, at the cost of a 30-second vulnerability
    /// window before the write-back migrates the data to NVRAM.
    fn write_hybrid(
        &mut self,
        block: BlockId,
        sub: ByteRange,
        t: SimTime,
        stats: &mut TrafficStats,
    ) {
        if self.nvram.contains(block) {
            let out = self.nvram.mark_dirty(block, sub, t);
            stats.overwritten_dead_bytes += out.overwritten;
            self.device.record_write(sub.len());
            stats.bus_bytes += sub.len();
            return;
        }
        self.write_volatile(block, sub, t, stats);
    }

    /// Hybrid 30-second write-back: aged dirty blocks migrate from the
    /// volatile cache into the NVRAM (becoming permanent with no server
    /// traffic) instead of being flushed to the server.
    fn age_into_nvram(&mut self, cutoff: SimTime, t: SimTime, stats: &mut TrafficStats) {
        let mut blocks = std::mem::take(&mut self.scratch_blocks);
        self.volatile.dirty_older_than_into(cutoff, &mut blocks);
        for &b in &blocks {
            let entry = self.volatile.remove(b).expect("dirty block is cached");
            stats.aged_into_nvram_bytes += entry.dirty_bytes();
            self.ensure_nvram_space(t, stats);
            self.nvram.insert_with_state(
                b,
                entry.last_access,
                entry.last_modify,
                entry.dirty,
                entry.dirty_since,
            );
            self.device.record_write(BLOCK_SIZE);
            stats.bus_bytes += BLOCK_SIZE;
        }
        self.scratch_blocks = blocks;
    }

    /// Makes sure `block` is resident in the volatile cache, fetching it
    /// from the server first when a partial write would otherwise lose
    /// bytes (read-modify-write).
    fn ensure_volatile_block(
        &mut self,
        block: BlockId,
        sub: ByteRange,
        t: SimTime,
        stats: &mut TrafficStats,
    ) {
        if self.volatile.contains(block) {
            return;
        }
        if sub != block.byte_range() {
            stats.server_read_bytes += BLOCK_SIZE;
        }
        self.make_room_volatile(t, stats);
        self.volatile.insert(block, t);
    }

    /// Evicts the volatile LRU block if the cache is full. Dirty victims
    /// are flushed to the server; in the write-aside model they are also
    /// invalidated in the NVRAM (§2.1).
    fn make_room_volatile(&mut self, t: SimTime, stats: &mut TrafficStats) {
        if !self.volatile.is_full() {
            return;
        }
        // Sprite's real policy prefers clean victims; the paper's simplified
        // models replace strict LRU regardless of dirtiness.
        let victim = if self.dirty_preference {
            self.volatile
                .lru_clean_block()
                .or_else(|| self.volatile.lru_block())
                .expect("full cache is non-empty")
                .0
        } else {
            self.volatile
                .lru_block()
                .expect("full cache is non-empty")
                .0
        };
        let entry = self.volatile.remove(victim).expect("victim is cached");
        if entry.is_dirty() {
            self.flush_bytes(
                victim.file,
                entry.dirty_bytes(),
                FlushCause::Replacement,
                t,
                stats,
            );
            if self.model == CacheModelKind::WriteAside {
                self.nvram.remove(victim);
            }
        }
    }

    /// Write-aside NVRAM replacement: the policy picks a dirty block, it is
    /// written to the server, and the volatile copy becomes clean.
    fn replace_nvram_write_aside(&mut self, t: SimTime, stats: &mut TrafficStats) {
        let victim = self
            .policy
            .pick_victim(&self.nvram, t)
            .expect("full NVRAM is non-empty");
        let entry = self.nvram.remove(victim).expect("victim is cached");
        self.flush_bytes(
            victim.file,
            entry.dirty_bytes(),
            FlushCause::Replacement,
            t,
            stats,
        );
        self.volatile.clean(victim);
    }

    /// Unified NVRAM replacement with demotion: flush the victim if dirty,
    /// then keep a clean copy in the volatile cache when the victim is
    /// younger than the volatile LRU block.
    fn ensure_nvram_space(&mut self, t: SimTime, stats: &mut TrafficStats) {
        if !self.nvram.is_full() {
            return;
        }
        let victim = self
            .policy
            .pick_victim(&self.nvram, t)
            .expect("full NVRAM is non-empty");
        let entry = self.nvram.remove(victim).expect("victim is cached");
        if entry.is_dirty() {
            self.flush_bytes(
                victim.file,
                entry.dirty_bytes(),
                FlushCause::Replacement,
                t,
                stats,
            );
        }
        if self.volatile.contains(victim) {
            return;
        }
        let demote = if !self.volatile.is_full() {
            true
        } else {
            self.volatile
                .lru_block()
                .is_some_and(|(_, lru_access)| entry.last_access > lru_access)
        };
        if demote {
            if self.volatile.is_full() {
                let (lru, _) = self.volatile.lru_block().expect("full cache is non-empty");
                // Clean by the unified invariant; in the hybrid model the
                // volatile victim may still be dirty and must be flushed.
                let evicted = self.volatile.remove(lru).expect("victim is cached");
                if evicted.is_dirty() {
                    self.flush_bytes(
                        lru.file,
                        evicted.dirty_bytes(),
                        FlushCause::Replacement,
                        t,
                        stats,
                    );
                }
            }
            self.volatile
                .insert_with_access(victim, entry.last_access, entry.last_modify);
            self.device.record_read(BLOCK_SIZE);
            stats.bus_bytes += BLOCK_SIZE;
        }
    }

    /// Unified read-miss placement (§2.1): prefer free volatile space, then
    /// free NVRAM space, else replace the globally least-recently-used of
    /// the two LRU candidates.
    ///
    /// Read-fetch traffic is deliberately *not* counted in `bus_bytes`: the
    /// §2.6 bus comparison concerns the write path (write-aside writes every
    /// block twice), and fetch traffic is common to all models.
    fn place_clean_block(&mut self, block: BlockId, t: SimTime, stats: &mut TrafficStats) {
        if !self.volatile.is_full() {
            self.volatile.insert(block, t);
            return;
        }
        if !self.nvram.is_full() {
            self.nvram.insert(block, t);
            self.device.record_write(BLOCK_SIZE);
            return;
        }
        let vol_lru = self.volatile.lru_block().expect("full cache is non-empty");
        let nv_lru = self.nvram.lru_block().expect("full NVRAM is non-empty");
        if nv_lru.1 < vol_lru.1 {
            // The overall LRU block is in the NVRAM: replace it there. This
            // is how read traffic can evict dirty blocks (§2.5).
            let entry = self.nvram.remove(nv_lru.0).expect("victim is cached");
            nvfs_obs::event("cache_evict", t.as_micros())
                .u64("client", self.client.0 as u64)
                .u64("file", nv_lru.0.file.0 as u64)
                .u64("dirty", entry.is_dirty() as u64)
                .emit();
            if entry.is_dirty() {
                self.flush_bytes(
                    nv_lru.0.file,
                    entry.dirty_bytes(),
                    FlushCause::Replacement,
                    t,
                    stats,
                );
            }
            self.nvram.insert(block, t);
            self.device.record_write(BLOCK_SIZE);
        } else {
            let evicted = self.volatile.remove(vol_lru.0).expect("victim is cached");
            nvfs_obs::event("cache_evict", t.as_micros())
                .u64("client", self.client.0 as u64)
                .u64("file", vol_lru.0.file.0 as u64)
                .u64("dirty", evicted.is_dirty() as u64)
                .emit();
            if evicted.is_dirty() {
                // Hybrid only: volatile blocks can be dirty.
                self.flush_bytes(
                    vol_lru.0.file,
                    evicted.dirty_bytes(),
                    FlushCause::Replacement,
                    t,
                    stats,
                );
            }
            self.volatile.insert(block, t);
        }
    }

    /// Flushes all dirty bytes of `file` to the server (consistency recall,
    /// migration, fsync, …). Blocks stay cached; in the write-aside model
    /// the now-clean blocks leave the NVRAM.
    pub fn flush_file(
        &mut self,
        file: FileId,
        cause: FlushCause,
        t: SimTime,
        stats: &mut TrafficStats,
    ) -> u64 {
        let mut flushed = 0;
        match self.model {
            CacheModelKind::Volatile => {
                for b in self.volatile.file_blocks(file) {
                    flushed += self.volatile.clean(b);
                }
            }
            CacheModelKind::WriteAside => {
                for b in self.nvram.file_blocks(file) {
                    flushed += self.nvram.clean(b);
                    self.nvram.remove(b);
                    self.volatile.clean(b);
                }
            }
            CacheModelKind::Unified => {
                for b in self.nvram.file_blocks(file) {
                    flushed += self.nvram.clean(b);
                }
            }
            CacheModelKind::Hybrid => {
                for b in self.volatile.file_blocks(file) {
                    flushed += self.volatile.clean(b);
                }
                for b in self.nvram.file_blocks(file) {
                    flushed += self.nvram.clean(b);
                }
            }
        }
        self.flush_bytes(file, flushed, cause, t, stats);
        flushed
    }

    /// Flushes the dirty bytes of the blocks of `file` that intersect
    /// `range` (block-on-demand consistency: only the data another client
    /// is about to read is recalled). Returns the bytes flushed.
    pub fn flush_range(
        &mut self,
        file: FileId,
        range: ByteRange,
        cause: FlushCause,
        t: SimTime,
        stats: &mut TrafficStats,
    ) -> u64 {
        let mut flushed = 0;
        for block in blocks_of_range(file, range) {
            match self.model {
                CacheModelKind::Volatile => flushed += self.volatile.clean(block),
                CacheModelKind::WriteAside => {
                    let n = self.nvram.clean(block);
                    if n > 0 {
                        self.nvram.remove(block);
                        self.volatile.clean(block);
                        flushed += n;
                    }
                }
                CacheModelKind::Unified => flushed += self.nvram.clean(block),
                CacheModelKind::Hybrid => {
                    flushed += self.volatile.clean(block);
                    flushed += self.nvram.clean(block);
                }
            }
        }
        self.flush_bytes(file, flushed, cause, t, stats);
        flushed
    }

    /// Drops the cached blocks of `file` intersecting `range` (stale-copy
    /// invalidation for block-on-demand consistency). Dirty bytes in the
    /// dropped blocks are flushed first.
    pub fn invalidate_range(
        &mut self,
        file: FileId,
        range: ByteRange,
        cause: FlushCause,
        t: SimTime,
        stats: &mut TrafficStats,
    ) {
        self.flush_range(file, range, cause, t, stats);
        for block in blocks_of_range(file, range) {
            self.volatile.remove(block);
            self.nvram.remove(block);
        }
    }

    /// Flushes dirty data and drops every cached block of `file` (used when
    /// the server disables caching, and for stale-copy invalidation).
    pub fn invalidate_file(
        &mut self,
        file: FileId,
        cause: FlushCause,
        t: SimTime,
        stats: &mut TrafficStats,
    ) {
        self.flush_file(file, cause, t, stats);
        for b in self.volatile.file_blocks(file) {
            self.volatile.remove(b);
        }
        for b in self.nvram.file_blocks(file) {
            self.nvram.remove(b);
        }
    }

    /// The file was deleted: every cached byte dies, dirty bytes count as
    /// absorbed deletions, and nothing is written to the server.
    pub fn delete_file(&mut self, file: FileId, stats: &mut TrafficStats) {
        match self.model {
            CacheModelKind::Volatile | CacheModelKind::WriteAside => {
                for b in self.volatile.file_blocks(file) {
                    let entry = self
                        .volatile
                        .remove(b)
                        .expect("file_blocks yields cached blocks");
                    stats.deleted_dead_bytes += entry.dirty_bytes();
                }
                for b in self.nvram.file_blocks(file) {
                    self.nvram.remove(b); // mirror copies: not double counted
                }
            }
            CacheModelKind::Unified => {
                for b in self.nvram.file_blocks(file) {
                    let entry = self
                        .nvram
                        .remove(b)
                        .expect("file_blocks yields cached blocks");
                    stats.deleted_dead_bytes += entry.dirty_bytes();
                }
                for b in self.volatile.file_blocks(file) {
                    self.volatile.remove(b);
                }
            }
            CacheModelKind::Hybrid => {
                for b in self.volatile.file_blocks(file) {
                    let entry = self
                        .volatile
                        .remove(b)
                        .expect("file_blocks yields cached blocks");
                    stats.deleted_dead_bytes += entry.dirty_bytes();
                }
                for b in self.nvram.file_blocks(file) {
                    let entry = self
                        .nvram
                        .remove(b)
                        .expect("file_blocks yields cached blocks");
                    stats.deleted_dead_bytes += entry.dirty_bytes();
                }
            }
        }
    }

    /// The file was truncated to `new_len`: cached blocks wholly beyond the
    /// cut are dropped, the boundary block loses its dirty tail.
    pub fn truncate_file(&mut self, file: FileId, new_len: u64, stats: &mut TrafficStats) {
        let kill = ByteRange::new(new_len, u64::MAX);
        // In the hybrid model a block lives in exactly one store, so dirty
        // deaths are counted in both loops; in write-aside the NVRAM is a
        // mirror and must not be double counted.
        let count_in_volatile = matches!(
            self.model,
            CacheModelKind::Volatile | CacheModelKind::WriteAside | CacheModelKind::Hybrid
        );
        let count_in_nvram = matches!(self.model, CacheModelKind::Unified | CacheModelKind::Hybrid);
        for b in self.volatile.file_blocks(file) {
            if b.byte_range().start >= new_len {
                let entry = self
                    .volatile
                    .remove(b)
                    .expect("file_blocks yields cached blocks");
                if count_in_volatile {
                    stats.deleted_dead_bytes += entry.dirty_bytes();
                }
            } else {
                let killed = self.volatile.kill_dirty(b, kill);
                if count_in_volatile {
                    stats.deleted_dead_bytes += killed;
                }
            }
        }
        for b in self.nvram.file_blocks(file) {
            if b.byte_range().start >= new_len {
                let entry = self
                    .nvram
                    .remove(b)
                    .expect("file_blocks yields cached blocks");
                if count_in_nvram {
                    stats.deleted_dead_bytes += entry.dirty_bytes();
                }
            } else {
                let killed = self.nvram.kill_dirty(b, kill);
                if count_in_nvram {
                    stats.deleted_dead_bytes += killed;
                }
                // Write-aside mirror: clean blocks leave the NVRAM.
                if self.model == CacheModelKind::WriteAside
                    && self.nvram.get(b).is_some_and(|e| !e.is_dirty())
                {
                    self.nvram.remove(b);
                }
            }
        }
    }

    /// Application fsync: in the volatile model this synchronously flushes
    /// the file's dirty data; in the NVRAM models it is a no-op because
    /// NVRAM contents are already permanent (§2.1). Returns whether the
    /// file's dirty data reached the *server* (so the caller knows whether
    /// the server's last-writer record can be cleared).
    pub fn fsync(&mut self, file: FileId, t: SimTime, stats: &mut TrafficStats) -> bool {
        match self.model {
            CacheModelKind::Volatile => {
                self.flush_file(file, FlushCause::Fsync, t, stats);
                return true;
            }
            CacheModelKind::Hybrid => {
                // The data must become permanent now, but NVRAM suffices:
                // migrate the file's dirty volatile blocks without any
                // server traffic.
                for b in self.volatile.file_blocks(file) {
                    let is_dirty = self.volatile.get(b).is_some_and(BlockEntry::is_dirty);
                    if !is_dirty {
                        continue;
                    }
                    let entry = self
                        .volatile
                        .remove(b)
                        .expect("file_blocks yields cached blocks");
                    self.ensure_nvram_space(t, stats);
                    self.nvram.insert_with_state(
                        b,
                        entry.last_access,
                        entry.last_modify,
                        entry.dirty,
                        entry.dirty_since,
                    );
                    self.device.record_write(BLOCK_SIZE);
                    stats.bus_bytes += BLOCK_SIZE;
                }
            }
            // Write-aside and unified: dirty data already lives in NVRAM.
            CacheModelKind::WriteAside | CacheModelKind::Unified => {}
        }
        false
    }

    /// The 30-second delayed write-back (volatile model only): flushes
    /// every block whose dirty data became dirty at or before `cutoff`.
    pub fn writeback_older_than(
        &mut self,
        cutoff: SimTime,
        now: SimTime,
        stats: &mut TrafficStats,
    ) -> Vec<FileId> {
        let mut files = Vec::new();
        self.writeback_older_than_into(cutoff, now, stats, &mut files);
        files
    }

    /// [`Self::writeback_older_than`] into a caller-owned buffer, so the
    /// per-tick cleaner loop allocates nothing. `files` is cleared first
    /// and left holding the flushed file ids, deduplicated.
    pub fn writeback_older_than_into(
        &mut self,
        cutoff: SimTime,
        now: SimTime,
        stats: &mut TrafficStats,
        files: &mut Vec<FileId>,
    ) {
        files.clear();
        if self.model == CacheModelKind::Hybrid {
            self.age_into_nvram(cutoff, now, stats);
            return;
        }
        if self.model != CacheModelKind::Volatile {
            return;
        }
        let mut blocks = std::mem::take(&mut self.scratch_blocks);
        self.volatile.dirty_older_than_into(cutoff, &mut blocks);
        for &b in &blocks {
            let bytes = self.volatile.clean(b);
            self.flush_bytes(b.file, bytes, FlushCause::WriteBack, now, stats);
            files.push(b.file);
        }
        self.scratch_blocks = blocks;
        files.dedup();
    }

    /// Whether the next cleaner tick could possibly do work: only the
    /// models with a volatile dirty set (volatile write-back, hybrid
    /// aging) ever act on a tick, and only when dirty blocks exist. The
    /// drive loops use this to fast-forward tick arithmetic over idle
    /// gaps instead of iterating empty ticks.
    pub fn cleaner_pending(&self) -> bool {
        matches!(
            self.model,
            CacheModelKind::Volatile | CacheModelKind::Hybrid
        ) && self.volatile.dirty_block_count() > 0
    }

    fn flush_bytes(
        &mut self,
        file: FileId,
        bytes: u64,
        cause: FlushCause,
        t: SimTime,
        stats: &mut TrafficStats,
    ) {
        if bytes == 0 {
            return;
        }
        if self.severed && cause != FlushCause::Recovery {
            // Degraded mode: the server is unreachable, so a flush the
            // model cannot defer loses its bytes. The shed log stays out
            // of the write log, traffic stats and obs histograms — these
            // bytes never reached the server.
            self.shed_log.push(ServerWrite {
                time: t,
                client: self.client,
                file,
                bytes,
                cause,
            });
            nvfs_obs::event("write_shed", t.as_micros())
                .str("cause", cause.label())
                .u64("client", self.client.0 as u64)
                .u64("file", file.0 as u64)
                .u64("bytes", bytes)
                .emit();
            return;
        }
        self.log.push(ServerWrite {
            time: t,
            client: self.client,
            file,
            bytes,
            cause,
        });
        stats.server_write_bytes += bytes;
        match cause {
            FlushCause::WriteBack => stats.writeback_bytes += bytes,
            FlushCause::Replacement => stats.replacement_bytes += bytes,
            FlushCause::Callback => stats.callback_bytes += bytes,
            FlushCause::Migration => stats.migration_bytes += bytes,
            FlushCause::Fsync => stats.fsync_bytes += bytes,
            FlushCause::Recovery => stats.recovery_bytes += bytes,
        }
        nvfs_obs::histogram_record("core.flush_bytes", bytes);
        nvfs_obs::event("write_back", t.as_micros())
            .str("cause", cause.label())
            .u64("client", self.client.0 as u64)
            .u64("file", file.0 as u64)
            .u64("bytes", bytes)
            .emit();
    }

    /// Checks internal invariants (for tests): bounded stores, and for the
    /// unified model, no dirty blocks in the volatile cache and no block in
    /// both memories.
    pub fn check_invariants(&self) -> bool {
        if !self.volatile.check_invariants() || !self.nvram.check_invariants() {
            return false;
        }
        match self.model {
            CacheModelKind::Volatile => self.nvram.is_empty(),
            CacheModelKind::WriteAside => self
                .nvram
                .iter()
                .all(|(id, e)| e.is_dirty() && self.volatile.get(id).is_some_and(|v| v.is_dirty())),
            CacheModelKind::Unified => self
                .volatile
                .iter()
                .all(|(id, e)| !e.is_dirty() && !self.nvram.contains(id)),
            CacheModelKind::Hybrid => self.volatile.iter().all(|(id, _)| !self.nvram.contains(id)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;

    fn cfg(model: CacheModelKind, vol_blocks: u64, nv_blocks: u64) -> SimConfig {
        let mut c = SimConfig::volatile(vol_blocks * BLOCK_SIZE);
        c.model = model;
        c.nvram_bytes = nv_blocks * BLOCK_SIZE;
        c
    }

    fn cache(model: CacheModelKind, vol_blocks: u64, nv_blocks: u64) -> ClientCache {
        ClientCache::new(
            &cfg(model, vol_blocks, nv_blocks),
            Policy::from_kind(PolicyKind::Lru, None),
            ClientId(0),
        )
    }

    fn block_range(i: u64) -> ByteRange {
        ByteRange::at(i * BLOCK_SIZE, BLOCK_SIZE)
    }

    #[test]
    fn volatile_read_miss_then_hit() {
        let mut c = cache(CacheModelKind::Volatile, 4, 0);
        let mut s = TrafficStats::default();
        c.read(FileId(0), block_range(0), SimTime::from_secs(1), &mut s);
        assert_eq!((s.read_miss_blocks, s.read_hit_blocks), (1, 0));
        assert_eq!(s.server_read_bytes, BLOCK_SIZE);
        c.read(FileId(0), block_range(0), SimTime::from_secs(2), &mut s);
        assert_eq!((s.read_miss_blocks, s.read_hit_blocks), (1, 1));
        assert!(c.check_invariants());
    }

    #[test]
    fn volatile_eviction_flushes_dirty_lru() {
        let mut c = cache(CacheModelKind::Volatile, 2, 0);
        let mut s = TrafficStats::default();
        c.write(FileId(0), block_range(0), SimTime::from_secs(1), &mut s);
        c.read(FileId(0), block_range(1), SimTime::from_secs(2), &mut s);
        // Cache full; a third block evicts the dirty LRU block 0.
        c.read(FileId(0), block_range(2), SimTime::from_secs(3), &mut s);
        assert_eq!(s.replacement_bytes, BLOCK_SIZE);
        assert_eq!(s.server_write_bytes, BLOCK_SIZE);
        assert!(c.check_invariants());
    }

    #[test]
    fn volatile_partial_write_fetches_block() {
        let mut c = cache(CacheModelKind::Volatile, 4, 0);
        let mut s = TrafficStats::default();
        c.write(
            FileId(0),
            ByteRange::new(0, 100),
            SimTime::from_secs(1),
            &mut s,
        );
        assert_eq!(s.server_read_bytes, BLOCK_SIZE, "read-modify-write fetch");
        let mut s2 = TrafficStats::default();
        c.write(FileId(0), block_range(1), SimTime::from_secs(2), &mut s2);
        assert_eq!(s2.server_read_bytes, 0, "whole-block write needs no fetch");
    }

    #[test]
    fn volatile_overwrite_is_absorbed() {
        let mut c = cache(CacheModelKind::Volatile, 4, 0);
        let mut s = TrafficStats::default();
        c.write(FileId(0), block_range(0), SimTime::from_secs(1), &mut s);
        c.write(FileId(0), block_range(0), SimTime::from_secs(2), &mut s);
        assert_eq!(s.overwritten_dead_bytes, BLOCK_SIZE);
        assert_eq!(s.server_write_bytes, 0);
    }

    #[test]
    fn volatile_writeback_flushes_old_dirty_data() {
        let mut c = cache(CacheModelKind::Volatile, 4, 0);
        let mut s = TrafficStats::default();
        c.write(FileId(0), block_range(0), SimTime::from_secs(1), &mut s);
        c.write(FileId(1), block_range(0), SimTime::from_secs(20), &mut s);
        let files = c.writeback_older_than(SimTime::from_secs(5), SimTime::from_secs(35), &mut s);
        assert_eq!(files, vec![FileId(0)]);
        assert_eq!(s.writeback_bytes, BLOCK_SIZE);
        assert_eq!(
            c.remaining_dirty_bytes(),
            BLOCK_SIZE,
            "newer block still dirty"
        );
    }

    #[test]
    fn volatile_fsync_flushes_immediately() {
        let mut c = cache(CacheModelKind::Volatile, 4, 0);
        let mut s = TrafficStats::default();
        c.write(FileId(0), block_range(0), SimTime::from_secs(1), &mut s);
        c.fsync(FileId(0), SimTime::from_secs(2), &mut s);
        assert_eq!(s.fsync_bytes, BLOCK_SIZE);
        assert_eq!(c.remaining_dirty_bytes(), 0);
    }

    #[test]
    fn write_aside_duplicates_writes() {
        let mut c = cache(CacheModelKind::WriteAside, 4, 2);
        let mut s = TrafficStats::default();
        c.write(FileId(0), block_range(0), SimTime::from_secs(1), &mut s);
        assert_eq!(
            s.bus_bytes,
            2 * BLOCK_SIZE,
            "write-aside doubles bus traffic"
        );
        assert_eq!(c.device().writes(), 1);
        assert!(c.check_invariants());
    }

    #[test]
    fn write_aside_fsync_is_noop() {
        let mut c = cache(CacheModelKind::WriteAside, 4, 2);
        let mut s = TrafficStats::default();
        c.write(FileId(0), block_range(0), SimTime::from_secs(1), &mut s);
        c.fsync(FileId(0), SimTime::from_secs(2), &mut s);
        assert_eq!(s.fsync_bytes, 0);
        assert_eq!(c.remaining_dirty_bytes(), BLOCK_SIZE);
    }

    #[test]
    fn write_aside_nvram_overflow_cleans_volatile_copy() {
        let mut c = cache(CacheModelKind::WriteAside, 8, 2);
        let mut s = TrafficStats::default();
        for i in 0..3 {
            c.write(FileId(0), block_range(i), SimTime::from_secs(i + 1), &mut s);
        }
        // NVRAM holds 2 blocks; the third write replaced the LRU dirty
        // block, which was written to the server and stays clean in the
        // volatile cache.
        assert_eq!(s.replacement_bytes, BLOCK_SIZE);
        assert_eq!(c.remaining_dirty_bytes(), 2 * BLOCK_SIZE);
        assert!(c.check_invariants());
    }

    #[test]
    fn write_aside_nvram_never_read() {
        let mut c = cache(CacheModelKind::WriteAside, 4, 2);
        let mut s = TrafficStats::default();
        c.write(FileId(0), block_range(0), SimTime::from_secs(1), &mut s);
        c.read(FileId(0), block_range(0), SimTime::from_secs(2), &mut s);
        assert_eq!(c.device().reads(), 0);
        assert_eq!(s.read_hit_blocks, 1);
    }

    #[test]
    fn unified_dirty_blocks_only_in_nvram() {
        let mut c = cache(CacheModelKind::Unified, 4, 2);
        let mut s = TrafficStats::default();
        c.write(FileId(0), block_range(0), SimTime::from_secs(1), &mut s);
        c.read(FileId(1), block_range(0), SimTime::from_secs(2), &mut s);
        assert!(c.check_invariants());
        assert_eq!(c.remaining_dirty_bytes(), BLOCK_SIZE);
    }

    #[test]
    fn unified_reads_hit_nvram() {
        let mut c = cache(CacheModelKind::Unified, 4, 2);
        let mut s = TrafficStats::default();
        c.write(FileId(0), block_range(0), SimTime::from_secs(1), &mut s);
        c.read(FileId(0), block_range(0), SimTime::from_secs(2), &mut s);
        assert_eq!(s.read_hit_blocks, 1);
        assert!(c.device().reads() >= 1, "unified serves reads from NVRAM");
    }

    #[test]
    fn unified_replacement_demotes_to_volatile() {
        let mut c = cache(CacheModelKind::Unified, 4, 1);
        let mut s = TrafficStats::default();
        c.write(FileId(0), block_range(0), SimTime::from_secs(1), &mut s);
        // Second dirty block forces replacement of the first: flushed to
        // the server and demoted into the (non-full) volatile cache.
        c.write(FileId(0), block_range(1), SimTime::from_secs(2), &mut s);
        assert_eq!(s.replacement_bytes, BLOCK_SIZE);
        // The demoted block is now a clean volatile hit.
        c.read(FileId(0), block_range(0), SimTime::from_secs(3), &mut s);
        assert_eq!(s.read_hit_blocks, 1);
        assert!(c.check_invariants());
    }

    #[test]
    fn unified_promotion_on_partial_write_to_clean_block() {
        let mut c = cache(CacheModelKind::Unified, 4, 2);
        let mut s = TrafficStats::default();
        c.read(FileId(0), block_range(0), SimTime::from_secs(1), &mut s);
        let bus_before = s.bus_bytes;
        c.write(
            FileId(0),
            ByteRange::new(0, 100),
            SimTime::from_secs(2),
            &mut s,
        );
        // Promotion transfers the whole block plus the 100 app bytes.
        assert_eq!(s.bus_bytes - bus_before, BLOCK_SIZE + 100);
        assert!(c.check_invariants());
        assert_eq!(c.remaining_dirty_bytes(), 100);
    }

    #[test]
    fn delete_absorbs_dirty_bytes() {
        for model in [
            CacheModelKind::Volatile,
            CacheModelKind::WriteAside,
            CacheModelKind::Unified,
        ] {
            let mut c = cache(model, 4, 2);
            let mut s = TrafficStats::default();
            c.write(FileId(0), block_range(0), SimTime::from_secs(1), &mut s);
            c.delete_file(FileId(0), &mut s);
            assert_eq!(s.deleted_dead_bytes, BLOCK_SIZE, "{model:?}");
            assert_eq!(s.server_write_bytes, 0, "{model:?}");
            assert_eq!(c.remaining_dirty_bytes(), 0, "{model:?}");
            assert!(c.check_invariants(), "{model:?}");
        }
    }

    #[test]
    fn truncate_kills_tail_dirty_bytes() {
        for model in [
            CacheModelKind::Volatile,
            CacheModelKind::WriteAside,
            CacheModelKind::Unified,
        ] {
            let mut c = cache(model, 8, 4);
            let mut s = TrafficStats::default();
            c.write(
                FileId(0),
                ByteRange::new(0, 3 * BLOCK_SIZE),
                SimTime::from_secs(1),
                &mut s,
            );
            c.truncate_file(FileId(0), BLOCK_SIZE + 100, &mut s);
            assert_eq!(s.deleted_dead_bytes, 2 * BLOCK_SIZE - 100, "{model:?}");
            assert_eq!(c.remaining_dirty_bytes(), BLOCK_SIZE + 100, "{model:?}");
            assert!(c.check_invariants(), "{model:?}");
        }
    }

    #[test]
    fn flush_file_callback_accounting() {
        for model in [
            CacheModelKind::Volatile,
            CacheModelKind::WriteAside,
            CacheModelKind::Unified,
        ] {
            let mut c = cache(model, 4, 2);
            let mut s = TrafficStats::default();
            c.write(FileId(0), block_range(0), SimTime::from_secs(1), &mut s);
            let flushed = c.flush_file(
                FileId(0),
                FlushCause::Callback,
                SimTime::from_secs(2),
                &mut s,
            );
            assert_eq!(flushed, BLOCK_SIZE, "{model:?}");
            assert_eq!(s.callback_bytes, BLOCK_SIZE, "{model:?}");
            assert_eq!(c.remaining_dirty_bytes(), 0, "{model:?}");
            assert!(c.check_invariants(), "{model:?}");
        }
    }

    #[test]
    fn hybrid_write_stays_volatile_then_ages_into_nvram() {
        let mut c = cache(CacheModelKind::Hybrid, 4, 2);
        let mut s = TrafficStats::default();
        c.write(FileId(0), block_range(0), SimTime::from_secs(1), &mut s);
        assert_eq!(c.remaining_dirty_bytes(), BLOCK_SIZE);
        // The 30-second write-back migrates it to NVRAM — no server write.
        c.writeback_older_than(SimTime::from_secs(5), SimTime::from_secs(35), &mut s);
        assert_eq!(s.server_write_bytes, 0);
        assert_eq!(s.aged_into_nvram_bytes, BLOCK_SIZE);
        assert_eq!(
            c.remaining_dirty_bytes(),
            BLOCK_SIZE,
            "still dirty, now permanent"
        );
        assert!(c.check_invariants());
        // A later write to the migrated block updates it in NVRAM.
        c.write(FileId(0), block_range(0), SimTime::from_secs(40), &mut s);
        assert_eq!(s.overwritten_dead_bytes, BLOCK_SIZE);
        assert_eq!(s.server_write_bytes, 0);
        assert!(c.check_invariants());
    }

    #[test]
    fn hybrid_fsync_migrates_without_server_traffic() {
        let mut c = cache(CacheModelKind::Hybrid, 4, 2);
        let mut s = TrafficStats::default();
        c.write(FileId(0), block_range(0), SimTime::from_secs(1), &mut s);
        c.fsync(FileId(0), SimTime::from_secs(2), &mut s);
        assert_eq!(s.fsync_bytes, 0);
        assert_eq!(s.server_write_bytes, 0);
        assert_eq!(c.remaining_dirty_bytes(), BLOCK_SIZE);
        assert!(c.device().writes() >= 1);
        assert!(c.check_invariants());
    }

    #[test]
    fn hybrid_read_hits_migrated_blocks() {
        let mut c = cache(CacheModelKind::Hybrid, 4, 2);
        let mut s = TrafficStats::default();
        c.write(FileId(0), block_range(0), SimTime::from_secs(1), &mut s);
        c.writeback_older_than(SimTime::from_secs(5), SimTime::from_secs(35), &mut s);
        c.read(FileId(0), block_range(0), SimTime::from_secs(40), &mut s);
        assert_eq!(s.read_hit_blocks, 1);
        assert!(c.device().reads() >= 1);
    }

    #[test]
    fn dirty_preference_spares_dirty_blocks() {
        let cfg_pref = cfg(CacheModelKind::Volatile, 2, 0).with_dirty_preference();
        let mut c = ClientCache::new(
            &cfg_pref,
            Policy::from_kind(PolicyKind::Lru, None),
            ClientId(0),
        );
        let mut s = TrafficStats::default();
        // Dirty LRU block plus a newer clean block.
        c.write(FileId(0), block_range(0), SimTime::from_secs(1), &mut s);
        c.read(FileId(0), block_range(1), SimTime::from_secs(2), &mut s);
        // A third block: with dirty preference, the CLEAN (newer) block is
        // evicted and the dirty one survives with no server write.
        c.read(FileId(0), block_range(2), SimTime::from_secs(3), &mut s);
        assert_eq!(s.server_write_bytes, 0);
        assert_eq!(c.remaining_dirty_bytes(), BLOCK_SIZE);
        // Without the preference, the dirty LRU block would be flushed.
        let mut base = cache(CacheModelKind::Volatile, 2, 0);
        let mut s2 = TrafficStats::default();
        base.write(FileId(0), block_range(0), SimTime::from_secs(1), &mut s2);
        base.read(FileId(0), block_range(1), SimTime::from_secs(2), &mut s2);
        base.read(FileId(0), block_range(2), SimTime::from_secs(3), &mut s2);
        assert_eq!(s2.replacement_bytes, BLOCK_SIZE);
    }

    #[test]
    fn invalidate_drops_blocks_after_flush() {
        let mut c = cache(CacheModelKind::Unified, 4, 2);
        let mut s = TrafficStats::default();
        c.write(FileId(0), block_range(0), SimTime::from_secs(1), &mut s);
        c.invalidate_file(
            FileId(0),
            FlushCause::Callback,
            SimTime::from_secs(2),
            &mut s,
        );
        assert_eq!(s.callback_bytes, BLOCK_SIZE);
        // A re-read misses.
        c.read(FileId(0), block_range(0), SimTime::from_secs(2), &mut s);
        assert_eq!(s.read_miss_blocks, 1);
    }
}
