//! Sprite's cache consistency protocol, server side (§2.1).
//!
//! "Sprite file servers maintain consistency between client caches. The
//! server keeps track of the last client to write each file. If another
//! client opens that file, the server recalls any dirty data not yet
//! flushed from the last writer's cache. If two or more clients have the
//! same file open simultaneously, and at least one of them has it open for
//! writing, the server disables client caching on the file until all the
//! clients have closed it."

use std::collections::BTreeMap;

use nvfs_trace::event::OpenMode;
use nvfs_types::{ClientId, FileId};

use crate::config::ConsistencyMode;

/// What the server demands of the clients when a file is opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenOutcome {
    /// A client whose dirty data for this file must be recalled (flushed to
    /// the server) before the open proceeds.
    pub recall_from: Option<ClientId>,
    /// The opener should discard any cached blocks of this file — another
    /// client wrote it since, so the copies are stale.
    pub invalidate_opener: bool,
    /// Caching was just disabled (concurrent write-sharing): every client
    /// must flush dirty data for the file and stop caching it.
    pub disable_caching: bool,
}

/// Per-file server state.
#[derive(Debug, Clone, Default)]
struct FileState {
    last_writer: Option<ClientId>,
    /// Per-client (total opens, writing opens).
    opens: BTreeMap<ClientId, (u32, u32)>,
    caching_disabled: bool,
}

impl FileState {
    fn writers(&self) -> u32 {
        self.opens.values().map(|&(_, w)| w).sum()
    }
}

/// The server's consistency state machine.
///
/// # Examples
///
/// ```
/// use nvfs_core::consistency::ConsistencyServer;
/// use nvfs_trace::event::OpenMode;
/// use nvfs_types::{ClientId, FileId};
///
/// let mut server = ConsistencyServer::new();
/// server.on_open(FileId(0), ClientId(0), OpenMode::Write);
/// server.note_write(FileId(0), ClientId(0));
/// server.on_close(FileId(0), ClientId(0));
/// // A second client opens the file: the server recalls client 0's data.
/// let outcome = server.on_open(FileId(0), ClientId(1), OpenMode::Read);
/// assert_eq!(outcome.recall_from, Some(ClientId(0)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConsistencyServer {
    files: BTreeMap<FileId, FileState>,
    mode: ConsistencyMode,
}

impl ConsistencyServer {
    /// Creates a server using Sprite's whole-file protocol.
    pub fn new() -> Self {
        ConsistencyServer::default()
    }

    /// Creates a server using the given protocol granularity.
    pub fn with_mode(mode: ConsistencyMode) -> Self {
        ConsistencyServer {
            mode,
            ..ConsistencyServer::default()
        }
    }

    /// The protocol granularity in use.
    pub fn mode(&self) -> ConsistencyMode {
        self.mode
    }

    /// Registers an open and returns the required client actions.
    pub fn on_open(&mut self, file: FileId, client: ClientId, mode: OpenMode) -> OpenOutcome {
        let state = self.files.entry(file).or_default();
        let mut outcome = OpenOutcome::default();

        // Whole-file consistency: recall the last writer's dirty data and
        // have the opener discard stale copies. The block-on-demand
        // protocol defers both to read time, so the last-writer record is
        // kept.
        if self.mode == ConsistencyMode::WholeFile {
            if let Some(w) = state.last_writer {
                if w != client {
                    outcome.recall_from = Some(w);
                    outcome.invalidate_opener = true;
                    state.last_writer = None;
                }
            }
        }

        let entry = state.opens.entry(client).or_insert((0, 0));
        entry.0 += 1;
        if mode.is_write() {
            entry.1 += 1;
        }

        // Concurrent write-sharing check.
        if !state.caching_disabled && state.opens.len() >= 2 && state.writers() >= 1 {
            state.caching_disabled = true;
            outcome.disable_caching = true;
        }
        outcome
    }

    /// Registers a close. Returns `true` if caching was re-enabled for the
    /// file (the last sharer closed it).
    pub fn on_close(&mut self, file: FileId, client: ClientId) -> bool {
        let Some(state) = self.files.get_mut(&file) else {
            return false;
        };
        if let Some(entry) = state.opens.get_mut(&client) {
            entry.0 = entry.0.saturating_sub(1);
            // Conservatively retire a writing open first.
            entry.1 = entry.1.min(entry.0);
            if entry.0 == 0 {
                state.opens.remove(&client);
            }
        }
        if state.caching_disabled && state.opens.is_empty() {
            state.caching_disabled = false;
            return true;
        }
        false
    }

    /// Records that `client` wrote `file` through its cache.
    pub fn note_write(&mut self, file: FileId, client: ClientId) {
        let state = self.files.entry(file).or_default();
        if !state.caching_disabled {
            state.last_writer = Some(client);
        }
    }

    /// Records that `client` flushed all its dirty data for `file` (e.g.
    /// delayed write-back), so no recall will be needed.
    pub fn note_flush(&mut self, file: FileId, client: ClientId) {
        if let Some(state) = self.files.get_mut(&file) {
            if state.last_writer == Some(client) {
                state.last_writer = None;
            }
        }
    }

    /// The client currently recorded as the last writer of `file`, if any.
    pub fn last_writer(&self, file: FileId) -> Option<ClientId> {
        self.files.get(&file).and_then(|s| s.last_writer)
    }

    /// Whether caching is currently disabled for `file`.
    pub fn is_disabled(&self, file: FileId) -> bool {
        self.files.get(&file).is_some_and(|s| s.caching_disabled)
    }

    /// Drops all state for a deleted file.
    pub fn on_delete(&mut self, file: FileId) {
        self.files.remove(&file);
    }

    /// Number of files with caching currently disabled (for tests).
    pub fn disabled_count(&self) -> usize {
        self.files.values().filter(|s| s.caching_disabled).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FileId = FileId(1);
    const A: ClientId = ClientId(0);
    const B: ClientId = ClientId(1);

    #[test]
    fn same_client_reopen_triggers_nothing() {
        let mut s = ConsistencyServer::new();
        s.on_open(F, A, OpenMode::Write);
        s.note_write(F, A);
        s.on_close(F, A);
        let o = s.on_open(F, A, OpenMode::ReadWrite);
        assert_eq!(o, OpenOutcome::default());
    }

    #[test]
    fn foreign_open_recalls_last_writer() {
        let mut s = ConsistencyServer::new();
        s.on_open(F, A, OpenMode::Write);
        s.note_write(F, A);
        s.on_close(F, A);
        let o = s.on_open(F, B, OpenMode::Read);
        assert_eq!(o.recall_from, Some(A));
        assert!(o.invalidate_opener);
        assert!(
            !o.disable_caching,
            "sequential sharing keeps caching enabled"
        );
        // The recall clears the last-writer record.
        s.on_close(F, B);
        let o2 = s.on_open(F, B, OpenMode::Read);
        assert_eq!(o2.recall_from, None);
    }

    #[test]
    fn concurrent_write_sharing_disables_caching() {
        let mut s = ConsistencyServer::new();
        s.on_open(F, A, OpenMode::Write);
        let o = s.on_open(F, B, OpenMode::Read);
        assert!(o.disable_caching);
        assert!(s.is_disabled(F));
        // Stays disabled until everyone closes.
        assert!(!s.on_close(F, A));
        assert!(s.is_disabled(F));
        assert!(s.on_close(F, B));
        assert!(!s.is_disabled(F));
    }

    #[test]
    fn two_readers_do_not_disable_caching() {
        let mut s = ConsistencyServer::new();
        s.on_open(F, A, OpenMode::Read);
        let o = s.on_open(F, B, OpenMode::Read);
        assert!(!o.disable_caching);
        assert!(!s.is_disabled(F));
    }

    #[test]
    fn reader_then_writer_disables() {
        let mut s = ConsistencyServer::new();
        s.on_open(F, A, OpenMode::Read);
        let o = s.on_open(F, B, OpenMode::Write);
        assert!(o.disable_caching);
    }

    #[test]
    fn note_flush_clears_recall() {
        let mut s = ConsistencyServer::new();
        s.on_open(F, A, OpenMode::Write);
        s.note_write(F, A);
        s.on_close(F, A);
        s.note_flush(F, A);
        let o = s.on_open(F, B, OpenMode::Read);
        assert_eq!(o.recall_from, None);
    }

    #[test]
    fn delete_clears_state() {
        let mut s = ConsistencyServer::new();
        s.on_open(F, A, OpenMode::Write);
        s.on_open(F, B, OpenMode::Write);
        assert_eq!(s.disabled_count(), 1);
        s.on_delete(F);
        assert_eq!(s.disabled_count(), 0);
        assert!(!s.is_disabled(F));
    }

    #[test]
    fn block_on_demand_defers_recall_to_reads() {
        let mut s = ConsistencyServer::with_mode(ConsistencyMode::BlockOnDemand);
        assert_eq!(s.mode(), ConsistencyMode::BlockOnDemand);
        s.on_open(F, A, OpenMode::Write);
        s.note_write(F, A);
        s.on_close(F, A);
        // A foreign open triggers no whole-file recall…
        let o = s.on_open(F, B, OpenMode::Read);
        assert_eq!(o.recall_from, None);
        assert!(!o.invalidate_opener);
        // …because the last-writer record is preserved for read time.
        assert_eq!(s.last_writer(F), Some(A));
        // Concurrent write-sharing still disables caching.
        let o2 = s.on_open(F, A, OpenMode::Write);
        assert!(o2.disable_caching);
    }

    #[test]
    fn nested_opens_by_same_client_counted() {
        let mut s = ConsistencyServer::new();
        s.on_open(F, A, OpenMode::Write);
        s.on_open(F, A, OpenMode::Read);
        // Still a single client: no sharing.
        assert!(!s.is_disabled(F));
        s.on_close(F, A);
        // One open remains; a foreign writer now triggers disable.
        let o = s.on_open(F, B, OpenMode::Write);
        assert!(o.disable_caching);
    }
}
