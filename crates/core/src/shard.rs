//! Intra-run parallel drive loop: client-sharded op replay.
//!
//! The serial [`SimSession`](crate::SimSession) loop replays one op at a
//! time against the whole cluster. Almost all of that state is
//! per-client — caches, NVRAM boards, dirty `RangeSet`s, the write log —
//! and almost all ops touch exactly one client's slice of it. This
//! module exploits that: the op stream is split into **windows** between
//! synchronization boundaries, each window is partitioned by client, and
//! the partitions replay concurrently through [`nvfs_par::par_map`].
//!
//! # Why the output is byte-identical
//!
//! The only cross-client state is the [`ConsistencyServer`], and its
//! state per file is driven only by the ops touching that file. One
//! static pass classifies every file:
//!
//! - **Entangled** — touched by two or more clients with at least one
//!   write-ish op (write-mode open, write, truncate, delete, fsync), or
//!   named by a `Migrate`. Every op on an entangled file is a **global
//!   op**: it ends the current window and replays on the driver thread
//!   against the full cluster and the one true server, in stream order —
//!   exactly like the serial loop.
//! - **Everything else** is private to one client or read-only-shared.
//!   For these files the server's per-file state machine is either dead
//!   (`last_writer` can only equal the sole toucher, and every consumer
//!   compares it against the acting client) or trivially per-client, so
//!   each shard replays its ops against a private **replica** server and
//!   reaches the same outcomes the global server would.
//!
//! The 5-second cleaner also shards: each client gets its own tick
//! cursor, advanced lazily to its next op's time. A tick's effect
//! depends only on the tick time (the write-back cutoff is
//! `tick - delay`), not on when it is evaluated, so deferring another
//! client's ticks until its own next op — or the next boundary — flushes
//! the same blocks at the same simulated times. Cleaner flushes of
//! entangled files queue a `note_flush` for the global server; clearing
//! a last-writer record is commutative, so application order within a
//! window does not matter. Per-shard [`TrafficStats`] deltas are summed
//! (all-`u64`, commutative), and per-shard write logs live in the caches
//! themselves, which travel with the shard.
//!
//! Hooks participate through [`RunHook::shard_barriers`]: a hook either
//! declares the op indices where it must interpose on the synchronized
//! cluster (a **barrier**: every client's ticks advance to the previous
//! op's time, then `before_op` runs with the full engine — exactly the
//! serial interleaving), or returns `None` and forces the always-correct
//! serial loop. Fault injection is serial; warm-up resets barrier once.
//!
//! The sharded loop runs at *every* job count — `--jobs 1` takes the
//! same windows, the same task frames, and the same merge order, so all
//! observability output is jobs-invariant by construction.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use nvfs_trace::op::{Op, OpKind, OpStream};
use nvfs_types::{ClientId, FileId, SimDuration, SimTime};

use crate::client::ClientCache;
use crate::config::SimConfig;
use crate::consistency::ConsistencyServer;
use crate::metrics::TrafficStats;
use crate::omniscient::OmniscientSchedule;
use crate::policy::Policy;
use crate::session::{dispatch, OpAction, RunHook, SessionEvent, SimEngine};

/// Windows smaller than this replay inline on the driver thread: the
/// fixed cost of spawning task frames outweighs the win. The threshold
/// depends only on the window's shape, never on the job count, so the
/// choice is jobs-invariant.
const MIN_PAR_WINDOW_OPS: usize = 256;

/// Gathers every hook's barrier declaration. `None` as soon as any hook
/// declines ([`RunHook::shard_barriers`] default): the run must stay on
/// the serial loop.
pub(crate) fn collect_barriers(
    hooks: &[&mut dyn RunHook],
    n_ops: usize,
) -> Option<BTreeSet<usize>> {
    let mut out = BTreeSet::new();
    for hook in hooks {
        out.extend(hook.shard_barriers(n_ops)?);
    }
    Some(out)
}

/// Cleaner constants lifted out of the config for cheap copying into
/// shard tasks.
#[derive(Clone, Copy)]
struct CleanerParams {
    run: bool,
    period: SimDuration,
    delay: SimDuration,
}

/// Per-client shard state that stays on the driver thread between
/// windows (the cache itself lives in `engine.clients` and is moved in
/// and out of parallel window tasks).
struct ShardSlot<'a> {
    replica: ConsistencyServer,
    next_tick: SimTime,
    /// This window's ops for the client (cleared after every window; the
    /// buffer is reused to keep the loop allocation-free).
    ops: Vec<&'a Op>,
}

/// Driver-side scratch for the sharded run.
struct ShardState<'a> {
    entangled: BTreeSet<FileId>,
    slots: BTreeMap<ClientId, ShardSlot<'a>>,
    /// Clients with ops in the window being assembled, in first-op order.
    touched: Vec<ClientId>,
    /// Queued `note_flush`es of entangled files (cleaner ticks inside
    /// shards cannot touch the global server); drained before any
    /// global op or barrier. Clearing last-writer records commutes, so
    /// the queue order is irrelevant.
    global_flushes: Vec<(ClientId, FileId)>,
    /// Reused buffers for the driver-thread (inline) paths.
    scratch_files: Vec<FileId>,
    scratch_pending: Vec<SessionEvent>,
    sched: Option<Arc<OmniscientSchedule>>,
}

/// One client's moved state for a parallel window task.
struct ShardTask<'a> {
    client: ClientId,
    cache: ClientCache,
    replica: ConsistencyServer,
    next_tick: SimTime,
    ops: Vec<&'a Op>,
}

/// What a window task hands back: the moved state plus its commutative
/// merge payload.
struct ShardOutcome<'a> {
    task: ShardTask<'a>,
    stats: TrafficStats,
    global_flushes: Vec<(ClientId, FileId)>,
}

/// Whether `op` must replay on the driver thread against the full
/// cluster: every `Migrate`, and every op on an entangled file.
fn op_is_global(op: &Op, entangled: &BTreeSet<FileId>) -> bool {
    match op.file() {
        Some(file) => entangled.contains(&file),
        None => true, // Migrate: multi-file flush + global note_flush
    }
}

/// One static pass over the stream: a file is entangled when two or more
/// distinct clients touch it and at least one op is write-ish, or when a
/// `Migrate` names it. Read-only sharing stays shardable — it never sets
/// a last-writer record or disables caching.
fn classify_entangled(ops: &OpStream) -> BTreeSet<FileId> {
    struct Touch {
        first: ClientId,
        multi: bool,
        write_ish: bool,
    }
    let mut touches: BTreeMap<FileId, Touch> = BTreeMap::new();
    let mut entangled = BTreeSet::new();
    for op in ops.iter() {
        let write_ish = match &op.kind {
            OpKind::Open { mode, .. } => mode.is_write(),
            OpKind::Write { .. }
            | OpKind::Truncate { .. }
            | OpKind::Delete { .. }
            | OpKind::Fsync { .. } => true,
            OpKind::Close { .. } | OpKind::Read { .. } => false,
            OpKind::Migrate { files, .. } => {
                entangled.extend(files.iter().copied());
                continue;
            }
        };
        let file = op.file().expect("non-migrate ops name one file");
        let t = touches.entry(file).or_insert(Touch {
            first: op.client,
            multi: false,
            write_ish: false,
        });
        t.multi |= t.first != op.client;
        t.write_ish |= write_ish;
    }
    for (file, t) in touches {
        if t.multi && t.write_ish {
            entangled.insert(file);
        }
    }
    entangled
}

/// Advances one client's cleaner cursor to `now`: ticks fire at the
/// same simulated times the serial loop would fire them, flushing into
/// the shard's replica (or queueing entangled flushes for the global
/// server). When the cache holds nothing the cleaner could act on, the
/// cursor jumps over the idle gap arithmetically — ticks on a clean
/// cache are no-ops, and the cursor stays on the same tick grid.
#[allow(clippy::too_many_arguments)]
fn advance_client(
    p: CleanerParams,
    client: ClientId,
    cache: &mut ClientCache,
    next_tick: &mut SimTime,
    now: SimTime,
    replica: &mut ConsistencyServer,
    entangled: &BTreeSet<FileId>,
    stats: &mut TrafficStats,
    global_flushes: &mut Vec<(ClientId, FileId)>,
    scratch: &mut Vec<FileId>,
) {
    if !p.run {
        return;
    }
    while *next_tick <= now {
        if !cache.cleaner_pending() {
            let gap = now.as_micros() - next_tick.as_micros();
            let steps = gap / p.period.as_micros() + 1;
            *next_tick = SimTime::from_micros(next_tick.as_micros() + steps * p.period.as_micros());
            return;
        }
        let tick = *next_tick;
        if tick >= SimTime::ZERO + p.delay {
            let cutoff = tick - p.delay;
            cache.writeback_older_than_into(cutoff, tick, stats, scratch);
            for &file in scratch.iter() {
                if entangled.contains(&file) {
                    global_flushes.push((client, file));
                } else {
                    replica.note_flush(file, client);
                }
            }
        }
        *next_tick += p.period;
    }
}

/// Runs the drive loop sharded by client. Preconditions (checked by the
/// caller, [`crate::SimSession::run`]): every hook returned barriers,
/// no hook wants flush events, event tracing is off, and the stream is
/// non-empty. The engine is left in exactly the state the serial loop
/// would leave it in.
pub(crate) fn run_sharded(
    engine: &mut SimEngine<'_>,
    ops: &OpStream,
    hooks: &mut [&mut dyn RunHook],
    barriers: &BTreeSet<usize>,
) {
    let slice = ops.as_slice();
    let n = slice.len();
    let p = CleanerParams {
        run: engine.run_cleaner,
        period: engine.config.cleaner_period,
        delay: engine.config.write_back_delay,
    };

    let mut st = ShardState {
        entangled: classify_entangled(ops),
        slots: BTreeMap::new(),
        touched: Vec::new(),
        global_flushes: Vec::new(),
        scratch_files: Vec::new(),
        scratch_pending: Vec::new(),
        sched: engine.policy_schedule.clone(),
    };

    // Eagerly create one cache + replica + tick cursor per client in the
    // stream. The serial loop creates caches lazily, but an untouched
    // empty cache is observably inert (no dirty bytes, zero counters,
    // no-op broadcasts), so eager creation changes no output.
    for op in ops.iter() {
        let c = op.client;
        st.slots.entry(c).or_insert_with(|| ShardSlot {
            replica: ConsistencyServer::with_mode(engine.config.consistency),
            next_tick: SimTime::ZERO + engine.config.cleaner_period,
            ops: Vec::new(),
        });
        let config = engine.config;
        let sched = &st.sched;
        engine.clients.entry(c).or_insert_with(|| {
            ClientCache::new(config, Policy::from_kind(config.policy, sched.clone()), c)
        });
    }

    let mut start = 0usize;
    for (i, op) in slice.iter().enumerate() {
        let is_barrier = barriers.contains(&i);
        let is_global = op_is_global(op, &st.entangled);
        if !is_barrier && !is_global {
            continue;
        }

        run_window(engine, &mut st, slice, start, i, p);
        drain_global_flushes(engine, &mut st);
        start = i + 1;

        if is_barrier {
            // Synchronize the cluster to just before this op — the tick
            // state the serial loop has when it calls `before_op(i)` —
            // then give every hook the full engine.
            if i > 0 {
                advance_all(engine, &mut st, slice[i - 1].time, p);
                drain_global_flushes(engine, &mut st);
            }
            engine.ops_replayed = i as u64 + 1;
            engine.sim_end = op.time;
            let mut action = OpAction::Apply;
            for hook in hooks.iter_mut() {
                if hook.before_op(engine, i, op) == OpAction::Skip {
                    action = OpAction::Skip;
                }
            }
            dispatch(engine, hooks);
            if action == OpAction::Skip {
                continue; // op suppressed; its window assignment lapses
            }
            if !is_global {
                // A shardable op at a barrier index joins the next
                // window (its shard advances its own ticks to op time
                // before applying, same as the serial cleaner would).
                start = i;
                continue;
            }
        }

        // Global op: advance every client to op time (the serial loop's
        // `advance_cleaner` does exactly this before applying), then
        // replay against the full cluster and the one true server.
        advance_all(engine, &mut st, op.time, p);
        drain_global_flushes(engine, &mut st);
        engine.apply_op(op);
    }

    run_window(engine, &mut st, slice, start, n, p);
    drain_global_flushes(engine, &mut st);
    let end = slice[n - 1].time;
    advance_all(engine, &mut st, end, p);
    drain_global_flushes(engine, &mut st);

    engine.ops_replayed = n as u64;
    engine.sim_end = end;
    if p.run {
        // All cursors were just advanced to `end`, so they agree on the
        // next grid point — which is where the serial loop's single
        // cursor would stand.
        let tick = st
            .slots
            .values()
            .next()
            .map(|s| s.next_tick)
            .expect("non-empty stream has clients");
        debug_assert!(st.slots.values().all(|s| s.next_tick == tick));
        engine.next_tick = tick;
    }
}

/// Replays `slice[start..end]` (no global ops inside) through the client
/// shards: small windows inline on the driver thread in stream order,
/// large ones partitioned by client and fanned out through `par_map`.
/// Both paths produce identical state; the choice depends only on the
/// window's shape, so it is jobs-invariant.
fn run_window<'a>(
    engine: &mut SimEngine<'_>,
    st: &mut ShardState<'a>,
    slice: &'a [Op],
    start: usize,
    end: usize,
    p: CleanerParams,
) {
    if start >= end {
        return;
    }
    let ShardState {
        entangled,
        slots,
        touched,
        global_flushes,
        scratch_files,
        scratch_pending,
        sched,
    } = st;
    let SimEngine {
        config,
        clients,
        stats,
        ..
    } = engine;
    let config: &SimConfig = config;
    let entangled: &BTreeSet<FileId> = entangled;
    let sched: &Option<Arc<OmniscientSchedule>> = sched;

    if end - start < MIN_PAR_WINDOW_OPS {
        // Inline: same per-shard routing, driver thread, stream order.
        for op in &slice[start..end] {
            let c = op.client;
            let slot = slots.get_mut(&c).expect("slots cover every client");
            let cache = clients.get_mut(&c).expect("caches cover every client");
            advance_client(
                p,
                c,
                cache,
                &mut slot.next_tick,
                op.time,
                &mut slot.replica,
                entangled,
                stats,
                global_flushes,
                scratch_files,
            );
            SimEngine::apply_op_parts(
                config,
                sched,
                clients,
                &mut slot.replica,
                stats,
                scratch_pending,
                false,
                op,
            );
            debug_assert!(scratch_pending.is_empty());
        }
        return;
    }

    // Partition the window by client, preserving per-client stream order.
    for op in &slice[start..end] {
        let slot = slots.get_mut(&op.client).expect("slots cover every client");
        if slot.ops.is_empty() {
            touched.push(op.client);
        }
        slot.ops.push(op);
    }
    touched.sort_unstable();

    let tasks: Vec<ShardTask<'_>> = touched
        .drain(..)
        .map(|c| {
            let slot = slots.get_mut(&c).expect("touched client has a slot");
            ShardTask {
                client: c,
                cache: clients.remove(&c).expect("touched client has a cache"),
                replica: std::mem::take(&mut slot.replica),
                next_tick: slot.next_tick,
                ops: std::mem::take(&mut slot.ops),
            }
        })
        .collect();

    let outcomes = nvfs_par::par_map(tasks, nvfs_par::jobs(), |mut task| {
        let mut stats = TrafficStats::default();
        let mut global_flushes = Vec::new();
        let mut scratch = Vec::new();
        let mut pending = Vec::new();
        let mut lone = BTreeMap::new();
        lone.insert(task.client, task.cache);
        for op in task.ops.drain(..) {
            let cache = lone.get_mut(&task.client).expect("cache stays resident");
            advance_client(
                p,
                task.client,
                cache,
                &mut task.next_tick,
                op.time,
                &mut task.replica,
                entangled,
                &mut stats,
                &mut global_flushes,
                &mut scratch,
            );
            SimEngine::apply_op_parts(
                config,
                sched,
                &mut lone,
                &mut task.replica,
                &mut stats,
                &mut pending,
                false,
                op,
            );
            debug_assert!(pending.is_empty());
        }
        task.cache = lone.remove(&task.client).expect("cache stays resident");
        ShardOutcome {
            task,
            stats,
            global_flushes,
        }
    });

    // Merge in submission order (ascending client id — deterministic,
    // and the stat sums are commutative anyway).
    for outcome in outcomes {
        let ShardOutcome {
            task,
            stats: delta,
            global_flushes: queued,
        } = outcome;
        let slot = slots.get_mut(&task.client).expect("slot persists");
        slot.replica = task.replica;
        slot.next_tick = task.next_tick;
        slot.ops = task.ops; // drained; buffer reused next window
        clients.insert(task.client, task.cache);
        *stats += delta;
        global_flushes.extend(queued);
    }
}

/// Advances every client's cleaner cursor to `now`. Per-client tick
/// effects are independent (own cache, own replica; entangled flushes
/// queue), so client-major order replays the same per-tick work the
/// serial tick-major loop does.
fn advance_all(
    engine: &mut SimEngine<'_>,
    st: &mut ShardState<'_>,
    now: SimTime,
    p: CleanerParams,
) {
    if !p.run {
        return;
    }
    let ShardState {
        entangled,
        slots,
        global_flushes,
        scratch_files,
        ..
    } = st;
    let SimEngine { clients, stats, .. } = engine;
    for (&c, cache) in clients.iter_mut() {
        let slot = slots.get_mut(&c).expect("slots cover every client");
        advance_client(
            p,
            c,
            cache,
            &mut slot.next_tick,
            now,
            &mut slot.replica,
            entangled,
            stats,
            global_flushes,
            scratch_files,
        );
    }
}

/// Applies queued entangled-file flushes to the global server. The
/// clears are commutative, so queue order never matters; they only need
/// to land before the next global op consults the server.
fn drain_global_flushes(engine: &mut SimEngine<'_>, st: &mut ShardState<'_>) {
    for (client, file) in st.global_flushes.drain(..) {
        engine.server.note_flush(file, client);
    }
}
