//! Simulation configuration.

use nvfs_types::{SimDuration, BLOCK_CLEANER_PERIOD, BLOCK_SIZE, DELAYED_WRITE_BACK};

/// Which client cache organization to simulate (§2.1, Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheModelKind {
    /// A single volatile cache with Sprite's 30-second delayed write-back
    /// (the baseline; no NVRAM).
    Volatile,
    /// Volatile cache plus an NVRAM that shadows dirty blocks: data is
    /// written into both memories, the NVRAM is never read except after a
    /// crash, and there is no 30-second write-back.
    WriteAside,
    /// Volatile cache and NVRAM managed as one cache: dirty blocks live
    /// only in the NVRAM, clean blocks in either memory, and there is no
    /// 30-second write-back.
    Unified,
    /// The "even more closely integrated" model §2.6 sketches: writes land
    /// in the volatile cache (so the whole cache absorbs write bursts) and
    /// the 30-second write-back *moves* aged dirty blocks into the NVRAM
    /// instead of sending them to the server. Faster than unified for
    /// small NVRAMs, but dirty data is vulnerable for up to 30 seconds.
    Hybrid,
}

impl CacheModelKind {
    /// Whether the model includes an NVRAM component.
    pub const fn has_nvram(self) -> bool {
        !matches!(self, CacheModelKind::Volatile)
    }
}

/// Block replacement policy for the NVRAM (§2.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PolicyKind {
    /// Replace the least-recently accessed (or modified) block.
    #[default]
    Lru,
    /// Replace a uniformly random block (the paper's sensitivity check).
    Random {
        /// Seed for the deterministic random choice.
        seed: u64,
    },
    /// Replace the block whose next modification (overwrite, truncate or
    /// delete) lies furthest in the future. Requires an
    /// [`OmniscientSchedule`](crate::omniscient::OmniscientSchedule) built
    /// from the same op stream.
    Omniscient,
}

/// Granularity of the cache consistency protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ConsistencyMode {
    /// Sprite's protocol: opening a file last written by another client
    /// recalls *all* of that client's dirty data for the file (§2.1).
    #[default]
    WholeFile,
    /// The block-by-block protocol the paper points to for reducing
    /// callback traffic further (§2.3, citing \[21\]): dirty blocks are
    /// recalled lazily, only when another client actually reads them.
    BlockOnDemand,
}

/// Full configuration of a cluster simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Cache organization.
    pub model: CacheModelKind,
    /// Per-client volatile cache size in bytes.
    pub volatile_bytes: u64,
    /// Per-client NVRAM size in bytes (ignored by the volatile model).
    pub nvram_bytes: u64,
    /// NVRAM block replacement policy.
    pub policy: PolicyKind,
    /// NVRAM access time relative to DRAM (≥ 1.0).
    pub nvram_access_ratio: f64,
    /// Volatile model only: prefer replacing clean blocks, as real Sprite
    /// does (the paper deliberately simplifies this away; kept as an
    /// ablation).
    pub dirty_preference: bool,
    /// Consistency protocol granularity.
    pub consistency: ConsistencyMode,
    /// Age at which the volatile model writes dirty data back (Sprite: 30 s).
    pub write_back_delay: SimDuration,
    /// Period of the block cleaner sweep (Sprite: 5 s).
    pub cleaner_period: SimDuration,
}

impl SimConfig {
    /// Baseline volatile-cache configuration.
    ///
    /// # Panics
    ///
    /// Panics if `volatile_bytes` is smaller than one 4 KB block.
    pub fn volatile(volatile_bytes: u64) -> Self {
        assert!(
            volatile_bytes >= BLOCK_SIZE,
            "cache must hold at least one block"
        );
        SimConfig {
            model: CacheModelKind::Volatile,
            volatile_bytes,
            nvram_bytes: 0,
            policy: PolicyKind::Lru,
            nvram_access_ratio: 1.0,
            dirty_preference: false,
            consistency: ConsistencyMode::WholeFile,
            write_back_delay: DELAYED_WRITE_BACK,
            cleaner_period: BLOCK_CLEANER_PERIOD,
        }
    }

    /// Write-aside NVRAM configuration.
    ///
    /// # Panics
    ///
    /// Panics if either memory is smaller than one 4 KB block.
    pub fn write_aside(volatile_bytes: u64, nvram_bytes: u64) -> Self {
        assert!(
            volatile_bytes >= BLOCK_SIZE,
            "cache must hold at least one block"
        );
        assert!(
            nvram_bytes >= BLOCK_SIZE,
            "NVRAM must hold at least one block"
        );
        SimConfig {
            model: CacheModelKind::WriteAside,
            volatile_bytes,
            nvram_bytes,
            ..SimConfig::volatile(volatile_bytes)
        }
    }

    /// Unified NVRAM configuration.
    ///
    /// # Panics
    ///
    /// Panics if either memory is smaller than one 4 KB block.
    pub fn unified(volatile_bytes: u64, nvram_bytes: u64) -> Self {
        assert!(
            volatile_bytes >= BLOCK_SIZE,
            "cache must hold at least one block"
        );
        assert!(
            nvram_bytes >= BLOCK_SIZE,
            "NVRAM must hold at least one block"
        );
        SimConfig {
            model: CacheModelKind::Unified,
            volatile_bytes,
            nvram_bytes,
            ..SimConfig::volatile(volatile_bytes)
        }
    }

    /// Hybrid (§2.6 sketch) configuration: volatile-style writes whose aged
    /// dirty blocks migrate into NVRAM instead of going to the server.
    ///
    /// # Panics
    ///
    /// Panics if either memory is smaller than one 4 KB block.
    pub fn hybrid(volatile_bytes: u64, nvram_bytes: u64) -> Self {
        assert!(
            volatile_bytes >= BLOCK_SIZE,
            "cache must hold at least one block"
        );
        assert!(
            nvram_bytes >= BLOCK_SIZE,
            "NVRAM must hold at least one block"
        );
        SimConfig {
            model: CacheModelKind::Hybrid,
            volatile_bytes,
            nvram_bytes,
            ..SimConfig::volatile(volatile_bytes)
        }
    }

    /// Enables Sprite's dirty-block replacement preference (builder style).
    pub fn with_dirty_preference(mut self) -> Self {
        self.dirty_preference = true;
        self
    }

    /// Selects the consistency protocol granularity (builder style).
    pub fn with_consistency(mut self, mode: ConsistencyMode) -> Self {
        self.consistency = mode;
        self
    }

    /// Replaces the NVRAM replacement policy (builder style).
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Volatile cache capacity in whole blocks.
    pub fn volatile_blocks(&self) -> usize {
        (self.volatile_bytes / BLOCK_SIZE) as usize
    }

    /// NVRAM capacity in whole blocks.
    pub fn nvram_blocks(&self) -> usize {
        (self.nvram_bytes / BLOCK_SIZE) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_model() {
        assert_eq!(SimConfig::volatile(1 << 20).model, CacheModelKind::Volatile);
        assert_eq!(
            SimConfig::write_aside(1 << 20, 1 << 20).model,
            CacheModelKind::WriteAside
        );
        assert_eq!(
            SimConfig::unified(1 << 20, 1 << 20).model,
            CacheModelKind::Unified
        );
    }

    #[test]
    fn block_capacity_math() {
        let c = SimConfig::unified(8 << 20, 1 << 20);
        assert_eq!(c.volatile_blocks(), 2048);
        assert_eq!(c.nvram_blocks(), 256);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn tiny_cache_rejected() {
        let _ = SimConfig::volatile(1024);
    }

    #[test]
    fn nvram_presence() {
        assert!(!CacheModelKind::Volatile.has_nvram());
        assert!(CacheModelKind::WriteAside.has_nvram());
        assert!(CacheModelKind::Unified.has_nvram());
        assert!(CacheModelKind::Hybrid.has_nvram());
    }

    #[test]
    fn hybrid_constructor_and_dirty_preference() {
        let c = SimConfig::hybrid(1 << 20, 1 << 20);
        assert_eq!(c.model, CacheModelKind::Hybrid);
        assert!(!c.dirty_preference);
        let v = SimConfig::volatile(1 << 20).with_dirty_preference();
        assert!(v.dirty_preference);
    }

    #[test]
    fn policy_builder() {
        let c = SimConfig::unified(1 << 20, 1 << 20).with_policy(PolicyKind::Random { seed: 3 });
        assert_eq!(c.policy, PolicyKind::Random { seed: 3 });
        assert_eq!(PolicyKind::default(), PolicyKind::Lru);
    }
}
