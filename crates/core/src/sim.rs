//! The trace-driven cluster simulator (§2.2).
//!
//! [`ClusterSim`] replays a canonical [`OpStream`] against one
//! [`ClientCache`](crate::client::ClientCache) per client plus the
//! server-side [`ConsistencyServer`](crate::consistency::ConsistencyServer),
//! producing the [`TrafficStats`] from which Figures 3–6 are derived.
//! The volatile model's 30-second delayed write-back is driven by a
//! 5-second cleaner tick, exactly as in Sprite.
//!
//! Every `run_*` entry point is a thin wrapper over the composable
//! engine in [`session`](crate::session): it assembles the canonical
//! [`RunHook`](crate::session::RunHook) stack for that concern and
//! drives one [`SimSession`]. Custom compositions (warmup + faults +
//! oracle, say) are assembled the same way by callers.

use nvfs_faults::corrupt::CorruptionSchedule;
use nvfs_faults::net::NetFaultPlan;
use nvfs_faults::{FaultSchedule, ReliabilityStats};
use nvfs_nvram::protect::ProtectionMode;
use nvfs_oracle::Oracle;
use nvfs_trace::op::OpStream;
use nvfs_types::SimDuration;

use crate::client::ServerWrite;
use crate::config::SimConfig;
use crate::metrics::TrafficStats;
use crate::net::{NetFaultInjector, NetReport};
use crate::scrub::{CorruptionInjector, ScrubReport};
use crate::session::{
    FaultInjector, ObsRecorder, OracleJudge, SimSession, WarmupReset, WriteLogCapture,
};

/// A configured cluster simulation, ready to run over op streams.
///
/// # Examples
///
/// ```
/// use nvfs_core::{ClusterSim, SimConfig};
/// use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
///
/// let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
/// let stats = ClusterSim::new(SimConfig::unified(1 << 20, 512 << 10))
///     .run(traces.trace(0).ops());
/// assert!(stats.app_write_bytes > 0);
/// assert!(stats.net_write_traffic_pct() <= 100.0 + 1e-9 || stats.server_read_bytes > 0);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterSim {
    config: SimConfig,
}

/// Results of a fault-injected run ([`ClusterSim::run_with_faults`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRunReport {
    /// Ordinary traffic counters; recovery drains appear under
    /// [`TrafficStats::recovery_bytes`].
    pub stats: TrafficStats,
    /// Crash/recovery accounting, per fault kind.
    pub reliability: ReliabilityStats,
    /// Time-ordered server-write log including recovery drains.
    pub writes: Vec<ServerWrite>,
}

/// Results of a network-faulted run ([`ClusterSim::run_with_net_faults`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetFaultRunReport {
    /// Ordinary traffic counters (shed bytes never appear here — they
    /// did not reach the server).
    pub stats: TrafficStats,
    /// Reliability accounting; partition-shed bytes land in
    /// [`ReliabilityStats::bytes_lost_partition`].
    pub reliability: ReliabilityStats,
    /// Time-ordered server-write log of the bytes that *did* get through.
    pub writes: Vec<ServerWrite>,
    /// Wire-layer counters, judge summary and verdicts.
    pub net: NetReport,
}

impl ClusterSim {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        ClusterSim { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Replays `ops` and returns the aggregated traffic statistics.
    ///
    /// The omniscient policy builds its schedule from this same stream (the
    /// paper's third pass).
    pub fn run(&self, ops: &OpStream) -> TrafficStats {
        let mut obs = ObsRecorder::new();
        SimSession::new(&self.config)
            .run(ops, &mut [&mut obs])
            .stats
    }

    /// Runs with a warm-up prefix: the first `warmup` fraction of the
    /// stream populates the caches, then every counter is reset, so the
    /// returned statistics describe steady state only. The cut index is
    /// `floor(len * warmup)` — see [`warmup_cut`](crate::session::warmup_cut).
    ///
    /// The paper notes its own simulations "started with empty caches,
    /// thereby misclassifying some writes as new data rather than
    /// overwrites" — this quantifies that cold-start bias.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= warmup < 1.0`.
    pub fn run_with_warmup(&self, ops: &OpStream, warmup: f64) -> TrafficStats {
        let mut warm = WarmupReset::fraction(ops.len(), warmup);
        let mut obs = ObsRecorder::new();
        SimSession::new(&self.config)
            .run(ops, &mut [&mut warm, &mut obs])
            .stats
    }

    /// Like [`ClusterSim::run`], but also returns the time-ordered log of
    /// every write the clients sent to the server — the input for a
    /// server-side (LFS) simulation downstream.
    pub fn run_detailed(&self, ops: &OpStream) -> (TrafficStats, Vec<ServerWrite>) {
        let (mut obs, mut log) = (ObsRecorder::new(), WriteLogCapture::new());
        let out = SimSession::new(&self.config).run(ops, &mut [&mut obs, &mut log]);
        (out.stats, log.take())
    }

    /// Replays `ops` under an injected [`FaultSchedule`]: each scheduled
    /// client crash cuts that client's trace at the fault time, snapshots
    /// its NVRAM contents onto a removable board, and — after the board's
    /// relocation delay, with its batteries aged on the schedule's failure
    /// clock — drains the board through the §4 recovery flow. Losses
    /// (volatile window, dead batteries, torn drains) are reported in the
    /// returned [`ReliabilityStats`] rather than panicking.
    ///
    /// Deterministic: the same `(schedule, ops, config)` triple produces
    /// byte-identical results at any worker-thread count.
    pub fn run_with_faults(&self, ops: &OpStream, schedule: &FaultSchedule) -> FaultRunReport {
        let (mut faults, mut obs, mut log) = (
            FaultInjector::new(schedule),
            ObsRecorder::new(),
            WriteLogCapture::new(),
        );
        let out = SimSession::new(&self.config).run(ops, &mut [&mut faults, &mut obs, &mut log]);
        FaultRunReport {
            stats: out.stats,
            reliability: out.reliability,
            writes: log.take(),
        }
    }

    /// Like [`ClusterSim::run_with_faults`], but every crash + recovery is
    /// judged by the durability [`Oracle`]: at each crash instant the cache
    /// model's durable promise is captured *before* any recovery code runs,
    /// and after the board drain the recovered ranges are diffed against
    /// the shadow model's independent prediction. The returned oracle holds
    /// one [`CrashReport`](nvfs_oracle::CrashReport) per recovered crash.
    pub fn run_with_faults_verified(
        &self,
        ops: &OpStream,
        schedule: &FaultSchedule,
    ) -> (FaultRunReport, Oracle) {
        let (mut faults, mut obs, mut judge, mut log) = (
            FaultInjector::new(schedule),
            ObsRecorder::new(),
            OracleJudge::new(),
            WriteLogCapture::new(),
        );
        let out = SimSession::new(&self.config)
            .run(ops, &mut [&mut faults, &mut obs, &mut judge, &mut log]);
        (
            FaultRunReport {
                stats: out.stats,
                reliability: out.reliability,
                writes: log.take(),
            },
            judge.into_oracle(),
        )
    }

    /// Like [`ClusterSim::run_with_faults_verified`], but with an NVRAM
    /// corruption schedule layered on top: stray writes, bit flips, and
    /// board decay land on the clients' NVRAM contents under the given
    /// [`ProtectionMode`], with an optional background checksum scrub
    /// sweeping every `scrub_interval`. Corruption is pure metadata —
    /// the traffic statistics, write log, and crash/recovery flow are
    /// byte-identical to the corruption-free run (modulo the scrub's
    /// repair reads, charged to server read traffic) — and every corrupt
    /// byte's fate is classified in the returned [`ScrubReport`].
    ///
    /// Deterministic and serial: byte-identical at any worker-thread
    /// count.
    pub fn run_with_corruption_verified(
        &self,
        ops: &OpStream,
        schedule: &FaultSchedule,
        corruption: &CorruptionSchedule,
        mode: ProtectionMode,
        scrub_interval: Option<SimDuration>,
    ) -> (FaultRunReport, Oracle, ScrubReport) {
        let (mut faults, mut corrupt, mut obs, mut judge, mut log) = (
            FaultInjector::new(schedule),
            CorruptionInjector::new(corruption, mode, scrub_interval),
            ObsRecorder::new(),
            OracleJudge::new(),
            WriteLogCapture::new(),
        );
        let out = SimSession::new(&self.config).run(
            ops,
            &mut [&mut faults, &mut corrupt, &mut obs, &mut judge, &mut log],
        );
        (
            FaultRunReport {
                stats: out.stats,
                reliability: out.reliability,
                writes: log.take(),
            },
            judge.into_oracle(),
            corrupt.into_report(),
        )
    }

    /// Replays `ops` with the deterministic network layer between the
    /// clients and the server: every server-interacting op and flush note
    /// becomes an RPC resolved through `net` (drops, duplicates, delays,
    /// retries, timed partitions). While a client's link is severed,
    /// flushes the model cannot defer are shed and accounted as
    /// [`ReliabilityStats::bytes_lost_partition`]; the wire transcript is
    /// judged by the [`NetJudge`](nvfs_oracle::NetJudge) and the verdicts
    /// returned in the report. Deterministic and serial: byte-identical
    /// at any worker-thread count.
    pub fn run_with_net_faults(&self, ops: &OpStream, net: &NetFaultPlan) -> NetFaultRunReport {
        let (mut netinj, mut obs, mut log) = (
            NetFaultInjector::new(net),
            ObsRecorder::new(),
            WriteLogCapture::new(),
        );
        let out = SimSession::new(&self.config).run(ops, &mut [&mut netinj, &mut obs, &mut log]);
        NetFaultRunReport {
            stats: out.stats,
            reliability: out.reliability,
            writes: log.take(),
            net: netinj.into_report(),
        }
    }

    /// Like [`ClusterSim::run_with_net_faults`], but composed with a
    /// crash [`FaultSchedule`] and the durability [`Oracle`]: partitions,
    /// retries and crashes interleave in one run, recovery drains defer
    /// past whole-server partitions, and every crash + recovery is judged
    /// against the shadow durability model on top of the wire contract.
    pub fn run_with_net_faults_verified(
        &self,
        ops: &OpStream,
        net: &NetFaultPlan,
        schedule: &FaultSchedule,
    ) -> (NetFaultRunReport, Oracle) {
        let (mut netinj, mut faults, mut obs, mut judge, mut log) = (
            NetFaultInjector::new(net),
            FaultInjector::new(schedule),
            ObsRecorder::new(),
            OracleJudge::new(),
            WriteLogCapture::new(),
        );
        let out = SimSession::new(&self.config).run(
            ops,
            &mut [&mut netinj, &mut faults, &mut obs, &mut judge, &mut log],
        );
        (
            NetFaultRunReport {
                stats: out.stats,
                reliability: out.reliability,
                writes: log.take(),
                net: netinj.into_report(),
            },
            judge.into_oracle(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::FlushCause;
    use crate::config::PolicyKind;
    use crate::session::warmup_cut;
    use nvfs_trace::event::OpenMode;
    use nvfs_trace::op::{Op, OpKind};
    use nvfs_types::{ByteRange, ClientId, FileId, SimTime, BLOCK_SIZE};

    fn op(t: u64, client: u32, kind: OpKind) -> Op {
        Op {
            time: SimTime::from_secs(t),
            client: ClientId(client),
            kind,
        }
    }

    fn wr(t: u64, client: u32, file: u32, block: u64) -> Op {
        op(
            t,
            client,
            OpKind::Write {
                file: FileId(file),
                range: ByteRange::at(block * BLOCK_SIZE, BLOCK_SIZE),
            },
        )
    }

    #[test]
    fn delayed_writeback_fires_after_30s() {
        let ops: OpStream = vec![
            op(
                1,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            wr(2, 0, 0, 0),
            op(3, 0, OpKind::Close { file: FileId(0) }),
            // A much later op lets the cleaner run.
            op(
                100,
                0,
                OpKind::Open {
                    file: FileId(1),
                    mode: OpenMode::Read,
                },
            ),
        ]
        .into_iter()
        .collect();
        let stats = ClusterSim::new(SimConfig::volatile(1 << 20)).run(&ops);
        assert_eq!(stats.writeback_bytes, BLOCK_SIZE);
        assert_eq!(stats.remaining_dirty_bytes, 0);
    }

    #[test]
    fn nvram_models_hold_dirty_data_to_the_end() {
        let ops: OpStream = vec![
            op(
                1,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            wr(2, 0, 0, 0),
            op(3, 0, OpKind::Close { file: FileId(0) }),
            op(
                100,
                0,
                OpKind::Open {
                    file: FileId(1),
                    mode: OpenMode::Read,
                },
            ),
        ]
        .into_iter()
        .collect();
        for cfg in [
            SimConfig::write_aside(1 << 20, 512 << 10),
            SimConfig::unified(1 << 20, 512 << 10),
        ] {
            let stats = ClusterSim::new(cfg).run(&ops);
            assert_eq!(stats.writeback_bytes, 0);
            assert_eq!(stats.remaining_dirty_bytes, BLOCK_SIZE);
            assert_eq!(stats.server_write_bytes, 0);
        }
    }

    #[test]
    fn absorbed_write_never_reaches_server_in_nvram_model() {
        let ops: OpStream = vec![
            op(
                1,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            wr(2, 0, 0, 0),
            op(50, 0, OpKind::Delete { file: FileId(0) }),
            op(
                100,
                0,
                OpKind::Open {
                    file: FileId(1),
                    mode: OpenMode::Read,
                },
            ),
        ]
        .into_iter()
        .collect();
        let stats = ClusterSim::new(SimConfig::unified(1 << 20, 512 << 10)).run(&ops);
        assert_eq!(stats.deleted_dead_bytes, BLOCK_SIZE);
        assert_eq!(stats.server_write_bytes, 0);
        assert_eq!(stats.net_write_traffic_pct(), 0.0);
        // The volatile model, by contrast, wrote it back at ~32s.
        let v = ClusterSim::new(SimConfig::volatile(1 << 20)).run(&ops);
        assert_eq!(v.writeback_bytes, BLOCK_SIZE);
    }

    #[test]
    fn foreign_open_recalls_dirty_data() {
        let ops: OpStream = vec![
            op(
                1,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            wr(2, 0, 0, 0),
            op(3, 0, OpKind::Close { file: FileId(0) }),
            op(
                10,
                1,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Read,
                },
            ),
            op(
                11,
                1,
                OpKind::Read {
                    file: FileId(0),
                    range: ByteRange::at(0, BLOCK_SIZE),
                },
            ),
            op(12, 1, OpKind::Close { file: FileId(0) }),
        ]
        .into_iter()
        .collect();
        let stats = ClusterSim::new(SimConfig::unified(1 << 20, 512 << 10)).run(&ops);
        assert_eq!(stats.callback_bytes, BLOCK_SIZE);
        assert_eq!(stats.remaining_dirty_bytes, 0);
    }

    #[test]
    fn concurrent_write_sharing_bypasses_caches() {
        let ops: OpStream = vec![
            op(
                1,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            op(
                2,
                1,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::ReadWrite,
                },
            ),
            wr(3, 0, 0, 0),
            wr(4, 1, 0, 0),
            op(
                5,
                1,
                OpKind::Read {
                    file: FileId(0),
                    range: ByteRange::at(0, 100),
                },
            ),
            op(6, 0, OpKind::Close { file: FileId(0) }),
            op(7, 1, OpKind::Close { file: FileId(0) }),
            // After everyone closes, caching works again.
            op(
                8,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            wr(9, 0, 0, 1),
            op(10, 0, OpKind::Close { file: FileId(0) }),
        ]
        .into_iter()
        .collect();
        let stats = ClusterSim::new(SimConfig::unified(1 << 20, 512 << 10)).run(&ops);
        assert_eq!(stats.concurrent_write_bytes, 2 * BLOCK_SIZE);
        assert_eq!(stats.concurrent_read_bytes, 100);
        // The post-sharing write is cached normally.
        assert_eq!(stats.remaining_dirty_bytes, BLOCK_SIZE);
    }

    #[test]
    fn migration_flushes_dirty_files() {
        use nvfs_types::ProcessId;
        let ops: OpStream = vec![
            op(
                1,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            wr(2, 0, 0, 0),
            op(
                3,
                0,
                OpKind::Migrate {
                    pid: ProcessId(0),
                    to: ClientId(1),
                    files: vec![FileId(0)],
                },
            ),
        ]
        .into_iter()
        .collect();
        let stats = ClusterSim::new(SimConfig::unified(1 << 20, 512 << 10)).run(&ops);
        assert_eq!(stats.migration_bytes, BLOCK_SIZE);
        assert_eq!(stats.remaining_dirty_bytes, 0);
    }

    #[test]
    fn block_consistency_recalls_only_read_blocks() {
        use crate::config::ConsistencyMode;
        // Client 0 dirties two blocks; client 1 reads only the first.
        let ops: OpStream = vec![
            op(
                1,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            wr(2, 0, 0, 0),
            wr(3, 0, 0, 1),
            op(4, 0, OpKind::Close { file: FileId(0) }),
            op(
                5,
                1,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Read,
                },
            ),
            op(
                6,
                1,
                OpKind::Read {
                    file: FileId(0),
                    range: ByteRange::at(0, BLOCK_SIZE),
                },
            ),
            op(7, 1, OpKind::Close { file: FileId(0) }),
        ]
        .into_iter()
        .collect();
        let whole = ClusterSim::new(SimConfig::unified(1 << 20, 512 << 10)).run(&ops);
        assert_eq!(
            whole.callback_bytes,
            2 * BLOCK_SIZE,
            "whole-file recall takes both blocks"
        );
        let block = ClusterSim::new(
            SimConfig::unified(1 << 20, 512 << 10).with_consistency(ConsistencyMode::BlockOnDemand),
        )
        .run(&ops);
        assert_eq!(
            block.callback_bytes, BLOCK_SIZE,
            "lazy recall takes only the read block"
        );
        // The unread block stays dirty in client 0's NVRAM.
        assert_eq!(block.remaining_dirty_bytes, BLOCK_SIZE);
    }

    #[test]
    fn warmup_reduces_cold_start_misses() {
        use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
        let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        let ops = traces.trace(6).ops();
        let sim = ClusterSim::new(SimConfig::unified(2 << 20, 512 << 10));
        let warm = sim.run_with_warmup(ops, 0.3);
        // The clean comparison: the same steady-state suffix replayed from
        // empty caches.
        let cut = warmup_cut(ops.len(), 0.3);
        let suffix: OpStream = ops.as_slice()[cut..].iter().cloned().collect();
        let cold_suffix = sim.run(&suffix);
        assert_eq!(warm.app_write_bytes, cold_suffix.app_write_bytes);
        // Warmed caches can only hit more often on identical requests.
        assert!(
            warm.read_hit_ratio() >= cold_suffix.read_hit_ratio(),
            "warm {:.3} vs cold {:.3}",
            warm.read_hit_ratio(),
            cold_suffix.read_hit_ratio()
        );
        // And the paper's noted bias: cold caches misclassify overwrites of
        // earlier data as new writes, so warm runs absorb at least as much.
        assert!(warm.absorbed_bytes() >= cold_suffix.absorbed_bytes());
    }

    #[test]
    #[should_panic(expected = "warmup must be in")]
    fn warmup_rejects_full_fraction() {
        let sim = ClusterSim::new(SimConfig::volatile(1 << 20));
        let _ = sim.run_with_warmup(&OpStream::new(), 1.0);
    }

    #[test]
    fn warmup_cut_rounds_down_and_handles_boundaries() {
        // floor semantics: the warm-up prefix is rounded down.
        assert_eq!(warmup_cut(10, 0.3), 3);
        assert_eq!(warmup_cut(7, 0.5), 3);
        assert_eq!(warmup_cut(10, 0.0), 0);
        // Just below 1.0: the measured suffix keeps at least one op.
        let cut = warmup_cut(10, 1.0 - 1e-9);
        assert_eq!(cut, 9, "cut must stay below len");
        // The empty stream cuts at 0 for every legal fraction.
        assert_eq!(warmup_cut(0, 0.0), 0);
        assert_eq!(warmup_cut(0, 0.999), 0);
    }

    #[test]
    fn warmup_just_below_one_measures_only_the_tail() {
        use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
        let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        let ops = traces.trace(6).ops();
        let sim = ClusterSim::new(SimConfig::unified(2 << 20, 512 << 10));
        // A warm-up fraction just below 1.0 resets before the very last
        // op: the run must not panic, and the counters can only describe
        // that one-op tail.
        let tail = sim.run_with_warmup(ops, 1.0 - f64::EPSILON);
        let full = sim.run(ops);
        assert!(tail.app_write_bytes <= full.app_write_bytes);
        assert!(tail.app_read_bytes <= full.app_read_bytes);
    }

    #[test]
    fn warmup_on_empty_stream_is_a_no_op() {
        let sim = ClusterSim::new(SimConfig::unified(1 << 20, 512 << 10));
        let stats = sim.run_with_warmup(&OpStream::new(), 0.5);
        assert_eq!(stats, TrafficStats::default());
    }

    #[test]
    fn runs_are_deterministic() {
        use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
        let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        let cfg =
            SimConfig::unified(1 << 20, 256 << 10).with_policy(PolicyKind::Random { seed: 5 });
        let a = ClusterSim::new(cfg.clone()).run(traces.trace(4).ops());
        let b = ClusterSim::new(cfg).run(traces.trace(4).ops());
        assert_eq!(a, b);
    }

    #[test]
    fn injected_crash_cuts_the_trace_and_recovers_nvram_contents() {
        use nvfs_faults::{FaultPlanConfig, FaultSchedule};
        use nvfs_types::SimDuration;
        // Client 0 writes one block, then (post-crash) would write another;
        // client 1 writes one block and survives.
        let ops: OpStream = vec![
            wr(2, 0, 0, 0),
            wr(2, 1, 1, 0),
            wr(40, 0, 2, 0),
            op(
                100,
                1,
                OpKind::Open {
                    file: FileId(3),
                    mode: OpenMode::Read,
                },
            ),
        ]
        .into_iter()
        .collect();
        // One crash in a 1-client plan always hits ClientId(0).
        let plan = FaultPlanConfig::new(1, SimDuration::from_secs(20))
            .with_client_crashes(1)
            .with_relocation_delay(SimDuration::from_secs(10));
        let schedule = FaultSchedule::compile(9, &plan).unwrap();
        assert_eq!(schedule.client_crashes[0].client, ClientId(0));

        let unified = ClusterSim::new(SimConfig::unified(1 << 20, 512 << 10))
            .run_with_faults(&ops, &schedule);
        let r = &unified.reliability;
        assert_eq!(r.client_crashes, 1);
        assert_eq!(r.bytes_at_risk, BLOCK_SIZE, "only the pre-crash write");
        assert_eq!(r.bytes_recovered, BLOCK_SIZE);
        assert_eq!(
            r.bytes_lost_window + r.bytes_lost_battery + r.bytes_lost_torn,
            0
        );
        assert_eq!(r.boards_recovered, 1);
        assert_eq!(unified.stats.recovery_bytes, BLOCK_SIZE);
        // The post-crash write never happened; the survivor's write did.
        assert_eq!(unified.stats.app_write_bytes, 2 * BLOCK_SIZE);
        assert!(unified
            .writes
            .iter()
            .any(|w| w.cause == FlushCause::Recovery));

        // The volatile model has nothing in NVRAM: the window is lost.
        let volatile =
            ClusterSim::new(SimConfig::volatile(1 << 20)).run_with_faults(&ops, &schedule);
        let r = &volatile.reliability;
        assert_eq!(r.bytes_at_risk, BLOCK_SIZE);
        assert_eq!(r.bytes_in_nvram, 0);
        assert_eq!(r.bytes_lost_window, BLOCK_SIZE);
        assert_eq!(r.bytes_recovered, 0);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        use nvfs_faults::{FaultPlanConfig, FaultSchedule};
        use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
        use nvfs_types::SimDuration;
        let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        let ops = traces.trace(6).ops();
        let plan = FaultPlanConfig::new(8, SimDuration::from_hours(24))
            .with_client_crashes(3)
            .with_batteries(1)
            .with_battery_mtbf(SimDuration::from_hours(6))
            .with_torn_probability(0.3);
        let schedule = FaultSchedule::compile(42, &plan).unwrap();
        let sim = ClusterSim::new(SimConfig::write_aside(1 << 20, 512 << 10));
        let a = sim.run_with_faults(ops, &schedule);
        let b = sim.run_with_faults(ops, &schedule);
        assert_eq!(a, b);
        assert_eq!(a.reliability.client_crashes, 3);
    }

    #[test]
    fn verified_run_judges_every_recovery_clean() {
        use nvfs_faults::{CrashPointKind, FaultPlanConfig, FaultSchedule};
        use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
        use nvfs_types::SimDuration;
        let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        let ops = traces.trace(6).ops();
        let plan = FaultPlanConfig::new(8, SimDuration::from_hours(24))
            .with_client_crashes(4)
            .with_torn_probability(0.5);
        let schedule = FaultSchedule::compile(42, &plan).unwrap();
        let sim = ClusterSim::new(SimConfig::unified(1 << 20, 512 << 10));
        // Every crash-point variant of the schedule must be judged Clean:
        // the recovery path honours the durability contract at full drains,
        // per-block mid-drain cuts, battery-death edges, and flush edges.
        for kind in [
            CrashPointKind::FullDrain,
            CrashPointKind::TornDrainBlocks(1),
            CrashPointKind::DeadBoard,
            CrashPointKind::BatteryEdgeAlive,
            CrashPointKind::PreFlush,
            CrashPointKind::PostFlush,
        ] {
            let variant = schedule.apply_crash_point(kind, SimDuration::from_secs(5));
            let (report, oracle) = sim.run_with_faults_verified(ops, &variant);
            assert_eq!(report.reliability.client_crashes, 4, "{kind}");
            let s = oracle.summary();
            assert_eq!(
                s.crash_points,
                report.reliability.boards_recovered + report.reliability.boards_dead,
                "{kind}"
            );
            assert_eq!(s.violations(), 0, "{kind}: {:?}", oracle.reports());
            // The oracle's byte totals agree with the reliability ledger.
            assert_eq!(
                s.bytes_observed, report.reliability.bytes_recovered,
                "{kind}"
            );
        }
        // And the unverified path is byte-identical to the verified one.
        let (verified, _) = sim.run_with_faults_verified(ops, &schedule);
        let plain = sim.run_with_faults(ops, &schedule);
        assert_eq!(verified, plain);
    }

    #[test]
    fn omniscient_policy_runs_end_to_end() {
        use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
        let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        let cfg = SimConfig::unified(1 << 20, 128 << 10).with_policy(PolicyKind::Omniscient);
        let omni = ClusterSim::new(cfg).run(traces.trace(6).ops());
        let lru =
            ClusterSim::new(SimConfig::unified(1 << 20, 128 << 10)).run(traces.trace(6).ops());
        // Omniscient replacement can only help (small tolerance for the
        // block-vs-byte optimality caveat the paper itself notes).
        assert!(
            omni.net_write_traffic_pct() <= lru.net_write_traffic_pct() * 1.05,
            "omniscient {:.2}% vs LRU {:.2}%",
            omni.net_write_traffic_pct(),
            lru.net_write_traffic_pct()
        );
    }
}
