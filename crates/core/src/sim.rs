//! The trace-driven cluster simulator (§2.2).
//!
//! [`ClusterSim`] replays a canonical [`OpStream`] against one
//! [`ClientCache`] per client plus the server-side
//! [`ConsistencyServer`], producing the [`TrafficStats`] from which
//! Figures 3–6 are derived. The volatile model's 30-second delayed
//! write-back is driven by a 5-second cleaner tick, exactly as in Sprite.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use nvfs_faults::{ClientCrashFault, FaultSchedule, ReliabilityStats};
use nvfs_nvram::NvramBoard;
use nvfs_oracle::{DrainExpectation, DurableMap, DurablePromise, Oracle};
use nvfs_trace::op::{OpKind, OpStream};
use nvfs_types::{ClientId, SimTime, BLOCK_SIZE};

use crate::client::{ClientCache, FlushCause, ServerWrite};
use crate::config::{CacheModelKind, ConsistencyMode, PolicyKind, SimConfig};
use crate::consistency::ConsistencyServer;
use crate::metrics::TrafficStats;
use crate::omniscient::OmniscientSchedule;
use crate::policy::Policy;
use crate::recovery::{recover_up_to, snapshot_nvram, RecoveryError};

/// A configured cluster simulation, ready to run over op streams.
///
/// # Examples
///
/// ```
/// use nvfs_core::{ClusterSim, SimConfig};
/// use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
///
/// let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
/// let stats = ClusterSim::new(SimConfig::unified(1 << 20, 512 << 10))
///     .run(traces.trace(0).ops());
/// assert!(stats.app_write_bytes > 0);
/// assert!(stats.net_write_traffic_pct() <= 100.0 + 1e-9 || stats.server_read_bytes > 0);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterSim {
    config: SimConfig,
}

/// Results of a fault-injected run ([`ClusterSim::run_with_faults`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRunReport {
    /// Ordinary traffic counters; recovery drains appear under
    /// [`TrafficStats::recovery_bytes`].
    pub stats: TrafficStats,
    /// Crash/recovery accounting, per fault kind.
    pub reliability: ReliabilityStats,
    /// Time-ordered server-write log including recovery drains.
    pub writes: Vec<ServerWrite>,
}

impl ClusterSim {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        ClusterSim { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Replays `ops` and returns the aggregated traffic statistics.
    ///
    /// The omniscient policy builds its schedule from this same stream (the
    /// paper's third pass).
    pub fn run(&self, ops: &OpStream) -> TrafficStats {
        self.run_detailed(ops).0
    }

    /// Runs with a warm-up prefix: the first `warmup` fraction of the
    /// stream populates the caches, then every counter is reset, so the
    /// returned statistics describe steady state only.
    ///
    /// The paper notes its own simulations "started with empty caches,
    /// thereby misclassifying some writes as new data rather than
    /// overwrites" — this quantifies that cold-start bias.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= warmup < 1.0`.
    pub fn run_with_warmup(&self, ops: &OpStream, warmup: f64) -> TrafficStats {
        assert!((0.0..1.0).contains(&warmup), "warmup must be in [0, 1)");
        let cut = (ops.len() as f64 * warmup) as usize;
        self.run_detailed_until(ops, usize::MAX, Some(cut)).0
    }

    /// Like [`ClusterSim::run`], but also returns the time-ordered log of
    /// every write the clients sent to the server — the input for a
    /// server-side (LFS) simulation downstream.
    pub fn run_detailed(&self, ops: &OpStream) -> (TrafficStats, Vec<ServerWrite>) {
        self.run_detailed_until(ops, usize::MAX, None)
    }

    /// Replays `ops` under an injected [`FaultSchedule`]: each scheduled
    /// client crash cuts that client's trace at the fault time, snapshots
    /// its NVRAM contents onto a removable board, and — after the board's
    /// relocation delay, with its batteries aged on the schedule's failure
    /// clock — drains the board through the §4 recovery flow. Losses
    /// (volatile window, dead batteries, torn drains) are reported in the
    /// returned [`ReliabilityStats`] rather than panicking.
    ///
    /// Deterministic: the same `(schedule, ops, config)` triple produces
    /// byte-identical results at any worker-thread count.
    pub fn run_with_faults(&self, ops: &OpStream, schedule: &FaultSchedule) -> FaultRunReport {
        let (stats, writes, reliability) =
            self.run_core(ops, usize::MAX, None, Some(schedule), None);
        FaultRunReport {
            stats,
            reliability,
            writes,
        }
    }

    /// Like [`ClusterSim::run_with_faults`], but every crash + recovery is
    /// judged by the durability [`Oracle`]: at each crash instant the cache
    /// model's durable promise is captured *before* any recovery code runs,
    /// and after the board drain the recovered ranges are diffed against
    /// the shadow model's independent prediction. The returned oracle holds
    /// one [`CrashReport`](nvfs_oracle::CrashReport) per recovered crash.
    pub fn run_with_faults_verified(
        &self,
        ops: &OpStream,
        schedule: &FaultSchedule,
    ) -> (FaultRunReport, Oracle) {
        let mut oracle = Oracle::new();
        let (stats, writes, reliability) =
            self.run_core(ops, usize::MAX, None, Some(schedule), Some(&mut oracle));
        (
            FaultRunReport {
                stats,
                reliability,
                writes,
            },
            oracle,
        )
    }

    /// Fault-free driver (the historical entry point).
    fn run_detailed_until(
        &self,
        ops: &OpStream,
        stop: usize,
        reset_at: Option<usize>,
    ) -> (TrafficStats, Vec<ServerWrite>) {
        let (stats, writes, _) = self.run_core(ops, stop, reset_at, None, None);
        (stats, writes)
    }

    /// Core driver: replays ops up to index `stop` (exclusive); if
    /// `reset_at` is given, every counter is zeroed after that op index so
    /// the result reflects only the steady-state suffix; if `faults` is
    /// given, its client crashes and board recoveries are interleaved with
    /// the op stream.
    fn run_core(
        &self,
        ops: &OpStream,
        stop: usize,
        reset_at: Option<usize>,
        faults: Option<&FaultSchedule>,
        mut oracle: Option<&mut Oracle>,
    ) -> (TrafficStats, Vec<ServerWrite>, ReliabilityStats) {
        let schedule = match self.config.policy {
            PolicyKind::Omniscient => Some(Arc::new(OmniscientSchedule::build(ops))),
            _ => None,
        };
        let mut clients: BTreeMap<ClientId, ClientCache> = BTreeMap::new();
        let mut server = ConsistencyServer::with_mode(self.config.consistency);
        let mut stats = TrafficStats::default();
        let mut next_tick = SimTime::ZERO + self.config.cleaner_period;
        let run_cleaner = matches!(
            self.config.model,
            CacheModelKind::Volatile | CacheModelKind::Hybrid
        );

        // Fault-injection state: the crash feed (sorted by time), clients
        // whose traces have been cut, and boards in transit to a healthy
        // host awaiting their recovery drain.
        let mut reliability = ReliabilityStats::default();
        let crash_feed: &[ClientCrashFault] = faults.map_or(&[], |s| &s.client_crashes);
        let board_batteries = faults.map_or(3, |s| s.plan.board_batteries);
        let mut next_crash = 0usize;
        let mut crashed: BTreeSet<ClientId> = BTreeSet::new();
        let mut in_transit: Vec<(NvramBoard, &ClientCrashFault, Option<DurablePromise>)> =
            Vec::new();
        let mut recovery_writes: Vec<ServerWrite> = Vec::new();

        macro_rules! client {
            ($id:expr) => {
                clients.entry($id).or_insert_with(|| {
                    ClientCache::new(
                        &self.config,
                        Policy::from_kind(self.config.policy, schedule.clone()),
                        $id,
                    )
                })
            };
        }

        // Cuts `fault.client`'s trace: everything still dirty is at risk,
        // whatever the model kept in NVRAM is snapshotted onto a board,
        // and the board goes into transit towards a healthy host. The
        // client's pre-crash server writes and device counters are folded
        // in here since its cache is dropped.
        macro_rules! crash_client {
            ($fault:expr) => {{
                let fault: &ClientCrashFault = $fault;
                crashed.insert(fault.client);
                reliability.client_crashes += 1;
                nvfs_obs::event("fault_fired", fault.time.as_micros())
                    .str("fault", "client-crash")
                    .u64("client", fault.client.0 as u64)
                    .emit();
                if let Some(mut cache) = clients.remove(&fault.client) {
                    let at_risk = cache.remaining_dirty_bytes();
                    // The durable promise is captured straight from the
                    // cache, *before* the snapshot path runs — a broken
                    // snapshot must show up as LostDurable, not be trusted.
                    let promise = oracle.as_ref().map(|_| {
                        DurablePromise::capture(
                            fault.client,
                            fault.time,
                            cache.nvram_dirty_contents(),
                        )
                    });
                    let board = snapshot_nvram(&cache, fault.client, self.config.nvram_bytes)
                        .with_batteries(board_batteries);
                    reliability.bytes_at_risk += at_risk;
                    reliability.bytes_in_nvram += board.dirty_bytes();
                    reliability.bytes_lost_window += at_risk - board.dirty_bytes();
                    let d = cache.device();
                    stats.nvram_reads += d.reads();
                    stats.nvram_writes += d.writes();
                    stats.nvram_bytes += d.bytes_transferred();
                    recovery_writes.append(&mut cache.take_server_writes());
                    in_transit.push((board, fault, promise));
                }
            }};
        }

        // Drains every board whose relocation completed by `$now`, in
        // (recovery time, client) order so the result is deterministic.
        // Batteries age on the schedule's failure clock while the board is
        // without bus power; dead boards and torn drains become reported
        // losses, never panics.
        macro_rules! recover_due {
            ($now:expr) => {
                loop {
                    let due = in_transit
                        .iter()
                        .enumerate()
                        .filter(|(_, (_, f, _))| f.recovery_time() <= $now)
                        .min_by_key(|(_, (_, f, _))| (f.recovery_time(), f.client.0))
                        .map(|(i, _)| i);
                    let Some(idx) = due else { break };
                    let (mut board, fault, promise) = in_transit.remove(idx);
                    let at = fault.recovery_time();
                    board
                        .batteries_mut()
                        .age_to(at, fault.battery_clock(board_batteries));
                    let cap = match (fault.torn_drain_blocks, fault.torn_drain) {
                        (Some(blocks), _) => blocks * BLOCK_SIZE,
                        (None, Some(fraction)) => (board.dirty_bytes() as f64 * fraction) as u64,
                        (None, None) => u64::MAX,
                    };
                    match recover_up_to(&mut board, at, cap) {
                        Ok(outcome) => {
                            reliability.boards_recovered += 1;
                            reliability.bytes_recovered += outcome.bytes;
                            reliability.bytes_lost_torn += outcome.bytes_lost;
                            nvfs_obs::event("recovery_drain", at.as_micros())
                                .u64("client", fault.client.0 as u64)
                                .u64("bytes", outcome.bytes)
                                .u64("lost_bytes", outcome.bytes_lost)
                                .emit();
                            stats.server_write_bytes += outcome.bytes;
                            stats.recovery_bytes += outcome.bytes;
                            for w in &outcome.writes {
                                server.note_flush(w.file, w.client);
                            }
                            if let (Some(o), Some(p)) = (oracle.as_deref_mut(), &promise) {
                                let expect = DrainExpectation {
                                    board_dead: false,
                                    max_bytes: cap,
                                };
                                o.judge(p, expect, &outcome.recovered);
                            }
                            recovery_writes.extend(outcome.writes);
                        }
                        Err(RecoveryError::DeadBoard { bytes_lost, .. }) => {
                            reliability.boards_dead += 1;
                            reliability.bytes_lost_battery += bytes_lost;
                            nvfs_obs::event("recovery_drain", at.as_micros())
                                .u64("client", fault.client.0 as u64)
                                .u64("bytes", 0)
                                .u64("lost_bytes", bytes_lost)
                                .emit();
                            if let (Some(o), Some(p)) = (oracle.as_deref_mut(), &promise) {
                                o.judge(p, DrainExpectation::dead(), &DurableMap::new());
                            }
                        }
                    }
                }
            };
        }

        let mut ops_replayed: u64 = 0;
        let mut sim_end = SimTime::ZERO;
        for (op_index, op) in ops.iter().enumerate() {
            if op_index >= stop {
                break;
            }
            ops_replayed += 1;
            sim_end = op.time;
            if reset_at == Some(op_index) {
                stats = TrafficStats::default();
                for cache in clients.values_mut() {
                    cache.reset_counters();
                }
            }
            // Fault hooks: fire crashes and recovery drains due by now.
            if faults.is_some() {
                while next_crash < crash_feed.len() && crash_feed[next_crash].time <= op.time {
                    crash_client!(&crash_feed[next_crash]);
                    next_crash += 1;
                }
                recover_due!(op.time);
            }
            // Advance the 5-second block cleaner up to this op's time.
            if run_cleaner {
                while next_tick <= op.time {
                    if next_tick >= SimTime::ZERO + self.config.write_back_delay {
                        let cutoff = next_tick - self.config.write_back_delay;
                        for (&cid, cache) in clients.iter_mut() {
                            for file in cache.writeback_older_than(cutoff, next_tick, &mut stats) {
                                server.note_flush(file, cid);
                            }
                        }
                    }
                    next_tick += self.config.cleaner_period;
                }
            }
            // A crashed workstation issues no further ops: its trace is
            // cut at the fault time.
            if crashed.contains(&op.client) {
                continue;
            }

            match &op.kind {
                OpKind::Open { file, mode } => {
                    let outcome = server.on_open(*file, op.client, *mode);
                    if let Some(w) = outcome.recall_from {
                        if let Some(cache) = clients.get_mut(&w) {
                            cache.flush_file(*file, FlushCause::Callback, op.time, &mut stats);
                        }
                        // After the recall the writer holds nothing dirty,
                        // whether or not any bytes moved.
                        server.note_flush(*file, w);
                    }
                    if outcome.invalidate_opener {
                        // Stale copies from a previous open are discarded.
                        client!(op.client).invalidate_file(
                            *file,
                            FlushCause::Callback,
                            op.time,
                            &mut stats,
                        );
                    }
                    if outcome.disable_caching {
                        for cache in clients.values_mut() {
                            cache.invalidate_file(*file, FlushCause::Callback, op.time, &mut stats);
                        }
                    }
                }
                OpKind::Close { file } => {
                    server.on_close(*file, op.client);
                }
                OpKind::Read { file, range } => {
                    stats.app_read_bytes += range.len();
                    if server.is_disabled(*file) {
                        stats.concurrent_read_bytes += range.len();
                    } else {
                        // Block-on-demand consistency: recall only the dirty
                        // blocks this read actually touches (§2.3, [21]).
                        if self.config.consistency == ConsistencyMode::BlockOnDemand {
                            if let Some(w) = server.last_writer(*file) {
                                if w != op.client {
                                    let mut recalled = 0;
                                    if let Some(writer) = clients.get_mut(&w) {
                                        recalled = writer.flush_range(
                                            *file,
                                            *range,
                                            FlushCause::Callback,
                                            op.time,
                                            &mut stats,
                                        );
                                    }
                                    if recalled > 0 {
                                        // The reader's copies of those
                                        // blocks are stale.
                                        client!(op.client).invalidate_range(
                                            *file,
                                            *range,
                                            FlushCause::Callback,
                                            op.time,
                                            &mut stats,
                                        );
                                    }
                                }
                            }
                        }
                        client!(op.client).read(*file, *range, op.time, &mut stats);
                    }
                }
                OpKind::Write { file, range } => {
                    stats.app_write_bytes += range.len();
                    if server.is_disabled(*file) {
                        stats.concurrent_write_bytes += range.len();
                    } else {
                        client!(op.client).write(*file, *range, op.time, &mut stats);
                        server.note_write(*file, op.client);
                    }
                }
                OpKind::Truncate { file, new_len } => {
                    for cache in clients.values_mut() {
                        cache.truncate_file(*file, *new_len, &mut stats);
                    }
                }
                OpKind::Delete { file } => {
                    for cache in clients.values_mut() {
                        cache.delete_file(*file, &mut stats);
                    }
                    server.on_delete(*file);
                }
                OpKind::Fsync { file } => {
                    if let Some(cache) = clients.get_mut(&op.client) {
                        // Only the volatile model actually sends the data
                        // to the server; the NVRAM models keep it dirty
                        // locally, so the last-writer record must survive.
                        if cache.fsync(*file, op.time, &mut stats) {
                            server.note_flush(*file, op.client);
                        }
                    }
                }
                OpKind::Migrate { files, .. } => {
                    if let Some(cache) = clients.get_mut(&op.client) {
                        for file in files {
                            cache.flush_file(*file, FlushCause::Migration, op.time, &mut stats);
                            server.note_flush(*file, op.client);
                        }
                    }
                }
            }
        }

        // Faults scheduled past the end of the recorded trace still fire:
        // the plan's duration may exceed the op stream's.
        if faults.is_some() {
            while next_crash < crash_feed.len() {
                crash_client!(&crash_feed[next_crash]);
                next_crash += 1;
            }
            recover_due!(SimTime::MAX);
        }

        // End of trace: dirty bytes still cached count as eventual traffic.
        for cache in clients.values() {
            stats.remaining_dirty_bytes += cache.remaining_dirty_bytes();
            debug_assert!(cache.check_invariants());
        }
        // Fold NVRAM device counters into the stats and merge the logs.
        let mut writes: Vec<ServerWrite> = Vec::new();
        for cache in clients.values_mut() {
            let d = cache.device();
            stats.nvram_reads += d.reads();
            stats.nvram_writes += d.writes();
            stats.nvram_bytes += d.bytes_transferred();
            writes.append(&mut cache.take_server_writes());
        }
        writes.append(&mut recovery_writes);
        writes.sort_by_key(|w| w.time);
        // Fold this run's totals into the observability registry in one
        // pass (never per op) and note the simulated span covered.
        nvfs_obs::counter_add("core.runs", 1);
        nvfs_obs::counter_add("core.ops_replayed", ops_replayed);
        nvfs_obs::gauge_set("core.sim_end_us", sim_end.as_micros());
        nvfs_obs::timing::set_span_sim_us(sim_end.as_micros());
        stats.fold_into_obs();
        reliability.fold_into_obs();
        (stats, writes, reliability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfs_trace::event::OpenMode;
    use nvfs_trace::op::Op;
    use nvfs_types::{ByteRange, FileId, BLOCK_SIZE};

    fn op(t: u64, client: u32, kind: OpKind) -> Op {
        Op {
            time: SimTime::from_secs(t),
            client: ClientId(client),
            kind,
        }
    }

    fn wr(t: u64, client: u32, file: u32, block: u64) -> Op {
        op(
            t,
            client,
            OpKind::Write {
                file: FileId(file),
                range: ByteRange::at(block * BLOCK_SIZE, BLOCK_SIZE),
            },
        )
    }

    #[test]
    fn delayed_writeback_fires_after_30s() {
        let ops: OpStream = vec![
            op(
                1,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            wr(2, 0, 0, 0),
            op(3, 0, OpKind::Close { file: FileId(0) }),
            // A much later op lets the cleaner run.
            op(
                100,
                0,
                OpKind::Open {
                    file: FileId(1),
                    mode: OpenMode::Read,
                },
            ),
        ]
        .into_iter()
        .collect();
        let stats = ClusterSim::new(SimConfig::volatile(1 << 20)).run(&ops);
        assert_eq!(stats.writeback_bytes, BLOCK_SIZE);
        assert_eq!(stats.remaining_dirty_bytes, 0);
    }

    #[test]
    fn nvram_models_hold_dirty_data_to_the_end() {
        let ops: OpStream = vec![
            op(
                1,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            wr(2, 0, 0, 0),
            op(3, 0, OpKind::Close { file: FileId(0) }),
            op(
                100,
                0,
                OpKind::Open {
                    file: FileId(1),
                    mode: OpenMode::Read,
                },
            ),
        ]
        .into_iter()
        .collect();
        for cfg in [
            SimConfig::write_aside(1 << 20, 512 << 10),
            SimConfig::unified(1 << 20, 512 << 10),
        ] {
            let stats = ClusterSim::new(cfg).run(&ops);
            assert_eq!(stats.writeback_bytes, 0);
            assert_eq!(stats.remaining_dirty_bytes, BLOCK_SIZE);
            assert_eq!(stats.server_write_bytes, 0);
        }
    }

    #[test]
    fn absorbed_write_never_reaches_server_in_nvram_model() {
        let ops: OpStream = vec![
            op(
                1,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            wr(2, 0, 0, 0),
            op(50, 0, OpKind::Delete { file: FileId(0) }),
            op(
                100,
                0,
                OpKind::Open {
                    file: FileId(1),
                    mode: OpenMode::Read,
                },
            ),
        ]
        .into_iter()
        .collect();
        let stats = ClusterSim::new(SimConfig::unified(1 << 20, 512 << 10)).run(&ops);
        assert_eq!(stats.deleted_dead_bytes, BLOCK_SIZE);
        assert_eq!(stats.server_write_bytes, 0);
        assert_eq!(stats.net_write_traffic_pct(), 0.0);
        // The volatile model, by contrast, wrote it back at ~32s.
        let v = ClusterSim::new(SimConfig::volatile(1 << 20)).run(&ops);
        assert_eq!(v.writeback_bytes, BLOCK_SIZE);
    }

    #[test]
    fn foreign_open_recalls_dirty_data() {
        let ops: OpStream = vec![
            op(
                1,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            wr(2, 0, 0, 0),
            op(3, 0, OpKind::Close { file: FileId(0) }),
            op(
                10,
                1,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Read,
                },
            ),
            op(
                11,
                1,
                OpKind::Read {
                    file: FileId(0),
                    range: ByteRange::at(0, BLOCK_SIZE),
                },
            ),
            op(12, 1, OpKind::Close { file: FileId(0) }),
        ]
        .into_iter()
        .collect();
        let stats = ClusterSim::new(SimConfig::unified(1 << 20, 512 << 10)).run(&ops);
        assert_eq!(stats.callback_bytes, BLOCK_SIZE);
        assert_eq!(stats.remaining_dirty_bytes, 0);
    }

    #[test]
    fn concurrent_write_sharing_bypasses_caches() {
        let ops: OpStream = vec![
            op(
                1,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            op(
                2,
                1,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::ReadWrite,
                },
            ),
            wr(3, 0, 0, 0),
            wr(4, 1, 0, 0),
            op(
                5,
                1,
                OpKind::Read {
                    file: FileId(0),
                    range: ByteRange::at(0, 100),
                },
            ),
            op(6, 0, OpKind::Close { file: FileId(0) }),
            op(7, 1, OpKind::Close { file: FileId(0) }),
            // After everyone closes, caching works again.
            op(
                8,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            wr(9, 0, 0, 1),
            op(10, 0, OpKind::Close { file: FileId(0) }),
        ]
        .into_iter()
        .collect();
        let stats = ClusterSim::new(SimConfig::unified(1 << 20, 512 << 10)).run(&ops);
        assert_eq!(stats.concurrent_write_bytes, 2 * BLOCK_SIZE);
        assert_eq!(stats.concurrent_read_bytes, 100);
        // The post-sharing write is cached normally.
        assert_eq!(stats.remaining_dirty_bytes, BLOCK_SIZE);
    }

    #[test]
    fn migration_flushes_dirty_files() {
        use nvfs_types::ProcessId;
        let ops: OpStream = vec![
            op(
                1,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            wr(2, 0, 0, 0),
            op(
                3,
                0,
                OpKind::Migrate {
                    pid: ProcessId(0),
                    to: ClientId(1),
                    files: vec![FileId(0)],
                },
            ),
        ]
        .into_iter()
        .collect();
        let stats = ClusterSim::new(SimConfig::unified(1 << 20, 512 << 10)).run(&ops);
        assert_eq!(stats.migration_bytes, BLOCK_SIZE);
        assert_eq!(stats.remaining_dirty_bytes, 0);
    }

    #[test]
    fn block_consistency_recalls_only_read_blocks() {
        use crate::config::ConsistencyMode;
        // Client 0 dirties two blocks; client 1 reads only the first.
        let ops: OpStream = vec![
            op(
                1,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            wr(2, 0, 0, 0),
            wr(3, 0, 0, 1),
            op(4, 0, OpKind::Close { file: FileId(0) }),
            op(
                5,
                1,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Read,
                },
            ),
            op(
                6,
                1,
                OpKind::Read {
                    file: FileId(0),
                    range: ByteRange::at(0, BLOCK_SIZE),
                },
            ),
            op(7, 1, OpKind::Close { file: FileId(0) }),
        ]
        .into_iter()
        .collect();
        let whole = ClusterSim::new(SimConfig::unified(1 << 20, 512 << 10)).run(&ops);
        assert_eq!(
            whole.callback_bytes,
            2 * BLOCK_SIZE,
            "whole-file recall takes both blocks"
        );
        let block = ClusterSim::new(
            SimConfig::unified(1 << 20, 512 << 10).with_consistency(ConsistencyMode::BlockOnDemand),
        )
        .run(&ops);
        assert_eq!(
            block.callback_bytes, BLOCK_SIZE,
            "lazy recall takes only the read block"
        );
        // The unread block stays dirty in client 0's NVRAM.
        assert_eq!(block.remaining_dirty_bytes, BLOCK_SIZE);
    }

    #[test]
    fn warmup_reduces_cold_start_misses() {
        use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
        let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        let ops = traces.trace(6).ops();
        let sim = ClusterSim::new(SimConfig::unified(2 << 20, 512 << 10));
        let warm = sim.run_with_warmup(ops, 0.3);
        // The clean comparison: the same steady-state suffix replayed from
        // empty caches.
        let cut = (ops.len() as f64 * 0.3) as usize;
        let suffix: OpStream = ops.as_slice()[cut..].iter().cloned().collect();
        let cold_suffix = sim.run(&suffix);
        assert_eq!(warm.app_write_bytes, cold_suffix.app_write_bytes);
        // Warmed caches can only hit more often on identical requests.
        assert!(
            warm.read_hit_ratio() >= cold_suffix.read_hit_ratio(),
            "warm {:.3} vs cold {:.3}",
            warm.read_hit_ratio(),
            cold_suffix.read_hit_ratio()
        );
        // And the paper's noted bias: cold caches misclassify overwrites of
        // earlier data as new writes, so warm runs absorb at least as much.
        assert!(warm.absorbed_bytes() >= cold_suffix.absorbed_bytes());
    }

    #[test]
    #[should_panic(expected = "warmup must be in")]
    fn warmup_rejects_full_fraction() {
        let sim = ClusterSim::new(SimConfig::volatile(1 << 20));
        let _ = sim.run_with_warmup(&OpStream::new(), 1.0);
    }

    #[test]
    fn runs_are_deterministic() {
        use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
        let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        let cfg =
            SimConfig::unified(1 << 20, 256 << 10).with_policy(PolicyKind::Random { seed: 5 });
        let a = ClusterSim::new(cfg.clone()).run(traces.trace(4).ops());
        let b = ClusterSim::new(cfg).run(traces.trace(4).ops());
        assert_eq!(a, b);
    }

    #[test]
    fn injected_crash_cuts_the_trace_and_recovers_nvram_contents() {
        use nvfs_faults::{FaultPlanConfig, FaultSchedule};
        use nvfs_types::SimDuration;
        // Client 0 writes one block, then (post-crash) would write another;
        // client 1 writes one block and survives.
        let ops: OpStream = vec![
            wr(2, 0, 0, 0),
            wr(2, 1, 1, 0),
            wr(40, 0, 2, 0),
            op(
                100,
                1,
                OpKind::Open {
                    file: FileId(3),
                    mode: OpenMode::Read,
                },
            ),
        ]
        .into_iter()
        .collect();
        // One crash in a 1-client plan always hits ClientId(0).
        let plan = FaultPlanConfig::new(1, SimDuration::from_secs(20))
            .with_client_crashes(1)
            .with_relocation_delay(SimDuration::from_secs(10));
        let schedule = FaultSchedule::compile(9, &plan).unwrap();
        assert_eq!(schedule.client_crashes[0].client, ClientId(0));

        let unified = ClusterSim::new(SimConfig::unified(1 << 20, 512 << 10))
            .run_with_faults(&ops, &schedule);
        let r = &unified.reliability;
        assert_eq!(r.client_crashes, 1);
        assert_eq!(r.bytes_at_risk, BLOCK_SIZE, "only the pre-crash write");
        assert_eq!(r.bytes_recovered, BLOCK_SIZE);
        assert_eq!(
            r.bytes_lost_window + r.bytes_lost_battery + r.bytes_lost_torn,
            0
        );
        assert_eq!(r.boards_recovered, 1);
        assert_eq!(unified.stats.recovery_bytes, BLOCK_SIZE);
        // The post-crash write never happened; the survivor's write did.
        assert_eq!(unified.stats.app_write_bytes, 2 * BLOCK_SIZE);
        assert!(unified
            .writes
            .iter()
            .any(|w| w.cause == FlushCause::Recovery));

        // The volatile model has nothing in NVRAM: the window is lost.
        let volatile =
            ClusterSim::new(SimConfig::volatile(1 << 20)).run_with_faults(&ops, &schedule);
        let r = &volatile.reliability;
        assert_eq!(r.bytes_at_risk, BLOCK_SIZE);
        assert_eq!(r.bytes_in_nvram, 0);
        assert_eq!(r.bytes_lost_window, BLOCK_SIZE);
        assert_eq!(r.bytes_recovered, 0);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        use nvfs_faults::{FaultPlanConfig, FaultSchedule};
        use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
        use nvfs_types::SimDuration;
        let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        let ops = traces.trace(6).ops();
        let plan = FaultPlanConfig::new(8, SimDuration::from_hours(24))
            .with_client_crashes(3)
            .with_batteries(1)
            .with_battery_mtbf(SimDuration::from_hours(6))
            .with_torn_probability(0.3);
        let schedule = FaultSchedule::compile(42, &plan).unwrap();
        let sim = ClusterSim::new(SimConfig::write_aside(1 << 20, 512 << 10));
        let a = sim.run_with_faults(ops, &schedule);
        let b = sim.run_with_faults(ops, &schedule);
        assert_eq!(a, b);
        assert_eq!(a.reliability.client_crashes, 3);
    }

    #[test]
    fn verified_run_judges_every_recovery_clean() {
        use nvfs_faults::{CrashPointKind, FaultPlanConfig, FaultSchedule};
        use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
        use nvfs_types::SimDuration;
        let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        let ops = traces.trace(6).ops();
        let plan = FaultPlanConfig::new(8, SimDuration::from_hours(24))
            .with_client_crashes(4)
            .with_torn_probability(0.5);
        let schedule = FaultSchedule::compile(42, &plan).unwrap();
        let sim = ClusterSim::new(SimConfig::unified(1 << 20, 512 << 10));
        // Every crash-point variant of the schedule must be judged Clean:
        // the recovery path honours the durability contract at full drains,
        // per-block mid-drain cuts, battery-death edges, and flush edges.
        for kind in [
            CrashPointKind::FullDrain,
            CrashPointKind::TornDrainBlocks(1),
            CrashPointKind::DeadBoard,
            CrashPointKind::BatteryEdgeAlive,
            CrashPointKind::PreFlush,
            CrashPointKind::PostFlush,
        ] {
            let variant = schedule.apply_crash_point(kind, SimDuration::from_secs(5));
            let (report, oracle) = sim.run_with_faults_verified(ops, &variant);
            assert_eq!(report.reliability.client_crashes, 4, "{kind}");
            let s = oracle.summary();
            assert_eq!(
                s.crash_points,
                report.reliability.boards_recovered + report.reliability.boards_dead,
                "{kind}"
            );
            assert_eq!(s.violations(), 0, "{kind}: {:?}", oracle.reports());
            // The oracle's byte totals agree with the reliability ledger.
            assert_eq!(
                s.bytes_observed, report.reliability.bytes_recovered,
                "{kind}"
            );
        }
        // And the unverified path is byte-identical to the verified one.
        let (verified, _) = sim.run_with_faults_verified(ops, &schedule);
        let plain = sim.run_with_faults(ops, &schedule);
        assert_eq!(verified, plain);
    }

    #[test]
    fn omniscient_policy_runs_end_to_end() {
        use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
        let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        let cfg = SimConfig::unified(1 << 20, 128 << 10).with_policy(PolicyKind::Omniscient);
        let omni = ClusterSim::new(cfg).run(traces.trace(6).ops());
        let lru =
            ClusterSim::new(SimConfig::unified(1 << 20, 128 << 10)).run(traces.trace(6).ops());
        // Omniscient replacement can only help (small tolerance for the
        // block-vs-byte optimality caveat the paper itself notes).
        assert!(
            omni.net_write_traffic_pct() <= lru.net_write_traffic_pct() * 1.05,
            "omniscient {:.2}% vs LRU {:.2}%",
            omni.net_write_traffic_pct(),
            lru.net_write_traffic_pct()
        );
    }
}
