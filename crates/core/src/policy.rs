//! NVRAM block replacement policies (§2.5).
//!
//! The paper compares three policies for choosing which NVRAM block to
//! flush when an incoming write needs space: LRU, uniformly random (a
//! sensitivity check — it turns out to work almost as well), and the
//! unrealizable omniscient policy that evicts the block whose next
//! modification is furthest in the future.

use std::sync::Arc;

use nvfs_rng::{Rng, SeedableRng, StdRng};

use nvfs_types::{BlockId, SimTime};

use crate::block_store::BlockStore;
use crate::config::PolicyKind;
use crate::omniscient::OmniscientSchedule;

/// A stateful replacement policy instance.
#[derive(Debug, Clone)]
pub enum Policy {
    /// Least-recently used.
    Lru,
    /// Uniformly random, with deterministic seeded state (boxed: the
    /// generator state dwarfs the other variants).
    Random(Box<StdRng>),
    /// Next-modify-furthest-in-future, backed by a prebuilt schedule.
    Omniscient(Arc<OmniscientSchedule>),
}

impl Policy {
    /// Instantiates the policy described by `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`PolicyKind::Omniscient`] but `schedule` is
    /// `None` — the omniscient policy cannot run without its pre-pass.
    pub fn from_kind(kind: PolicyKind, schedule: Option<Arc<OmniscientSchedule>>) -> Self {
        match kind {
            PolicyKind::Lru => Policy::Lru,
            PolicyKind::Random { seed } => Policy::Random(Box::new(StdRng::seed_from_u64(seed))),
            PolicyKind::Omniscient => Policy::Omniscient(
                schedule.expect("omniscient policy requires a prebuilt schedule"),
            ),
        }
    }

    /// Chooses a victim block in `store`, or `None` if the store is empty.
    pub fn pick_victim(&mut self, store: &BlockStore, now: SimTime) -> Option<BlockId> {
        if store.is_empty() {
            return None;
        }
        match self {
            Policy::Lru => store.lru_block().map(|(id, _)| id),
            Policy::Random(rng) => store.nth_block(rng.gen_range(0..store.len())),
            Policy::Omniscient(schedule) => store
                .iter()
                .map(|(id, _)| (id, schedule.next_modify(id, now)))
                .max_by_key(|&(id, t)| (t, id))
                .map(|(id, _)| id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfs_trace::op::{Op, OpKind, OpStream};
    use nvfs_types::{ByteRange, ClientId, FileId};

    fn store_with(n: u64) -> BlockStore {
        let mut s = BlockStore::new(n as usize);
        for i in 0..n {
            s.insert(BlockId::new(FileId(0), i), SimTime::from_secs(i + 1));
        }
        s
    }

    #[test]
    fn lru_picks_oldest_access() {
        let mut p = Policy::from_kind(PolicyKind::Lru, None);
        let s = store_with(3);
        assert_eq!(
            p.pick_victim(&s, SimTime::ZERO),
            Some(BlockId::new(FileId(0), 0))
        );
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let s = store_with(8);
        let picks_a: Vec<_> = {
            let mut p = Policy::from_kind(PolicyKind::Random { seed: 9 }, None);
            (0..10)
                .map(|_| p.pick_victim(&s, SimTime::ZERO).unwrap())
                .collect()
        };
        let picks_b: Vec<_> = {
            let mut p = Policy::from_kind(PolicyKind::Random { seed: 9 }, None);
            (0..10)
                .map(|_| p.pick_victim(&s, SimTime::ZERO).unwrap())
                .collect()
        };
        assert_eq!(picks_a, picks_b);
        assert!(picks_a.iter().all(|b| b.index < 8));
        // Not all identical (it really is random).
        assert!(picks_a.iter().any(|b| b != &picks_a[0]));
    }

    #[test]
    fn omniscient_picks_furthest_next_modify() {
        // Block 0 is rewritten soon, block 1 never again, block 2 later.
        let ops: OpStream = vec![
            Op {
                time: SimTime::from_secs(10),
                client: ClientId(0),
                kind: OpKind::Write {
                    file: FileId(0),
                    range: ByteRange::new(0, 100),
                },
            },
            Op {
                time: SimTime::from_secs(50),
                client: ClientId(0),
                kind: OpKind::Write {
                    file: FileId(0),
                    range: ByteRange::at(8192, 100),
                },
            },
        ]
        .into_iter()
        .collect();
        let schedule = Arc::new(OmniscientSchedule::build(&ops));
        let mut p = Policy::from_kind(PolicyKind::Omniscient, Some(schedule));
        let s = store_with(3);
        // Block 1 (never modified) is the ideal victim.
        assert_eq!(
            p.pick_victim(&s, SimTime::ZERO),
            Some(BlockId::new(FileId(0), 1))
        );
    }

    #[test]
    fn empty_store_yields_none() {
        let mut p = Policy::from_kind(PolicyKind::Lru, None);
        assert_eq!(p.pick_victim(&BlockStore::new(4), SimTime::ZERO), None);
    }

    #[test]
    #[should_panic(expected = "prebuilt schedule")]
    fn omniscient_without_schedule_panics() {
        let _ = Policy::from_kind(PolicyKind::Omniscient, None);
    }
}
