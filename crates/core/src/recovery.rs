//! §4 crash recovery, integrated with the cache simulator.
//!
//! "Modified data may become unavailable if it resides in an NVRAM cache on
//! a crashed client. To avoid this problem for clients that do not recover
//! quickly, it must be possible to move an NVRAM component to another
//! client and retrieve its data from the new location."
//!
//! [`snapshot_nvram`] captures a crashed client's NVRAM contents onto a
//! removable [`NvramBoard`]; [`recover`] drains a (possibly relocated)
//! board into the write stream a recovery agent would send to the file
//! server. Together with [`ClientCache`] this closes the loop: dirty data
//! that was "as permanent as disk" in the simulation really can be turned
//! back into server writes after a crash.

use nvfs_nvram::{NvramBoard, RecoveredData};
use nvfs_types::{ClientId, FileId, RangeSet, SimTime};

use crate::client::{ClientCache, FlushCause, ServerWrite};

/// Captures the dirty contents of a crashed client's NVRAM onto a board
/// installed in that client.
///
/// Only data the model guarantees to be in NVRAM is captured: for the
/// volatile model that is nothing (a crash loses everything not yet
/// written back), which is exactly the paper's motivation.
pub fn snapshot_nvram(cache: &ClientCache, host: ClientId, capacity: u64) -> NvramBoard {
    let mut board = NvramBoard::new(host, capacity);
    for (file, ranges) in cache.nvram_dirty_contents() {
        for r in ranges.iter() {
            board.store(file, r);
        }
    }
    board
}

/// Outcome of recovering a board on a healthy client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// The writes sent to the server to make the data durable on disk.
    pub writes: Vec<ServerWrite>,
    /// Total bytes recovered.
    pub bytes: u64,
    /// Whether the board's batteries had preserved the data at all.
    pub data_survived: bool,
}

/// Drains `board` on the client it has been moved to, producing the write
/// stream the recovery agent sends to the server.
pub fn recover(board: &mut NvramBoard, at: SimTime) -> RecoveryOutcome {
    let survived = board.batteries_mut().preserves_data();
    let contents: RecoveredData = board.drain();
    let host = board.host();
    let mut writes = Vec::new();
    let mut bytes = 0;
    for (file, ranges) in contents {
        let len = ranges.len_bytes();
        bytes += len;
        writes.push(ServerWrite {
            time: at,
            client: host,
            file,
            bytes: len,
            cause: FlushCause::Callback,
        });
    }
    RecoveryOutcome {
        writes,
        bytes,
        data_survived: survived,
    }
}

impl ClientCache {
    /// The dirty byte ranges currently guaranteed to reside in NVRAM —
    /// what a crash preserves. Volatile-model caches yield nothing; the
    /// hybrid model loses data still inside its 30-second volatile window.
    ///
    /// Borrows the cache's own range sets; ranges for the same file may
    /// appear more than once (one entry per cached block).
    pub fn nvram_dirty_contents(&self) -> impl Iterator<Item = (FileId, &RangeSet)> {
        self.nvram_dirty_by_file()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheModelKind, PolicyKind, SimConfig};
    use crate::metrics::TrafficStats;
    use crate::policy::Policy;
    use nvfs_types::{ByteRange, BLOCK_SIZE};

    fn cache(model: CacheModelKind) -> ClientCache {
        let mut cfg = SimConfig::volatile(8 * BLOCK_SIZE);
        cfg.model = model;
        cfg.nvram_bytes = 4 * BLOCK_SIZE;
        ClientCache::new(&cfg, Policy::from_kind(PolicyKind::Lru, None), ClientId(0))
    }

    fn write_block(c: &mut ClientCache, file: u32, block: u64, t: u64) {
        let mut stats = TrafficStats::default();
        c.write(
            FileId(file),
            ByteRange::at(block * BLOCK_SIZE, BLOCK_SIZE),
            SimTime::from_secs(t),
            &mut stats,
        );
    }

    #[test]
    fn nvram_models_survive_crashes() {
        for model in [CacheModelKind::WriteAside, CacheModelKind::Unified] {
            let mut c = cache(model);
            write_block(&mut c, 1, 0, 1);
            write_block(&mut c, 2, 3, 2);
            let mut board = snapshot_nvram(&c, ClientId(0), 1 << 20);
            assert_eq!(board.dirty_bytes(), 2 * BLOCK_SIZE, "{model:?}");
            board.move_to(ClientId(5));
            let outcome = recover(&mut board, SimTime::from_secs(100));
            assert_eq!(outcome.bytes, 2 * BLOCK_SIZE, "{model:?}");
            assert_eq!(outcome.writes.len(), 2);
            assert!(outcome.data_survived);
            assert!(outcome.writes.iter().all(|w| w.client == ClientId(5)));
        }
    }

    #[test]
    fn volatile_model_loses_everything() {
        let mut c = cache(CacheModelKind::Volatile);
        write_block(&mut c, 1, 0, 1);
        let board = snapshot_nvram(&c, ClientId(0), 1 << 20);
        assert_eq!(
            board.dirty_bytes(),
            0,
            "a volatile cache has no NVRAM to save"
        );
    }

    #[test]
    fn hybrid_loses_only_the_unaged_window() {
        let mut c = cache(CacheModelKind::Hybrid);
        let mut stats = TrafficStats::default();
        write_block(&mut c, 1, 0, 1);
        // Age the first block into NVRAM; the second stays volatile.
        c.writeback_older_than(SimTime::from_secs(5), SimTime::from_secs(35), &mut stats);
        write_block(&mut c, 2, 0, 40);
        let board = snapshot_nvram(&c, ClientId(0), 1 << 20);
        assert_eq!(
            board.dirty_bytes(),
            BLOCK_SIZE,
            "only the aged block survives"
        );
        assert_eq!(c.remaining_dirty_bytes(), 2 * BLOCK_SIZE);
    }

    #[test]
    fn dead_batteries_mean_no_recovery() {
        let mut c = cache(CacheModelKind::Unified);
        write_block(&mut c, 1, 0, 1);
        let mut board = snapshot_nvram(&c, ClientId(0), 1 << 20);
        for _ in 0..3 {
            board.batteries_mut().fail_one();
        }
        let outcome = recover(&mut board, SimTime::from_secs(10));
        assert_eq!(outcome.bytes, 0);
        assert!(!outcome.data_survived);
    }

    #[test]
    fn write_aside_snapshot_matches_remaining_dirty() {
        let mut c = cache(CacheModelKind::WriteAside);
        write_block(&mut c, 1, 0, 1);
        write_block(&mut c, 1, 1, 2);
        let board = snapshot_nvram(&c, ClientId(0), 1 << 20);
        assert_eq!(board.dirty_bytes(), c.remaining_dirty_bytes());
    }
}
