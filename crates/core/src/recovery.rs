//! §4 crash recovery, integrated with the cache simulator.
//!
//! "Modified data may become unavailable if it resides in an NVRAM cache on
//! a crashed client. To avoid this problem for clients that do not recover
//! quickly, it must be possible to move an NVRAM component to another
//! client and retrieve its data from the new location."
//!
//! [`snapshot_nvram`] captures a crashed client's NVRAM contents onto a
//! removable [`NvramBoard`]; [`recover`] drains a (possibly relocated)
//! board into the write stream a recovery agent would send to the file
//! server. Together with [`ClientCache`] this closes the loop: dirty data
//! that was "as permanent as disk" in the simulation really can be turned
//! back into server writes after a crash.

use std::error::Error;
use std::fmt;

use nvfs_nvram::{NvramBoard, RecoveredData};
use nvfs_types::{ClientId, FileId, RangeSet, SimTime};

use crate::client::{ClientCache, FlushCause, ServerWrite};

/// Captures the dirty contents of a crashed client's NVRAM onto a board
/// installed in that client.
///
/// Only data the model guarantees to be in NVRAM is captured: for the
/// volatile model that is nothing (a crash loses everything not yet
/// written back), which is exactly the paper's motivation.
pub fn snapshot_nvram(cache: &ClientCache, host: ClientId, capacity: u64) -> NvramBoard {
    let mut board = NvramBoard::new(host, capacity);
    for (file, ranges) in cache.nvram_dirty_contents() {
        for r in ranges.iter() {
            board.store(file, r);
        }
    }
    board
}

/// Recovery of a relocated board failed outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryError {
    /// Every battery on the board had died before it was drained: the
    /// contents are gone and the recovery agent has nothing to send.
    DeadBoard {
        /// The client the board was installed in when it was drained.
        host: ClientId,
        /// Dirty bytes that were on the board and are now lost.
        bytes_lost: u64,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::DeadBoard { host, bytes_lost } => write!(
                f,
                "board on {host} found with all batteries dead; {bytes_lost} dirty bytes lost"
            ),
        }
    }
}

impl Error for RecoveryError {}

/// Outcome of recovering a board on a healthy client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// The writes sent to the server to make the data durable on disk.
    pub writes: Vec<ServerWrite>,
    /// The exact byte ranges, per file, that made it off the board — the
    /// observed durable state the durability oracle diffs against its
    /// shadow model.
    pub recovered: RecoveredData,
    /// Total bytes recovered.
    pub bytes: u64,
    /// Bytes the drain failed to apply (torn drains; zero on full
    /// recovery).
    pub bytes_lost: u64,
    /// Whether the board's batteries had preserved the data at all.
    pub data_survived: bool,
}

/// Drains `board` on the client it has been moved to, producing the write
/// stream the recovery agent sends to the server.
///
/// # Errors
///
/// A board whose batteries all died before the drain returns
/// [`RecoveryError::DeadBoard`] carrying the byte count that was lost —
/// `bytes == 0`, no writes are fabricated, and the caller decides how to
/// report the loss. (An earlier version drained the board regardless and
/// counted the drained bytes as recovered even when `preserves_data()`
/// was false.)
pub fn recover(board: &mut NvramBoard, at: SimTime) -> Result<RecoveryOutcome, RecoveryError> {
    recover_up_to(board, at, u64::MAX)
}

/// Like [`recover`], but the drain is cut short after `max_bytes` — the
/// torn-drain case. The un-applied remainder is reported in
/// [`RecoveryOutcome::bytes_lost`] rather than silently dropped.
///
/// # Errors
///
/// Returns [`RecoveryError::DeadBoard`] exactly as [`recover`] does.
pub fn recover_up_to(
    board: &mut NvramBoard,
    at: SimTime,
    max_bytes: u64,
) -> Result<RecoveryOutcome, RecoveryError> {
    let host = board.host();
    if !board.batteries().preserves_data() {
        let (_, bytes_lost) = board.drain_up_to(0);
        return Err(RecoveryError::DeadBoard { host, bytes_lost });
    }
    let (contents, bytes_lost): (RecoveredData, u64) = board.drain_up_to(max_bytes);
    let mut writes = Vec::new();
    let mut bytes = 0;
    for (file, ranges) in &contents {
        let len = ranges.len_bytes();
        bytes += len;
        writes.push(ServerWrite {
            time: at,
            client: host,
            file: *file,
            bytes: len,
            cause: FlushCause::Recovery,
        });
    }
    Ok(RecoveryOutcome {
        writes,
        recovered: contents,
        bytes,
        bytes_lost,
        data_survived: true,
    })
}

impl ClientCache {
    /// The dirty byte ranges currently guaranteed to reside in NVRAM —
    /// what a crash preserves. Volatile-model caches yield nothing; the
    /// hybrid model loses data still inside its 30-second volatile window.
    ///
    /// Borrows the cache's own range sets; ranges for the same file may
    /// appear more than once (one entry per cached block).
    pub fn nvram_dirty_contents(&self) -> impl Iterator<Item = (FileId, &RangeSet)> {
        self.nvram_dirty_by_file()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheModelKind, PolicyKind, SimConfig};
    use crate::metrics::TrafficStats;
    use crate::policy::Policy;
    use nvfs_types::{ByteRange, BLOCK_SIZE};

    fn cache(model: CacheModelKind) -> ClientCache {
        let mut cfg = SimConfig::volatile(8 * BLOCK_SIZE);
        cfg.model = model;
        cfg.nvram_bytes = 4 * BLOCK_SIZE;
        ClientCache::new(&cfg, Policy::from_kind(PolicyKind::Lru, None), ClientId(0))
    }

    fn write_block(c: &mut ClientCache, file: u32, block: u64, t: u64) {
        let mut stats = TrafficStats::default();
        c.write(
            FileId(file),
            ByteRange::at(block * BLOCK_SIZE, BLOCK_SIZE),
            SimTime::from_secs(t),
            &mut stats,
        );
    }

    #[test]
    fn nvram_models_survive_crashes() {
        for model in [CacheModelKind::WriteAside, CacheModelKind::Unified] {
            let mut c = cache(model);
            write_block(&mut c, 1, 0, 1);
            write_block(&mut c, 2, 3, 2);
            let mut board = snapshot_nvram(&c, ClientId(0), 1 << 20);
            assert_eq!(board.dirty_bytes(), 2 * BLOCK_SIZE, "{model:?}");
            board.move_to(ClientId(5));
            let outcome = recover(&mut board, SimTime::from_secs(100)).expect("batteries held");
            assert_eq!(outcome.bytes, 2 * BLOCK_SIZE, "{model:?}");
            assert_eq!(outcome.writes.len(), 2);
            assert_eq!(outcome.bytes_lost, 0);
            assert!(outcome.data_survived);
            assert!(outcome.writes.iter().all(|w| w.client == ClientId(5)));
            assert!(outcome
                .writes
                .iter()
                .all(|w| w.cause == FlushCause::Recovery));
        }
    }

    #[test]
    fn volatile_model_loses_everything() {
        let mut c = cache(CacheModelKind::Volatile);
        write_block(&mut c, 1, 0, 1);
        let board = snapshot_nvram(&c, ClientId(0), 1 << 20);
        assert_eq!(
            board.dirty_bytes(),
            0,
            "a volatile cache has no NVRAM to save"
        );
    }

    #[test]
    fn hybrid_loses_only_the_unaged_window() {
        let mut c = cache(CacheModelKind::Hybrid);
        let mut stats = TrafficStats::default();
        write_block(&mut c, 1, 0, 1);
        // Age the first block into NVRAM; the second stays volatile.
        c.writeback_older_than(SimTime::from_secs(5), SimTime::from_secs(35), &mut stats);
        write_block(&mut c, 2, 0, 40);
        let board = snapshot_nvram(&c, ClientId(0), 1 << 20);
        assert_eq!(
            board.dirty_bytes(),
            BLOCK_SIZE,
            "only the aged block survives"
        );
        assert_eq!(c.remaining_dirty_bytes(), 2 * BLOCK_SIZE);
    }

    /// Regression test: a dead board must never report its (stale) contents
    /// as recovered — zero bytes, zero writes, data did not survive.
    #[test]
    fn dead_batteries_mean_no_recovery() {
        let mut c = cache(CacheModelKind::Unified);
        write_block(&mut c, 1, 0, 1);
        let mut board = snapshot_nvram(&c, ClientId(0), 1 << 20);
        assert_eq!(board.dirty_bytes(), BLOCK_SIZE);
        for _ in 0..3 {
            board.batteries_mut().fail_one();
        }
        let err = recover(&mut board, SimTime::from_secs(10))
            .expect_err("a dead board must not pretend to recover");
        assert_eq!(
            err,
            RecoveryError::DeadBoard {
                host: ClientId(0),
                bytes_lost: BLOCK_SIZE,
            }
        );
        assert!(err.to_string().contains("batteries dead"));
        // The board really is empty afterwards: a retry finds nothing more
        // to lose and nothing to fabricate.
        let err = recover(&mut board, SimTime::from_secs(11)).expect_err("still dead");
        assert_eq!(
            err,
            RecoveryError::DeadBoard {
                host: ClientId(0),
                bytes_lost: 0,
            }
        );
    }

    #[test]
    fn torn_drain_reports_partial_recovery() {
        let mut c = cache(CacheModelKind::Unified);
        write_block(&mut c, 1, 0, 1);
        write_block(&mut c, 2, 1, 2);
        let mut board = snapshot_nvram(&c, ClientId(0), 1 << 20);
        // The budget covers one block plus 100 spare bytes: the torn cut
        // lands on the block boundary, so exactly one whole block survives
        // and exactly one whole block is lost — no write record is split.
        let outcome = recover_up_to(&mut board, SimTime::from_secs(10), BLOCK_SIZE + 100)
            .expect("batteries held");
        assert_eq!(outcome.bytes, BLOCK_SIZE);
        assert_eq!(outcome.bytes_lost, BLOCK_SIZE);
        assert!(outcome.data_survived);
        let recovered: u64 = outcome.recovered.values().map(RangeSet::len_bytes).sum();
        assert_eq!(recovered, outcome.bytes);
    }

    #[test]
    fn write_aside_snapshot_matches_remaining_dirty() {
        let mut c = cache(CacheModelKind::WriteAside);
        write_block(&mut c, 1, 0, 1);
        write_block(&mut c, 1, 1, 2);
        let board = snapshot_nvram(&c, ClientId(0), 1 << 20);
        assert_eq!(board.dirty_bytes(), c.remaining_dirty_bytes());
    }
}
