//! Byte-lifetime analysis with an infinite non-volatile cache (§2.3).
//!
//! This is the paper's second/third simulation pass: with unbounded NVRAM,
//! no byte is ever written back due to replacement, so every written byte
//! meets one of a handful of fates — it is overwritten, deleted (or
//! truncated), recalled by the consistency protocol, flushed by process
//! migration, written through because caching was disabled, or still alive
//! when the trace ends. [`LifetimeLog`] records a `(length, birth, fate,
//! fate-time)` tuple for every run of bytes, from which both Figure 2 (net
//! write traffic as a function of a fixed write-back delay) and Table 2
//! (the fate summary) are computed.

use std::collections::BTreeMap;

use nvfs_trace::op::{OpKind, OpStream};
use nvfs_types::{ByteRange, ClientId, FileId, SimDuration, SimTime};

use crate::consistency::ConsistencyServer;

/// The final fate of a run of written bytes (Table 2 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ByteFate {
    /// Overwritten in the cache before ever reaching the server.
    Overwritten,
    /// Killed by a delete or truncate before reaching the server.
    Deleted,
    /// Recalled to the server by the cache consistency protocol.
    CalledBack,
    /// Flushed to the server because the writing process migrated.
    Migrated,
    /// Written straight through while caching was disabled by concurrent
    /// write-sharing.
    Concurrent,
    /// Still dirty in the (infinite) cache at the end of the trace.
    Remaining,
}

impl ByteFate {
    /// Whether bytes with this fate were absorbed by the cache (never
    /// produced server write traffic).
    pub const fn is_absorbed(self) -> bool {
        matches!(self, ByteFate::Overwritten | ByteFate::Deleted)
    }
}

/// One run of bytes sharing a birth time and a fate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FateRecord {
    /// Number of bytes in the run.
    pub len: u64,
    /// When the bytes were written into the cache.
    pub birth: SimTime,
    /// What happened to them.
    pub fate: ByteFate,
    /// When the fate occurred (end of trace for `Remaining`).
    pub fate_time: SimTime,
}

impl FateRecord {
    /// Age at which the fate occurred.
    pub fn age(&self) -> SimDuration {
        self.fate_time - self.birth
    }
}

/// Dirty byte runs of one (client, file) pair, with per-run birth times.
#[derive(Debug, Clone, Default)]
struct TimedRanges {
    /// start → (end, birth). Runs are disjoint and sorted (adjacent runs
    /// with different births stay separate).
    runs: BTreeMap<u64, (u64, SimTime)>,
}

impl TimedRanges {
    /// Removes every run overlapping `r`, splitting boundary runs, and
    /// returns the removed `(len, birth)` pieces.
    fn remove(&mut self, r: ByteRange) -> Vec<(u64, SimTime)> {
        if r.is_empty() || self.runs.is_empty() {
            return Vec::new();
        }
        let scan_from = match self.runs.range(..r.start).next_back() {
            Some((&s, &(e, _))) if e > r.start => s,
            _ => r.start,
        };
        let mut removed = Vec::new();
        let mut to_delete = Vec::new();
        let mut to_insert = Vec::new();
        for (&s, &(e, birth)) in self.runs.range(scan_from..r.end) {
            if e <= r.start {
                continue;
            }
            let cut = ByteRange::new(s, e)
                .intersection(r)
                .expect("scanned run overlaps");
            removed.push((cut.len(), birth));
            to_delete.push(s);
            if s < cut.start {
                to_insert.push((s, (cut.start, birth)));
            }
            if cut.end < e {
                to_insert.push((cut.end, (e, birth)));
            }
        }
        for s in to_delete {
            self.runs.remove(&s);
        }
        for (s, v) in to_insert {
            self.runs.insert(s, v);
        }
        removed
    }

    /// Overwrites `r` at time `t`: kills overlapped runs (returned) and
    /// inserts a fresh run born at `t`.
    fn write(&mut self, r: ByteRange, t: SimTime) -> Vec<(u64, SimTime)> {
        let killed = self.remove(r);
        if !r.is_empty() {
            self.runs.insert(r.start, (r.end, t));
        }
        killed
    }

    /// Removes and returns every run as `(len, birth)` pairs.
    fn drain(&mut self) -> Vec<(u64, SimTime)> {
        let res: Vec<(u64, SimTime)> = self.runs.iter().map(|(&s, &(e, b))| (e - s, b)).collect();
        self.runs.clear();
        res
    }

    fn total(&self) -> u64 {
        self.runs.iter().map(|(&s, &(e, _))| e - s).sum()
    }
}

/// The complete lifetime log of one trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LifetimeLog {
    /// All byte-run fate records.
    pub records: Vec<FateRecord>,
    /// Total bytes written by applications.
    pub total_write_bytes: u64,
    /// End time of the trace.
    pub end_time: SimTime,
}

impl LifetimeLog {
    /// Runs the infinite-cache pass over `ops`.
    ///
    /// # Examples
    ///
    /// ```
    /// use nvfs_core::lifetime::{ByteFate, LifetimeLog};
    /// use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
    ///
    /// let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
    /// let log = LifetimeLog::analyze(traces.trace(0).ops());
    /// let fates = log.bytes_by_fate();
    /// assert!(fates.get(&ByteFate::Deleted).copied().unwrap_or(0) > 0);
    /// ```
    pub fn analyze(ops: &OpStream) -> Self {
        let mut dirty: BTreeMap<(ClientId, FileId), TimedRanges> = BTreeMap::new();
        let mut server = ConsistencyServer::new();
        let mut log = LifetimeLog {
            end_time: ops.end_time(),
            ..LifetimeLog::default()
        };

        for op in ops {
            let t = op.time;
            match &op.kind {
                OpKind::Open { file, mode } => {
                    let outcome = server.on_open(*file, op.client, *mode);
                    if let Some(w) = outcome.recall_from {
                        log.flush_all(&mut dirty, w, *file, ByteFate::CalledBack, t);
                        server.note_flush(*file, w);
                    }
                    if outcome.invalidate_opener {
                        // The opener's own copies are stale (another client
                        // wrote since); any dirty bytes it still held are
                        // recalled along with the invalidation, exactly as
                        // the finite-cache simulator does.
                        log.flush_all(&mut dirty, op.client, *file, ByteFate::CalledBack, t);
                    }
                    if outcome.disable_caching {
                        let writers: Vec<ClientId> = dirty
                            .keys()
                            .filter(|(_, f)| *f == *file)
                            .map(|&(c, _)| c)
                            .collect();
                        for c in writers {
                            log.flush_all(&mut dirty, c, *file, ByteFate::CalledBack, t);
                        }
                    }
                }
                OpKind::Close { file } => {
                    server.on_close(*file, op.client);
                }
                OpKind::Write { file, range } => {
                    log.total_write_bytes += range.len();
                    if server.is_disabled(*file) {
                        log.records.push(FateRecord {
                            len: range.len(),
                            birth: t,
                            fate: ByteFate::Concurrent,
                            fate_time: t,
                        });
                    } else {
                        let killed = dirty
                            .entry((op.client, *file))
                            .or_default()
                            .write(*range, t);
                        for (len, birth) in killed {
                            log.records.push(FateRecord {
                                len,
                                birth,
                                fate: ByteFate::Overwritten,
                                fate_time: t,
                            });
                        }
                        server.note_write(*file, op.client);
                    }
                }
                OpKind::Truncate { file, new_len } => {
                    let clients: Vec<ClientId> = dirty
                        .keys()
                        .filter(|(_, f)| *f == *file)
                        .map(|&(c, _)| c)
                        .collect();
                    for c in clients {
                        let killed = dirty
                            .get_mut(&(c, *file))
                            .expect("key just scanned")
                            .remove(ByteRange::new(*new_len, u64::MAX));
                        for (len, birth) in killed {
                            log.records.push(FateRecord {
                                len,
                                birth,
                                fate: ByteFate::Deleted,
                                fate_time: t,
                            });
                        }
                    }
                }
                OpKind::Delete { file } => {
                    let clients: Vec<ClientId> = dirty
                        .keys()
                        .filter(|(_, f)| *f == *file)
                        .map(|&(c, _)| c)
                        .collect();
                    for c in clients {
                        log.flush_all(&mut dirty, c, *file, ByteFate::Deleted, t);
                    }
                    server.on_delete(*file);
                }
                OpKind::Fsync { .. } => {
                    // Infinite NVRAM: fsync'd data is already permanent.
                }
                OpKind::Migrate { files, .. } => {
                    for file in files {
                        log.flush_all(&mut dirty, op.client, *file, ByteFate::Migrated, t);
                        server.note_flush(*file, op.client);
                    }
                }
                OpKind::Read { .. } => {}
            }
        }

        // Everything still dirty remains at the end of the trace.
        let end = log.end_time;
        for ((_, _), ranges) in dirty.iter_mut() {
            if ranges.total() == 0 {
                continue;
            }
            for (len, birth) in ranges.drain() {
                log.records.push(FateRecord {
                    len,
                    birth,
                    fate: ByteFate::Remaining,
                    fate_time: end,
                });
            }
        }
        log
    }

    fn flush_all(
        &mut self,
        dirty: &mut BTreeMap<(ClientId, FileId), TimedRanges>,
        client: ClientId,
        file: FileId,
        fate: ByteFate,
        t: SimTime,
    ) {
        if let Some(ranges) = dirty.get_mut(&(client, file)) {
            for (len, birth) in ranges.drain() {
                self.records.push(FateRecord {
                    len,
                    birth,
                    fate,
                    fate_time: t,
                });
            }
            dirty.remove(&(client, file));
        }
    }

    /// Bytes per fate — the rows of Table 2.
    pub fn bytes_by_fate(&self) -> BTreeMap<ByteFate, u64> {
        let mut map = BTreeMap::new();
        for r in &self.records {
            *map.entry(r.fate).or_insert(0) += r.len;
        }
        map
    }

    /// Fraction of written bytes absorbed by the infinite cache
    /// (overwritten or deleted before reaching the server).
    pub fn absorbed_fraction(&self) -> f64 {
        if self.total_write_bytes == 0 {
            return 0.0;
        }
        let absorbed: u64 = self
            .records
            .iter()
            .filter(|r| r.fate.is_absorbed())
            .map(|r| r.len)
            .sum();
        absorbed as f64 / self.total_write_bytes as f64
    }

    /// Net write traffic (percent of application writes) if dirty bytes
    /// were flushed after a fixed `delay` — the Figure 2 curve.
    ///
    /// A byte is absorbed only if it dies (by overwrite or delete) within
    /// `delay` of its birth; bytes recalled by consistency, written through
    /// concurrently, or remaining at trace end always count as traffic.
    pub fn net_write_traffic_at_delay(&self, delay: SimDuration) -> f64 {
        if self.total_write_bytes == 0 {
            return 0.0;
        }
        let traffic: u64 = self
            .records
            .iter()
            .map(|r| match r.fate {
                ByteFate::Overwritten | ByteFate::Deleted => {
                    if r.age() <= delay {
                        0
                    } else {
                        r.len
                    }
                }
                _ => r.len,
            })
            .sum();
        100.0 * traffic as f64 / self.total_write_bytes as f64
    }

    /// Byte-weighted quantile of death ages: the age below which fraction
    /// `q` of the *dying* bytes die. Returns `None` when nothing dies.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= q <= 1.0`.
    pub fn death_age_quantile(&self, q: f64) -> Option<SimDuration> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let mut dying: Vec<(SimDuration, u64)> = self
            .records
            .iter()
            .filter(|r| r.fate.is_absorbed())
            .map(|r| (r.age(), r.len))
            .collect();
        if dying.is_empty() {
            return None;
        }
        dying.sort_by_key(|&(age, _)| age);
        let total: u64 = dying.iter().map(|&(_, len)| len).sum();
        let target = (total as f64 * q).ceil() as u64;
        let mut acc = 0;
        for (age, len) in dying {
            acc += len;
            if acc >= target {
                return Some(age);
            }
        }
        None
    }

    /// Median death age of dying bytes (half-life of dirty data).
    pub fn median_death_age(&self) -> Option<SimDuration> {
        self.death_age_quantile(0.5)
    }

    /// Fraction of written bytes that die (overwrite/delete) within `d`.
    pub fn death_fraction_within(&self, d: SimDuration) -> f64 {
        if self.total_write_bytes == 0 {
            return 0.0;
        }
        let dead: u64 = self
            .records
            .iter()
            .filter(|r| r.fate.is_absorbed() && r.age() <= d)
            .map(|r| r.len)
            .sum();
        dead as f64 / self.total_write_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfs_trace::event::OpenMode;
    use nvfs_trace::op::Op;

    fn op(t: u64, client: u32, kind: OpKind) -> Op {
        Op {
            time: SimTime::from_secs(t),
            client: ClientId(client),
            kind,
        }
    }

    #[test]
    fn overwrite_records_death_with_age() {
        let ops: OpStream = vec![
            op(
                0,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            op(
                10,
                0,
                OpKind::Write {
                    file: FileId(0),
                    range: ByteRange::new(0, 100),
                },
            ),
            op(
                40,
                0,
                OpKind::Write {
                    file: FileId(0),
                    range: ByteRange::new(0, 100),
                },
            ),
        ]
        .into_iter()
        .collect();
        let log = LifetimeLog::analyze(&ops);
        assert_eq!(log.total_write_bytes, 200);
        let fates = log.bytes_by_fate();
        assert_eq!(fates[&ByteFate::Overwritten], 100);
        assert_eq!(fates[&ByteFate::Remaining], 100);
        let dead: Vec<&FateRecord> = log
            .records
            .iter()
            .filter(|r| r.fate == ByteFate::Overwritten)
            .collect();
        assert_eq!(dead[0].age(), SimDuration::from_secs(30));
    }

    #[test]
    fn delay_sweep_is_monotone_nonincreasing() {
        let ops: OpStream = vec![
            op(
                0,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            op(
                1,
                0,
                OpKind::Write {
                    file: FileId(0),
                    range: ByteRange::new(0, 100),
                },
            ),
            op(
                20,
                0,
                OpKind::Write {
                    file: FileId(0),
                    range: ByteRange::new(0, 100),
                },
            ),
            op(
                500,
                0,
                OpKind::Write {
                    file: FileId(0),
                    range: ByteRange::new(0, 100),
                },
            ),
        ]
        .into_iter()
        .collect();
        let log = LifetimeLog::analyze(&ops);
        let at = |s| log.net_write_traffic_at_delay(SimDuration::from_secs(s));
        assert!(at(0) >= at(30));
        assert!(at(30) >= at(1000));
        // At zero delay everything is traffic.
        assert_eq!(at(0), 100.0);
        // With a 30 s delay, the first overwrite (age 19 s) is absorbed.
        assert!((at(30) - 200.0 / 3.0).abs() < 1.0);
    }

    #[test]
    fn partial_overwrite_splits_runs() {
        let ops: OpStream = vec![
            op(
                0,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            op(
                1,
                0,
                OpKind::Write {
                    file: FileId(0),
                    range: ByteRange::new(0, 100),
                },
            ),
            op(
                10,
                0,
                OpKind::Write {
                    file: FileId(0),
                    range: ByteRange::new(50, 150),
                },
            ),
        ]
        .into_iter()
        .collect();
        let log = LifetimeLog::analyze(&ops);
        let fates = log.bytes_by_fate();
        assert_eq!(fates[&ByteFate::Overwritten], 50);
        assert_eq!(fates[&ByteFate::Remaining], 150);
    }

    #[test]
    fn truncate_and_delete_are_deletions() {
        let ops: OpStream = vec![
            op(
                0,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            op(
                1,
                0,
                OpKind::Write {
                    file: FileId(0),
                    range: ByteRange::new(0, 100),
                },
            ),
            op(
                5,
                0,
                OpKind::Truncate {
                    file: FileId(0),
                    new_len: 60,
                },
            ),
            op(9, 0, OpKind::Delete { file: FileId(0) }),
        ]
        .into_iter()
        .collect();
        let log = LifetimeLog::analyze(&ops);
        let fates = log.bytes_by_fate();
        assert_eq!(fates[&ByteFate::Deleted], 100);
        assert_eq!(log.absorbed_fraction(), 1.0);
    }

    #[test]
    fn callback_bytes_always_count_as_traffic() {
        let ops: OpStream = vec![
            op(
                0,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            op(
                1,
                0,
                OpKind::Write {
                    file: FileId(0),
                    range: ByteRange::new(0, 100),
                },
            ),
            op(2, 0, OpKind::Close { file: FileId(0) }),
            op(
                3,
                1,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Read,
                },
            ),
        ]
        .into_iter()
        .collect();
        let log = LifetimeLog::analyze(&ops);
        let fates = log.bytes_by_fate();
        assert_eq!(fates[&ByteFate::CalledBack], 100);
        // Even a huge delay cannot absorb called-back bytes.
        assert_eq!(
            log.net_write_traffic_at_delay(SimDuration::from_hours(10)),
            100.0
        );
    }

    #[test]
    fn concurrent_writes_bypass() {
        let ops: OpStream = vec![
            op(
                0,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            op(
                1,
                1,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            op(
                2,
                0,
                OpKind::Write {
                    file: FileId(0),
                    range: ByteRange::new(0, 100),
                },
            ),
        ]
        .into_iter()
        .collect();
        let log = LifetimeLog::analyze(&ops);
        assert_eq!(log.bytes_by_fate()[&ByteFate::Concurrent], 100);
    }

    #[test]
    fn migration_flushes_to_server() {
        use nvfs_types::ProcessId;
        let ops: OpStream = vec![
            op(
                0,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            op(
                1,
                0,
                OpKind::Write {
                    file: FileId(0),
                    range: ByteRange::new(0, 100),
                },
            ),
            op(
                2,
                0,
                OpKind::Migrate {
                    pid: ProcessId(0),
                    to: ClientId(1),
                    files: vec![FileId(0)],
                },
            ),
        ]
        .into_iter()
        .collect();
        let log = LifetimeLog::analyze(&ops);
        assert_eq!(log.bytes_by_fate()[&ByteFate::Migrated], 100);
    }

    #[test]
    fn death_age_quantiles() {
        let ops: OpStream = vec![
            op(
                0,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            // 100 bytes die at age 10 s, 100 at age 100 s, 100 remain.
            op(
                10,
                0,
                OpKind::Write {
                    file: FileId(0),
                    range: ByteRange::new(0, 100),
                },
            ),
            op(
                20,
                0,
                OpKind::Write {
                    file: FileId(0),
                    range: ByteRange::new(0, 100),
                },
            ),
            op(
                120,
                0,
                OpKind::Write {
                    file: FileId(0),
                    range: ByteRange::new(0, 100),
                },
            ),
        ]
        .into_iter()
        .collect();
        let log = LifetimeLog::analyze(&ops);
        assert_eq!(
            log.death_age_quantile(0.25),
            Some(SimDuration::from_secs(10))
        );
        assert_eq!(log.median_death_age(), Some(SimDuration::from_secs(10)));
        assert_eq!(
            log.death_age_quantile(0.75),
            Some(SimDuration::from_secs(100))
        );
        assert_eq!(
            log.death_age_quantile(1.0),
            Some(SimDuration::from_secs(100))
        );
        // A write-only stream with no deaths has no quantiles.
        let only: OpStream = vec![
            op(
                0,
                0,
                OpKind::Open {
                    file: FileId(0),
                    mode: OpenMode::Write,
                },
            ),
            op(
                1,
                0,
                OpKind::Write {
                    file: FileId(0),
                    range: ByteRange::new(0, 10),
                },
            ),
        ]
        .into_iter()
        .collect();
        assert_eq!(LifetimeLog::analyze(&only).median_death_age(), None);
    }

    #[test]
    fn record_lengths_sum_to_written_bytes() {
        use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
        let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
        for trace in traces.traces() {
            let log = LifetimeLog::analyze(trace.ops());
            let sum: u64 = log.records.iter().map(|r| r.len).sum();
            assert_eq!(sum, log.total_write_bytes, "trace {}", trace.number());
            assert_eq!(log.total_write_bytes, trace.ops().app_write_bytes());
        }
    }
}
