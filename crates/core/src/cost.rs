//! Cost-effectiveness analysis: NVRAM versus volatile memory (§2.7).
//!
//! The paper's question: "is money better spent on volatile or non-volatile
//! memory for client caches?" It answers by comparing the total-traffic
//! reduction of adding NVRAM (unified model) against adding DRAM (volatile
//! model), then weighing the equivalent megabytes against Table 1 prices.
//! This module provides the interpolation and pricing arithmetic; the
//! traffic curves come from [`ClusterSim`](crate::ClusterSim) sweeps.

use nvfs_nvram::cost::{cheapest_nvram_for, dram};

/// One point of a memory-sweep curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficPoint {
    /// Megabytes of memory added to the base configuration.
    pub extra_mb: f64,
    /// Net total traffic as a percentage of application traffic.
    pub traffic_pct: f64,
}

/// How many megabytes along `curve` are needed to reach `target_pct`
/// traffic, interpolating linearly between points.
///
/// Returns `None` when even the largest point on the curve cannot reach the
/// target (the paper's situation where "a half-megabyte of NVRAM provides
/// the same benefit as *more than six* additional megabytes" of DRAM).
///
/// # Examples
///
/// ```
/// use nvfs_core::cost::{equivalent_extra_mb, TrafficPoint};
///
/// let curve = vec![
///     TrafficPoint { extra_mb: 0.0, traffic_pct: 50.0 },
///     TrafficPoint { extra_mb: 4.0, traffic_pct: 40.0 },
/// ];
/// assert_eq!(equivalent_extra_mb(&curve, 45.0), Some(2.0));
/// assert_eq!(equivalent_extra_mb(&curve, 35.0), None);
/// ```
pub fn equivalent_extra_mb(curve: &[TrafficPoint], target_pct: f64) -> Option<f64> {
    let first = curve.first()?;
    if target_pct >= first.traffic_pct {
        return Some(first.extra_mb);
    }
    for pair in curve.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if target_pct <= a.traffic_pct && target_pct >= b.traffic_pct {
            if (a.traffic_pct - b.traffic_pct).abs() < f64::EPSILON {
                return Some(b.extra_mb);
            }
            let frac = (a.traffic_pct - target_pct) / (a.traffic_pct - b.traffic_pct);
            return Some(a.extra_mb + frac * (b.extra_mb - a.extra_mb));
        }
    }
    None
}

/// The verdict for one NVRAM configuration against the volatile curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostVerdict {
    /// NVRAM megabytes added (unified model).
    pub nvram_mb: f64,
    /// Traffic percentage reached with that NVRAM.
    pub traffic_pct: f64,
    /// DRAM megabytes that reach the same traffic on the volatile curve,
    /// if the curve reaches it at all.
    pub equivalent_dram_mb: Option<f64>,
    /// 1992 price of the NVRAM.
    pub nvram_dollars: f64,
    /// 1992 price of the equivalent DRAM (`None` when no amount suffices,
    /// in which case NVRAM wins outright).
    pub dram_dollars: Option<f64>,
    /// Whether NVRAM delivers the benefit for fewer dollars.
    pub nvram_wins: bool,
}

/// Evaluates each `(nvram_mb, traffic_pct)` point of a unified-model sweep
/// against the volatile-model `curve`, at Table 1 prices.
pub fn evaluate_against_volatile(
    unified_points: &[TrafficPoint],
    volatile_curve: &[TrafficPoint],
) -> Vec<CostVerdict> {
    unified_points
        .iter()
        .map(|p| {
            let eq = equivalent_extra_mb(volatile_curve, p.traffic_pct);
            let nvram_dollars = cheapest_nvram_for(p.extra_mb).price_per_mb * p.extra_mb;
            let dram_dollars = eq.map(|mb| dram().price_per_mb * mb);
            let nvram_wins = match dram_dollars {
                Some(d) => nvram_dollars < d,
                None => true,
            };
            CostVerdict {
                nvram_mb: p.extra_mb,
                traffic_pct: p.traffic_pct,
                equivalent_dram_mb: eq,
                nvram_dollars,
                dram_dollars,
                nvram_wins,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> Vec<TrafficPoint> {
        vec![
            TrafficPoint {
                extra_mb: 0.0,
                traffic_pct: 52.0,
            },
            TrafficPoint {
                extra_mb: 2.0,
                traffic_pct: 48.0,
            },
            TrafficPoint {
                extra_mb: 4.0,
                traffic_pct: 45.0,
            },
            TrafficPoint {
                extra_mb: 8.0,
                traffic_pct: 42.0,
            },
        ]
    }

    #[test]
    fn interpolation_between_points() {
        assert_eq!(equivalent_extra_mb(&curve(), 50.0), Some(1.0));
        assert_eq!(equivalent_extra_mb(&curve(), 46.5), Some(3.0));
        assert_eq!(equivalent_extra_mb(&curve(), 42.0), Some(8.0));
    }

    #[test]
    fn target_above_curve_costs_nothing() {
        assert_eq!(equivalent_extra_mb(&curve(), 60.0), Some(0.0));
    }

    #[test]
    fn unreachable_target_is_none() {
        assert_eq!(equivalent_extra_mb(&curve(), 10.0), None);
        assert_eq!(equivalent_extra_mb(&[], 10.0), None);
    }

    #[test]
    fn verdict_prefers_nvram_when_equivalent_dram_is_large() {
        // 0.5 MB of NVRAM matching 6+ MB of DRAM: the 16 MB-base scenario.
        let unified = vec![TrafficPoint {
            extra_mb: 0.5,
            traffic_pct: 42.0,
        }];
        let verdicts = evaluate_against_volatile(&unified, &curve());
        let v = verdicts[0];
        assert_eq!(v.equivalent_dram_mb, Some(8.0));
        // 0.5 MB NVRAM at SIMM prices (~$164) vs 8 MB DRAM (~$264).
        assert!(v.nvram_wins, "{v:?}");
    }

    #[test]
    fn verdict_prefers_dram_when_reductions_match() {
        // 4 MB of NVRAM only matching 4 MB of DRAM: prices decide for DRAM.
        let unified = vec![TrafficPoint {
            extra_mb: 4.0,
            traffic_pct: 45.0,
        }];
        let v = evaluate_against_volatile(&unified, &curve())[0];
        assert_eq!(v.equivalent_dram_mb, Some(4.0));
        assert!(!v.nvram_wins, "{v:?}");
    }

    #[test]
    fn nvram_wins_outright_when_dram_cannot_reach() {
        let unified = vec![TrafficPoint {
            extra_mb: 1.0,
            traffic_pct: 30.0,
        }];
        let v = evaluate_against_volatile(&unified, &curve())[0];
        assert_eq!(v.equivalent_dram_mb, None);
        assert!(v.nvram_wins);
    }
}
