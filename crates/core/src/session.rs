//! The composable simulation engine: [`SimSession`] + [`RunHook`].
//!
//! PRs 2–4 each bolted a new concern (fault injection, observability,
//! the durability oracle) onto [`ClusterSim`](crate::ClusterSim) as yet
//! another `run_*` entry point, all funnelling into one five-argument
//! core driver. This module replaces that driver with an interposition
//! boundary: [`SimEngine`] owns the pure cluster mechanics (caches,
//! consistency server, cleaner, crash/drain bookkeeping) and a stack of
//! [`RunHook`]s decides *which* concerns ride along on a given run —
//! warm-up resets ([`WarmupReset`]), write-log capture
//! ([`WriteLogCapture`]), fault injection ([`FaultInjector`]),
//! durability judging ([`OracleJudge`]) and observability
//! ([`ObsRecorder`]) are all ordinary hooks, so previously-impossible
//! compositions (warmup + faults + oracle) fall out for free.
//!
//! # Ordering guarantees
//!
//! Hooks never call each other. Engine mechanics instead *queue* typed
//! [`SessionEvent`]s (crash, recovery drain, flush) and the driver
//! broadcasts each queued event to every hook in stack order at fixed
//! dispatch points: after the per-op `before_op` round, after the
//! cleaner advance, after the op applies, and after each hook's
//! `finish`. Within one dispatch, events are delivered in the exact
//! order the mechanics produced them, so two hooks always observe the
//! same interleaving the old monolithic driver produced.
//!
//! The canonical stack order is
//! `[WarmupReset, FaultInjector, ObsRecorder, OracleJudge,
//! WriteLogCapture]` (omitting whichever are unused). `ObsRecorder`
//! must precede `OracleJudge`: both emit obs events for the same drain
//! (`recovery_drain` vs `oracle_verdict`), and when a schedule's
//! relocation delay is zero their timestamps tie, so submission order
//! is what keeps the rendered JSONL stable.
//!
//! # Determinism contract
//!
//! With the same `(config, ops, hook stacks)`, a session is
//! byte-identical at any `--jobs` count: the engine iterates clients in
//! `BTreeMap` order, drains boards in `(recovery time, client)` order,
//! dispatches events in queue order, and sorts the final write log with
//! a stable sort so same-time writes keep cache-before-recovery order.
//! See DESIGN.md § Engine architecture.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use nvfs_faults::{ClientCrashFault, FaultSchedule, ReliabilityStats};
use nvfs_nvram::NvramBoard;
use nvfs_oracle::{DrainExpectation, DurableMap, DurablePromise, Oracle};
use nvfs_trace::op::{Op, OpKind, OpStream};
use nvfs_types::{ClientId, FileId, SimTime, BLOCK_SIZE};

use crate::client::{ClientCache, FlushCause, ServerWrite};
use crate::config::{CacheModelKind, ConsistencyMode, PolicyKind, SimConfig};
use crate::consistency::ConsistencyServer;
use crate::metrics::TrafficStats;
use crate::omniscient::OmniscientSchedule;
use crate::policy::Policy;
use crate::recovery::{recover_up_to, snapshot_nvram, RecoveryError};

/// Index of the first steady-state op for a warm-up `fraction` over a
/// stream of `len` ops.
///
/// The cut is computed as `floor(len * fraction)`: the warm-up prefix
/// is rounded *down*, so up to one op that the exact fraction would
/// have claimed stays in the measured suffix. (The old driver relied
/// on `as usize` silently truncating; the rounding is now explicit and
/// shared with the experiments that mirror it.)
///
/// # Panics
///
/// Panics unless `0.0 <= fraction < 1.0`.
pub fn warmup_cut(len: usize, fraction: f64) -> usize {
    assert!((0.0..1.0).contains(&fraction), "warmup must be in [0, 1)");
    (len as f64 * fraction).floor() as usize
}

/// Whether a hook wants the current op applied to the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpAction {
    /// Apply the op normally.
    Apply,
    /// Skip the op (its client has crashed, for example). Any hook
    /// voting `Skip` suppresses the op; bookkeeping (op count, cleaner
    /// advance, fault clock) still runs.
    Skip,
}

/// A client crash the engine just executed: the client's trace is cut,
/// its NVRAM contents are on a board in transit, and its durable
/// promise was captured *before* any recovery code ran.
#[derive(Debug, Clone)]
pub struct CrashEvent {
    /// The crashed client.
    pub client: ClientId,
    /// When the crash fired.
    pub time: SimTime,
    /// The cache model's durability promise at the crash instant;
    /// `None` when the client had no cache (it never issued an op).
    pub promise: Option<DurablePromise>,
}

/// A relocated NVRAM board finished (or failed) its recovery drain.
#[derive(Debug, Clone)]
pub struct DrainEvent {
    /// The client whose board drained.
    pub client: ClientId,
    /// When that client crashed — with `client`, the incident identity.
    pub crash_time: SimTime,
    /// When the drain ran (crash time + relocation delay).
    pub at: SimTime,
    /// The drain byte cap (`u64::MAX` for a full drain).
    pub cap: u64,
    /// Bytes successfully replayed to the server.
    pub bytes: u64,
    /// Bytes lost (torn drain remainder, or everything on a dead board).
    pub bytes_lost: u64,
    /// The recovered ranges, or `None` when the board died in transit.
    pub recovered: Option<DurableMap>,
}

/// A file's dirty data was flushed to the server outside recovery —
/// one event per [`ConsistencyServer::note_flush`] the mechanics
/// perform (cleaner write-back, consistency recall, fsync, migration).
/// Recovery drains are reported as [`DrainEvent`]s instead.
#[derive(Debug, Clone)]
pub struct FlushEvent {
    /// When the flush happened.
    pub at: SimTime,
    /// The client that held the data.
    pub client: ClientId,
    /// The flushed file.
    pub file: FileId,
    /// Why it was flushed.
    pub cause: FlushCause,
}

/// A queued engine event awaiting broadcast to the hook stack.
#[derive(Debug, Clone)]
pub(crate) enum SessionEvent {
    Crash(CrashEvent),
    Drain(DrainEvent),
    Flush(FlushEvent),
}

/// An interposition point on a simulation run.
///
/// All methods have no-op defaults; a hook implements only the
/// callbacks it cares about. Hooks receive `&mut SimEngine` so they can
/// drive mechanics (crash a client, reset counters) but they never see
/// each other — cross-hook communication happens only through the
/// engine's event queue, which the [`SimSession`] driver broadcasts in
/// stack order (see the module docs for the ordering guarantees).
pub trait RunHook {
    /// Called once per op, before the cleaner advances and the op
    /// applies; return [`OpAction::Skip`] to suppress the op.
    fn before_op(&mut self, engine: &mut SimEngine<'_>, index: usize, op: &Op) -> OpAction {
        let _ = (engine, index, op);
        OpAction::Apply
    }

    /// A non-recovery flush reached the server.
    fn on_flush(&mut self, engine: &mut SimEngine<'_>, event: &FlushEvent) {
        let _ = (engine, event);
    }

    /// A client crashed and its board entered transit.
    fn on_crash(&mut self, engine: &mut SimEngine<'_>, event: &CrashEvent) {
        let _ = (engine, event);
    }

    /// A board's recovery drain completed (or the board died).
    fn on_drain(&mut self, engine: &mut SimEngine<'_>, event: &DrainEvent) {
        let _ = (engine, event);
    }

    /// The op stream is exhausted; fire any trailing work (faults
    /// scheduled past the end of the trace, for example). Runs before
    /// the engine's end-of-trace accounting.
    fn finish(&mut self, engine: &mut SimEngine<'_>) {
        let _ = engine;
    }

    /// Final harvest, after the engine folded end-of-trace accounting
    /// into its stats; extract results here.
    fn collect(&mut self, engine: &mut SimEngine<'_>) {
        let _ = engine;
    }

    /// Opt-in to intra-run sharding: the op indices (if any) at which
    /// this hook needs the whole cluster synchronized and its
    /// `before_op` called with the full engine — every other `before_op`
    /// must be a no-op returning [`OpAction::Apply`], and the hook must
    /// not rely on per-op [`FlushEvent`]s.
    ///
    /// The default, `None`, declares the hook incompatible with sharding
    /// (it observes per-op engine state), which forces the serial drive
    /// loop — always correct, never faster. Hooks that are pure
    /// bystanders between ops return `Some(vec![])`; [`WarmupReset`]
    /// returns its single reset index.
    fn shard_barriers(&self, n_ops: usize) -> Option<Vec<usize>> {
        let _ = n_ops;
        None
    }

    /// Whether this hook consumes [`FlushEvent`]s. Defaults to `true`
    /// so third-party `on_flush` implementors keep working; the
    /// built-in hooks override it to `false`, which lets the engine
    /// skip queueing/broadcasting a flush event per flushed file on the
    /// hot path (and is a precondition for intra-run sharding).
    fn wants_flush_events(&self) -> bool {
        true
    }
}

/// What a session hands back once the hook stack has run to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionOutput {
    /// Aggregated traffic counters.
    pub stats: TrafficStats,
    /// Crash/recovery accounting (all zeros on a fault-free stack).
    pub reliability: ReliabilityStats,
}

/// The cluster mechanics a hook stack drives: one [`ClientCache`] per
/// client, the [`ConsistencyServer`], the 5-second cleaner, and the
/// crash/drain bookkeeping. Hooks receive `&mut SimEngine` at every
/// callback.
#[derive(Debug)]
pub struct SimEngine<'cfg> {
    pub(crate) config: &'cfg SimConfig,
    pub(crate) policy_schedule: Option<Arc<OmniscientSchedule>>,
    pub(crate) clients: BTreeMap<ClientId, ClientCache>,
    pub(crate) server: ConsistencyServer,
    pub(crate) stats: TrafficStats,
    reliability: ReliabilityStats,
    pub(crate) next_tick: SimTime,
    pub(crate) run_cleaner: bool,
    recovery_writes: Vec<ServerWrite>,
    pub(crate) pending: Vec<SessionEvent>,
    pub(crate) ops_replayed: u64,
    pub(crate) sim_end: SimTime,
    /// Whether any hook in the current stack consumes flush events; when
    /// false the engine skips queueing them entirely (hot-path win).
    pub(crate) flush_events: bool,
    /// Network partition state, installed by [`crate::net::NetFaultInjector`];
    /// `None` (the default) leaves every existing path byte-identical.
    pub(crate) net: Option<crate::net::NetState>,
    /// Shed writes recovered from crashed caches (see
    /// [`ClientCache::take_shed_writes`]).
    shed_writes: Vec<ServerWrite>,
    /// Reused buffer for per-tick written-back file ids.
    writeback_scratch: Vec<FileId>,
}

impl<'cfg> SimEngine<'cfg> {
    fn new(config: &'cfg SimConfig, ops: &OpStream) -> Self {
        let policy_schedule = match config.policy {
            PolicyKind::Omniscient => Some(Arc::new(OmniscientSchedule::build(ops))),
            _ => None,
        };
        SimEngine {
            config,
            policy_schedule,
            clients: BTreeMap::new(),
            server: ConsistencyServer::with_mode(config.consistency),
            stats: TrafficStats::default(),
            reliability: ReliabilityStats::default(),
            next_tick: SimTime::ZERO + config.cleaner_period,
            run_cleaner: matches!(
                config.model,
                CacheModelKind::Volatile | CacheModelKind::Hybrid
            ),
            recovery_writes: Vec::new(),
            pending: Vec::new(),
            ops_replayed: 0,
            sim_end: SimTime::ZERO,
            flush_events: true,
            net: None,
            shed_writes: Vec::new(),
            writeback_scratch: Vec::new(),
        }
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        self.config
    }

    /// The traffic counters accumulated so far.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// The crash/recovery accounting accumulated so far.
    pub fn reliability(&self) -> &ReliabilityStats {
        &self.reliability
    }

    /// Ops replayed so far (skipped ops count: their time still passes).
    pub fn ops_replayed(&self) -> u64 {
        self.ops_replayed
    }

    /// The time of the last op seen.
    pub fn sim_end(&self) -> SimTime {
        self.sim_end
    }

    /// Re-derives every client's severed flag from the installed network
    /// partition windows at instant `at`. No-op without a network plan.
    pub(crate) fn sync_net_severed(&mut self, at: SimTime) {
        if let Some(net) = &self.net {
            for (&cid, cache) in self.clients.iter_mut() {
                cache.set_severed(net.severed(cid, at));
            }
        }
    }

    /// When a partition has the server unreachable at `at`, a recovered
    /// board cannot drain until the partition heals; otherwise `at`.
    pub fn recovery_drain_time(&self, at: SimTime) -> SimTime {
        match &self.net {
            Some(net) => net.drain_time(at),
            None => at,
        }
    }

    /// Drains every write shed during partitions — from live caches and
    /// from the stash crashed caches left behind — in client order.
    pub fn take_shed_writes(&mut self) -> Vec<ServerWrite> {
        let mut out = std::mem::take(&mut self.shed_writes);
        for cache in self.clients.values_mut() {
            out.append(&mut cache.take_shed_writes());
        }
        out
    }

    /// Accounts bytes lost to an open partition (degraded-mode loss).
    pub fn note_partition_loss(&mut self, bytes: u64) {
        self.reliability.bytes_lost_partition += bytes;
    }

    /// Zeroes every traffic counter — the engine's and each cache's —
    /// without touching cache *contents*, so the remaining run measures
    /// steady state only ([`WarmupReset`]'s lever).
    pub fn reset_counters(&mut self) {
        self.stats = TrafficStats::default();
        for cache in self.clients.values_mut() {
            cache.reset_counters();
        }
    }

    /// Cuts `fault.client`'s trace: everything still dirty is at risk,
    /// whatever the model kept in NVRAM is snapshotted onto a board
    /// (returned for the caller to put in transit), and the client's
    /// pre-crash server writes and device counters are folded in here
    /// since its cache is dropped. The durable promise is captured
    /// straight from the cache, *before* the snapshot path runs — a
    /// broken snapshot must show up as `LostDurable`, not be trusted.
    /// Queues a [`CrashEvent`].
    pub fn crash_client(
        &mut self,
        fault: &ClientCrashFault,
        board_batteries: u8,
    ) -> Option<NvramBoard> {
        self.reliability.client_crashes += 1;
        let mut promise = None;
        let board = if let Some(mut cache) = self.clients.remove(&fault.client) {
            let at_risk = cache.remaining_dirty_bytes();
            promise = Some(DurablePromise::capture(
                fault.client,
                fault.time,
                cache.nvram_dirty_contents(),
            ));
            let board = snapshot_nvram(&cache, fault.client, self.config.nvram_bytes)
                .with_batteries(board_batteries);
            self.reliability.bytes_at_risk += at_risk;
            self.reliability.bytes_in_nvram += board.dirty_bytes();
            self.reliability.bytes_lost_window += at_risk - board.dirty_bytes();
            let d = cache.device();
            self.stats.nvram_reads += d.reads();
            self.stats.nvram_writes += d.writes();
            self.stats.nvram_bytes += d.bytes_transferred();
            self.recovery_writes.append(&mut cache.take_server_writes());
            self.shed_writes.append(&mut cache.take_shed_writes());
            Some(board)
        } else {
            None
        };
        self.pending.push(SessionEvent::Crash(CrashEvent {
            client: fault.client,
            time: fault.time,
            promise,
        }));
        board
    }

    /// Drains a relocated board through the §4 recovery flow: replayed
    /// bytes become server writes, losses (dead batteries, torn-drain
    /// remainders) become reported accounting, never panics. Queues a
    /// [`DrainEvent`] carrying the recovered ranges (or `None` for a
    /// dead board) so judging hooks can diff them against the promise.
    pub fn drain_board(
        &mut self,
        mut board: NvramBoard,
        client: ClientId,
        crash_time: SimTime,
        at: SimTime,
        cap: u64,
    ) {
        match recover_up_to(&mut board, at, cap) {
            Ok(outcome) => {
                self.reliability.boards_recovered += 1;
                self.reliability.bytes_recovered += outcome.bytes;
                self.reliability.bytes_lost_torn += outcome.bytes_lost;
                self.stats.server_write_bytes += outcome.bytes;
                self.stats.recovery_bytes += outcome.bytes;
                for w in &outcome.writes {
                    self.server.note_flush(w.file, w.client);
                }
                self.pending.push(SessionEvent::Drain(DrainEvent {
                    client,
                    crash_time,
                    at,
                    cap,
                    bytes: outcome.bytes,
                    bytes_lost: outcome.bytes_lost,
                    recovered: Some(outcome.recovered),
                }));
                self.recovery_writes.extend(outcome.writes);
            }
            Err(RecoveryError::DeadBoard { bytes_lost, .. }) => {
                self.reliability.boards_dead += 1;
                self.reliability.bytes_lost_battery += bytes_lost;
                self.pending.push(SessionEvent::Drain(DrainEvent {
                    client,
                    crash_time,
                    at,
                    cap,
                    bytes: 0,
                    bytes_lost,
                    recovered: None,
                }));
            }
        }
    }

    /// Merges every cache's server-write log (in client order), then
    /// the recovery writes, into one time-ordered log. The sort is
    /// stable, so same-time writes keep cache-before-recovery order.
    pub fn take_write_log(&mut self) -> Vec<ServerWrite> {
        let mut writes: Vec<ServerWrite> = Vec::new();
        for cache in self.clients.values_mut() {
            writes.append(&mut cache.take_server_writes());
        }
        writes.append(&mut self.recovery_writes);
        writes.sort_by_key(|w| w.time);
        writes
    }

    /// Advance the 5-second block cleaner up to `now` (volatile and
    /// hybrid models only): each tick writes back blocks older than the
    /// 30-second delay, queueing one [`FlushEvent`] per flushed file.
    /// With a network plan installed, every flush instant — each tick
    /// and the final `now` — sees severed flags current for that
    /// instant, so partition epochs cut write-backs mid-gap.
    fn advance_cleaner(&mut self, now: SimTime) {
        self.advance_cleaner_ticks(now);
        if self.net.is_some() {
            self.sync_net_severed(now);
        }
    }

    fn advance_cleaner_ticks(&mut self, now: SimTime) {
        if !self.run_cleaner {
            return;
        }
        while self.next_tick <= now {
            // Idle fast-forward: once no cache holds anything the cleaner
            // could ever flush, every remaining tick in the gap is a
            // no-op, so jump the cursor arithmetically. The cursor stays
            // on the same `epoch + k·period` lattice, so this is
            // bit-exact with ticking through the gap one period at a
            // time. Caches only shed data inside this loop, never gain
            // it, so the check cannot flip back to pending.
            if self.clients.values().all(|c| !c.cleaner_pending()) {
                let gap = now.as_micros() - self.next_tick.as_micros();
                let steps = gap / self.config.cleaner_period.as_micros() + 1;
                self.next_tick = SimTime::from_micros(
                    self.next_tick.as_micros() + steps * self.config.cleaner_period.as_micros(),
                );
                return;
            }
            let tick = self.next_tick;
            if self.net.is_some() {
                self.sync_net_severed(tick);
            }
            if tick >= SimTime::ZERO + self.config.write_back_delay {
                let cutoff = tick - self.config.write_back_delay;
                let SimEngine {
                    clients,
                    server,
                    stats,
                    pending,
                    flush_events,
                    writeback_scratch,
                    ..
                } = self;
                for (&cid, cache) in clients.iter_mut() {
                    cache.writeback_older_than_into(cutoff, tick, stats, writeback_scratch);
                    for &file in writeback_scratch.iter() {
                        server.note_flush(file, cid);
                        if *flush_events {
                            pending.push(SessionEvent::Flush(FlushEvent {
                                at: tick,
                                client: cid,
                                file,
                                cause: FlushCause::WriteBack,
                            }));
                        }
                    }
                }
            }
            self.next_tick += self.config.cleaner_period;
        }
    }

    /// Replays one op against the caches and the consistency server.
    pub(crate) fn apply_op(&mut self, op: &Op) {
        let SimEngine {
            config,
            policy_schedule,
            clients,
            server,
            stats,
            pending,
            flush_events,
            ..
        } = self;
        SimEngine::apply_op_parts(
            config,
            policy_schedule,
            clients,
            server,
            stats,
            pending,
            *flush_events,
            op,
        );
    }

    /// Replays one op against a set of caches and a consistency server —
    /// the body of [`SimEngine::apply_op`], split from `self` so the
    /// intra-run shard driver ([`crate::shard`]) can apply ops against
    /// per-shard state (one client's cache + its replica server).
    ///
    /// With `emit_flush_events` false, flush [`SessionEvent`]s are not
    /// queued, so flush-producing ops leave `pending` untouched.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn apply_op_parts(
        config: &SimConfig,
        policy_schedule: &Option<Arc<OmniscientSchedule>>,
        clients: &mut BTreeMap<ClientId, ClientCache>,
        server: &mut ConsistencyServer,
        stats: &mut TrafficStats,
        pending: &mut Vec<SessionEvent>,
        emit_flush_events: bool,
        op: &Op,
    ) {
        macro_rules! client {
            ($id:expr) => {
                clients.entry($id).or_insert_with(|| {
                    ClientCache::new(
                        config,
                        Policy::from_kind(config.policy, policy_schedule.clone()),
                        $id,
                    )
                })
            };
        }
        macro_rules! flush_event {
            ($client:expr, $file:expr, $cause:expr) => {
                if emit_flush_events {
                    pending.push(SessionEvent::Flush(FlushEvent {
                        at: op.time,
                        client: $client,
                        file: $file,
                        cause: $cause,
                    }))
                }
            };
        }

        match &op.kind {
            OpKind::Open { file, mode } => {
                let outcome = server.on_open(*file, op.client, *mode);
                if let Some(w) = outcome.recall_from {
                    if let Some(cache) = clients.get_mut(&w) {
                        cache.flush_file(*file, FlushCause::Callback, op.time, stats);
                    }
                    // After the recall the writer holds nothing dirty,
                    // whether or not any bytes moved.
                    server.note_flush(*file, w);
                    flush_event!(w, *file, FlushCause::Callback);
                }
                if outcome.invalidate_opener {
                    // Stale copies from a previous open are discarded.
                    client!(op.client).invalidate_file(*file, FlushCause::Callback, op.time, stats);
                }
                if outcome.disable_caching {
                    for cache in clients.values_mut() {
                        cache.invalidate_file(*file, FlushCause::Callback, op.time, stats);
                    }
                }
            }
            OpKind::Close { file } => {
                server.on_close(*file, op.client);
            }
            OpKind::Read { file, range } => {
                stats.app_read_bytes += range.len();
                if server.is_disabled(*file) {
                    stats.concurrent_read_bytes += range.len();
                } else {
                    // Block-on-demand consistency: recall only the dirty
                    // blocks this read actually touches (§2.3, [21]).
                    if config.consistency == ConsistencyMode::BlockOnDemand {
                        if let Some(w) = server.last_writer(*file) {
                            if w != op.client {
                                let mut recalled = 0;
                                if let Some(writer) = clients.get_mut(&w) {
                                    recalled = writer.flush_range(
                                        *file,
                                        *range,
                                        FlushCause::Callback,
                                        op.time,
                                        stats,
                                    );
                                }
                                if recalled > 0 {
                                    flush_event!(w, *file, FlushCause::Callback);
                                    // The reader's copies of those
                                    // blocks are stale.
                                    client!(op.client).invalidate_range(
                                        *file,
                                        *range,
                                        FlushCause::Callback,
                                        op.time,
                                        stats,
                                    );
                                }
                            }
                        }
                    }
                    client!(op.client).read(*file, *range, op.time, stats);
                }
            }
            OpKind::Write { file, range } => {
                stats.app_write_bytes += range.len();
                if server.is_disabled(*file) {
                    stats.concurrent_write_bytes += range.len();
                } else {
                    client!(op.client).write(*file, *range, op.time, stats);
                    server.note_write(*file, op.client);
                }
            }
            OpKind::Truncate { file, new_len } => {
                for cache in clients.values_mut() {
                    cache.truncate_file(*file, *new_len, stats);
                }
            }
            OpKind::Delete { file } => {
                for cache in clients.values_mut() {
                    cache.delete_file(*file, stats);
                }
                server.on_delete(*file);
            }
            OpKind::Fsync { file } => {
                if let Some(cache) = clients.get_mut(&op.client) {
                    // Only the volatile model actually sends the data
                    // to the server; the NVRAM models keep it dirty
                    // locally, so the last-writer record must survive.
                    if cache.fsync(*file, op.time, stats) {
                        server.note_flush(*file, op.client);
                        flush_event!(op.client, *file, FlushCause::Fsync);
                    }
                }
            }
            OpKind::Migrate { files, .. } => {
                if let Some(cache) = clients.get_mut(&op.client) {
                    for file in files {
                        cache.flush_file(*file, FlushCause::Migration, op.time, stats);
                        server.note_flush(*file, op.client);
                        flush_event!(op.client, *file, FlushCause::Migration);
                    }
                }
            }
        }
    }

    /// End of trace: dirty bytes still cached count as eventual
    /// traffic, and surviving caches' NVRAM device counters fold in.
    fn final_accounting(&mut self) {
        for cache in self.clients.values() {
            self.stats.remaining_dirty_bytes += cache.remaining_dirty_bytes();
            debug_assert!(cache.check_invariants());
        }
        for cache in self.clients.values_mut() {
            let d = cache.device();
            self.stats.nvram_reads += d.reads();
            self.stats.nvram_writes += d.writes();
            self.stats.nvram_bytes += d.bytes_transferred();
        }
    }
}

/// Broadcasts every queued engine event to every hook in stack order.
/// Loops because a hook's handler may itself drive mechanics that
/// queue further events.
pub(crate) fn dispatch(engine: &mut SimEngine<'_>, hooks: &mut [&mut dyn RunHook]) {
    while !engine.pending.is_empty() {
        let batch = std::mem::take(&mut engine.pending);
        for event in &batch {
            for hook in hooks.iter_mut() {
                match event {
                    SessionEvent::Crash(e) => hook.on_crash(engine, e),
                    SessionEvent::Drain(e) => hook.on_drain(engine, e),
                    SessionEvent::Flush(e) => hook.on_flush(engine, e),
                }
            }
        }
    }
}

/// A single simulation run: a [`SimEngine`] driven over one op stream
/// by a caller-assembled [`RunHook`] stack.
///
/// # Examples
///
/// A composition the old `run_*` forks never offered — warm-up, fault
/// injection and durability judging on one run:
///
/// ```
/// use nvfs_core::{
///     FaultInjector, ObsRecorder, OracleJudge, SimConfig, SimSession, WarmupReset,
/// };
/// use nvfs_faults::{FaultPlanConfig, FaultSchedule};
/// use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
/// use nvfs_types::SimDuration;
///
/// let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
/// let ops = traces.trace(6).ops();
/// let plan = FaultPlanConfig::new(8, SimDuration::from_hours(24)).with_client_crashes(2);
/// let schedule = FaultSchedule::compile(7, &plan).unwrap();
/// let config = SimConfig::unified(1 << 20, 512 << 10);
/// let (mut warm, mut faults) = (
///     WarmupReset::fraction(ops.len(), 0.3),
///     FaultInjector::new(&schedule),
/// );
/// let (mut obs, mut judge) = (ObsRecorder::default(), OracleJudge::default());
/// let out = SimSession::new(&config).run(
///     ops,
///     &mut [&mut warm, &mut faults, &mut obs, &mut judge],
/// );
/// assert_eq!(out.reliability.client_crashes, 2);
/// assert_eq!(judge.into_oracle().summary().violations(), 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SimSession<'a> {
    config: &'a SimConfig,
}

impl<'a> SimSession<'a> {
    /// A session over the given configuration.
    pub fn new(config: &'a SimConfig) -> Self {
        SimSession { config }
    }

    /// Drives the engine over `ops` with the given hook stack and
    /// returns the aggregated output. Hook results beyond the stats
    /// (write logs, oracles) stay in the hooks themselves — the caller
    /// kept ownership and harvests them afterwards.
    pub fn run(&self, ops: &OpStream, hooks: &mut [&mut dyn RunHook]) -> SessionOutput {
        let mut engine = SimEngine::new(self.config, ops);
        engine.flush_events = hooks.iter().any(|h| h.wants_flush_events());

        // Sharded drive loop: eligible when every hook opts in via
        // `shard_barriers`, none consumes flush events, and event
        // tracing is off (per-op obs events must interleave in global
        // op order, which shards cannot reproduce). Output is
        // byte-identical to the serial loop — see crate::shard.
        let barriers = crate::shard::collect_barriers(hooks, ops.len());
        match barriers {
            Some(barriers)
                if !ops.is_empty() && !engine.flush_events && !nvfs_obs::trace_enabled() =>
            {
                crate::shard::run_sharded(&mut engine, ops, hooks, &barriers);
            }
            _ => self.run_serial(&mut engine, ops, hooks),
        }

        for i in 0..hooks.len() {
            hooks[i].finish(&mut engine);
            dispatch(&mut engine, hooks);
        }
        engine.final_accounting();
        for hook in hooks.iter_mut() {
            hook.collect(&mut engine);
        }
        SessionOutput {
            stats: engine.stats,
            reliability: engine.reliability,
        }
    }

    /// The reference drive loop: one op at a time against the full
    /// cluster. Always correct for any hook stack; the sharded loop in
    /// [`crate::shard`] must match it byte for byte.
    fn run_serial(
        &self,
        engine: &mut SimEngine<'_>,
        ops: &OpStream,
        hooks: &mut [&mut dyn RunHook],
    ) {
        for (index, op) in ops.iter().enumerate() {
            engine.ops_replayed += 1;
            engine.sim_end = op.time;
            let mut action = OpAction::Apply;
            for hook in hooks.iter_mut() {
                if hook.before_op(engine, index, op) == OpAction::Skip {
                    action = OpAction::Skip;
                }
            }
            dispatch(engine, hooks);
            engine.advance_cleaner(op.time);
            dispatch(engine, hooks);
            if action == OpAction::Apply {
                engine.apply_op(op);
            }
            dispatch(engine, hooks);
        }
    }
}

/// Hook: resets every counter after a warm-up prefix, so the session's
/// output describes steady state only.
///
/// The paper notes its own simulations "started with empty caches,
/// thereby misclassifying some writes as new data rather than
/// overwrites" — this quantifies that cold-start bias.
#[derive(Debug, Clone, Copy)]
pub struct WarmupReset {
    reset_at: usize,
}

impl WarmupReset {
    /// Reset counters just before the op at `index` applies.
    pub fn at_index(index: usize) -> Self {
        WarmupReset { reset_at: index }
    }

    /// Reset after the first `fraction` of a `len`-op stream (see
    /// [`warmup_cut`] for the rounding contract).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= fraction < 1.0`.
    pub fn fraction(len: usize, fraction: f64) -> Self {
        WarmupReset::at_index(warmup_cut(len, fraction))
    }
}

impl RunHook for WarmupReset {
    fn before_op(&mut self, engine: &mut SimEngine<'_>, index: usize, _op: &Op) -> OpAction {
        if index == self.reset_at {
            engine.reset_counters();
        }
        OpAction::Apply
    }

    /// The reset is the hook's only interposition: one barrier there.
    fn shard_barriers(&self, _n_ops: usize) -> Option<Vec<usize>> {
        Some(vec![self.reset_at])
    }

    fn wants_flush_events(&self) -> bool {
        false
    }
}

/// Hook: harvests the time-ordered server-write log — the input for a
/// server-side (LFS) simulation downstream.
#[derive(Debug, Clone, Default)]
pub struct WriteLogCapture {
    writes: Vec<ServerWrite>,
}

impl WriteLogCapture {
    /// An empty capture.
    pub fn new() -> Self {
        WriteLogCapture::default()
    }

    /// The captured log (call after the session ran).
    pub fn take(&mut self) -> Vec<ServerWrite> {
        std::mem::take(&mut self.writes)
    }
}

impl RunHook for WriteLogCapture {
    fn collect(&mut self, engine: &mut SimEngine<'_>) {
        self.writes = engine.take_write_log();
    }

    /// Pure end-of-run harvest: no per-op interposition at all.
    fn shard_barriers(&self, _n_ops: usize) -> Option<Vec<usize>> {
        Some(Vec::new())
    }

    fn wants_flush_events(&self) -> bool {
        false
    }
}

/// Hook: replays a [`FaultSchedule`] against the run — each scheduled
/// client crash cuts that client's trace at the fault time, snapshots
/// its NVRAM contents onto a removable board, and — after the board's
/// relocation delay, with its batteries aged on the schedule's failure
/// clock — drains the board through the §4 recovery flow. Losses are
/// reported in the session's [`ReliabilityStats`], never panics.
#[derive(Debug)]
pub struct FaultInjector<'s> {
    schedule: &'s FaultSchedule,
    next_crash: usize,
    crashed: BTreeSet<ClientId>,
    in_transit: Vec<(NvramBoard, &'s ClientCrashFault)>,
}

impl<'s> FaultInjector<'s> {
    /// An injector over a compiled schedule.
    pub fn new(schedule: &'s FaultSchedule) -> Self {
        FaultInjector {
            schedule,
            next_crash: 0,
            crashed: BTreeSet::new(),
            in_transit: Vec::new(),
        }
    }

    /// Fires every crash due by `now`, then every drain due by `now`.
    fn advance(&mut self, engine: &mut SimEngine<'_>, now: SimTime) {
        let feed = &self.schedule.client_crashes;
        while self.next_crash < feed.len() && feed[self.next_crash].time <= now {
            let fault = &feed[self.next_crash];
            self.crashed.insert(fault.client);
            if let Some(board) = engine.crash_client(fault, self.schedule.plan.board_batteries) {
                self.in_transit.push((board, fault));
            }
            self.next_crash += 1;
        }
        self.drain_due(engine, now);
    }

    /// Drains every board whose relocation completed by `now`, in
    /// (recovery time, client) order so the result is deterministic.
    /// Batteries age on the schedule's failure clock while the board
    /// is without bus power. With a network plan installed, a board due
    /// while the server is partitioned waits for the heal — and its
    /// batteries keep aging through the wait.
    fn drain_due(&mut self, engine: &mut SimEngine<'_>, now: SimTime) {
        loop {
            let due = self
                .in_transit
                .iter()
                .enumerate()
                .filter(|(_, (_, f))| engine.recovery_drain_time(f.recovery_time()) <= now)
                .min_by_key(|(_, (_, f))| {
                    (engine.recovery_drain_time(f.recovery_time()), f.client.0)
                })
                .map(|(i, _)| i);
            let Some(idx) = due else { break };
            let (mut board, fault) = self.in_transit.remove(idx);
            let at = engine.recovery_drain_time(fault.recovery_time());
            board
                .batteries_mut()
                .age_to(at, fault.battery_clock(self.schedule.plan.board_batteries));
            let cap = match (fault.torn_drain_blocks, fault.torn_drain) {
                (Some(blocks), _) => blocks * BLOCK_SIZE,
                (None, Some(fraction)) => (board.dirty_bytes() as f64 * fraction) as u64,
                (None, None) => u64::MAX,
            };
            engine.drain_board(board, fault.client, fault.time, at, cap);
        }
    }
}

impl RunHook for FaultInjector<'_> {
    // Keeps the default `shard_barriers` (None): fault injection cuts
    // client traces mid-run and observes every op's time, which is
    // exactly the per-op interposition sharding cannot offer.
    fn wants_flush_events(&self) -> bool {
        false
    }

    fn before_op(&mut self, engine: &mut SimEngine<'_>, _index: usize, op: &Op) -> OpAction {
        self.advance(engine, op.time);
        // A crashed workstation issues no further ops: its trace is
        // cut at the fault time.
        if self.crashed.contains(&op.client) {
            OpAction::Skip
        } else {
            OpAction::Apply
        }
    }

    /// Faults scheduled past the end of the recorded trace still fire:
    /// the plan's duration may exceed the op stream's.
    fn finish(&mut self, engine: &mut SimEngine<'_>) {
        self.advance(engine, SimTime::MAX);
    }
}

/// Hook: judges every crash + recovery against the durability
/// [`Oracle`]. At each [`CrashEvent`] it stores the promise the engine
/// captured before recovery ran; at each [`DrainEvent`] it diffs the
/// recovered ranges against the shadow model's independent prediction.
#[derive(Debug, Default)]
pub struct OracleJudge {
    oracle: Oracle,
    promises: BTreeMap<(SimTime, ClientId), DurablePromise>,
}

impl OracleJudge {
    /// A judge with an empty oracle.
    pub fn new() -> Self {
        OracleJudge::default()
    }

    /// The oracle with one report per judged recovery.
    pub fn into_oracle(self) -> Oracle {
        self.oracle
    }
}

impl RunHook for OracleJudge {
    // Keeps the default `shard_barriers` (None): the judge consumes
    // crash/drain events, which only exist on fault-injected runs —
    // those are serial anyway (FaultInjector is shard-incompatible).
    fn wants_flush_events(&self) -> bool {
        false
    }

    fn on_crash(&mut self, _engine: &mut SimEngine<'_>, event: &CrashEvent) {
        if let Some(promise) = &event.promise {
            self.promises
                .insert((event.time, event.client), promise.clone());
        }
    }

    fn on_drain(&mut self, _engine: &mut SimEngine<'_>, event: &DrainEvent) {
        let Some(promise) = self.promises.get(&(event.crash_time, event.client)) else {
            return;
        };
        match &event.recovered {
            Some(observed) => {
                let expect = DrainExpectation {
                    board_dead: false,
                    max_bytes: event.cap,
                };
                self.oracle.judge(promise, expect, observed);
            }
            None => {
                self.oracle
                    .judge(promise, DrainExpectation::dead(), &DurableMap::new());
            }
        }
    }
}

/// Hook: observability instrumentation — emits the `fault_fired` /
/// `recovery_drain` events as they happen and folds the run's totals
/// into the obs registry in one pass at the end (never per op).
///
/// Every canonical stack includes this hook; in a custom stack it must
/// precede [`OracleJudge`] so same-timestamp events keep their
/// submission order (see the module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct ObsRecorder;

impl ObsRecorder {
    /// A recorder.
    pub fn new() -> Self {
        ObsRecorder
    }
}

impl RunHook for ObsRecorder {
    /// One-pass fold at the end; the per-event emitters only fire on
    /// fault-injected (serial) runs, so no barriers are needed.
    fn shard_barriers(&self, _n_ops: usize) -> Option<Vec<usize>> {
        Some(Vec::new())
    }

    fn wants_flush_events(&self) -> bool {
        false
    }

    fn on_crash(&mut self, _engine: &mut SimEngine<'_>, event: &CrashEvent) {
        nvfs_obs::event("fault_fired", event.time.as_micros())
            .str("fault", "client-crash")
            .u64("client", event.client.0 as u64)
            .emit();
    }

    fn on_drain(&mut self, _engine: &mut SimEngine<'_>, event: &DrainEvent) {
        nvfs_obs::event("recovery_drain", event.at.as_micros())
            .u64("client", event.client.0 as u64)
            .u64("bytes", event.bytes)
            .u64("lost_bytes", event.bytes_lost)
            .emit();
    }

    fn collect(&mut self, engine: &mut SimEngine<'_>) {
        nvfs_obs::counter_add("core.runs", 1);
        nvfs_obs::counter_add("core.ops_replayed", engine.ops_replayed());
        nvfs_obs::gauge_set("core.sim_end_us", engine.sim_end().as_micros());
        nvfs_obs::timing::set_span_sim_us(engine.sim_end().as_micros());
        engine.stats().fold_into_obs();
        engine.reliability().fold_into_obs();
    }
}
