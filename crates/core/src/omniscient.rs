//! The omniscient replacement schedule (§2.4).
//!
//! The paper's omniscient cache manager "can always flush the block in the
//! cache whose next modify time is the furthest in the future". Building
//! that policy requires a pre-pass over the trace (the paper's third
//! simulation pass): for every block we record the times at which it will
//! be modified again — by an overwrite, a truncation, or the deletion of
//! its file. [`OmniscientSchedule::next_modify`] then answers "when is this
//! block next modified after `now`?" with a binary search.

use std::collections::BTreeMap;

use nvfs_trace::op::{OpKind, OpStream};
use nvfs_types::{blocks_of_range, BlockId, ByteRange, FileId, SimTime};

/// Per-block future modification times, built from an op stream.
#[derive(Debug, Clone, Default)]
pub struct OmniscientSchedule {
    /// Sorted modification times per block.
    times: BTreeMap<BlockId, Vec<SimTime>>,
}

impl OmniscientSchedule {
    /// Builds the schedule for `ops`.
    ///
    /// A block is "modified" by a write that touches it, by a truncation
    /// that kills bytes in it, and by the deletion of its file (all three
    /// absorb dirty data, which is what the policy cares about).
    ///
    /// # Examples
    ///
    /// ```
    /// use nvfs_core::omniscient::OmniscientSchedule;
    /// use nvfs_trace::op::{Op, OpKind, OpStream};
    /// use nvfs_types::{BlockId, ByteRange, ClientId, FileId, SimTime};
    ///
    /// let ops: OpStream = vec![Op {
    ///     time: SimTime::from_secs(10),
    ///     client: ClientId(0),
    ///     kind: OpKind::Write { file: FileId(0), range: ByteRange::new(0, 4096) },
    /// }]
    /// .into_iter()
    /// .collect();
    /// let sched = OmniscientSchedule::build(&ops);
    /// let b = BlockId::new(FileId(0), 0);
    /// assert_eq!(sched.next_modify(b, SimTime::ZERO), SimTime::from_secs(10));
    /// assert_eq!(sched.next_modify(b, SimTime::from_secs(10)), SimTime::MAX);
    /// ```
    pub fn build(ops: &OpStream) -> Self {
        let mut times: BTreeMap<BlockId, Vec<SimTime>> = BTreeMap::new();
        for op in ops {
            match &op.kind {
                OpKind::Write { file, range } => {
                    for b in blocks_of_range(*file, *range) {
                        times.entry(b).or_default().push(op.time);
                    }
                }
                OpKind::Truncate { file, new_len } => {
                    // Every known block at or beyond the cut dies.
                    let first_cut = *new_len / nvfs_types::BLOCK_SIZE;
                    let keys: Vec<BlockId> = times
                        .range(BlockId::new(*file, first_cut)..BlockId::new(FileId(file.0 + 1), 0))
                        .map(|(&b, _)| b)
                        .collect();
                    for b in keys {
                        times.get_mut(&b).expect("key just scanned").push(op.time);
                    }
                }
                OpKind::Delete { file } => {
                    let keys: Vec<BlockId> = times
                        .range(BlockId::new(*file, 0)..BlockId::new(FileId(file.0 + 1), 0))
                        .map(|(&b, _)| b)
                        .collect();
                    for b in keys {
                        times.get_mut(&b).expect("key just scanned").push(op.time);
                    }
                }
                _ => {}
            }
        }
        // Ops arrive in time order, so each vector is already sorted.
        OmniscientSchedule { times }
    }

    /// The first modification of `block` strictly after `now`, or
    /// [`SimTime::MAX`] if it is never modified again (the ideal victim).
    pub fn next_modify(&self, block: BlockId, now: SimTime) -> SimTime {
        match self.times.get(&block) {
            Some(v) => {
                let idx = v.partition_point(|&t| t <= now);
                v.get(idx).copied().unwrap_or(SimTime::MAX)
            }
            None => SimTime::MAX,
        }
    }

    /// Number of blocks with any scheduled modification.
    pub fn block_count(&self) -> usize {
        self.times.len()
    }
}

/// Convenience: the block span a byte range covers (re-exported for tests).
pub fn blocks_touched(file: FileId, range: ByteRange) -> Vec<BlockId> {
    blocks_of_range(file, range).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfs_trace::op::Op;
    use nvfs_types::ClientId;

    fn write(t: u64, file: u32, range: ByteRange) -> Op {
        Op {
            time: SimTime::from_secs(t),
            client: ClientId(0),
            kind: OpKind::Write {
                file: FileId(file),
                range,
            },
        }
    }

    #[test]
    fn delete_counts_as_modification() {
        let ops: OpStream = vec![
            write(1, 0, ByteRange::new(0, 8192)),
            Op {
                time: SimTime::from_secs(5),
                client: ClientId(0),
                kind: OpKind::Delete { file: FileId(0) },
            },
        ]
        .into_iter()
        .collect();
        let s = OmniscientSchedule::build(&ops);
        let b0 = BlockId::new(FileId(0), 0);
        assert_eq!(
            s.next_modify(b0, SimTime::from_secs(1)),
            SimTime::from_secs(5)
        );
        assert_eq!(s.next_modify(b0, SimTime::from_secs(5)), SimTime::MAX);
    }

    #[test]
    fn truncate_only_touches_cut_blocks() {
        let ops: OpStream = vec![
            write(1, 0, ByteRange::new(0, 16384)), // blocks 0..4
            Op {
                time: SimTime::from_secs(5),
                client: ClientId(0),
                kind: OpKind::Truncate {
                    file: FileId(0),
                    new_len: 8192,
                },
            },
        ]
        .into_iter()
        .collect();
        let s = OmniscientSchedule::build(&ops);
        assert_eq!(
            s.next_modify(BlockId::new(FileId(0), 0), SimTime::from_secs(1)),
            SimTime::MAX,
            "block below the cut survives"
        );
        assert_eq!(
            s.next_modify(BlockId::new(FileId(0), 2), SimTime::from_secs(1)),
            SimTime::from_secs(5),
            "block above the cut dies at truncation"
        );
    }

    #[test]
    fn unknown_block_is_never_modified() {
        let s = OmniscientSchedule::build(&OpStream::new());
        assert_eq!(
            s.next_modify(BlockId::new(FileId(9), 9), SimTime::ZERO),
            SimTime::MAX
        );
        assert_eq!(s.block_count(), 0);
    }

    #[test]
    fn repeated_writes_give_successive_times() {
        let ops: OpStream = vec![
            write(1, 0, ByteRange::new(0, 100)),
            write(5, 0, ByteRange::new(0, 100)),
            write(9, 0, ByteRange::new(0, 100)),
        ]
        .into_iter()
        .collect();
        let s = OmniscientSchedule::build(&ops);
        let b = BlockId::new(FileId(0), 0);
        assert_eq!(s.next_modify(b, SimTime::ZERO), SimTime::from_secs(1));
        assert_eq!(
            s.next_modify(b, SimTime::from_secs(1)),
            SimTime::from_secs(5)
        );
        assert_eq!(
            s.next_modify(b, SimTime::from_secs(7)),
            SimTime::from_secs(9)
        );
        assert_eq!(s.next_modify(b, SimTime::from_secs(9)), SimTime::MAX);
    }
}
