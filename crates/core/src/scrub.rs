//! NVRAM corruption injection, protection modes, and the background
//! checksum scrub.
//!
//! The fault lattice so far (crashes, batteries, torn writes, partitions)
//! never corrupts a byte the hardware claims is durable; this hook asks
//! the paper's harder §2.3 question: what happens when a stray kernel
//! write, a bit flip, or media decay damages NVRAM-resident dirty data
//! *after* the cache model promised it?
//!
//! [`CorruptionInjector`] replays a compiled
//! [`CorruptionSchedule`](nvfs_faults::corrupt::CorruptionSchedule)
//! against a run under one of the three
//! [`ProtectionMode`](nvfs_nvram::protect::ProtectionMode)s and an
//! optional background scrub interval. Corruption is **pure metadata**:
//! it never alters simulated traffic, write logs, or existing counters —
//! the hook tracks which promised bytes hold wrong contents and follows
//! them to one of five mutually exclusive fates:
//!
//! * **vacated** — the damaged bytes were overwritten, truncated,
//!   deleted, invalidated, or lost to an independent fault (torn drain,
//!   dead board) before anyone consumed them; the corruption became moot.
//! * **bounced** — a stray write hit a write-protected board outside an
//!   open protect window and never landed at all (not counted as
//!   corruption).
//! * **detected** — a checksum verification (`Verified` read-back/drain,
//!   or any mode's scrub) caught the mismatch: honest, reported loss
//!   ([`Verdict::Corrupted`]).
//! * **repaired** — the scrub found a damaged *clean* block whose good
//!   copy exists on disk and restored it (charged as server read
//!   traffic).
//! * **silent** — the damaged bytes reached the server or survived to
//!   the end of the run passing as good data
//!   ([`Verdict::SilentCorruption`] — the worst outcome).
//!
//! The conservation identity `detected + silent + vacated + repaired ==
//! corrupted` holds for every mode, interval, and schedule
//! ([`ScrubReport::conservation_holds`]); `verify-scrub` proves it
//! across the whole sweep lattice.

use std::collections::{BTreeMap, BTreeSet};

use nvfs_faults::corrupt::{CorruptionEvent, CorruptionKind, CorruptionSchedule};
use nvfs_nvram::protect::{protect_window_micros, ChecksumStore, ProtectionMode};
use nvfs_oracle::{DurableMap, Verdict};
use nvfs_trace::op::{Op, OpKind};
use nvfs_types::{ByteRange, ClientId, FileId, RangeSet, SimDuration, SimTime, BLOCK_SIZE};

use crate::config::CacheModelKind;
use crate::session::{CrashEvent, DrainEvent, FlushEvent, OpAction, RunHook, SimEngine};

/// Per-client corruption bookkeeping: which promised (dirty) bytes hold
/// wrong contents, how many clean-region bytes are damaged, and the
/// per-block checksum table that models how the damage is detectable.
#[derive(Debug, Clone, Default)]
struct ClientLedger {
    /// Corrupt byte ranges within the client's NVRAM-dirty contents.
    dirty: DurableMap,
    /// Corrupt bytes in the board's clean region (unified model only —
    /// elsewhere the non-dirty region holds no data worth repairing).
    clean_bytes: u64,
    /// Block checksums: mismatched exactly where `dirty` has bytes.
    sums: ChecksumStore,
}

/// End-of-run accounting for one corruption-injected session.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScrubReport {
    /// The protection mode the run was judged under.
    pub mode: ProtectionMode,
    /// Corruption events that landed on a live board.
    pub events: u64,
    /// Bytes of promised (dirty) data corrupted.
    pub bytes_corrupted_dirty: u64,
    /// Bytes of clean-region data corrupted (unified model only).
    pub bytes_corrupted_clean: u64,
    /// Stray-write bytes bounced by write protection (never landed).
    pub bytes_bounced: u64,
    /// Corrupt bytes caught by a checksum check — honest, reported loss.
    pub bytes_detected: u64,
    /// Corrupt bytes that reached the server (or survived the run)
    /// passing as good data — the undetected-corruption number.
    pub bytes_silent: u64,
    /// Corrupt clean bytes the scrub restored from disk.
    pub bytes_repaired: u64,
    /// Corrupt bytes mooted before consumption (overwrite, truncate,
    /// delete, invalidation, torn/dead-board loss).
    pub bytes_vacated: u64,
    /// Background scrub sweeps performed.
    pub scrub_ticks: u64,
    /// Dirty blocks the scrub read across all sweeps (its cost driver).
    pub blocks_scanned: u64,
    /// One verdict per detected/silent corrupt range, in discovery
    /// order: [`Verdict::Corrupted`] or [`Verdict::SilentCorruption`].
    pub verdicts: Vec<Verdict>,
}

impl ScrubReport {
    /// Corrupt promised bytes that were *not* repaired: detected loss,
    /// silent propagation, and vacated damage.
    pub fn bytes_unrecoverable(&self) -> u64 {
        self.bytes_detected + self.bytes_silent + self.bytes_vacated
    }

    /// The conservation identity: every corrupt byte lands in exactly
    /// one of the four terminal buckets.
    pub fn conservation_holds(&self) -> bool {
        self.bytes_unrecoverable() + self.bytes_repaired
            == self.bytes_corrupted_dirty + self.bytes_corrupted_clean
    }

    /// Silent corruption findings among the verdicts.
    pub fn silent_verdicts(&self) -> usize {
        self.verdicts
            .iter()
            .filter(|v| matches!(v, Verdict::SilentCorruption { .. }))
            .count()
    }

    /// Folds `other` into `self` (order matters only for `verdicts`,
    /// which append; `mode` must match).
    pub fn merge(&mut self, other: &ScrubReport) {
        debug_assert_eq!(self.mode, other.mode, "merging reports across modes");
        self.events += other.events;
        self.bytes_corrupted_dirty += other.bytes_corrupted_dirty;
        self.bytes_corrupted_clean += other.bytes_corrupted_clean;
        self.bytes_bounced += other.bytes_bounced;
        self.bytes_detected += other.bytes_detected;
        self.bytes_silent += other.bytes_silent;
        self.bytes_repaired += other.bytes_repaired;
        self.bytes_vacated += other.bytes_vacated;
        self.scrub_ticks += other.scrub_ticks;
        self.blocks_scanned += other.blocks_scanned;
        self.verdicts.extend(other.verdicts.iter().copied());
    }
}

/// Hook: replays a [`CorruptionSchedule`] under a
/// [`ProtectionMode`] with an optional background scrub, classifying
/// every corrupt byte's fate into a [`ScrubReport`] (see the module
/// docs for the decision tree). Requires the serial drive loop — it
/// consumes per-op [`FlushEvent`]s to catch corrupt data the moment it
/// propagates to the server.
#[derive(Debug)]
pub struct CorruptionInjector<'s> {
    schedule: &'s CorruptionSchedule,
    mode: ProtectionMode,
    scrub_interval: Option<SimDuration>,
    next_event: usize,
    next_scrub: SimTime,
    ledgers: BTreeMap<ClientId, ClientLedger>,
    in_transit: BTreeMap<(ClientId, SimTime), ClientLedger>,
    last_write: BTreeMap<ClientId, SimTime>,
    crashed: BTreeSet<ClientId>,
    report: ScrubReport,
}

impl<'s> CorruptionInjector<'s> {
    /// An injector over a compiled schedule, judged under `mode`, with a
    /// background scrub sweeping every `scrub_interval` (or never, when
    /// `None`).
    pub fn new(
        schedule: &'s CorruptionSchedule,
        mode: ProtectionMode,
        scrub_interval: Option<SimDuration>,
    ) -> Self {
        CorruptionInjector {
            schedule,
            mode,
            scrub_interval,
            next_event: 0,
            next_scrub: match scrub_interval {
                Some(interval) => SimTime::ZERO + interval,
                None => SimTime::MAX,
            },
            ledgers: BTreeMap::new(),
            in_transit: BTreeMap::new(),
            last_write: BTreeMap::new(),
            crashed: BTreeSet::new(),
            report: ScrubReport {
                mode,
                ..ScrubReport::default()
            },
        }
    }

    /// The finished report (call after the session ran).
    pub fn into_report(self) -> ScrubReport {
        self.report
    }

    /// Processes corruption events and scrub ticks chronologically up to
    /// `now`; on a time tie the event lands first (the scrub then sees
    /// the fresh damage in the same instant).
    fn advance(&mut self, engine: &mut SimEngine<'_>, now: SimTime) {
        loop {
            let event_due = self
                .schedule
                .events
                .get(self.next_event)
                .map(|e| e.time)
                .filter(|&t| t <= now);
            let tick_due = (self.next_scrub <= now).then_some(self.next_scrub);
            match (event_due, tick_due) {
                (Some(et), Some(tt)) if et > tt => self.scrub_tick(engine, tt),
                (Some(_), _) => {
                    let ev = self.schedule.events[self.next_event];
                    self.inject(engine, &ev);
                    self.next_event += 1;
                }
                (None, Some(tt)) => self.scrub_tick(engine, tt),
                (None, None) => break,
            }
        }
    }

    /// Applies one corruption event to its target board. No-op when the
    /// client has no live cache (never active, or already crashed).
    fn inject(&mut self, engine: &SimEngine<'_>, ev: &CorruptionEvent) {
        self.resync(engine, ev.client);
        let Some(cache) = engine.clients.get(&ev.client) else {
            return;
        };

        // Write-protected boards bounce stray writes outside the open
        // window after a legitimate write; physical damage bypasses.
        if ev.kind.respects_write_protect() && self.mode.bounces_stray_writes() {
            let open = self.last_write.get(&ev.client).is_some_and(|lw| {
                let t = ev.time.as_micros();
                t >= lw.as_micros() && t <= lw.as_micros() + protect_window_micros()
            });
            if !open {
                self.report.bytes_bounced += ev.len_bytes;
                return;
            }
        }

        // Flatten the board: dirty contents first (in deterministic
        // cache order), clean region after, over [0, capacity).
        let capacity = engine.config.nvram_bytes;
        let mut flat: Vec<(FileId, ByteRange, u64)> = Vec::new();
        let mut cursor = 0u64;
        for (file, set) in cache.nvram_dirty_contents() {
            for r in set.iter() {
                flat.push((file, r, cursor));
                cursor += r.len();
            }
        }
        let dirty_total = cursor;

        let (hits, clean_hit) = match ev.kind {
            CorruptionKind::Decay => {
                let hits: Vec<(FileId, ByteRange)> = flat.iter().map(|&(f, r, _)| (f, r)).collect();
                (hits, capacity.saturating_sub(dirty_total))
            }
            CorruptionKind::StrayWrite | CorruptionKind::BitFlip => {
                if capacity == 0 {
                    return;
                }
                let off = ((ev.offset_fraction * capacity as f64) as u64).min(capacity - 1);
                let len = ev.len_bytes.max(1).min(capacity - off);
                let target = ByteRange::new(off, off + len);
                let mut hits = Vec::new();
                for &(file, r, flat_start) in &flat {
                    let seg = ByteRange::new(flat_start, flat_start + r.len());
                    if let Some(ov) = seg.intersection(target) {
                        if !ov.is_empty() {
                            let s = r.start + (ov.start - seg.start);
                            hits.push((file, ByteRange::new(s, s + ov.len())));
                        }
                    }
                }
                let clean_region = ByteRange::new(dirty_total.min(capacity), capacity);
                let clean_hit = clean_region
                    .intersection(target)
                    .map(ByteRange::len)
                    .unwrap_or(0);
                (hits, clean_hit)
            }
        };

        let unified = engine.config.model == CacheModelKind::Unified;
        let ledger = self.ledgers.entry(ev.client).or_default();
        let mut added_dirty = 0;
        let mut blocks: BTreeSet<(FileId, u64)> = BTreeSet::new();
        for &(file, r) in &hits {
            added_dirty += ledger.dirty.entry(file).or_default().insert(r);
            for b in r.start / BLOCK_SIZE..r.end.div_ceil(BLOCK_SIZE) {
                blocks.insert((file, b));
            }
        }
        for (f, b) in blocks {
            // Only damage a still-clean checksum: a block hit twice stays
            // mismatched (two scribbles never restore the original).
            if ledger.sums.verify(f, b) {
                ledger.sums.corrupt(f, b, ev.seq);
            }
        }
        // Clean-region damage matters only where the non-dirty region
        // holds real (re-readable) data: the unified model's read cache.
        // Write-aside boards keep nothing clean worth repairing.
        let added_clean = if unified {
            let clean_room = capacity.saturating_sub(dirty_total);
            clean_hit.min(clean_room.saturating_sub(ledger.clean_bytes))
        } else {
            0
        };
        ledger.clean_bytes += added_clean;

        self.report.events += 1;
        self.report.bytes_corrupted_dirty += added_dirty;
        self.report.bytes_corrupted_clean += added_clean;
        nvfs_obs::event("corruption_injected", ev.time.as_micros())
            .str("kind", ev.kind.label())
            .u64("client", ev.client.0 as u64)
            .u64("dirty_bytes", added_dirty)
            .u64("clean_bytes", added_clean)
            .emit();
    }

    /// One background scrub sweep: reads every dirty block of every live
    /// board (the scan cost), detects checksum mismatches, repairs clean
    /// blocks from their disk copy, and reports dirty mismatches as
    /// honest unrecoverable loss (dirty data has no copy anywhere else).
    fn scrub_tick(&mut self, engine: &mut SimEngine<'_>, at: SimTime) {
        self.report.scrub_ticks += 1;
        let mut blocks = 0u64;
        for cache in engine.clients.values() {
            for (_, set) in cache.nvram_dirty_contents() {
                for r in set.iter() {
                    blocks += r.end.div_ceil(BLOCK_SIZE) - r.start / BLOCK_SIZE;
                }
            }
        }
        self.report.blocks_scanned += blocks;

        let clients: Vec<ClientId> = self.ledgers.keys().copied().collect();
        for cid in clients {
            self.resync(engine, cid);
            let Some(ledger) = self.ledgers.get_mut(&cid) else {
                continue;
            };
            // Dirty mismatches: detected, but unrecoverable — the only
            // copy of dirty data is the damaged one.
            let mut detected = 0;
            for (file, set) in std::mem::take(&mut ledger.dirty) {
                detected += set.len_bytes();
                for range in set.iter() {
                    self.report
                        .verdicts
                        .push(Verdict::Corrupted { file, range });
                }
                ledger.sums.forget_file(file);
            }
            self.report.bytes_detected += detected;
            // Clean mismatches: the good copy is on disk — repair it,
            // charging the re-read as server read traffic.
            if ledger.clean_bytes > 0 {
                engine.stats.server_read_bytes += ledger.clean_bytes;
                self.report.bytes_repaired += ledger.clean_bytes;
                nvfs_obs::event("scrub_repair", at.as_micros())
                    .u64("client", cid.0 as u64)
                    .u64("bytes", ledger.clean_bytes)
                    .emit();
                ledger.clean_bytes = 0;
            }
            if ledger.dirty.is_empty() && ledger.clean_bytes == 0 {
                self.ledgers.remove(&cid);
            }
        }
        self.next_scrub += self
            .scrub_interval
            .expect("tick only fires with an interval");
    }

    /// Drops ledger ranges that are no longer dirty in the live cache:
    /// data invalidated without a flush event (consistency-disable,
    /// stale-open invalidation) was discarded, so its damage is moot.
    fn resync(&mut self, engine: &SimEngine<'_>, client: ClientId) {
        let Some(ledger) = self.ledgers.get_mut(&client) else {
            return;
        };
        let Some(cache) = engine.clients.get(&client) else {
            return;
        };
        let mut current: BTreeMap<FileId, RangeSet> = BTreeMap::new();
        for (file, set) in cache.nvram_dirty_contents() {
            current.entry(file).or_default().union_with(set);
        }
        let mut vacated = 0;
        ledger.dirty.retain(|file, set| match current.get(file) {
            Some(cur) => {
                let mut gone = set.clone();
                gone.subtract(cur);
                vacated += set.subtract(&gone);
                !set.is_empty()
            }
            None => {
                vacated += set.len_bytes();
                false
            }
        });
        if vacated > 0 {
            self.report.bytes_vacated += vacated;
            Self::prune_sums(ledger);
        }
    }

    /// Heals checksum entries whose blocks no longer overlap any corrupt
    /// ledger range, keeping `sums.mismatched()` aligned with `dirty`.
    fn prune_sums(ledger: &mut ClientLedger) {
        for (file, block) in ledger.sums.mismatched() {
            let span = ByteRange::new(block * BLOCK_SIZE, (block + 1) * BLOCK_SIZE);
            let still_corrupt = ledger
                .dirty
                .get(&file)
                .is_some_and(|set| set.overlap_bytes(span) > 0);
            if !still_corrupt {
                ledger.sums.forget(file, block);
            }
        }
    }

    /// Classifies corrupt ranges that left a live cache as propagated:
    /// under `Verified` the flush's checksum read-back catches them
    /// (detected); otherwise they reach the server silently.
    fn classify_propagated(&mut self, engine: &SimEngine<'_>, client: ClientId, file: FileId) {
        let Some(ledger) = self.ledgers.get_mut(&client) else {
            return;
        };
        let Some(set) = ledger.dirty.get_mut(&file) else {
            return;
        };
        let mut still = RangeSet::default();
        if let Some(cache) = engine.clients.get(&client) {
            for (f, s) in cache.nvram_dirty_contents() {
                if f == file {
                    still.union_with(s);
                }
            }
        }
        let mut gone = set.clone();
        gone.subtract(&still);
        let bytes = gone.len_bytes();
        if bytes == 0 {
            return;
        }
        set.subtract(&gone);
        if set.is_empty() {
            ledger.dirty.remove(&file);
        }
        if self.mode.verifies_reads() {
            self.report.bytes_detected += bytes;
            for range in gone.iter() {
                self.report
                    .verdicts
                    .push(Verdict::Corrupted { file, range });
            }
        } else {
            self.report.bytes_silent += bytes;
            for range in gone.iter() {
                self.report
                    .verdicts
                    .push(Verdict::SilentCorruption { file, range });
            }
        }
        Self::prune_sums(ledger);
    }
}

impl RunHook for CorruptionInjector<'_> {
    // Keeps the default `shard_barriers` (None) and consumes flush
    // events: corruption classification is inherently per-op.

    fn before_op(&mut self, engine: &mut SimEngine<'_>, _index: usize, op: &Op) -> OpAction {
        self.advance(engine, op.time);
        match &op.kind {
            OpKind::Write { file, range } => {
                if !self.crashed.contains(&op.client) {
                    self.last_write.insert(op.client, op.time);
                }
                // Overwritten damage is moot in every mode: write
                // allocation replaces contents (and the checksum)
                // without reading the old bytes back.
                if engine.clients.contains_key(&op.client) {
                    if let Some(ledger) = self.ledgers.get_mut(&op.client) {
                        if let Some(set) = ledger.dirty.get_mut(file) {
                            let removed = set.remove(*range);
                            if removed > 0 {
                                if set.is_empty() {
                                    ledger.dirty.remove(file);
                                }
                                self.report.bytes_vacated += removed;
                                Self::prune_sums(ledger);
                            }
                        }
                    }
                }
            }
            OpKind::Truncate { file, new_len } => {
                for ledger in self.ledgers.values_mut() {
                    if let Some(set) = ledger.dirty.get_mut(file) {
                        let removed = set.truncate(*new_len);
                        if removed > 0 {
                            if set.is_empty() {
                                ledger.dirty.remove(file);
                            }
                            self.report.bytes_vacated += removed;
                            Self::prune_sums(ledger);
                        }
                    }
                }
            }
            OpKind::Delete { file } => {
                for ledger in self.ledgers.values_mut() {
                    if let Some(set) = ledger.dirty.remove(file) {
                        self.report.bytes_vacated += set.len_bytes();
                        ledger.sums.forget_file(*file);
                    }
                }
            }
            _ => {}
        }
        OpAction::Apply
    }

    fn on_flush(&mut self, engine: &mut SimEngine<'_>, event: &FlushEvent) {
        self.classify_propagated(engine, event.client, event.file);
    }

    fn on_crash(&mut self, _engine: &mut SimEngine<'_>, event: &CrashEvent) {
        self.crashed.insert(event.client);
        if let Some(ledger) = self.ledgers.remove(&event.client) {
            self.in_transit.insert((event.client, event.time), ledger);
        }
    }

    fn on_drain(&mut self, _engine: &mut SimEngine<'_>, event: &DrainEvent) {
        let Some(ledger) = self.in_transit.remove(&(event.client, event.crash_time)) else {
            return;
        };
        match &event.recovered {
            Some(recovered) => {
                for (file, set) in &ledger.dirty {
                    let empty = RangeSet::default();
                    let rec = recovered.get(file).unwrap_or(&empty);
                    // Drained corrupt bytes reached the server; the rest
                    // fell to the torn-drain cut (already honest loss).
                    let mut missing = set.clone();
                    missing.subtract(rec);
                    let mut drained = set.clone();
                    drained.subtract(&missing);
                    self.report.bytes_vacated += missing.len_bytes();
                    let bytes = drained.len_bytes();
                    if bytes == 0 {
                        continue;
                    }
                    if self.mode.verifies_reads() {
                        self.report.bytes_detected += bytes;
                        for range in drained.iter() {
                            self.report
                                .verdicts
                                .push(Verdict::Corrupted { file: *file, range });
                        }
                    } else {
                        self.report.bytes_silent += bytes;
                        for range in drained.iter() {
                            self.report
                                .verdicts
                                .push(Verdict::SilentCorruption { file: *file, range });
                        }
                    }
                }
            }
            None => {
                // Dead board: everything on it — damaged or not — is
                // already reported as battery loss; the corruption is moot.
                for set in ledger.dirty.values() {
                    self.report.bytes_vacated += set.len_bytes();
                }
            }
        }
        // The board's clean region dies with the board either way.
        self.report.bytes_vacated += ledger.clean_bytes;
    }

    fn finish(&mut self, engine: &mut SimEngine<'_>) {
        // Remaining scrub ticks run on the sim clock up to the end of
        // the trace; events scheduled past it still land (the plan's
        // duration may exceed the op stream's).
        self.advance(engine, engine.sim_end());
        while self.next_event < self.schedule.events.len() {
            let ev = self.schedule.events[self.next_event];
            self.inject(engine, &ev);
            self.next_event += 1;
        }

        // Final audit. Dirty data still cached counts as eventual write
        // traffic (the engine's end-of-trace accounting), so corrupt
        // ranges still present will propagate: Verified catches them at
        // that future read-back, every other mode ships them silently.
        let clients: Vec<ClientId> = self.ledgers.keys().copied().collect();
        for cid in clients {
            self.resync(engine, cid);
        }
        for (_, ledger) in std::mem::take(&mut self.ledgers) {
            for (file, set) in &ledger.dirty {
                let bytes = set.len_bytes();
                if self.mode.verifies_reads() {
                    self.report.bytes_detected += bytes;
                    for range in set.iter() {
                        self.report
                            .verdicts
                            .push(Verdict::Corrupted { file: *file, range });
                    }
                } else {
                    self.report.bytes_silent += bytes;
                    for range in set.iter() {
                        self.report
                            .verdicts
                            .push(Verdict::SilentCorruption { file: *file, range });
                    }
                }
            }
            // Clean blocks always have a good disk copy: the eventual
            // re-read repairs them (charged), scrub or no scrub.
            if ledger.clean_bytes > 0 {
                engine.stats.server_read_bytes += ledger.clean_bytes;
                self.report.bytes_repaired += ledger.clean_bytes;
            }
        }
        // Boards still in transit (no drain ever ran — possible only
        // without a FaultInjector downstream): contents never consumed.
        for (_, ledger) in std::mem::take(&mut self.in_transit) {
            for set in ledger.dirty.values() {
                self.report.bytes_vacated += set.len_bytes();
            }
            self.report.bytes_vacated += ledger.clean_bytes;
        }
    }

    fn collect(&mut self, _engine: &mut SimEngine<'_>) {
        let r = &self.report;
        nvfs_obs::counter_add("corruption.events", r.events);
        nvfs_obs::counter_add("corruption.bytes_dirty", r.bytes_corrupted_dirty);
        nvfs_obs::counter_add("corruption.bytes_clean", r.bytes_corrupted_clean);
        nvfs_obs::counter_add("scrub.ticks", r.scrub_ticks);
        nvfs_obs::counter_add("scrub.blocks_scanned", r.blocks_scanned);
        nvfs_obs::counter_add("scrub.bytes_repaired", r.bytes_repaired);
        nvfs_obs::counter_add("scrub.bytes_detected", r.bytes_detected);
        nvfs_obs::counter_add("scrub.bytes_silent", r.bytes_silent);
        nvfs_obs::counter_add("scrub.bytes_vacated", r.bytes_vacated);
        nvfs_obs::counter_add("scrub.bytes_bounced", r.bytes_bounced);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::session::{FaultInjector, ObsRecorder, OracleJudge, SimSession};
    use nvfs_faults::corrupt::CorruptionPlanConfig;
    use nvfs_faults::{FaultPlanConfig, FaultSchedule};
    use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};

    fn traces() -> SpriteTraceSet {
        SpriteTraceSet::generate(&TraceSetConfig::tiny())
    }

    fn corruption(seed: u64) -> CorruptionSchedule {
        let plan = CorruptionPlanConfig::new(8, SimDuration::from_hours(24))
            .with_stray_writes(6)
            .with_bit_flips(4)
            .with_decay_events(2);
        CorruptionSchedule::compile(seed, &plan).unwrap()
    }

    fn run(
        seed: u64,
        mode: ProtectionMode,
        interval: Option<SimDuration>,
    ) -> (ScrubReport, nvfs_oracle::OracleSummary) {
        let traces = traces();
        let ops = traces.trace(6).ops();
        let config = SimConfig::unified(8 << 20, 16 * BLOCK_SIZE);
        let fault_plan =
            FaultPlanConfig::new(8, SimDuration::from_hours(24)).with_client_crashes(3);
        let schedule = FaultSchedule::compile(seed, &fault_plan).unwrap();
        let corruption = corruption(seed);
        let mut faults = FaultInjector::new(&schedule);
        let mut corrupt = CorruptionInjector::new(&corruption, mode, interval);
        let mut obs = ObsRecorder::new();
        let mut judge = OracleJudge::new();
        SimSession::new(&config).run(ops, &mut [&mut faults, &mut corrupt, &mut obs, &mut judge]);
        (corrupt.into_report(), judge.into_oracle().summary())
    }

    #[test]
    fn conservation_holds_for_every_mode_and_interval() {
        for mode in ProtectionMode::ALL {
            for interval in [
                None,
                Some(SimDuration::from_secs(1)),
                Some(SimDuration::from_secs(60)),
                Some(SimDuration::from_secs(3600)),
            ] {
                let (report, oracle) = run(42, mode, interval);
                assert!(
                    report.conservation_holds(),
                    "{mode} {interval:?}: {report:?}"
                );
                assert!(report.events > 0, "schedule must land events");
                assert_eq!(oracle.violations(), 0, "oracle stays clean: {mode}");
            }
        }
    }

    #[test]
    fn verified_mode_never_goes_silent() {
        for interval in [None, Some(SimDuration::from_secs(60))] {
            let (report, _) = run(42, ProtectionMode::Verified, interval);
            assert_eq!(report.bytes_silent, 0, "{interval:?}: {report:?}");
            assert_eq!(report.silent_verdicts(), 0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(
            7,
            ProtectionMode::Unprotected,
            Some(SimDuration::from_secs(60)),
        );
        let b = run(
            7,
            ProtectionMode::Unprotected,
            Some(SimDuration::from_secs(60)),
        );
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn corruption_is_pure_metadata() {
        // A corruption-injected run must leave the simulated traffic and
        // the write log byte-identical to the same run without it (the
        // only stats delta allowed is the scrub's repair read charge,
        // absent when no clean bytes are repaired under interval None
        // and a write-aside... simplest: compare reliability + writes).
        let traces = traces();
        let ops = traces.trace(6).ops();
        let config = SimConfig::unified(8 << 20, 16 * BLOCK_SIZE);
        let fault_plan =
            FaultPlanConfig::new(8, SimDuration::from_hours(24)).with_client_crashes(3);
        let schedule = FaultSchedule::compile(11, &fault_plan).unwrap();
        let sim = crate::ClusterSim::new(config.clone());
        let baseline = sim.run_with_faults(ops, &schedule);
        let corruption = corruption(11);
        let (with_corruption, oracle, report) = sim.run_with_corruption_verified(
            ops,
            &schedule,
            &corruption,
            ProtectionMode::Unprotected,
            None,
        );
        assert_eq!(baseline.reliability, with_corruption.reliability);
        assert_eq!(baseline.writes, with_corruption.writes);
        assert_eq!(
            baseline.stats.server_write_bytes,
            with_corruption.stats.server_write_bytes
        );
        assert_eq!(oracle.summary().violations(), 0);
        assert!(report.conservation_holds());
    }

    #[test]
    fn write_protection_bounces_strays_but_not_flips() {
        let (unprotected, _) = run(42, ProtectionMode::Unprotected, None);
        let (protected, _) = run(42, ProtectionMode::WriteProtected, None);
        assert_eq!(unprotected.bytes_bounced, 0);
        // The same schedule under write protection bounces at least the
        // strays that fell outside every open window.
        assert!(
            protected.bytes_bounced > 0,
            "some stray must miss a window: {protected:?}"
        );
        assert!(
            protected.bytes_corrupted_dirty + protected.bytes_corrupted_clean
                <= unprotected.bytes_corrupted_dirty + unprotected.bytes_corrupted_clean,
            "protection cannot increase damage"
        );
    }

    #[test]
    fn scrub_converts_silent_to_detected() {
        let (no_scrub, _) = run(42, ProtectionMode::Unprotected, None);
        let (scrubbed, _) = run(
            42,
            ProtectionMode::Unprotected,
            Some(SimDuration::from_secs(1)),
        );
        assert!(scrubbed.scrub_ticks > 0);
        assert!(
            scrubbed.bytes_silent <= no_scrub.bytes_silent,
            "a tight scrub can only shrink the silent window: {} vs {}",
            scrubbed.bytes_silent,
            no_scrub.bytes_silent
        );
    }
}
