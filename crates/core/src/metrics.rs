//! Traffic counters.
//!
//! These are the quantities the paper's simulator reports (§2.2): bytes
//! read and written by applications, bytes transferred to and from the file
//! server broken down by cause, dead bytes absorbed by the caches, memory
//! bus traffic, and NVRAM access counts. Figures 2–6 are all derived from
//! these counters.

use std::ops::AddAssign;

/// Aggregated traffic statistics for one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Bytes read by applications.
    pub app_read_bytes: u64,
    /// Bytes written by applications.
    pub app_write_bytes: u64,
    /// Bytes fetched from the server into client caches (whole blocks).
    pub server_read_bytes: u64,
    /// Bytes written from client caches to the server, all causes.
    pub server_write_bytes: u64,
    /// …of which: written by the 30-second delayed write-back.
    pub writeback_bytes: u64,
    /// …of which: written because a dirty block was replaced.
    pub replacement_bytes: u64,
    /// …of which: recalled by the consistency protocol (including flushes
    /// when caching is disabled for a file).
    pub callback_bytes: u64,
    /// …of which: flushed because a process migrated.
    pub migration_bytes: u64,
    /// …of which: forced by application fsync.
    pub fsync_bytes: u64,
    /// …of which: drained from a relocated NVRAM board by a recovery
    /// agent after a client crash (§4).
    pub recovery_bytes: u64,
    /// Bytes written straight through to the server while caching was
    /// disabled by concurrent write-sharing.
    pub concurrent_write_bytes: u64,
    /// Bytes read straight from the server while caching was disabled.
    pub concurrent_read_bytes: u64,
    /// Dirty bytes still cached when the trace ended (the paper counts
    /// these as eventual write traffic, making its figures pessimistic).
    pub remaining_dirty_bytes: u64,
    /// Dirty bytes that died in the cache by being overwritten.
    pub overwritten_dead_bytes: u64,
    /// Dirty bytes that died in the cache by deletion or truncation.
    pub deleted_dead_bytes: u64,
    /// Client memory-bus bytes moved for file data (writes into caches,
    /// write-aside duplication, unified promotion/demotion transfers).
    pub bus_bytes: u64,
    /// NVRAM read accesses.
    pub nvram_reads: u64,
    /// NVRAM write accesses.
    pub nvram_writes: u64,
    /// Bytes moved through the NVRAM.
    pub nvram_bytes: u64,
    /// Hybrid model only: dirty bytes that aged past the write-back delay
    /// in the volatile cache before migrating to NVRAM — the bytes that
    /// were vulnerable to a crash for the full 30-second window.
    pub aged_into_nvram_bytes: u64,
    /// Read block requests that hit a client cache.
    pub read_hit_blocks: u64,
    /// Read block requests that missed and went to the server.
    pub read_miss_blocks: u64,
}

impl TrafficStats {
    /// Net write traffic as a percentage of application writes, counting
    /// bytes still dirty at the end of the trace (the paper's convention
    /// for Figures 2–4).
    pub fn net_write_traffic_pct(&self) -> f64 {
        if self.app_write_bytes == 0 {
            return 0.0;
        }
        100.0
            * (self.server_write_bytes + self.concurrent_write_bytes + self.remaining_dirty_bytes)
                as f64
            / self.app_write_bytes as f64
    }

    /// Net total (read + write) traffic as a percentage of application
    /// traffic (the paper's convention for Figures 5–6).
    pub fn net_total_traffic_pct(&self) -> f64 {
        let app = self.app_read_bytes + self.app_write_bytes;
        if app == 0 {
            return 0.0;
        }
        let server = self.server_read_bytes
            + self.server_write_bytes
            + self.concurrent_read_bytes
            + self.concurrent_write_bytes
            + self.remaining_dirty_bytes;
        100.0 * server as f64 / app as f64
    }

    /// Total bytes the caches absorbed (dirty bytes that died in place).
    pub fn absorbed_bytes(&self) -> u64 {
        self.overwritten_dead_bytes + self.deleted_dead_bytes
    }

    /// Read hit ratio over block requests.
    pub fn read_hit_ratio(&self) -> f64 {
        let total = self.read_hit_blocks + self.read_miss_blocks;
        if total == 0 {
            return 0.0;
        }
        self.read_hit_blocks as f64 / total as f64
    }

    /// Total NVRAM accesses.
    pub fn nvram_accesses(&self) -> u64 {
        self.nvram_reads + self.nvram_writes
    }

    /// Folds this run's totals into the `core.*` counters of the
    /// `nvfs-obs` metrics registry. Called once per completed run (not per
    /// op) so instrumentation stays off the simulator's hot path.
    pub fn fold_into_obs(&self) {
        use nvfs_obs::counter_add;
        counter_add("core.app_read_bytes", self.app_read_bytes);
        counter_add("core.app_write_bytes", self.app_write_bytes);
        counter_add("core.server_read_bytes", self.server_read_bytes);
        counter_add("core.server_write_bytes", self.server_write_bytes);
        counter_add("core.writeback_bytes", self.writeback_bytes);
        counter_add("core.replacement_bytes", self.replacement_bytes);
        counter_add("core.callback_bytes", self.callback_bytes);
        counter_add("core.migration_bytes", self.migration_bytes);
        counter_add("core.fsync_bytes", self.fsync_bytes);
        counter_add("core.recovery_bytes", self.recovery_bytes);
        counter_add("core.concurrent_write_bytes", self.concurrent_write_bytes);
        counter_add("core.concurrent_read_bytes", self.concurrent_read_bytes);
        counter_add("core.remaining_dirty_bytes", self.remaining_dirty_bytes);
        counter_add("core.overwritten_dead_bytes", self.overwritten_dead_bytes);
        counter_add("core.deleted_dead_bytes", self.deleted_dead_bytes);
        counter_add("core.bus_bytes", self.bus_bytes);
        counter_add("core.nvram_reads", self.nvram_reads);
        counter_add("core.nvram_writes", self.nvram_writes);
        counter_add("core.nvram_bytes", self.nvram_bytes);
        counter_add("core.aged_into_nvram_bytes", self.aged_into_nvram_bytes);
        counter_add("core.read_hit_blocks", self.read_hit_blocks);
        counter_add("core.read_miss_blocks", self.read_miss_blocks);
    }
}

impl AddAssign for TrafficStats {
    fn add_assign(&mut self, o: TrafficStats) {
        self.app_read_bytes += o.app_read_bytes;
        self.app_write_bytes += o.app_write_bytes;
        self.server_read_bytes += o.server_read_bytes;
        self.server_write_bytes += o.server_write_bytes;
        self.writeback_bytes += o.writeback_bytes;
        self.replacement_bytes += o.replacement_bytes;
        self.callback_bytes += o.callback_bytes;
        self.migration_bytes += o.migration_bytes;
        self.fsync_bytes += o.fsync_bytes;
        self.recovery_bytes += o.recovery_bytes;
        self.concurrent_write_bytes += o.concurrent_write_bytes;
        self.concurrent_read_bytes += o.concurrent_read_bytes;
        self.remaining_dirty_bytes += o.remaining_dirty_bytes;
        self.overwritten_dead_bytes += o.overwritten_dead_bytes;
        self.deleted_dead_bytes += o.deleted_dead_bytes;
        self.bus_bytes += o.bus_bytes;
        self.aged_into_nvram_bytes += o.aged_into_nvram_bytes;
        self.nvram_reads += o.nvram_reads;
        self.nvram_writes += o.nvram_writes;
        self.nvram_bytes += o.nvram_bytes;
        self.read_hit_blocks += o.read_hit_blocks;
        self.read_miss_blocks += o.read_miss_blocks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_write_traffic_includes_remaining() {
        let s = TrafficStats {
            app_write_bytes: 1000,
            server_write_bytes: 300,
            remaining_dirty_bytes: 100,
            ..TrafficStats::default()
        };
        assert_eq!(s.net_write_traffic_pct(), 40.0);
    }

    #[test]
    fn empty_stats_have_zero_percentages() {
        let s = TrafficStats::default();
        assert_eq!(s.net_write_traffic_pct(), 0.0);
        assert_eq!(s.net_total_traffic_pct(), 0.0);
        assert_eq!(s.read_hit_ratio(), 0.0);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = TrafficStats {
            app_read_bytes: 10,
            nvram_reads: 1,
            ..TrafficStats::default()
        };
        let b = TrafficStats {
            app_read_bytes: 5,
            nvram_writes: 2,
            ..TrafficStats::default()
        };
        a += b;
        assert_eq!(a.app_read_bytes, 15);
        assert_eq!(a.nvram_accesses(), 3);
    }

    #[test]
    fn total_traffic_counts_reads_and_writes() {
        let s = TrafficStats {
            app_read_bytes: 500,
            app_write_bytes: 500,
            server_read_bytes: 200,
            server_write_bytes: 200,
            concurrent_read_bytes: 50,
            concurrent_write_bytes: 50,
            ..TrafficStats::default()
        };
        assert_eq!(s.net_total_traffic_pct(), 50.0);
    }

    #[test]
    fn hit_ratio() {
        let s = TrafficStats {
            read_hit_blocks: 3,
            read_miss_blocks: 1,
            ..TrafficStats::default()
        };
        assert_eq!(s.read_hit_ratio(), 0.75);
    }
}
