//! The deterministic network layer between clients and the server.
//!
//! Until PR 7, every client→server interaction in the simulator was an
//! instant, infallible function call — the paper's claim that NVRAM lets
//! a client ride out an unreachable server (§2.3–§2.5) was never actually
//! exercised. This module puts a wire in the middle:
//!
//! * every server-interacting op, and every flush notification, becomes
//!   an explicit RPC `(client id, request id, payload kind)`;
//! * a [`NetFaultInjector`] hook resolves each RPC through the seeded
//!   [`NetFaultPlan`]: per-message drop/duplication/delay draws, timed
//!   partitions, and a client-side state machine with retransmit
//!   timeouts, capped exponential backoff with deterministic jitter, and
//!   a bounded in-flight window;
//! * the server side deduplicates by request id, so retransmissions and
//!   wire duplicates are applied at most once;
//! * the whole exchange is written to a [`WireEvent`] transcript that the
//!   [`NetJudge`] replays against the wire contract (no acked request
//!   lost, no request double-applied, no delivery inside a partition).
//!
//! # Control plane vs data plane
//!
//! Consistency *control* traffic (opens, recalls, flush notes) keeps its
//! synchronous logical semantics — the simulator's server bookkeeping
//! proceeds even while a client is severed, as if the session state were
//! replicated — but the wire chatter is still simulated, judged, and
//! billed to `net.*` counters. *Data*-plane effects respect partitions
//! for real: bytes a cache model is forced to flush while its link is
//! severed are shed (see [`ClientCache::take_shed_writes`]), and a
//! recovered NVRAM board cannot drain while a whole-server partition is
//! open ([`SimEngine::recovery_drain_time`]). That split is what
//! reproduces the paper's loss ordering under partitions: a volatile
//! cache must push aged write-backs into the cut and loses them, a small
//! write-aside board sheds its overflow write-throughs, and a unified
//! whole-cache board absorbs everything until the heal.
//!
//! # Determinism
//!
//! Message fates are pure functions of `(seed, client, request id,
//! attempt)`, partition windows are compiled once from the seed, and the
//! hook keeps the session on the serial drive loop (`shard_barriers` →
//! `None`), so a net-faulted run is byte-identical at any `--jobs`.
//!
//! [`ClientCache::take_shed_writes`]: crate::client::ClientCache::take_shed_writes

use std::collections::{BTreeMap, BTreeSet};

use nvfs_faults::net::{NetFaultPlan, PartitionScope};
use nvfs_oracle::{NetJudge, NetSummary, NetVerdict, WireEvent};
use nvfs_trace::op::{Op, OpKind};
use nvfs_types::{ClientId, SimTime};

use crate::session::{FlushEvent, OpAction, RunHook, SimEngine};

/// Retry budget per request. With the default capped exponential backoff
/// this spans hours of simulated time, so only a partition outlasting the
/// whole backoff ladder makes a request give up (degraded mode).
const MAX_ATTEMPTS: u32 = 64;

/// Engine-side partition state, installed by [`NetFaultInjector`] so the
/// drive loop can toggle severed flags at every flush instant and defer
/// recovery drains. Absent (`None`) on every non-network run.
#[derive(Debug, Clone)]
pub(crate) struct NetState {
    plan: NetFaultPlan,
}

impl NetState {
    pub(crate) fn severed(&self, client: ClientId, at: SimTime) -> bool {
        self.plan.client_severed(client, at)
    }

    /// Boards drain at the server, so only a whole-server partition
    /// defers them; a single client's severed edge does not.
    pub(crate) fn drain_time(&self, at: SimTime) -> SimTime {
        self.plan.server_heal_time(at)
    }
}

/// Wire-layer counters for one run (the `net.*` obs counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// RPCs issued (ops + flush notes).
    pub requests: u64,
    /// Retransmissions after a timeout.
    pub retries: u64,
    /// Timeouts observed (dropped or partition-severed transmissions).
    pub timeouts: u64,
    /// Server-interacting ops issued while the issuing client's link was
    /// severed (degraded mode).
    pub degraded_ops: u64,
    /// Duplicate deliveries the server's request-id dedup suppressed.
    pub dup_suppressed: u64,
    /// Requests abandoned after the full retry budget.
    pub gave_up: u64,
    /// Bytes shed because a model was forced to flush into an open
    /// partition.
    pub shed_bytes: u64,
    /// Individual shed writes.
    pub shed_writes: u64,
}

/// Everything the network layer learned in one run: counters, the
/// judge's summary, and any wire-contract violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetReport {
    /// Wire-layer counters.
    pub stats: NetStats,
    /// The [`NetJudge`]'s mergeable summary.
    pub summary: NetSummary,
    /// Wire-contract violations (empty on a correct run).
    pub verdicts: Vec<NetVerdict>,
}

/// Hook: routes every server-interacting op and flush note through the
/// RPC state machine, maintains degraded-mode accounting, and feeds the
/// wire transcript to a [`NetJudge`].
///
/// Keeps the `RunHook` default `shard_barriers` (`None`): partition
/// epochs interpose on every op and every cleaner tick, which is exactly
/// the per-op interposition sharding cannot offer — net-faulted runs are
/// serial and therefore trivially `--jobs`-invariant.
#[derive(Debug)]
pub struct NetFaultInjector<'p> {
    plan: &'p NetFaultPlan,
    judge: NetJudge,
    stats: NetStats,
    next_req: BTreeMap<ClientId, u64>,
    /// Ack times of the last `max_in_flight` requests per client: the
    /// bounded in-flight window (request `r` cannot be transmitted before
    /// request `r - W` was acked).
    acks: BTreeMap<ClientId, Vec<SimTime>>,
    /// Server-side request-id dedup: `(client, req_id)` pairs applied.
    applied: BTreeSet<(u32, u64)>,
    /// Clients whose crash events we have seen: dead machines issue no
    /// further RPCs.
    crashed: BTreeSet<ClientId>,
}

impl<'p> NetFaultInjector<'p> {
    /// An injector over a compiled plan.
    pub fn new(plan: &'p NetFaultPlan) -> Self {
        let windows = plan
            .windows()
            .iter()
            .map(|w| {
                let edge = match w.scope {
                    PartitionScope::Client(c) => Some(c),
                    PartitionScope::Server => None,
                };
                (edge, w.start, w.end)
            })
            .collect();
        NetFaultInjector {
            plan,
            judge: NetJudge::new(windows),
            stats: NetStats::default(),
            next_req: BTreeMap::new(),
            acks: BTreeMap::new(),
            applied: BTreeSet::new(),
            crashed: BTreeSet::new(),
        }
    }

    /// The wire counters accumulated so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Finishes the transcript and returns the run's network report.
    pub fn into_report(self) -> NetReport {
        let (summary, verdicts) = self.judge.finish();
        NetReport {
            stats: self.stats,
            summary,
            verdicts,
        }
    }

    /// Resolves one request end to end: transmit, time out and back off
    /// through drops and partitions, deliver, dedup, ack. Analytic rather
    /// than event-driven — each attempt's fate is a pure function of the
    /// message identity — so resolution order cannot perturb other
    /// requests' outcomes.
    fn rpc(&mut self, client: ClientId, at: SimTime) {
        let req_id = {
            let n = self.next_req.entry(client).or_insert(0);
            let id = *n;
            *n += 1;
            id
        };
        self.stats.requests += 1;
        let window = self.plan.config().max_in_flight as usize;
        let slot = (req_id as usize) % window;
        let gate = self
            .acks
            .get(&client)
            .map_or(SimTime::ZERO, |ring| ring[slot]);
        let mut send = at.max(gate);
        for attempt in 0..MAX_ATTEMPTS {
            if attempt > 0 {
                self.stats.retries += 1;
            }
            let fate = self.plan.message_fate(client, req_id, attempt);
            let deliver = send.saturating_add(fate.delay);
            let severed =
                self.plan.client_severed(client, send) || self.plan.client_severed(client, deliver);
            if severed || fate.dropped {
                // The transmission vanished (dropped on the wire or lost
                // in the cut): wait out the timeout, back off, retry.
                self.judge.observe(&WireEvent::Dropped {
                    client,
                    req_id,
                    attempt,
                    at: send,
                });
                self.stats.timeouts += 1;
                send = send
                    .saturating_add(self.plan.config().rpc_timeout)
                    .saturating_add(self.plan.backoff(client, req_id, attempt));
                continue;
            }
            self.judge.observe(&WireEvent::Delivered {
                client,
                req_id,
                at: deliver,
                duplicate: false,
            });
            if self.applied.insert((client.0, req_id)) {
                self.judge.observe(&WireEvent::Applied {
                    client,
                    req_id,
                    at: deliver,
                });
            } else {
                self.stats.dup_suppressed += 1;
            }
            if fate.duplicated {
                let dup_at = send.saturating_add(fate.dup_delay);
                if !self.plan.client_severed(client, dup_at) {
                    self.judge.observe(&WireEvent::Delivered {
                        client,
                        req_id,
                        at: dup_at,
                        duplicate: true,
                    });
                    self.stats.dup_suppressed += 1;
                }
            }
            let ack_at = deliver.saturating_add(fate.delay);
            self.judge.observe(&WireEvent::Acked {
                client,
                req_id,
                at: ack_at,
            });
            self.acks
                .entry(client)
                .or_insert_with(|| vec![SimTime::ZERO; window])[slot] = ack_at;
            return;
        }
        self.stats.gave_up += 1;
        self.judge.observe(&WireEvent::GaveUp {
            client,
            req_id,
            at: send,
        });
    }
}

/// Whether an op kind interacts with the consistency server. Truncates
/// are the one purely cache-local op in the Sprite protocol as modelled;
/// everything else at least consults server state.
fn op_is_rpc(kind: &OpKind) -> bool {
    !matches!(kind, OpKind::Truncate { .. })
}

impl RunHook for NetFaultInjector<'_> {
    fn before_op(&mut self, engine: &mut SimEngine<'_>, _index: usize, op: &Op) -> OpAction {
        if engine.net.is_none() {
            engine.net = Some(NetState {
                plan: self.plan.clone(),
            });
        }
        engine.sync_net_severed(op.time);
        if op_is_rpc(&op.kind) && !self.crashed.contains(&op.client) {
            if self.plan.client_severed(op.client, op.time) {
                self.stats.degraded_ops += 1;
            }
            self.rpc(op.client, op.time);
        }
        OpAction::Apply
    }

    fn on_flush(&mut self, _engine: &mut SimEngine<'_>, event: &FlushEvent) {
        // Every flush carries a notification RPC to the server, dead
        // clients excepted (their boards speak for them in recovery).
        if !self.crashed.contains(&event.client) {
            self.rpc(event.client, event.at);
        }
    }

    fn on_crash(&mut self, _engine: &mut SimEngine<'_>, event: &crate::session::CrashEvent) {
        self.crashed.insert(event.client);
    }

    /// Shed-byte harvesting and `net.*` counters. Runs before
    /// [`ObsRecorder`](crate::session::ObsRecorder) collects (stack
    /// order), so the partition loss lands in [`ReliabilityStats`]
    /// before it is folded into obs.
    ///
    /// [`ReliabilityStats`]: nvfs_faults::ReliabilityStats
    fn collect(&mut self, engine: &mut SimEngine<'_>) {
        let shed = engine.take_shed_writes();
        self.stats.shed_writes = shed.len() as u64;
        self.stats.shed_bytes = shed.iter().map(|w| w.bytes).sum();
        engine.note_partition_loss(self.stats.shed_bytes);
        use nvfs_obs::counter_add;
        counter_add("net.requests", self.stats.requests);
        counter_add("net.retries", self.stats.retries);
        counter_add("net.timeouts", self.stats.timeouts);
        counter_add("net.degraded_ops", self.stats.degraded_ops);
        counter_add("net.dup_suppressed", self.stats.dup_suppressed);
        counter_add("net.gave_up", self.stats.gave_up);
        counter_add("net.shed_bytes", self.stats.shed_bytes);
        for w in self.plan.windows() {
            nvfs_obs::histogram_record("net.partition_us", (w.end - w.start).as_micros());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfs_faults::net::NetFaultPlanConfig;
    use nvfs_types::SimDuration;

    fn plan(drop_p: f64) -> NetFaultPlan {
        let config = NetFaultPlanConfig::new(2, SimDuration::from_secs(600))
            .with_drop_probability(drop_p)
            .with_duplicate_probability(0.2);
        NetFaultPlan::compile(11, &config).unwrap()
    }

    #[test]
    fn lossless_rpcs_ack_in_order_and_apply_once() {
        let p = plan(0.0);
        let mut inj = NetFaultInjector::new(&p);
        for i in 0..20u64 {
            inj.rpc(ClientId(0), SimTime::from_secs(i));
        }
        let report = inj.into_report();
        assert_eq!(report.stats.requests, 20);
        assert_eq!(report.stats.retries, 0);
        assert_eq!(report.summary.acked, 20);
        assert_eq!(report.summary.applied, 20);
        assert!(report.verdicts.is_empty());
        // Wire duplication fired for some requests and was suppressed.
        assert_eq!(report.summary.duplicates, report.stats.dup_suppressed);
    }

    #[test]
    fn drops_retry_until_acked_and_never_double_apply() {
        let p = plan(0.4);
        let mut inj = NetFaultInjector::new(&p);
        for i in 0..50u64 {
            inj.rpc(ClientId(1), SimTime::from_secs(i * 10));
        }
        let report = inj.into_report();
        assert!(report.stats.retries > 0, "40% drop must force retries");
        assert_eq!(report.stats.retries, report.stats.timeouts);
        assert_eq!(report.summary.acked, 50);
        assert_eq!(report.summary.applied, 50, "dedup: one apply per request");
        assert_eq!(report.summary.violations(), 0);
    }

    #[test]
    fn requests_wait_out_a_partition_and_the_judge_sees_no_leak() {
        let config = NetFaultPlanConfig::new(1, SimDuration::from_secs(600))
            .with_client_partitions(1)
            .with_partition_duration(SimDuration::from_secs(120));
        let p = NetFaultPlan::compile(5, &config).unwrap();
        let w = p.windows()[0];
        let inside = SimTime::from_micros((w.start.as_micros() + w.end.as_micros()) / 2);
        let client = match w.scope {
            PartitionScope::Client(c) => c,
            PartitionScope::Server => ClientId(0),
        };
        let mut inj = NetFaultInjector::new(&p);
        inj.rpc(client, inside);
        let report = inj.into_report();
        assert!(report.stats.timeouts > 0, "partition must cost timeouts");
        assert_eq!(
            report.summary.acked, 1,
            "retry ladder must outlast the window"
        );
        assert_eq!(report.summary.violations(), 0, "no delivery inside the cut");
    }

    #[test]
    fn in_flight_window_gates_burst_sends() {
        let config = NetFaultPlanConfig::new(1, SimDuration::from_secs(600))
            .with_max_in_flight(2)
            .with_delay_range(SimDuration::from_secs(1), SimDuration::from_secs(1));
        let p = NetFaultPlan::compile(9, &config).unwrap();
        let mut inj = NetFaultInjector::new(&p);
        // A burst of 6 requests at t=0: with W=2 and a 2s round trip,
        // request 4 cannot even transmit before request 2's ack at 2s.
        for _ in 0..6 {
            inj.rpc(ClientId(0), SimTime::ZERO);
        }
        let ring = &inj.acks[&ClientId(0)];
        assert!(ring.iter().all(|&t| t >= SimTime::from_secs(4)));
        let report = inj.into_report();
        assert_eq!(report.summary.acked, 6);
        assert_eq!(report.summary.violations(), 0);
    }
}
