//! Client NVRAM file-cache simulation — the paper's §2 study.
//!
//! This crate implements the trace-driven client cache simulator of Baker
//! et al., *Non-Volatile Memory for Fast, Reliable File Systems* (ASPLOS
//! 1992), §2:
//!
//! * [`config`] — the three cache models ([`CacheModelKind`]) and NVRAM
//!   replacement policies ([`PolicyKind`]);
//! * [`block_store`] — the 4 KB block cache with LRU and dirty-age indexes;
//! * [`client`] — per-client model semantics (volatile / write-aside /
//!   unified, Figure 1);
//! * [`consistency`] — Sprite's server-side consistency protocol
//!   (last-writer recall, concurrent write-sharing);
//! * [`policy`] / [`omniscient`] — LRU, random, and omniscient replacement;
//! * [`session`] — the composable engine: [`SimSession`] drives a
//!   [`SimEngine`] under a caller-assembled [`RunHook`] stack;
//! * [`sim`] — the multi-client [`ClusterSim`] facade whose `run_*`
//!   methods assemble the canonical hook stacks, and its
//!   [`TrafficStats`];
//! * [`lifetime`] — the infinite-cache byte-lifetime pass (Figure 2,
//!   Table 2);
//! * [`cost`] — the §2.7 NVRAM-vs-DRAM cost-effectiveness arithmetic;
//! * [`recovery`] — §4 crash recovery: snapshotting a crashed client's
//!   NVRAM onto a removable board and recovering it elsewhere;
//! * [`scrub`] — §2.3 corruption defenses: the [`CorruptionInjector`]
//!   hook replays stray-write / bit-flip / decay schedules under a
//!   protection mode with a background checksum scrub, classifying every
//!   corrupt byte as detected, silent, repaired, or vacated.
//!
//! # Examples
//!
//! ```
//! use nvfs_core::{ClusterSim, SimConfig};
//! use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
//!
//! let traces = SpriteTraceSet::generate(&TraceSetConfig::tiny());
//! let unified = ClusterSim::new(SimConfig::unified(2 << 20, 1 << 20));
//! let stats = unified.run(traces.trace(6).ops());
//! assert!(stats.net_write_traffic_pct() < 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block_store;
pub mod client;
pub mod config;
pub mod consistency;
pub mod cost;
pub mod lifetime;
pub mod metrics;
pub mod net;
pub mod omniscient;
pub mod policy;
pub mod recovery;
pub mod scrub;
pub mod session;
pub(crate) mod shard;
pub mod sim;

pub use client::{ClientCache, FlushCause};
pub use config::{CacheModelKind, ConsistencyMode, PolicyKind, SimConfig};
pub use consistency::ConsistencyServer;
pub use lifetime::{ByteFate, FateRecord, LifetimeLog};
pub use metrics::TrafficStats;
pub use net::{NetFaultInjector, NetReport, NetStats};
pub use omniscient::OmniscientSchedule;
pub use policy::Policy;
pub use recovery::{recover, recover_up_to, snapshot_nvram, RecoveryError, RecoveryOutcome};
pub use scrub::{CorruptionInjector, ScrubReport};
pub use session::{
    warmup_cut, CrashEvent, DrainEvent, FaultInjector, FlushEvent, ObsRecorder, OpAction,
    OracleJudge, RunHook, SessionOutput, SimEngine, SimSession, WarmupReset, WriteLogCapture,
};
pub use sim::{ClusterSim, FaultRunReport, NetFaultRunReport};
