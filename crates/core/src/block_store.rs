//! A capacity-bounded store of 4 KB cache blocks with LRU bookkeeping and a
//! dirty-age index.
//!
//! Mirrors the structure §2.1 describes for Sprite's client caches: blocks
//! carry access and modify times, dirty state is tracked at byte
//! granularity within each block (an application write of less than a block
//! dirties only those bytes, but replacement operates on whole blocks), and
//! the block cleaner needs to find blocks whose dirty data has aged past
//! the write-back delay.

use std::collections::BTreeMap;

use nvfs_types::{BlockId, ByteRange, FileId, RangeSet, SimTime};

/// One cached block.
#[derive(Debug, Clone)]
pub struct BlockEntry {
    /// Dirty bytes within this block (absolute file offsets).
    pub dirty: RangeSet,
    /// Last access (read or write) time.
    pub last_access: SimTime,
    /// Last modification time.
    pub last_modify: SimTime,
    /// When the block first became dirty since it was last clean.
    pub dirty_since: Option<SimTime>,
    /// Key into the LRU index.
    lru_key: (SimTime, u64),
}

impl BlockEntry {
    /// Whether the block holds any dirty bytes.
    pub fn is_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Number of dirty bytes.
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty.len_bytes()
    }
}

/// Outcome of marking bytes dirty in a block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirtyOutcome {
    /// Bytes that were clean (or absent) and are now dirty.
    pub newly_dirty: u64,
    /// Bytes that were already dirty and were overwritten — dirty data that
    /// died in the cache.
    pub overwritten: u64,
}

/// A bounded block cache with LRU and dirty-age indexes.
///
/// # Examples
///
/// ```
/// use nvfs_core::block_store::BlockStore;
/// use nvfs_types::{BlockId, ByteRange, FileId, SimTime};
///
/// let mut s = BlockStore::new(2);
/// let b = BlockId::new(FileId(0), 0);
/// s.insert(b, SimTime::ZERO);
/// let out = s.mark_dirty(b, ByteRange::new(0, 100), SimTime::from_secs(1));
/// assert_eq!(out.newly_dirty, 100);
/// assert_eq!(s.total_dirty_bytes(), 100);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BlockStore {
    capacity: usize,
    blocks: BTreeMap<BlockId, BlockEntry>,
    lru: BTreeMap<(SimTime, u64), BlockId>,
    dirty_age: BTreeMap<(SimTime, BlockId), ()>,
    tie: u64,
}

impl BlockStore {
    /// Creates a store holding at most `capacity` blocks.
    pub fn new(capacity: usize) -> Self {
        BlockStore {
            capacity,
            ..BlockStore::default()
        }
    }

    /// Maximum number of blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the store holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Whether the store is at capacity.
    pub fn is_full(&self) -> bool {
        self.blocks.len() >= self.capacity
    }

    /// Whether `id` is cached.
    pub fn contains(&self, id: BlockId) -> bool {
        self.blocks.contains_key(&id)
    }

    /// Borrows the entry for `id`.
    pub fn get(&self, id: BlockId) -> Option<&BlockEntry> {
        self.blocks.get(&id)
    }

    /// Inserts a clean block accessed at `t`.
    ///
    /// # Panics
    ///
    /// Panics if the store is full or the block is already present —
    /// callers must evict first.
    pub fn insert(&mut self, id: BlockId, t: SimTime) {
        self.insert_with_access(id, t, t);
    }

    /// Inserts a clean block with an explicit `last_access` time (used when
    /// demoting a block from NVRAM to the volatile cache, which must keep
    /// the original access time for LRU comparisons).
    ///
    /// # Panics
    ///
    /// Panics if the store is full or the block is already present.
    pub fn insert_with_access(&mut self, id: BlockId, last_access: SimTime, last_modify: SimTime) {
        assert!(!self.is_full(), "insert into full BlockStore; evict first");
        assert!(!self.blocks.contains_key(&id), "block {id} already cached");
        let key = (last_access, self.next_tie());
        self.lru.insert(key, id);
        self.blocks.insert(
            id,
            BlockEntry {
                dirty: RangeSet::new(),
                last_access,
                last_modify,
                dirty_since: None,
                lru_key: key,
            },
        );
    }

    /// Inserts a block with explicit dirty state (used when the hybrid
    /// model migrates an aged dirty block from the volatile cache into the
    /// NVRAM, preserving its history).
    ///
    /// # Panics
    ///
    /// Panics if the store is full or the block is already present.
    pub fn insert_with_state(
        &mut self,
        id: BlockId,
        last_access: SimTime,
        last_modify: SimTime,
        dirty: RangeSet,
        dirty_since: Option<SimTime>,
    ) {
        assert!(!self.is_full(), "insert into full BlockStore; evict first");
        assert!(!self.blocks.contains_key(&id), "block {id} already cached");
        let key = (last_access, self.next_tie());
        self.lru.insert(key, id);
        let effective_since = if dirty.is_empty() {
            None
        } else {
            dirty_since.or(Some(last_modify))
        };
        if let Some(since) = effective_since {
            self.dirty_age.insert((since, id), ());
        }
        self.blocks.insert(
            id,
            BlockEntry {
                dirty,
                last_access,
                last_modify,
                dirty_since: effective_since,
                lru_key: key,
            },
        );
    }

    /// Updates the access time of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not cached.
    pub fn touch(&mut self, id: BlockId, t: SimTime) {
        let tie = self.next_tie();
        let entry = self.blocks.get_mut(&id).expect("touch of uncached block");
        self.lru.remove(&entry.lru_key);
        entry.last_access = t;
        entry.lru_key = (t, tie);
        self.lru.insert(entry.lru_key, id);
    }

    /// Marks `range` (clipped to the block) dirty at time `t`, touching the
    /// block. Returns how many bytes were newly dirty vs overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not cached.
    pub fn mark_dirty(&mut self, id: BlockId, range: ByteRange, t: SimTime) -> DirtyOutcome {
        self.touch(id, t);
        let entry = self
            .blocks
            .get_mut(&id)
            .expect("mark_dirty of uncached block");
        let clipped = match id.byte_range().intersection(range) {
            Some(r) => r,
            None => return DirtyOutcome::default(),
        };
        let overwritten = entry.dirty.overlap_bytes(clipped);
        let newly_dirty = entry.dirty.insert(clipped);
        entry.last_modify = t;
        if entry.dirty_since.is_none() && entry.is_dirty() {
            entry.dirty_since = Some(t);
            self.dirty_age.insert((t, id), ());
        }
        DirtyOutcome {
            newly_dirty,
            overwritten,
        }
    }

    /// Clears all dirty state of `id` (it was written to the server or its
    /// data died). Returns the number of bytes that were dirty.
    pub fn clean(&mut self, id: BlockId) -> u64 {
        let Some(entry) = self.blocks.get_mut(&id) else {
            return 0;
        };
        let bytes = entry.dirty.len_bytes();
        entry.dirty.clear();
        if let Some(since) = entry.dirty_since.take() {
            self.dirty_age.remove(&(since, id));
        }
        bytes
    }

    /// Kills the dirty bytes of `id` that fall within `range` (truncation).
    /// Returns the number of dirty bytes killed. The block stays cached.
    pub fn kill_dirty(&mut self, id: BlockId, range: ByteRange) -> u64 {
        let Some(entry) = self.blocks.get_mut(&id) else {
            return 0;
        };
        let killed = entry.dirty.remove(range);
        if !entry.is_dirty() {
            if let Some(since) = entry.dirty_since.take() {
                self.dirty_age.remove(&(since, id));
            }
        }
        killed
    }

    /// Removes `id` entirely, returning its entry.
    pub fn remove(&mut self, id: BlockId) -> Option<BlockEntry> {
        let entry = self.blocks.remove(&id)?;
        self.lru.remove(&entry.lru_key);
        if let Some(since) = entry.dirty_since {
            self.dirty_age.remove(&(since, id));
        }
        Some(entry)
    }

    /// The least-recently accessed block, if any.
    pub fn lru_block(&self) -> Option<(BlockId, SimTime)> {
        self.lru.iter().next().map(|(&(t, _), &id)| (id, t))
    }

    /// The least-recently accessed *clean* block, if any (Sprite's volatile
    /// cache prefers replacing clean blocks; used by the dirty-preference
    /// ablation).
    pub fn lru_clean_block(&self) -> Option<(BlockId, SimTime)> {
        self.lru
            .iter()
            .map(|(&(t, _), &id)| (id, t))
            .find(|(id, _)| !self.blocks[id].is_dirty())
    }

    /// All cached blocks of `file`, in index order.
    pub fn file_blocks(&self, file: FileId) -> Vec<BlockId> {
        self.blocks
            .range(BlockId::new(file, 0)..BlockId::new(FileId(file.0 + 1), 0))
            .map(|(&id, _)| id)
            .collect()
    }

    /// Blocks whose dirty data is older than `cutoff` (i.e. became dirty at
    /// or before it), oldest first.
    pub fn dirty_older_than(&self, cutoff: SimTime) -> Vec<BlockId> {
        let mut out = Vec::new();
        self.dirty_older_than_into(cutoff, &mut out);
        out
    }

    /// [`Self::dirty_older_than`] into a caller-owned buffer (cleared
    /// first), so tick-frequency callers can reuse one allocation.
    pub fn dirty_older_than_into(&self, cutoff: SimTime, out: &mut Vec<BlockId>) {
        out.clear();
        out.extend(
            self.dirty_age
                .range(..=(cutoff, BlockId::new(FileId(u32::MAX), u64::MAX)))
                .map(|(&(_, id), ())| id),
        );
    }

    /// Iterates over `(BlockId, &BlockEntry)` in block order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &BlockEntry)> {
        self.blocks.iter().map(|(&id, e)| (id, e))
    }

    /// The `n`-th block in block order (for random replacement sampling).
    pub fn nth_block(&self, n: usize) -> Option<BlockId> {
        self.blocks.keys().nth(n).copied()
    }

    /// Sum of dirty bytes across all blocks.
    pub fn total_dirty_bytes(&self) -> u64 {
        // The dirty_age index holds exactly the dirty blocks.
        self.dirty_age
            .keys()
            .map(|&(_, id)| self.blocks[&id].dirty_bytes())
            .sum()
    }

    /// Number of dirty blocks.
    pub fn dirty_block_count(&self) -> usize {
        self.dirty_age.len()
    }

    /// Verifies internal index consistency (for tests).
    pub fn check_invariants(&self) -> bool {
        if self.blocks.len() > self.capacity || self.lru.len() != self.blocks.len() {
            return false;
        }
        for (key, id) in &self.lru {
            match self.blocks.get(id) {
                Some(e) if e.lru_key == *key => {}
                _ => return false,
            }
        }
        for (&(since, id), ()) in &self.dirty_age {
            match self.blocks.get(&id) {
                Some(e) if e.dirty_since == Some(since) && e.is_dirty() => {}
                _ => return false,
            }
        }
        self.blocks.values().filter(|e| e.is_dirty()).count() == self.dirty_age.len()
    }

    fn next_tie(&mut self) -> u64 {
        self.tie += 1;
        self.tie
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bid(f: u32, i: u64) -> BlockId {
        BlockId::new(FileId(f), i)
    }

    #[test]
    fn lru_order_follows_touches() {
        let mut s = BlockStore::new(3);
        s.insert(bid(0, 0), SimTime::from_secs(1));
        s.insert(bid(0, 1), SimTime::from_secs(2));
        s.insert(bid(0, 2), SimTime::from_secs(3));
        assert_eq!(s.lru_block().unwrap().0, bid(0, 0));
        s.touch(bid(0, 0), SimTime::from_secs(4));
        assert_eq!(s.lru_block().unwrap().0, bid(0, 1));
        assert!(s.check_invariants());
    }

    #[test]
    #[should_panic(expected = "evict first")]
    fn insert_into_full_store_panics() {
        let mut s = BlockStore::new(1);
        s.insert(bid(0, 0), SimTime::ZERO);
        s.insert(bid(0, 1), SimTime::ZERO);
    }

    #[test]
    fn dirty_accounting() {
        let mut s = BlockStore::new(2);
        let b = bid(0, 0);
        s.insert(b, SimTime::ZERO);
        let o1 = s.mark_dirty(b, ByteRange::new(0, 100), SimTime::from_secs(1));
        assert_eq!(
            o1,
            DirtyOutcome {
                newly_dirty: 100,
                overwritten: 0
            }
        );
        let o2 = s.mark_dirty(b, ByteRange::new(50, 150), SimTime::from_secs(2));
        assert_eq!(
            o2,
            DirtyOutcome {
                newly_dirty: 50,
                overwritten: 50
            }
        );
        // dirty_since is set by the first write, not reset by the second.
        assert_eq!(s.get(b).unwrap().dirty_since, Some(SimTime::from_secs(1)));
        assert_eq!(s.total_dirty_bytes(), 150);
        assert_eq!(s.clean(b), 150);
        assert_eq!(s.total_dirty_bytes(), 0);
        assert!(s.check_invariants());
    }

    #[test]
    fn mark_dirty_clips_to_block() {
        let mut s = BlockStore::new(2);
        let b = bid(0, 1); // covers bytes 4096..8192
        s.insert(b, SimTime::ZERO);
        let o = s.mark_dirty(b, ByteRange::new(0, 10_000), SimTime::from_secs(1));
        assert_eq!(o.newly_dirty, 4096);
        let o2 = s.mark_dirty(b, ByteRange::new(0, 100), SimTime::from_secs(2));
        assert_eq!(o2, DirtyOutcome::default());
    }

    #[test]
    fn kill_dirty_partial() {
        let mut s = BlockStore::new(2);
        let b = bid(0, 0);
        s.insert(b, SimTime::ZERO);
        s.mark_dirty(b, ByteRange::new(0, 4096), SimTime::from_secs(1));
        assert_eq!(s.kill_dirty(b, ByteRange::new(2048, 4096)), 2048);
        assert!(s.get(b).unwrap().is_dirty());
        assert_eq!(s.kill_dirty(b, ByteRange::new(0, 2048)), 2048);
        assert!(!s.get(b).unwrap().is_dirty());
        assert_eq!(s.dirty_block_count(), 0);
        assert!(s.check_invariants());
    }

    #[test]
    fn dirty_age_queue_finds_old_blocks() {
        let mut s = BlockStore::new(4);
        for i in 0..3 {
            let b = bid(0, i);
            s.insert(b, SimTime::ZERO);
            s.mark_dirty(b, b.byte_range(), SimTime::from_secs(10 * (i + 1)));
        }
        let old = s.dirty_older_than(SimTime::from_secs(20));
        assert_eq!(old, vec![bid(0, 0), bid(0, 1)]);
        s.clean(bid(0, 0));
        assert_eq!(s.dirty_older_than(SimTime::from_secs(20)), vec![bid(0, 1)]);
    }

    #[test]
    fn file_blocks_filters_by_file() {
        let mut s = BlockStore::new(4);
        s.insert(bid(1, 0), SimTime::ZERO);
        s.insert(bid(1, 5), SimTime::ZERO);
        s.insert(bid(2, 0), SimTime::ZERO);
        assert_eq!(s.file_blocks(FileId(1)), vec![bid(1, 0), bid(1, 5)]);
        assert_eq!(s.file_blocks(FileId(3)), Vec::<BlockId>::new());
    }

    #[test]
    fn lru_clean_block_skips_dirty() {
        let mut s = BlockStore::new(3);
        s.insert(bid(0, 0), SimTime::from_secs(1));
        s.insert(bid(0, 1), SimTime::from_secs(2));
        s.mark_dirty(bid(0, 0), bid(0, 0).byte_range(), SimTime::from_secs(3));
        // 0,0 is now most recent *and* dirty; LRU clean is 0,1.
        assert_eq!(s.lru_clean_block().unwrap().0, bid(0, 1));
        assert_eq!(s.lru_block().unwrap().0, bid(0, 1));
    }

    #[test]
    fn remove_clears_all_indexes() {
        let mut s = BlockStore::new(2);
        let b = bid(0, 0);
        s.insert(b, SimTime::ZERO);
        s.mark_dirty(b, b.byte_range(), SimTime::from_secs(1));
        let e = s.remove(b).unwrap();
        assert_eq!(e.dirty_bytes(), 4096);
        assert!(s.is_empty());
        assert_eq!(s.dirty_block_count(), 0);
        assert!(s.check_invariants());
    }

    #[test]
    fn insert_with_state_preserves_dirty_age() {
        let mut s = BlockStore::new(2);
        let id = bid(0, 0);
        let mut dirty = RangeSet::new();
        dirty.insert(ByteRange::new(0, 100));
        s.insert_with_state(
            id,
            SimTime::from_secs(9),
            SimTime::from_secs(8),
            dirty,
            Some(SimTime::from_secs(5)),
        );
        assert_eq!(s.total_dirty_bytes(), 100);
        assert_eq!(s.dirty_older_than(SimTime::from_secs(5)), vec![id]);
        assert!(s.check_invariants());
    }

    #[test]
    fn demotion_preserves_access_time() {
        let mut a = BlockStore::new(2);
        let mut b = BlockStore::new(2);
        let id = bid(0, 0);
        a.insert(id, SimTime::from_secs(5));
        let e = a.remove(id).unwrap();
        b.insert_with_access(id, e.last_access, e.last_modify);
        assert_eq!(b.get(id).unwrap().last_access, SimTime::from_secs(5));
    }
}
