//! Scratch calibration harness: prints lifetime fates and model sweeps for
//! the synthetic trace set so the workload mix can be tuned against the
//! paper's published shapes. Not part of the reproduction API.

use nvfs_core::lifetime::{ByteFate, LifetimeLog};
use nvfs_core::{ClusterSim, PolicyKind, SimConfig};
use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
use nvfs_types::SimDuration;

fn main() {
    let cfg = TraceSetConfig::small();
    let set = SpriteTraceSet::generate(&cfg);
    let mb = 1024.0 * 1024.0;

    println!("== per-trace volumes ==");
    for t in set.traces() {
        println!(
            "trace {}: writes {:>8.1} MB  reads {:>8.1} MB  ops {}",
            t.number(),
            t.ops().app_write_bytes() as f64 / mb,
            t.ops().app_read_bytes() as f64 / mb,
            t.ops().len()
        );
    }

    println!("\n== lifetime fates (Table 2 shape) ==");
    let mut logs = Vec::new();
    for t in set.traces() {
        let log = LifetimeLog::analyze(t.ops());
        let total = log.total_write_bytes as f64;
        let f = log.bytes_by_fate();
        let pct = |fate: ByteFate| 100.0 * *f.get(&fate).unwrap_or(&0) as f64 / total;
        println!(
            "trace {}: overw {:>5.1}% del {:>5.1}% callback {:>5.1}% migr {:>4.1}% conc {:>4.2}% remain {:>5.1}%  | die<=30s {:>5.1}% die<=30m {:>5.1}%",
            t.number(),
            pct(ByteFate::Overwritten),
            pct(ByteFate::Deleted),
            pct(ByteFate::CalledBack),
            pct(ByteFate::Migrated),
            pct(ByteFate::Concurrent),
            pct(ByteFate::Remaining),
            100.0 * log.death_fraction_within(SimDuration::from_secs(30)),
            100.0 * log.death_fraction_within(SimDuration::from_mins(30)),
        );
        logs.push(log);
    }

    println!("\n== omniscient unified sweep, trace 7 (Fig 3 shape) ==");
    let t7 = set.trace(6);
    for nv_kb in [128u64, 256, 512, 1024, 2048, 4096, 8192] {
        let cfg = SimConfig::unified(8 << 20, nv_kb << 10).with_policy(PolicyKind::Omniscient);
        let s = ClusterSim::new(cfg).run(t7.ops());
        println!(
            "  nvram {:>5} KB -> net write {:>5.1}%",
            nv_kb,
            s.net_write_traffic_pct()
        );
    }

    println!("\n== policies at 1MB NVRAM, trace 7 (Fig 4 shape) ==");
    for (name, p) in [
        ("lru", PolicyKind::Lru),
        ("random", PolicyKind::Random { seed: 42 }),
        ("omniscient", PolicyKind::Omniscient),
    ] {
        let s = ClusterSim::new(SimConfig::unified(8 << 20, 1 << 20).with_policy(p)).run(t7.ops());
        println!(
            "  {:>10} -> net write {:>5.1}%",
            name,
            s.net_write_traffic_pct()
        );
    }

    println!("\n== model comparison, trace 7, 8MB base (Fig 5 shape) ==");
    for extra_mb in [0u64, 1, 2, 4, 8] {
        let vol = ClusterSim::new(SimConfig::volatile((8 + extra_mb) << 20)).run(t7.ops());
        let uni = if extra_mb == 0 {
            None
        } else {
            Some(ClusterSim::new(SimConfig::unified(8 << 20, extra_mb << 20)).run(t7.ops()))
        };
        let wa = if extra_mb == 0 {
            None
        } else {
            Some(ClusterSim::new(SimConfig::write_aside(8 << 20, extra_mb << 20)).run(t7.ops()))
        };
        println!(
            "  +{} MB: volatile {:>5.1}% (hit {:.2}, sr {:.1}MB sw {:.1}MB)  unified {}  write-aside {}",
            extra_mb,
            vol.net_total_traffic_pct(),
            vol.read_hit_ratio(),
            vol.server_read_bytes as f64 / mb,
            vol.server_write_bytes as f64 / mb,
            uni.map_or("    -".into(), |s| format!("{:>5.1}%", s.net_total_traffic_pct())),
            wa.map_or("    -".into(), |s| format!("{:>5.1}%", s.net_total_traffic_pct())),
        );
    }
}
