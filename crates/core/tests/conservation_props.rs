//! Randomized tests over random op streams: every byte an application
//! writes must be accounted for exactly once, in every cache model.
//!
//! The conservation identity: a written byte either
//! * dies in the cache by being overwritten (`overwritten_dead_bytes`),
//! * dies by delete/truncate (`deleted_dead_bytes`),
//! * reaches the server (`server_write_bytes`),
//! * bypasses the cache during concurrent write-sharing
//!   (`concurrent_write_bytes`), or
//! * is still dirty at the end (`remaining_dirty_bytes`).
//!
//! Formerly proptest-based; now driven by a seeded [`nvfs_rng::StdRng`] so
//! the suite builds offline and failures reproduce exactly.

use nvfs_core::{ClusterSim, PolicyKind, SimConfig};
use nvfs_rng::{Rng, SeedableRng, StdRng};
use nvfs_trace::event::OpenMode;
use nvfs_trace::op::{Op, OpKind, OpStream};
use nvfs_types::{ByteRange, ClientId, FileId, ProcessId, SimTime, BLOCK_SIZE};

const FILES: u32 = 6;
const CLIENTS: u32 = 3;
const MAX_LEN: u64 = 6 * BLOCK_SIZE;

#[derive(Debug, Clone)]
enum Action {
    Open(u32, u32, bool),
    Close(u32, u32),
    Read(u32, u32, u64, u64),
    Write(u32, u32, u64, u64),
    Truncate(u32, u32, u64),
    Delete(u32, u32),
    Fsync(u32, u32),
    Migrate(u32, u32),
}

fn rand_action(rng: &mut StdRng) -> Action {
    let c = rng.gen_range(0..CLIENTS);
    let f = rng.gen_range(0..FILES);
    match rng.gen_range(0..8u32) {
        0 => Action::Open(c, f, rng.gen_bool(0.5)),
        1 => Action::Close(c, f),
        2 => Action::Read(c, f, rng.gen_range(0..MAX_LEN), rng.gen_range(1..MAX_LEN)),
        3 => Action::Write(c, f, rng.gen_range(0..MAX_LEN), rng.gen_range(1..MAX_LEN)),
        4 => Action::Truncate(c, f, rng.gen_range(0..MAX_LEN)),
        5 => Action::Delete(c, f),
        6 => Action::Fsync(c, f),
        _ => Action::Migrate(c, f),
    }
}

fn rand_actions(rng: &mut StdRng, max: usize) -> Vec<Action> {
    let n = rng.gen_range(1..max);
    (0..n).map(|_| rand_action(rng)).collect()
}

fn to_stream(actions: &[Action]) -> OpStream {
    actions
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let time = SimTime::from_secs(i as u64 * 7); // spans cleaner ticks
            let op = |client: u32, kind: OpKind| Op {
                time,
                client: ClientId(client),
                kind,
            };
            match *a {
                Action::Open(c, f, w) => op(
                    c,
                    OpKind::Open {
                        file: FileId(f),
                        mode: if w { OpenMode::Write } else { OpenMode::Read },
                    },
                ),
                Action::Close(c, f) => op(c, OpKind::Close { file: FileId(f) }),
                Action::Read(c, f, o, l) => op(
                    c,
                    OpKind::Read {
                        file: FileId(f),
                        range: ByteRange::at(o, l),
                    },
                ),
                Action::Write(c, f, o, l) => op(
                    c,
                    OpKind::Write {
                        file: FileId(f),
                        range: ByteRange::at(o, l),
                    },
                ),
                Action::Truncate(c, f, n) => op(
                    c,
                    OpKind::Truncate {
                        file: FileId(f),
                        new_len: n,
                    },
                ),
                Action::Delete(c, f) => op(c, OpKind::Delete { file: FileId(f) }),
                Action::Fsync(c, f) => op(c, OpKind::Fsync { file: FileId(f) }),
                Action::Migrate(c, f) => op(
                    c,
                    OpKind::Migrate {
                        pid: ProcessId(c),
                        to: ClientId((c + 1) % CLIENTS),
                        files: vec![FileId(f)],
                    },
                ),
            }
        })
        .collect()
}

fn configs() -> Vec<SimConfig> {
    vec![
        SimConfig::volatile(4 * BLOCK_SIZE),
        SimConfig::volatile(64 * BLOCK_SIZE),
        SimConfig::write_aside(8 * BLOCK_SIZE, 2 * BLOCK_SIZE),
        SimConfig::write_aside(64 * BLOCK_SIZE, 32 * BLOCK_SIZE),
        SimConfig::unified(8 * BLOCK_SIZE, 2 * BLOCK_SIZE),
        SimConfig::unified(64 * BLOCK_SIZE, 32 * BLOCK_SIZE),
        SimConfig::unified(8 * BLOCK_SIZE, 4 * BLOCK_SIZE)
            .with_policy(PolicyKind::Random { seed: 11 }),
        SimConfig::unified(8 * BLOCK_SIZE, 4 * BLOCK_SIZE).with_policy(PolicyKind::Omniscient),
        SimConfig::hybrid(8 * BLOCK_SIZE, 2 * BLOCK_SIZE),
        SimConfig::hybrid(64 * BLOCK_SIZE, 32 * BLOCK_SIZE),
        SimConfig::volatile(16 * BLOCK_SIZE).with_dirty_preference(),
    ]
}

#[test]
fn every_written_byte_is_accounted_for() {
    let mut rng = StdRng::seed_from_u64(0xACC7_0001);
    for _case in 0..64 {
        let actions = rand_actions(&mut rng, 120);
        let ops = to_stream(&actions);
        for cfg in configs() {
            let model = cfg.model;
            let policy = cfg.policy;
            let stats = ClusterSim::new(cfg).run(&ops);
            let accounted = stats.server_write_bytes
                + stats.concurrent_write_bytes
                + stats.overwritten_dead_bytes
                + stats.deleted_dead_bytes
                + stats.remaining_dirty_bytes;
            assert_eq!(
                accounted, stats.app_write_bytes,
                "model {model:?} policy {policy:?}: {stats:?}"
            );
        }
    }
}

#[test]
fn cause_breakdown_sums_to_server_writes() {
    let mut rng = StdRng::seed_from_u64(0xACC7_0002);
    for _case in 0..64 {
        let actions = rand_actions(&mut rng, 120);
        let ops = to_stream(&actions);
        for cfg in configs() {
            let stats = ClusterSim::new(cfg).run(&ops);
            let by_cause = stats.writeback_bytes
                + stats.replacement_bytes
                + stats.callback_bytes
                + stats.migration_bytes
                + stats.fsync_bytes;
            assert_eq!(by_cause, stats.server_write_bytes, "{stats:?}");
        }
    }
}

#[test]
fn detailed_log_matches_totals() {
    let mut rng = StdRng::seed_from_u64(0xACC7_0003);
    for _case in 0..64 {
        let actions = rand_actions(&mut rng, 100);
        let ops = to_stream(&actions);
        for cfg in configs() {
            let (stats, writes) = ClusterSim::new(cfg).run_detailed(&ops);
            let logged: u64 = writes.iter().map(|w| w.bytes).sum();
            assert_eq!(logged, stats.server_write_bytes);
            // The log is time ordered.
            for pair in writes.windows(2) {
                assert!(pair[0].time <= pair[1].time);
            }
        }
    }
}

#[test]
fn nvram_models_never_write_back_on_fsync() {
    let mut rng = StdRng::seed_from_u64(0xACC7_0004);
    for _case in 0..64 {
        let actions = rand_actions(&mut rng, 80);
        let ops = to_stream(&actions);
        for cfg in [
            SimConfig::write_aside(16 * BLOCK_SIZE, 8 * BLOCK_SIZE),
            SimConfig::unified(16 * BLOCK_SIZE, 8 * BLOCK_SIZE),
        ] {
            let stats = ClusterSim::new(cfg).run(&ops);
            assert_eq!(stats.fsync_bytes, 0);
            assert_eq!(stats.writeback_bytes, 0);
        }
    }
}

#[test]
fn lifetime_log_is_conserved_too() {
    let mut rng = StdRng::seed_from_u64(0xACC7_0005);
    for _case in 0..64 {
        let actions = rand_actions(&mut rng, 100);
        let ops = to_stream(&actions);
        let log = nvfs_core::LifetimeLog::analyze(&ops);
        let sum: u64 = log.records.iter().map(|r| r.len).sum();
        assert_eq!(sum, log.total_write_bytes);
        assert_eq!(log.total_write_bytes, ops.app_write_bytes());
        // Fates never predate births.
        for r in &log.records {
            assert!(r.fate_time >= r.birth);
        }
    }
}
