//! Property tests over random op streams: every byte an application writes
//! must be accounted for exactly once, in every cache model.
//!
//! The conservation identity: a written byte either
//! * dies in the cache by being overwritten (`overwritten_dead_bytes`),
//! * dies by delete/truncate (`deleted_dead_bytes`),
//! * reaches the server (`server_write_bytes`),
//! * bypasses the cache during concurrent write-sharing
//!   (`concurrent_write_bytes`), or
//! * is still dirty at the end (`remaining_dirty_bytes`).

use nvfs_core::{ClusterSim, PolicyKind, SimConfig};
use nvfs_trace::event::OpenMode;
use nvfs_trace::op::{Op, OpKind, OpStream};
use nvfs_types::{ByteRange, ClientId, FileId, ProcessId, SimTime, BLOCK_SIZE};
use proptest::prelude::*;

const FILES: u32 = 6;
const CLIENTS: u32 = 3;
const MAX_LEN: u64 = 6 * BLOCK_SIZE;

#[derive(Debug, Clone)]
enum Action {
    Open(u32, u32, bool),
    Close(u32, u32),
    Read(u32, u32, u64, u64),
    Write(u32, u32, u64, u64),
    Truncate(u32, u32, u64),
    Delete(u32, u32),
    Fsync(u32, u32),
    Migrate(u32, u32),
}

fn arb_action() -> impl Strategy<Value = Action> {
    let c = 0..CLIENTS;
    let f = 0..FILES;
    prop_oneof![
        (c.clone(), f.clone(), any::<bool>()).prop_map(|(c, f, w)| Action::Open(c, f, w)),
        (c.clone(), f.clone()).prop_map(|(c, f)| Action::Close(c, f)),
        (c.clone(), f.clone(), 0..MAX_LEN, 1..MAX_LEN).prop_map(|(c, f, o, l)| Action::Read(c, f, o, l)),
        (c.clone(), f.clone(), 0..MAX_LEN, 1..MAX_LEN).prop_map(|(c, f, o, l)| Action::Write(c, f, o, l)),
        (c.clone(), f.clone(), 0..MAX_LEN).prop_map(|(c, f, n)| Action::Truncate(c, f, n)),
        (c.clone(), f.clone()).prop_map(|(c, f)| Action::Delete(c, f)),
        (c.clone(), f.clone()).prop_map(|(c, f)| Action::Fsync(c, f)),
        (c.clone(), f.clone()).prop_map(|(c, f)| Action::Migrate(c, f)),
    ]
}

fn to_stream(actions: &[Action]) -> OpStream {
    actions
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let time = SimTime::from_secs(i as u64 * 7); // spans cleaner ticks
            let op = |client: u32, kind: OpKind| Op { time, client: ClientId(client), kind };
            match *a {
                Action::Open(c, f, w) => op(
                    c,
                    OpKind::Open {
                        file: FileId(f),
                        mode: if w { OpenMode::Write } else { OpenMode::Read },
                    },
                ),
                Action::Close(c, f) => op(c, OpKind::Close { file: FileId(f) }),
                Action::Read(c, f, o, l) => {
                    op(c, OpKind::Read { file: FileId(f), range: ByteRange::at(o, l) })
                }
                Action::Write(c, f, o, l) => {
                    op(c, OpKind::Write { file: FileId(f), range: ByteRange::at(o, l) })
                }
                Action::Truncate(c, f, n) => {
                    op(c, OpKind::Truncate { file: FileId(f), new_len: n })
                }
                Action::Delete(c, f) => op(c, OpKind::Delete { file: FileId(f) }),
                Action::Fsync(c, f) => op(c, OpKind::Fsync { file: FileId(f) }),
                Action::Migrate(c, f) => op(
                    c,
                    OpKind::Migrate {
                        pid: ProcessId(c),
                        to: ClientId((c + 1) % CLIENTS),
                        files: vec![FileId(f)],
                    },
                ),
            }
        })
        .collect()
}

fn configs() -> Vec<SimConfig> {
    vec![
        SimConfig::volatile(4 * BLOCK_SIZE),
        SimConfig::volatile(64 * BLOCK_SIZE),
        SimConfig::write_aside(8 * BLOCK_SIZE, 2 * BLOCK_SIZE),
        SimConfig::write_aside(64 * BLOCK_SIZE, 32 * BLOCK_SIZE),
        SimConfig::unified(8 * BLOCK_SIZE, 2 * BLOCK_SIZE),
        SimConfig::unified(64 * BLOCK_SIZE, 32 * BLOCK_SIZE),
        SimConfig::unified(8 * BLOCK_SIZE, 4 * BLOCK_SIZE)
            .with_policy(PolicyKind::Random { seed: 11 }),
        SimConfig::unified(8 * BLOCK_SIZE, 4 * BLOCK_SIZE).with_policy(PolicyKind::Omniscient),
        SimConfig::hybrid(8 * BLOCK_SIZE, 2 * BLOCK_SIZE),
        SimConfig::hybrid(64 * BLOCK_SIZE, 32 * BLOCK_SIZE),
        SimConfig::volatile(16 * BLOCK_SIZE).with_dirty_preference(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_written_byte_is_accounted_for(actions in proptest::collection::vec(arb_action(), 1..120)) {
        let ops = to_stream(&actions);
        for cfg in configs() {
            let model = cfg.model;
            let policy = cfg.policy;
            let stats = ClusterSim::new(cfg).run(&ops);
            let accounted = stats.server_write_bytes
                + stats.concurrent_write_bytes
                + stats.overwritten_dead_bytes
                + stats.deleted_dead_bytes
                + stats.remaining_dirty_bytes;
            prop_assert_eq!(
                accounted,
                stats.app_write_bytes,
                "model {:?} policy {:?}: {:?}",
                model,
                policy,
                stats
            );
        }
    }

    #[test]
    fn cause_breakdown_sums_to_server_writes(actions in proptest::collection::vec(arb_action(), 1..120)) {
        let ops = to_stream(&actions);
        for cfg in configs() {
            let stats = ClusterSim::new(cfg).run(&ops);
            let by_cause = stats.writeback_bytes
                + stats.replacement_bytes
                + stats.callback_bytes
                + stats.migration_bytes
                + stats.fsync_bytes;
            prop_assert_eq!(by_cause, stats.server_write_bytes, "{:?}", stats);
        }
    }

    #[test]
    fn detailed_log_matches_totals(actions in proptest::collection::vec(arb_action(), 1..100)) {
        let ops = to_stream(&actions);
        for cfg in configs() {
            let (stats, writes) = ClusterSim::new(cfg).run_detailed(&ops);
            let logged: u64 = writes.iter().map(|w| w.bytes).sum();
            prop_assert_eq!(logged, stats.server_write_bytes);
            // The log is time ordered.
            for pair in writes.windows(2) {
                prop_assert!(pair[0].time <= pair[1].time);
            }
        }
    }

    #[test]
    fn nvram_models_never_write_back_on_fsync(actions in proptest::collection::vec(arb_action(), 1..80)) {
        let ops = to_stream(&actions);
        for cfg in [
            SimConfig::write_aside(16 * BLOCK_SIZE, 8 * BLOCK_SIZE),
            SimConfig::unified(16 * BLOCK_SIZE, 8 * BLOCK_SIZE),
        ] {
            let stats = ClusterSim::new(cfg).run(&ops);
            prop_assert_eq!(stats.fsync_bytes, 0);
            prop_assert_eq!(stats.writeback_bytes, 0);
        }
    }

    #[test]
    fn lifetime_log_is_conserved_too(actions in proptest::collection::vec(arb_action(), 1..100)) {
        let ops = to_stream(&actions);
        let log = nvfs_core::LifetimeLog::analyze(&ops);
        let sum: u64 = log.records.iter().map(|r| r.len).sum();
        prop_assert_eq!(sum, log.total_write_bytes);
        prop_assert_eq!(log.total_write_bytes, ops.app_write_bytes());
        // Fates never predate births.
        for r in &log.records {
            prop_assert!(r.fate_time >= r.birth);
        }
    }
}
