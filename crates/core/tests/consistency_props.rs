//! Property tests on the consistency-server state machine: arbitrary
//! open/close/write/delete interleavings must never panic, the disabled
//! state must hold exactly while a write-sharing conflict exists, and
//! recalls must only ever point at real last-writers.

use nvfs_core::consistency::ConsistencyServer;
use nvfs_core::ConsistencyMode;
use nvfs_trace::event::OpenMode;
use nvfs_types::{ClientId, FileId};
use proptest::prelude::*;
use std::collections::BTreeMap;

const CLIENTS: u32 = 4;
const FILES: u32 = 3;

#[derive(Debug, Clone, Copy)]
enum Step {
    Open(u32, u32, bool),
    Close(u32, u32),
    Write(u32, u32),
    Flush(u32, u32),
    Delete(u32),
}

fn arb_step() -> impl Strategy<Value = Step> {
    let c = 0..CLIENTS;
    let f = 0..FILES;
    prop_oneof![
        (c.clone(), f.clone(), any::<bool>()).prop_map(|(c, f, w)| Step::Open(c, f, w)),
        (c.clone(), f.clone()).prop_map(|(c, f)| Step::Close(c, f)),
        (c.clone(), f.clone()).prop_map(|(c, f)| Step::Write(c, f)),
        (c.clone(), f.clone()).prop_map(|(c, f)| Step::Flush(c, f)),
        f.prop_map(Step::Delete),
    ]
}

/// Reference model: per-file multiset of (client, writing) opens.
#[derive(Default)]
struct Model {
    opens: BTreeMap<u32, Vec<(u32, bool)>>,
}

impl Model {
    fn sharing_conflict(&self, file: u32) -> bool {
        let Some(list) = self.opens.get(&file) else { return false };
        let clients: std::collections::BTreeSet<u32> = list.iter().map(|&(c, _)| c).collect();
        clients.len() >= 2 && list.iter().any(|&(_, w)| w)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn state_machine_is_sound(steps in proptest::collection::vec(arb_step(), 1..80)) {
        for mode in [ConsistencyMode::WholeFile, ConsistencyMode::BlockOnDemand] {
            let mut server = ConsistencyServer::with_mode(mode);
            let mut model = Model::default();
            let mut last_writer: BTreeMap<u32, u32> = BTreeMap::new();

            for step in &steps {
                match *step {
                    Step::Open(c, f, w) => {
                        let outcome = server.on_open(FileId(f), ClientId(c), if w {
                            OpenMode::Write
                        } else {
                            OpenMode::Read
                        });
                        // A recall may only target the recorded last writer,
                        // and never the opener itself.
                        if let Some(target) = outcome.recall_from {
                            prop_assert_eq!(mode, ConsistencyMode::WholeFile);
                            prop_assert_ne!(target, ClientId(c));
                            prop_assert_eq!(Some(&target.0), last_writer.get(&f));
                            last_writer.remove(&f);
                        }
                        model.opens.entry(f).or_default().push((c, w));
                        // Once a conflict exists, caching must be disabled.
                        if model.sharing_conflict(f) {
                            prop_assert!(server.is_disabled(FileId(f)));
                        }
                    }
                    Step::Close(c, f) => {
                        server.on_close(FileId(f), ClientId(c));
                        if let Some(list) = model.opens.get_mut(&f) {
                            if let Some(pos) = list.iter().position(|&(mc, _)| mc == c) {
                                list.remove(pos);
                            }
                            if list.is_empty() {
                                model.opens.remove(&f);
                                // Everyone closed: caching re-enabled.
                                prop_assert!(!server.is_disabled(FileId(f)));
                            }
                        }
                    }
                    Step::Write(c, f) => {
                        server.note_write(FileId(f), ClientId(c));
                        if !server.is_disabled(FileId(f)) {
                            last_writer.insert(f, c);
                        }
                    }
                    Step::Flush(c, f) => {
                        server.note_flush(FileId(f), ClientId(c));
                        if last_writer.get(&f) == Some(&c) {
                            last_writer.remove(&f);
                        }
                    }
                    Step::Delete(f) => {
                        server.on_delete(FileId(f));
                        model.opens.remove(&f);
                        last_writer.remove(&f);
                        prop_assert!(!server.is_disabled(FileId(f)));
                    }
                }
            }
        }
    }

    #[test]
    fn block_mode_never_recalls_at_open(steps in proptest::collection::vec(arb_step(), 1..60)) {
        let mut server = ConsistencyServer::with_mode(ConsistencyMode::BlockOnDemand);
        for step in &steps {
            match *step {
                Step::Open(c, f, w) => {
                    let outcome = server.on_open(FileId(f), ClientId(c), if w {
                        OpenMode::Write
                    } else {
                        OpenMode::Read
                    });
                    prop_assert_eq!(outcome.recall_from, None);
                    prop_assert!(!outcome.invalidate_opener);
                }
                Step::Close(c, f) => {
                    server.on_close(FileId(f), ClientId(c));
                }
                Step::Write(c, f) => server.note_write(FileId(f), ClientId(c)),
                Step::Flush(c, f) => server.note_flush(FileId(f), ClientId(c)),
                Step::Delete(f) => server.on_delete(FileId(f)),
            }
        }
    }
}
