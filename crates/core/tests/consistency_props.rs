//! Randomized tests on the consistency-server state machine: arbitrary
//! open/close/write/delete interleavings must never panic, the disabled
//! state must hold exactly while a write-sharing conflict exists, and
//! recalls must only ever point at real last-writers.
//!
//! Formerly proptest-based; now driven by a seeded [`nvfs_rng::StdRng`] so
//! the suite builds offline and failures reproduce exactly.

use nvfs_core::consistency::ConsistencyServer;
use nvfs_core::ConsistencyMode;
use nvfs_rng::{Rng, SeedableRng, StdRng};
use nvfs_trace::event::OpenMode;
use nvfs_types::{ClientId, FileId};
use std::collections::BTreeMap;

const CLIENTS: u32 = 4;
const FILES: u32 = 3;

#[derive(Debug, Clone, Copy)]
enum Step {
    Open(u32, u32, bool),
    Close(u32, u32),
    Write(u32, u32),
    Flush(u32, u32),
    Delete(u32),
}

fn rand_step(rng: &mut StdRng) -> Step {
    let c = rng.gen_range(0..CLIENTS);
    let f = rng.gen_range(0..FILES);
    match rng.gen_range(0..5u32) {
        0 => Step::Open(c, f, rng.gen_bool(0.5)),
        1 => Step::Close(c, f),
        2 => Step::Write(c, f),
        3 => Step::Flush(c, f),
        _ => Step::Delete(f),
    }
}

fn rand_steps(rng: &mut StdRng, max: usize) -> Vec<Step> {
    let n = rng.gen_range(1..max);
    (0..n).map(|_| rand_step(rng)).collect()
}

/// Reference model: per-file multiset of (client, writing) opens.
#[derive(Default)]
struct Model {
    opens: BTreeMap<u32, Vec<(u32, bool)>>,
}

impl Model {
    fn sharing_conflict(&self, file: u32) -> bool {
        let Some(list) = self.opens.get(&file) else {
            return false;
        };
        let clients: std::collections::BTreeSet<u32> = list.iter().map(|&(c, _)| c).collect();
        clients.len() >= 2 && list.iter().any(|&(_, w)| w)
    }
}

#[test]
fn state_machine_is_sound() {
    let mut rng = StdRng::seed_from_u64(0xC0_0001);
    for _case in 0..256 {
        let steps = rand_steps(&mut rng, 80);
        for mode in [ConsistencyMode::WholeFile, ConsistencyMode::BlockOnDemand] {
            let mut server = ConsistencyServer::with_mode(mode);
            let mut model = Model::default();
            let mut last_writer: BTreeMap<u32, u32> = BTreeMap::new();

            for step in &steps {
                match *step {
                    Step::Open(c, f, w) => {
                        let outcome = server.on_open(
                            FileId(f),
                            ClientId(c),
                            if w { OpenMode::Write } else { OpenMode::Read },
                        );
                        // A recall may only target the recorded last writer,
                        // and never the opener itself.
                        if let Some(target) = outcome.recall_from {
                            assert_eq!(mode, ConsistencyMode::WholeFile, "{steps:?}");
                            assert_ne!(target, ClientId(c), "{steps:?}");
                            assert_eq!(Some(&target.0), last_writer.get(&f), "{steps:?}");
                            last_writer.remove(&f);
                        }
                        model.opens.entry(f).or_default().push((c, w));
                        // Once a conflict exists, caching must be disabled.
                        if model.sharing_conflict(f) {
                            assert!(server.is_disabled(FileId(f)), "{steps:?}");
                        }
                    }
                    Step::Close(c, f) => {
                        server.on_close(FileId(f), ClientId(c));
                        if let Some(list) = model.opens.get_mut(&f) {
                            if let Some(pos) = list.iter().position(|&(mc, _)| mc == c) {
                                list.remove(pos);
                            }
                            if list.is_empty() {
                                model.opens.remove(&f);
                                // Everyone closed: caching re-enabled.
                                assert!(!server.is_disabled(FileId(f)), "{steps:?}");
                            }
                        }
                    }
                    Step::Write(c, f) => {
                        server.note_write(FileId(f), ClientId(c));
                        if !server.is_disabled(FileId(f)) {
                            last_writer.insert(f, c);
                        }
                    }
                    Step::Flush(c, f) => {
                        server.note_flush(FileId(f), ClientId(c));
                        if last_writer.get(&f) == Some(&c) {
                            last_writer.remove(&f);
                        }
                    }
                    Step::Delete(f) => {
                        server.on_delete(FileId(f));
                        model.opens.remove(&f);
                        last_writer.remove(&f);
                        assert!(!server.is_disabled(FileId(f)), "{steps:?}");
                    }
                }
            }
        }
    }
}

#[test]
fn block_mode_never_recalls_at_open() {
    let mut rng = StdRng::seed_from_u64(0xC0_0002);
    for _case in 0..256 {
        let steps = rand_steps(&mut rng, 60);
        let mut server = ConsistencyServer::with_mode(ConsistencyMode::BlockOnDemand);
        for step in &steps {
            match *step {
                Step::Open(c, f, w) => {
                    let outcome = server.on_open(
                        FileId(f),
                        ClientId(c),
                        if w { OpenMode::Write } else { OpenMode::Read },
                    );
                    assert_eq!(outcome.recall_from, None, "{steps:?}");
                    assert!(!outcome.invalidate_opener, "{steps:?}");
                }
                Step::Close(c, f) => {
                    server.on_close(FileId(f), ClientId(c));
                }
                Step::Write(c, f) => server.note_write(FileId(f), ClientId(c)),
                Step::Flush(c, f) => server.note_flush(FileId(f), ClientId(c)),
                Step::Delete(f) => server.on_delete(FileId(f)),
            }
        }
    }
}
