//! Cross-validation of the two independent §2 implementations.
//!
//! The finite-cache simulator ([`ClusterSim`]) and the infinite-cache
//! lifetime pass ([`LifetimeLog`]) were written separately, but with an
//! NVRAM large enough that replacement never fires, they model the same
//! system and must agree exactly:
//!
//! * server-bound bytes (callbacks + migration + concurrent) match,
//! * absorbed bytes (overwritten + deleted) match,
//! * remaining dirty bytes match.
//!
//! The random-stream half was formerly proptest-based; it is now driven by
//! a seeded [`nvfs_rng::StdRng`] so the suite builds offline.

use nvfs_core::{ByteFate, ClusterSim, LifetimeLog, SimConfig};
use nvfs_rng::{Rng, SeedableRng, StdRng};
use nvfs_trace::event::OpenMode;
use nvfs_trace::op::{Op, OpKind, OpStream};
use nvfs_trace::synth::{SpriteTraceSet, TraceSetConfig};
use nvfs_types::{ByteRange, ClientId, FileId, ProcessId, SimTime, BLOCK_SIZE};

/// Enough NVRAM that nothing is ever replaced.
const HUGE: u64 = 1 << 30;

fn agree(ops: &OpStream) -> Result<(), String> {
    let stats = ClusterSim::new(SimConfig::unified(64 * BLOCK_SIZE, HUGE)).run(ops);
    let log = LifetimeLog::analyze(ops);
    let fates = log.bytes_by_fate();
    let get = |f: ByteFate| fates.get(&f).copied().unwrap_or(0);

    let sim_server = stats.server_write_bytes;
    let log_server = get(ByteFate::CalledBack) + get(ByteFate::Migrated);
    if sim_server != log_server {
        return Err(format!(
            "server bytes: sim {sim_server} vs lifetime {log_server}"
        ));
    }
    if stats.concurrent_write_bytes != get(ByteFate::Concurrent) {
        return Err(format!(
            "concurrent: sim {} vs lifetime {}",
            stats.concurrent_write_bytes,
            get(ByteFate::Concurrent)
        ));
    }
    let sim_absorbed = stats.overwritten_dead_bytes + stats.deleted_dead_bytes;
    let log_absorbed = get(ByteFate::Overwritten) + get(ByteFate::Deleted);
    if sim_absorbed != log_absorbed {
        return Err(format!(
            "absorbed: sim {sim_absorbed} vs lifetime {log_absorbed}"
        ));
    }
    if stats.remaining_dirty_bytes != get(ByteFate::Remaining) {
        return Err(format!(
            "remaining: sim {} vs lifetime {}",
            stats.remaining_dirty_bytes,
            get(ByteFate::Remaining)
        ));
    }
    Ok(())
}

#[test]
fn implementations_agree_on_synthetic_traces() {
    let set = SpriteTraceSet::generate(&TraceSetConfig::tiny());
    for trace in set.traces() {
        agree(trace.ops()).unwrap_or_else(|e| panic!("trace {}: {e}", trace.number()));
    }
}

const FILES: u32 = 5;
const CLIENTS: u32 = 3;
const MAX_LEN: u64 = 5 * BLOCK_SIZE;

#[derive(Debug, Clone)]
enum Action {
    Open(u32, u32, bool),
    Close(u32, u32),
    Write(u32, u32, u64, u64),
    Truncate(u32, u32, u64),
    Delete(u32, u32),
    Fsync(u32, u32),
    Migrate(u32, u32),
}

fn rand_action(rng: &mut StdRng) -> Action {
    let c = rng.gen_range(0..CLIENTS);
    let f = rng.gen_range(0..FILES);
    match rng.gen_range(0..7u32) {
        0 => Action::Open(c, f, rng.gen_bool(0.5)),
        1 => Action::Close(c, f),
        2 => Action::Write(c, f, rng.gen_range(0..MAX_LEN), rng.gen_range(1..MAX_LEN)),
        3 => Action::Truncate(c, f, rng.gen_range(0..MAX_LEN)),
        4 => Action::Delete(c, f),
        5 => Action::Fsync(c, f),
        _ => Action::Migrate(c, f),
    }
}

#[test]
fn implementations_agree_on_random_streams() {
    let mut rng = StdRng::seed_from_u64(0xC805_0001);
    for _case in 0..128 {
        let n = rng.gen_range(1..100usize);
        let actions: Vec<Action> = (0..n).map(|_| rand_action(&mut rng)).collect();
        let ops: OpStream = actions
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let time = SimTime::from_secs(i as u64 * 3);
                let op = |client: u32, kind: OpKind| Op {
                    time,
                    client: ClientId(client),
                    kind,
                };
                match *a {
                    Action::Open(c, f, w) => op(
                        c,
                        OpKind::Open {
                            file: FileId(f),
                            mode: if w { OpenMode::Write } else { OpenMode::Read },
                        },
                    ),
                    Action::Close(c, f) => op(c, OpKind::Close { file: FileId(f) }),
                    Action::Write(c, f, o, l) => op(
                        c,
                        OpKind::Write {
                            file: FileId(f),
                            range: ByteRange::at(o, l),
                        },
                    ),
                    Action::Truncate(c, f, n) => op(
                        c,
                        OpKind::Truncate {
                            file: FileId(f),
                            new_len: n,
                        },
                    ),
                    Action::Delete(c, f) => op(c, OpKind::Delete { file: FileId(f) }),
                    Action::Fsync(c, f) => op(c, OpKind::Fsync { file: FileId(f) }),
                    Action::Migrate(c, f) => op(
                        c,
                        OpKind::Migrate {
                            pid: ProcessId(c),
                            to: ClientId((c + 1) % CLIENTS),
                            files: vec![FileId(f)],
                        },
                    ),
                }
            })
            .collect();
        if let Err(e) = agree(&ops) {
            panic!("case with {} actions: {e}\n{actions:?}", actions.len());
        }
    }
}
