//! Network-layer judge: at-most-once delivery and no-acked-loss.
//!
//! The crash oracle (`judge.rs`) checks the *durability* contract; this
//! module checks the *wire* contract the PR 7 RPC layer claims to
//! implement. The network layer emits a [`WireEvent`] transcript as it
//! resolves each request — transmissions, deliveries, server applies,
//! acknowledgements — and the [`NetJudge`] replays that transcript against
//! three invariants:
//!
//! * **No acknowledged request is lost** — an ack the client acted on must
//!   correspond to a server apply ([`NetVerdict::AckedLost`]).
//! * **No request is applied twice** — retransmissions and duplicated
//!   deliveries must be deduplicated by request id
//!   ([`NetVerdict::DoubleApply`]).
//! * **Partitions actually partition** — no delivery may be timestamped
//!   inside a window that severs its edge ([`NetVerdict::PartitionLeak`]).
//!
//! Like the crash oracle, the judge is an independent reimplementation: it
//! knows only the partition windows (as plain tuples, so this crate does
//! not depend on `nvfs-faults`) and the transcript, never the RPC state
//! machine's internals.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use nvfs_types::{ClientId, SimTime};

/// One observable action of the network layer, in transcript order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireEvent {
    /// A transmission attempt vanished on the wire.
    Dropped {
        /// Sending client.
        client: ClientId,
        /// Request id (unique per client).
        req_id: u64,
        /// Zero-based transmission attempt.
        attempt: u32,
        /// Send instant.
        at: SimTime,
    },
    /// A transmission reached the server.
    Delivered {
        /// Sending client.
        client: ClientId,
        /// Request id (unique per client).
        req_id: u64,
        /// Delivery instant.
        at: SimTime,
        /// Whether this is a wire-duplicated copy of an earlier delivery.
        duplicate: bool,
    },
    /// The server applied the request (first delivery past dedup).
    Applied {
        /// Sending client.
        client: ClientId,
        /// Request id (unique per client).
        req_id: u64,
        /// Apply instant.
        at: SimTime,
    },
    /// The client received the acknowledgement and retired the request.
    Acked {
        /// Sending client.
        client: ClientId,
        /// Request id (unique per client).
        req_id: u64,
        /// Ack instant.
        at: SimTime,
    },
    /// The client exhausted its retry budget and gave the request up
    /// (degraded mode; the data's fate is the cache model's problem).
    GaveUp {
        /// Sending client.
        client: ClientId,
        /// Request id (unique per client).
        req_id: u64,
        /// Final instant.
        at: SimTime,
    },
}

/// A violated wire invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetVerdict {
    /// The client retired a request on an ack the server never applied.
    AckedLost {
        /// Sending client.
        client: ClientId,
        /// Request id.
        req_id: u64,
    },
    /// The server applied one request id more than once.
    DoubleApply {
        /// Sending client.
        client: ClientId,
        /// Request id.
        req_id: u64,
    },
    /// A delivery was timestamped inside a partition severing its edge.
    PartitionLeak {
        /// Sending client.
        client: ClientId,
        /// Request id.
        req_id: u64,
        /// Delivery instant inside the window.
        at: SimTime,
    },
}

impl NetVerdict {
    /// Stable machine-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            NetVerdict::AckedLost { .. } => "acked-lost",
            NetVerdict::DoubleApply { .. } => "double-apply",
            NetVerdict::PartitionLeak { .. } => "partition-leak",
        }
    }
}

impl fmt::Display for NetVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetVerdict::AckedLost { client, req_id } => {
                write!(f, "acked-lost: client {} request {req_id}", client.0)
            }
            NetVerdict::DoubleApply { client, req_id } => {
                write!(f, "double-apply: client {} request {req_id}", client.0)
            }
            NetVerdict::PartitionLeak { client, req_id, at } => write!(
                f,
                "partition-leak: client {} request {req_id} delivered at {at} inside a partition",
                client.0
            ),
        }
    }
}

/// Running wire-contract totals — mergeable so a `par_map` sweep can fold
/// per-task summaries deterministically (mirrors `OracleSummary`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetSummary {
    /// Requests acknowledged to clients.
    pub acked: u64,
    /// Requests the server applied.
    pub applied: u64,
    /// Deliveries observed (including duplicates).
    pub deliveries: u64,
    /// Duplicate deliveries the server had to suppress.
    pub duplicates: u64,
    /// Transmissions dropped on the wire.
    pub dropped: u64,
    /// Requests abandoned after the retry budget.
    pub gave_up: u64,
    /// `AckedLost` findings.
    pub acked_lost: u64,
    /// `DoubleApply` findings.
    pub double_apply: u64,
    /// `PartitionLeak` findings.
    pub partition_leak: u64,
}

impl NetSummary {
    /// Total wire-invariant violations.
    pub fn violations(&self) -> u64 {
        self.acked_lost + self.double_apply + self.partition_leak
    }

    /// One-line machine-readable verdict (stable key order) — what
    /// `nvfs verify-net` prints and CI parses.
    pub fn verdict_json(&self, seed: u64) -> String {
        format!(
            concat!(
                "{{\"net_judge\":\"{}\",\"seed\":{},\"acked\":{},\"applied\":{},",
                "\"duplicates\":{},\"dropped\":{},\"gave_up\":{},",
                "\"acked_lost\":{},\"double_apply\":{},\"partition_leak\":{}}}"
            ),
            if self.violations() == 0 {
                "clean"
            } else {
                "violated"
            },
            seed,
            self.acked,
            self.applied,
            self.duplicates,
            self.dropped,
            self.gave_up,
            self.acked_lost,
            self.double_apply,
            self.partition_leak,
        )
    }

    /// Folds `other` into `self` (order-independent).
    pub fn merge(&mut self, other: &NetSummary) {
        self.acked += other.acked;
        self.applied += other.applied;
        self.deliveries += other.deliveries;
        self.duplicates += other.duplicates;
        self.dropped += other.dropped;
        self.gave_up += other.gave_up;
        self.acked_lost += other.acked_lost;
        self.double_apply += other.double_apply;
        self.partition_leak += other.partition_leak;
    }
}

/// Replays a [`WireEvent`] transcript against the wire contract.
///
/// Partition windows arrive as `(edge, start, end)` tuples — `None`
/// severs every edge (whole-server partition), `Some(client)` one edge —
/// with half-open `[start, end)` semantics.
#[derive(Debug, Clone, Default)]
pub struct NetJudge {
    windows: Vec<(Option<ClientId>, SimTime, SimTime)>,
    applied: BTreeMap<(u32, u64), u64>,
    acked: BTreeSet<(u32, u64)>,
    summary: NetSummary,
    verdicts: Vec<NetVerdict>,
}

impl NetJudge {
    /// Creates a judge that knows the plan's partition windows.
    pub fn new(windows: Vec<(Option<ClientId>, SimTime, SimTime)>) -> Self {
        NetJudge {
            windows,
            ..NetJudge::default()
        }
    }

    fn severed(&self, client: ClientId, at: SimTime) -> bool {
        self.windows
            .iter()
            .any(|&(edge, start, end)| start <= at && at < end && edge.is_none_or(|c| c == client))
    }

    /// Feeds one transcript event to the judge.
    pub fn observe(&mut self, event: &WireEvent) {
        match *event {
            WireEvent::Dropped { .. } => self.summary.dropped += 1,
            WireEvent::Delivered {
                client,
                req_id,
                at,
                duplicate,
            } => {
                self.summary.deliveries += 1;
                if duplicate {
                    self.summary.duplicates += 1;
                }
                if self.severed(client, at) {
                    self.summary.partition_leak += 1;
                    self.verdicts
                        .push(NetVerdict::PartitionLeak { client, req_id, at });
                }
            }
            WireEvent::Applied { client, req_id, .. } => {
                self.summary.applied += 1;
                let n = self.applied.entry((client.0, req_id)).or_insert(0);
                *n += 1;
                if *n == 2 {
                    self.summary.double_apply += 1;
                    self.verdicts
                        .push(NetVerdict::DoubleApply { client, req_id });
                }
            }
            WireEvent::Acked { client, req_id, .. } => {
                if self.acked.insert((client.0, req_id)) {
                    self.summary.acked += 1;
                }
            }
            WireEvent::GaveUp { .. } => self.summary.gave_up += 1,
        }
    }

    /// Finishes the transcript: every acked request must have been
    /// applied. Returns the summary and all violation verdicts.
    pub fn finish(mut self) -> (NetSummary, Vec<NetVerdict>) {
        for &(client, req_id) in &self.acked {
            if !self.applied.contains_key(&(client, req_id)) {
                self.summary.acked_lost += 1;
                self.verdicts.push(NetVerdict::AckedLost {
                    client: ClientId(client),
                    req_id,
                });
            }
        }
        emit_obs(&self.summary);
        (self.summary, self.verdicts)
    }
}

fn emit_obs(summary: &NetSummary) {
    use nvfs_obs::counter_add;
    counter_add("oracle.net_acked", summary.acked);
    counter_add("oracle.net_applied", summary.applied);
    counter_add("oracle.net_dup_suppressed", summary.duplicates);
    if summary.violations() > 0 {
        counter_add("oracle.net_violations", summary.violations());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(id: u32) -> ClientId {
        ClientId(id)
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn clean_exchange_produces_no_verdicts() {
        let mut judge = NetJudge::new(vec![]);
        for (rid, at) in [(0u64, 1u64), (1, 2)] {
            judge.observe(&WireEvent::Delivered {
                client: c(0),
                req_id: rid,
                at: t(at),
                duplicate: false,
            });
            judge.observe(&WireEvent::Applied {
                client: c(0),
                req_id: rid,
                at: t(at),
            });
            judge.observe(&WireEvent::Acked {
                client: c(0),
                req_id: rid,
                at: t(at + 1),
            });
        }
        let (summary, verdicts) = judge.finish();
        assert!(verdicts.is_empty());
        assert_eq!(summary.violations(), 0);
        assert_eq!(summary.acked, 2);
        assert_eq!(summary.applied, 2);
    }

    #[test]
    fn acked_without_apply_is_acked_lost() {
        let mut judge = NetJudge::new(vec![]);
        judge.observe(&WireEvent::Acked {
            client: c(3),
            req_id: 7,
            at: t(1),
        });
        let (summary, verdicts) = judge.finish();
        assert_eq!(summary.acked_lost, 1);
        assert_eq!(
            verdicts,
            vec![NetVerdict::AckedLost {
                client: c(3),
                req_id: 7
            }]
        );
        assert!(summary
            .verdict_json(9)
            .starts_with("{\"net_judge\":\"violated\",\"seed\":9,"));
    }

    #[test]
    fn double_apply_is_flagged_once_per_extra_apply() {
        let mut judge = NetJudge::new(vec![]);
        for _ in 0..3 {
            judge.observe(&WireEvent::Applied {
                client: c(1),
                req_id: 4,
                at: t(2),
            });
        }
        let (summary, verdicts) = judge.finish();
        assert_eq!(summary.double_apply, 1, "one verdict per request id");
        assert_eq!(summary.applied, 3);
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].label(), "double-apply");
    }

    #[test]
    fn delivery_inside_partition_leaks() {
        // Server window [10, 20) severs everyone; client-1 window [30, 40).
        let mut judge = NetJudge::new(vec![(None, t(10), t(20)), (Some(c(1)), t(30), t(40))]);
        let deliver = |judge: &mut NetJudge, client, at| {
            judge.observe(&WireEvent::Delivered {
                client,
                req_id: 0,
                at,
                duplicate: false,
            });
        };
        deliver(&mut judge, c(0), t(15)); // inside server window: leak
        deliver(&mut judge, c(0), t(35)); // other client's window: fine
        deliver(&mut judge, c(1), t(35)); // inside own window: leak
        deliver(&mut judge, c(1), t(40)); // half-open end: fine
        let (summary, verdicts) = judge.finish();
        assert_eq!(summary.partition_leak, 2);
        assert_eq!(verdicts.len(), 2);
    }

    #[test]
    fn summary_merge_is_field_wise() {
        let mut a = NetSummary {
            acked: 1,
            applied: 1,
            ..NetSummary::default()
        };
        let b = NetSummary {
            acked: 2,
            dropped: 5,
            partition_leak: 1,
            ..NetSummary::default()
        };
        a.merge(&b);
        assert_eq!(a.acked, 3);
        assert_eq!(a.dropped, 5);
        assert_eq!(a.violations(), 1);
    }
}
