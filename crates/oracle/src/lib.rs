//! Crash-consistency durability oracle.
//!
//! PR 2 injects faults and PR 3 observes them; this crate *judges* them.
//! `ReliabilityStats` counts lost bytes, but counting is not checking: a
//! recovery path that silently dropped acknowledged data while keeping its
//! byte totals plausible would sail through every existing experiment. The
//! oracle closes that hole with a shadow durability model: at the instant a
//! client crashes, it captures exactly which bytes the cache model had
//! contractually promised to keep (the [`DurablePromise`]), independently
//! predicts what a correct recovery must return under the injected drain
//! conditions ([`torn_prefix`]), and diffs that prediction against what the
//! recovery path actually produced. Every discrepancy becomes a typed
//! [`Verdict`]:
//!
//! * [`Verdict::Clean`] — recovered state matches the contract exactly.
//! * [`Verdict::LostDurable`] — a promised byte range did not survive.
//! * [`Verdict::Resurrected`] — recovery produced bytes never promised
//!   (fabricated data, e.g. from a dead board).
//! * [`Verdict::DoubleReplay`] — one crash's drain was applied twice.
//!
//! [`ServerState`] additionally proves replay idempotence: applying the
//! same recovered drain twice must change nothing the second time.
//!
//! [`WalJudge`] extends the same verdict vocabulary to the write-ahead-log
//! server mode, where a byte is promised the instant its record is durably
//! appended (the fsync ack), not when a crash captures it.
//!
//! The oracle depends only on `nvfs-types` (plus `nvfs-obs` for the
//! `oracle_verdict` event and `oracle.*` counters), so its prediction of
//! the drain contract is an *independent reimplementation*, not a call
//! into the code under test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod judge;
mod netjudge;
mod shadow;
mod wal;

pub use judge::{CrashReport, Oracle, OracleSummary, Verdict};
pub use netjudge::{NetJudge, NetSummary, NetVerdict, WireEvent};
pub use shadow::{torn_prefix, DrainExpectation, DurableMap, DurablePromise, ServerState};
pub use wal::{WalEvent, WalJudge};
