//! Diffing recovered state against the shadow model into typed verdicts.

use std::collections::BTreeMap;
use std::fmt;

use nvfs_types::{ByteRange, ClientId, FileId, RangeSet, SimTime};

use crate::shadow::{DrainExpectation, DurableMap, DurablePromise};

/// One typed finding about a crash's recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The recovered state matched the durability contract exactly.
    Clean,
    /// A byte range the model promised to keep did not survive recovery.
    LostDurable {
        /// File the promised range belongs to.
        file: FileId,
        /// The promised range (or part of it) that is missing.
        range: ByteRange,
    },
    /// Recovery produced a byte range that was never promised — fabricated
    /// data, e.g. drained from a board whose batteries had died.
    Resurrected {
        /// File the fabricated range was attributed to.
        file: FileId,
        /// The range that should not exist.
        range: ByteRange,
    },
    /// The same crash's drain was applied more than once.
    DoubleReplay {
        /// File whose range was replayed again.
        file: FileId,
        /// The overlap between this replay and an earlier one of the same
        /// crash.
        range: ByteRange,
    },
    /// A promised byte range was corrupted in NVRAM and the damage was
    /// *detected* (checksum mismatch on read-back, drain or scrub): the
    /// data is lost, but honestly — the contract degrades to an
    /// explicit error, never to wrong contents.
    Corrupted {
        /// File the corrupted range belongs to.
        file: FileId,
        /// The promised range whose contents were damaged.
        range: ByteRange,
    },
    /// A promised byte range was corrupted and recovery returned the
    /// wrong contents *as if they were good* — the new worst outcome,
    /// strictly worse than [`Verdict::LostDurable`] because the caller
    /// cannot even know to distrust the data.
    SilentCorruption {
        /// File the silently corrupted range belongs to.
        file: FileId,
        /// The promised range returned with wrong contents.
        range: ByteRange,
    },
    /// A corrupted promised range was detected by the scrub and repaired
    /// from the disk's clean copy before anyone read the damage.
    Repaired {
        /// File the repaired range belongs to.
        file: FileId,
        /// The range restored from disk.
        range: ByteRange,
    },
}

impl Verdict {
    /// Short static label, also used for the `oracle_verdict` event.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Clean => "clean",
            Verdict::LostDurable { .. } => "lost_durable",
            Verdict::Resurrected { .. } => "resurrected",
            Verdict::DoubleReplay { .. } => "double_replay",
            Verdict::Corrupted { .. } => "corrupted",
            Verdict::SilentCorruption { .. } => "silent_corruption",
            Verdict::Repaired { .. } => "repaired",
        }
    }

    /// Whether this verdict is an invariant violation. Detected
    /// corruption ([`Verdict::Corrupted`]) and scrub repair
    /// ([`Verdict::Repaired`]) are honest outcomes — only *silent*
    /// corruption joins the original three violations.
    pub fn is_violation(&self) -> bool {
        match self {
            Verdict::Clean | Verdict::Corrupted { .. } | Verdict::Repaired { .. } => false,
            Verdict::LostDurable { .. }
            | Verdict::Resurrected { .. }
            | Verdict::DoubleReplay { .. }
            | Verdict::SilentCorruption { .. } => true,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Clean => write!(f, "Clean"),
            Verdict::LostDurable { file, range } => {
                write!(
                    f,
                    "LostDurable {{ {file}, [{}, {}) }}",
                    range.start, range.end
                )
            }
            Verdict::Resurrected { file, range } => {
                write!(
                    f,
                    "Resurrected {{ {file}, [{}, {}) }}",
                    range.start, range.end
                )
            }
            Verdict::DoubleReplay { file, range } => {
                write!(
                    f,
                    "DoubleReplay {{ {file}, [{}, {}) }}",
                    range.start, range.end
                )
            }
            Verdict::Corrupted { file, range } => {
                write!(
                    f,
                    "Corrupted {{ {file}, [{}, {}) }}",
                    range.start, range.end
                )
            }
            Verdict::SilentCorruption { file, range } => {
                write!(
                    f,
                    "SilentCorruption {{ {file}, [{}, {}) }}",
                    range.start, range.end
                )
            }
            Verdict::Repaired { file, range } => {
                write!(f, "Repaired {{ {file}, [{}, {}) }}", range.start, range.end)
            }
        }
    }
}

/// The oracle's full judgement of one crash + recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashReport {
    /// The client that crashed.
    pub client: ClientId,
    /// When the crash fired.
    pub at: SimTime,
    /// Bytes the cache model promised to keep.
    pub promised_bytes: u64,
    /// Bytes a correct recovery must return under the injected conditions.
    pub expected_bytes: u64,
    /// Bytes the recovery actually returned.
    pub observed_bytes: u64,
    /// Every finding; a single [`Verdict::Clean`] when nothing is wrong.
    pub verdicts: Vec<Verdict>,
}

impl CrashReport {
    /// Whether recovery honoured the contract exactly.
    pub fn is_clean(&self) -> bool {
        self.verdicts.iter().all(|v| !v.is_violation())
    }
}

/// Running totals over many judged crash points — mergeable so a
/// `par_map` sweep can fold per-task summaries deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OracleSummary {
    /// Crash points judged.
    pub crash_points: u64,
    /// Crash points whose recovery was exactly correct.
    pub clean: u64,
    /// `LostDurable` findings.
    pub lost_durable: u64,
    /// `Resurrected` findings.
    pub resurrected: u64,
    /// `DoubleReplay` findings.
    pub double_replay: u64,
    /// `Corrupted` findings (detected, honest loss — not violations).
    pub corrupted: u64,
    /// `SilentCorruption` findings (wrong contents passed as good — the
    /// worst violation).
    pub silent_corruption: u64,
    /// `Repaired` findings (scrub restored the bytes from disk).
    pub repaired: u64,
    /// Total bytes the shadow model expected to survive.
    pub bytes_expected: u64,
    /// Total bytes recoveries actually produced.
    pub bytes_observed: u64,
}

impl OracleSummary {
    /// Total invariant violations.
    pub fn violations(&self) -> u64 {
        self.lost_durable + self.resurrected + self.double_replay + self.silent_corruption
    }

    /// One-line machine-readable verdict (stable key order) — what
    /// `nvfs faults --oracle` prints and CI parses.
    pub fn verdict_json(&self, seed: u64) -> String {
        format!(
            concat!(
                "{{\"oracle\":\"{}\",\"seed\":{},\"crash_points\":{},\"clean\":{},",
                "\"lost_durable\":{},\"resurrected\":{},\"double_replay\":{}}}"
            ),
            if self.violations() == 0 {
                "clean"
            } else {
                "violated"
            },
            seed,
            self.crash_points,
            self.clean,
            self.lost_durable,
            self.resurrected,
            self.double_replay,
        )
    }

    /// Folds `other` into `self` (order-independent).
    pub fn merge(&mut self, other: &OracleSummary) {
        self.crash_points += other.crash_points;
        self.clean += other.clean;
        self.lost_durable += other.lost_durable;
        self.resurrected += other.resurrected;
        self.double_replay += other.double_replay;
        self.corrupted += other.corrupted;
        self.silent_corruption += other.silent_corruption;
        self.repaired += other.repaired;
        self.bytes_expected += other.bytes_expected;
        self.bytes_observed += other.bytes_observed;
    }

    /// Absorbs one judged crash report.
    pub fn absorb(&mut self, report: &CrashReport) {
        self.crash_points += 1;
        if report.is_clean() {
            self.clean += 1;
        }
        for v in &report.verdicts {
            match v {
                Verdict::Clean => {}
                Verdict::LostDurable { .. } => self.lost_durable += 1,
                Verdict::Resurrected { .. } => self.resurrected += 1,
                Verdict::DoubleReplay { .. } => self.double_replay += 1,
                Verdict::Corrupted { .. } => self.corrupted += 1,
                Verdict::SilentCorruption { .. } => self.silent_corruption += 1,
                Verdict::Repaired { .. } => self.repaired += 1,
            }
        }
        self.bytes_expected += report.expected_bytes;
        self.bytes_observed += report.observed_bytes;
    }
}

/// The stateful judge: feed it one `(promise, expectation, observed)`
/// triple per recovered crash and it produces [`CrashReport`]s, tracking
/// earlier replays of the same crash so double application is caught.
#[derive(Debug, Clone, Default)]
pub struct Oracle {
    /// What has already been replayed for each crash incident, keyed by
    /// (client, crash time) — one client cannot crash twice at the same
    /// instant, so the pair identifies the incident.
    replayed: BTreeMap<(ClientId, SimTime), DurableMap>,
    reports: Vec<CrashReport>,
}

impl Oracle {
    /// A fresh oracle with no judged crashes.
    pub fn new() -> Self {
        Oracle::default()
    }

    /// Judges one recovered crash: diffs `observed` against what the
    /// shadow model says must have survived. Emits an `oracle_verdict`
    /// event and bumps `oracle.*` counters; the report is also retained
    /// (see [`reports`](Oracle::reports)).
    pub fn judge(
        &mut self,
        promise: &DurablePromise,
        expect: DrainExpectation,
        observed: &DurableMap,
    ) -> &CrashReport {
        let expected = expect.expected(promise);
        let mut verdicts = Vec::new();

        // Promised-but-missing → LostDurable.
        for (file, range) in subtract(&expected, observed) {
            verdicts.push(Verdict::LostDurable { file, range });
        }
        // Observed-but-never-promised → Resurrected.
        for (file, range) in subtract(observed, &expected) {
            verdicts.push(Verdict::Resurrected { file, range });
        }
        // Overlap with an earlier replay of the same incident → DoubleReplay.
        let incident = (promise.client, promise.captured_at);
        if let Some(prior) = self.replayed.get(&incident) {
            for (file, range) in intersect(observed, prior) {
                verdicts.push(Verdict::DoubleReplay { file, range });
            }
        }
        let slot = self.replayed.entry(incident).or_default();
        for (file, set) in observed {
            let target = slot.entry(*file).or_default();
            for r in set.iter() {
                target.insert(r);
            }
        }

        if verdicts.is_empty() {
            verdicts.push(Verdict::Clean);
        }
        let report = CrashReport {
            client: promise.client,
            at: promise.captured_at,
            promised_bytes: promise.bytes(),
            expected_bytes: expected.values().map(RangeSet::len_bytes).sum(),
            observed_bytes: observed.values().map(RangeSet::len_bytes).sum(),
            verdicts,
        };
        emit_obs(&report);
        self.reports.push(report);
        self.reports.last().expect("just pushed")
    }

    /// Every judged crash, in judgement order.
    pub fn reports(&self) -> &[CrashReport] {
        &self.reports
    }

    /// Consumes the oracle, returning its reports.
    pub fn into_reports(self) -> Vec<CrashReport> {
        self.reports
    }

    /// Summarises every judged crash.
    pub fn summary(&self) -> OracleSummary {
        let mut s = OracleSummary::default();
        for r in &self.reports {
            s.absorb(r);
        }
        s
    }
}

fn emit_obs(report: &CrashReport) {
    nvfs_obs::counter_add("oracle.crashes_judged", 1);
    nvfs_obs::counter_add("oracle.bytes_expected", report.expected_bytes);
    nvfs_obs::counter_add("oracle.bytes_observed", report.observed_bytes);
    let worst = report
        .verdicts
        .iter()
        .find(|v| v.is_violation())
        .unwrap_or(&Verdict::Clean);
    match worst {
        Verdict::Clean => nvfs_obs::counter_add("oracle.verdicts_clean", 1),
        Verdict::LostDurable { .. } => nvfs_obs::counter_add("oracle.verdicts_lost_durable", 1),
        Verdict::Resurrected { .. } => nvfs_obs::counter_add("oracle.verdicts_resurrected", 1),
        Verdict::DoubleReplay { .. } => nvfs_obs::counter_add("oracle.verdicts_double_replay", 1),
        Verdict::Corrupted { .. } => nvfs_obs::counter_add("oracle.verdicts_corrupted", 1),
        Verdict::SilentCorruption { .. } => {
            nvfs_obs::counter_add("oracle.verdicts_silent_corruption", 1)
        }
        Verdict::Repaired { .. } => nvfs_obs::counter_add("oracle.verdicts_repaired", 1),
    }
    nvfs_obs::event("oracle_verdict", report.at.as_micros())
        .u64("client", report.client.0 as u64)
        .str("verdict", worst.label())
        .u64("promised_bytes", report.promised_bytes)
        .u64("expected_bytes", report.expected_bytes)
        .u64("observed_bytes", report.observed_bytes)
        .u64(
            "violations",
            report.verdicts.iter().filter(|v| v.is_violation()).count() as u64,
        )
        .emit();
}

/// Ranges present in `a` but not in `b`, per file, in deterministic order.
fn subtract(a: &DurableMap, b: &DurableMap) -> Vec<(FileId, ByteRange)> {
    let mut out = Vec::new();
    for (file, set) in a {
        let mut remaining = set.clone();
        if let Some(other) = b.get(file) {
            for r in other.iter() {
                remaining.remove(r);
            }
        }
        for r in remaining.iter() {
            out.push((*file, r));
        }
    }
    out
}

/// Ranges present in both `a` and `b`, per file, in deterministic order.
fn intersect(a: &DurableMap, b: &DurableMap) -> Vec<(FileId, ByteRange)> {
    let mut out = Vec::new();
    for (file, set) in a {
        let Some(other) = b.get(file) else { continue };
        for r in set.iter() {
            for o in other.iter() {
                if let Some(overlap) = r.intersection(o) {
                    if !overlap.is_empty() {
                        out.push((*file, overlap));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfs_types::BLOCK_SIZE;

    fn map(entries: &[(u32, u64, u64)]) -> DurableMap {
        let mut m = DurableMap::new();
        for &(file, start, end) in entries {
            m.entry(FileId(file))
                .or_default()
                .insert(ByteRange::new(start, end));
        }
        m
    }

    fn promise(entries: &[(u32, u64, u64)]) -> DurablePromise {
        DurablePromise {
            client: ClientId(1),
            captured_at: SimTime::from_secs(10),
            ranges: map(entries),
        }
    }

    #[test]
    fn faithful_recovery_is_clean() {
        let p = promise(&[(1, 0, BLOCK_SIZE), (2, 0, BLOCK_SIZE)]);
        let mut o = Oracle::new();
        let r = o.judge(&p, DrainExpectation::full(), &p.ranges.clone());
        assert!(r.is_clean());
        assert_eq!(r.verdicts, vec![Verdict::Clean]);
        assert_eq!(o.summary().clean, 1);
        assert_eq!(o.summary().violations(), 0);
    }

    #[test]
    fn dropped_file_is_lost_durable() {
        let p = promise(&[(1, 0, BLOCK_SIZE), (2, 0, BLOCK_SIZE)]);
        let observed = map(&[(1, 0, BLOCK_SIZE)]);
        let mut o = Oracle::new();
        let r = o.judge(&p, DrainExpectation::full(), &observed).clone();
        assert!(!r.is_clean());
        assert_eq!(
            r.verdicts,
            vec![Verdict::LostDurable {
                file: FileId(2),
                range: ByteRange::new(0, BLOCK_SIZE),
            }]
        );
        assert_eq!(o.summary().lost_durable, 1);
    }

    #[test]
    fn fabricated_range_is_resurrected() {
        let p = promise(&[(1, 0, BLOCK_SIZE)]);
        let observed = map(&[(1, 0, BLOCK_SIZE), (9, 0, BLOCK_SIZE)]);
        let mut o = Oracle::new();
        let r = o.judge(&p, DrainExpectation::full(), &observed).clone();
        assert_eq!(
            r.verdicts,
            vec![Verdict::Resurrected {
                file: FileId(9),
                range: ByteRange::new(0, BLOCK_SIZE),
            }]
        );
    }

    #[test]
    fn dead_board_must_return_nothing() {
        let p = promise(&[(1, 0, BLOCK_SIZE)]);
        let mut o = Oracle::new();
        // Returning the data anyway — from a board that lost power — is
        // fabrication, not heroism.
        let r = o
            .judge(&p, DrainExpectation::dead(), &p.ranges.clone())
            .clone();
        assert_eq!(
            r.verdicts,
            vec![Verdict::Resurrected {
                file: FileId(1),
                range: ByteRange::new(0, BLOCK_SIZE),
            }]
        );
        let clean = o.judge(&p, DrainExpectation::dead(), &DurableMap::new());
        // An empty observation can no longer double-replay anything.
        assert!(clean.is_clean());
    }

    #[test]
    fn same_incident_replayed_twice_is_double_replay() {
        let p = promise(&[(1, 0, BLOCK_SIZE)]);
        let mut o = Oracle::new();
        assert!(o
            .judge(&p, DrainExpectation::full(), &p.ranges.clone())
            .is_clean());
        let r = o
            .judge(&p, DrainExpectation::full(), &p.ranges.clone())
            .clone();
        assert_eq!(
            r.verdicts,
            vec![Verdict::DoubleReplay {
                file: FileId(1),
                range: ByteRange::new(0, BLOCK_SIZE),
            }]
        );
    }

    #[test]
    fn distinct_incidents_do_not_collide() {
        let mut a = promise(&[(1, 0, BLOCK_SIZE)]);
        let mut o = Oracle::new();
        assert!(o
            .judge(&a, DrainExpectation::full(), &a.ranges.clone())
            .is_clean());
        // The client re-dirties the same range and crashes again later:
        // a fresh incident, legitimately replaying the same bytes.
        a.captured_at = SimTime::from_secs(20);
        assert!(o
            .judge(&a, DrainExpectation::full(), &a.ranges.clone())
            .is_clean());
    }

    #[test]
    fn torn_expectation_flags_over_delivery() {
        let p = promise(&[(1, 0, 2 * BLOCK_SIZE)]);
        // The drain was injected to cut after one block, but recovery
        // returned both — it delivered bytes the schedule says it cannot
        // have drained.
        let mut o = Oracle::new();
        let r = o
            .judge(&p, DrainExpectation::torn(BLOCK_SIZE), &p.ranges.clone())
            .clone();
        assert_eq!(
            r.verdicts,
            vec![Verdict::Resurrected {
                file: FileId(1),
                range: ByteRange::new(BLOCK_SIZE, 2 * BLOCK_SIZE),
            }]
        );
    }

    #[test]
    fn summary_merge_is_order_independent() {
        let p = promise(&[(1, 0, BLOCK_SIZE)]);
        let mut o1 = Oracle::new();
        o1.judge(&p, DrainExpectation::full(), &p.ranges.clone());
        let mut o2 = Oracle::new();
        o2.judge(&p, DrainExpectation::full(), &DurableMap::new());
        let (s1, s2) = (o1.summary(), o2.summary());
        let mut ab = s1;
        ab.merge(&s2);
        let mut ba = s2;
        ba.merge(&s1);
        assert_eq!(ab, ba);
        assert_eq!(ab.crash_points, 2);
        assert_eq!(ab.clean, 1);
        assert_eq!(ab.lost_durable, 1);
    }

    #[test]
    fn corruption_verdicts_partition_honest_and_silent() {
        let range = ByteRange::new(0, BLOCK_SIZE);
        let file = FileId(3);
        // Detected loss and repair are honest outcomes; silent corruption
        // is the worst violation.
        assert!(!Verdict::Corrupted { file, range }.is_violation());
        assert!(!Verdict::Repaired { file, range }.is_violation());
        assert!(Verdict::SilentCorruption { file, range }.is_violation());
        assert_eq!(Verdict::Corrupted { file, range }.label(), "corrupted");
        assert_eq!(
            Verdict::SilentCorruption { file, range }.label(),
            "silent_corruption"
        );
        assert_eq!(Verdict::Repaired { file, range }.label(), "repaired");
        let shown = Verdict::SilentCorruption { file, range }.to_string();
        assert!(shown.contains("SilentCorruption"), "{shown}");
        assert!(shown.contains("[0, 4096)"), "{shown}");
    }

    #[test]
    fn summary_counts_corruption_verdicts() {
        let range = ByteRange::new(0, BLOCK_SIZE);
        let report = CrashReport {
            client: ClientId(0),
            at: SimTime::from_secs(1),
            promised_bytes: 3 * BLOCK_SIZE,
            expected_bytes: 3 * BLOCK_SIZE,
            observed_bytes: 3 * BLOCK_SIZE,
            verdicts: vec![
                Verdict::Corrupted {
                    file: FileId(1),
                    range,
                },
                Verdict::SilentCorruption {
                    file: FileId(2),
                    range,
                },
                Verdict::Repaired {
                    file: FileId(3),
                    range,
                },
            ],
        };
        let mut s = OracleSummary::default();
        s.absorb(&report);
        assert_eq!(s.corrupted, 1);
        assert_eq!(s.silent_corruption, 1);
        assert_eq!(s.repaired, 1);
        assert_eq!(s.violations(), 1, "only silent corruption violates");
        let mut t = OracleSummary::default();
        t.merge(&s);
        assert_eq!(t, s);
        // The pinned verdict line is unchanged for corruption-free runs
        // and flips to violated when silent corruption appears.
        assert!(s.verdict_json(42).starts_with("{\"oracle\":\"violated\""));
        assert_eq!(
            OracleSummary::default().verdict_json(42),
            "{\"oracle\":\"clean\",\"seed\":42,\"crash_points\":0,\"clean\":0,\
             \"lost_durable\":0,\"resurrected\":0,\"double_replay\":0}"
        );
    }

    #[test]
    fn verdict_display_names_the_range() {
        let v = Verdict::LostDurable {
            file: FileId(7),
            range: ByteRange::new(0, 4096),
        };
        let s = v.to_string();
        assert!(s.contains("LostDurable"), "{s}");
        assert!(s.contains("[0, 4096)"), "{s}");
    }
}
