//! The shadow durability model: what each cache model promised to keep.

use std::collections::BTreeMap;

use nvfs_types::{ByteRange, ClientId, FileId, RangeSet, SimTime, BLOCK_SIZE};

/// Per-file durable byte ranges — the common currency of promises,
/// predictions, and observed recoveries. Structurally identical to
/// `nvfs_nvram::RecoveredData`, redefined here so the oracle stays
/// independent of the code it checks.
pub type DurableMap = BTreeMap<FileId, RangeSet>;

/// The bytes a cache model contractually guaranteed to survive a crash,
/// captured at the instant the crash fired — *before* any recovery code
/// runs, so a broken snapshot path is caught rather than trusted.
///
/// Which bytes qualify is the model's durability contract (see
/// DESIGN.md § Durability contract): nothing for the volatile model,
/// every NVRAM-resident dirty byte for write-aside and unified, and only
/// the aged-out-of-window portion for the hybrid model. The cache itself
/// answers that question via `nvram_dirty_contents()`; the promise just
/// freezes the answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurablePromise {
    /// The client whose cache made the promise.
    pub client: ClientId,
    /// When the crash fired (also the promise's identity: one client
    /// cannot crash twice at the same instant).
    pub captured_at: SimTime,
    /// The promised durable ranges, merged per file.
    pub ranges: DurableMap,
}

impl DurablePromise {
    /// Captures a promise from an iterator of `(file, ranges)` pairs as
    /// yielded by `ClientCache::nvram_dirty_contents()`. The same file may
    /// appear multiple times (one entry per cached block); ranges are
    /// merged.
    pub fn capture<'a, I>(client: ClientId, captured_at: SimTime, contents: I) -> Self
    where
        I: IntoIterator<Item = (FileId, &'a RangeSet)>,
    {
        let mut ranges = DurableMap::new();
        for (file, set) in contents {
            let merged = ranges.entry(file).or_default();
            for r in set.iter() {
                merged.insert(r);
            }
        }
        DurablePromise {
            client,
            captured_at,
            ranges,
        }
    }

    /// Total promised bytes.
    pub fn bytes(&self) -> u64 {
        self.ranges.values().map(RangeSet::len_bytes).sum()
    }
}

/// The injected drain conditions a recovery ran under — everything the
/// oracle needs to predict the correct outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainExpectation {
    /// All board batteries were dead at drain time: the contract says the
    /// recovery must return *nothing* (fabricating data would be a
    /// [`Resurrected`](crate::Verdict::Resurrected) violation).
    pub board_dead: bool,
    /// The injected drain budget (`u64::MAX` for an untorn drain).
    pub max_bytes: u64,
}

impl DrainExpectation {
    /// A full, untorn drain on a healthy board.
    pub fn full() -> Self {
        DrainExpectation {
            board_dead: false,
            max_bytes: u64::MAX,
        }
    }

    /// A torn drain cut short after `max_bytes` on a healthy board.
    pub fn torn(max_bytes: u64) -> Self {
        DrainExpectation {
            board_dead: false,
            max_bytes,
        }
    }

    /// A board whose batteries all died before the drain.
    pub fn dead() -> Self {
        DrainExpectation {
            board_dead: true,
            max_bytes: 0,
        }
    }

    /// The exact durable map a correct recovery must produce for
    /// `promise` under these conditions.
    pub fn expected(&self, promise: &DurablePromise) -> DurableMap {
        if self.board_dead {
            DurableMap::new()
        } else {
            torn_prefix(&promise.ranges, self.max_bytes)
        }
    }
}

/// Independently recomputes the torn-drain contract: walking files in
/// `FileId` order and ranges in offset order, a range is taken whole when
/// the remaining budget covers it, otherwise cut at the largest 4 KB
/// block-grid offset the budget reaches — and the first cut ends the
/// drain (a torn drain is a prefix, not a sieve). With `max_bytes ==
/// u64::MAX` this is the identity.
///
/// This mirrors `NvramBoard::drain_up_to` *by specification*, not by
/// calling it — the whole point is that the two are written separately
/// and must agree.
pub fn torn_prefix(ranges: &DurableMap, max_bytes: u64) -> DurableMap {
    let mut out = DurableMap::new();
    let mut budget = max_bytes;
    for (file, set) in ranges {
        if budget == 0 {
            break;
        }
        let mut kept = RangeSet::new();
        let mut cut = false;
        for range in set.iter() {
            if budget >= range.len() {
                kept.insert(range);
                budget -= range.len();
                continue;
            }
            let grid = ((range.start + budget) / BLOCK_SIZE) * BLOCK_SIZE;
            if grid > range.start {
                kept.insert(ByteRange::new(range.start, grid));
            }
            budget = 0;
            cut = true;
            break;
        }
        if !kept.is_empty() {
            out.insert(*file, kept);
        }
        if cut {
            break;
        }
    }
    out
}

/// A shadow of the server's durable state, used to prove replay
/// idempotence: applying the same recovered drain twice must be a no-op
/// the second time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerState {
    files: DurableMap,
}

impl ServerState {
    /// An empty server.
    pub fn new() -> Self {
        ServerState::default()
    }

    /// Applies a recovered drain, returning the number of *newly* durable
    /// bytes. A second application of the same map returns 0 and leaves
    /// the state bit-identical — that is the idempotence being proved.
    pub fn apply(&mut self, recovered: &DurableMap) -> u64 {
        let mut newly = 0;
        for (file, set) in recovered {
            let target = self.files.entry(*file).or_default();
            for r in set.iter() {
                newly += target.insert(r);
            }
        }
        newly
    }

    /// Total durable bytes.
    pub fn durable_bytes(&self) -> u64 {
        self.files.values().map(RangeSet::len_bytes).sum()
    }

    /// The durable ranges per file (read-only).
    pub fn files(&self) -> &DurableMap {
        &self.files
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(entries: &[(u32, u64, u64)]) -> DurableMap {
        let mut m = DurableMap::new();
        for &(file, start, end) in entries {
            m.entry(FileId(file))
                .or_default()
                .insert(ByteRange::new(start, end));
        }
        m
    }

    #[test]
    fn capture_merges_repeated_files() {
        let a = RangeSet::from_range(ByteRange::new(0, BLOCK_SIZE));
        let b = RangeSet::from_range(ByteRange::new(BLOCK_SIZE, 2 * BLOCK_SIZE));
        let p = DurablePromise::capture(
            ClientId(3),
            SimTime::from_secs(7),
            vec![(FileId(1), &a), (FileId(1), &b)],
        );
        assert_eq!(p.bytes(), 2 * BLOCK_SIZE);
        assert_eq!(p.ranges[&FileId(1)].iter().count(), 1, "coalesced");
    }

    #[test]
    fn full_budget_is_identity() {
        let m = map(&[(1, 0, 4096), (2, 100, 5000)]);
        assert_eq!(torn_prefix(&m, u64::MAX), m);
    }

    #[test]
    fn torn_prefix_cuts_on_the_block_grid_and_stops() {
        let m = map(&[(1, 0, 3 * 4096), (2, 0, 4096)]);
        let out = torn_prefix(&m, 4096 + 17);
        assert_eq!(out[&FileId(1)].len_bytes(), 4096);
        assert!(!out.contains_key(&FileId(2)), "prefix, not sieve");
    }

    #[test]
    fn zero_budget_keeps_nothing() {
        let m = map(&[(1, 0, 4096)]);
        assert!(torn_prefix(&m, 0).is_empty());
    }

    #[test]
    fn dead_board_expects_nothing() {
        let m = map(&[(1, 0, 4096)]);
        let p = DurablePromise {
            client: ClientId(0),
            captured_at: SimTime::ZERO,
            ranges: m,
        };
        assert!(DrainExpectation::dead().expected(&p).is_empty());
        assert_eq!(DrainExpectation::full().expected(&p), p.ranges);
    }

    #[test]
    fn server_replay_is_idempotent() {
        let m = map(&[(1, 0, 4096), (2, 4096, 8192)]);
        let mut s = ServerState::new();
        assert_eq!(s.apply(&m), 8192);
        let first = s.clone();
        assert_eq!(s.apply(&m), 0, "second replay adds nothing");
        assert_eq!(s, first, "…and changes nothing");
        assert_eq!(s.durable_bytes(), 8192);
    }
}
