//! WAL-aware durability judging.
//!
//! The write-ahead log changes *when* a byte becomes promised: not when a
//! client crashes with it in NVRAM, but the instant its record is durably
//! appended (and the fsync acknowledged). [`WalJudge`] replays a server
//! run's chronological event stream — acked appends, deletes, crash
//! incidents — and maintains that promise independently of the code under
//! test. At each crash it hands the existing [`Oracle`] a
//! [`DurablePromise`] capturing the promise at that instant and an
//! observation built from what recovery actually replayed plus which
//! promised bytes were already on disk, so all four verdict types keep
//! their meaning:
//!
//! * `LostDurable` — an acked byte neither replayed nor on disk.
//! * `Resurrected` — replay produced bytes never acked (a torn, un-acked
//!   record surviving roll-forward would trip this).
//! * `DoubleReplay` — one incident's replay applied twice.
//! * `Clean` — the commit protocol held.
//!
//! The judge additionally checks the *truncation invariant* at shutdown
//! via [`WalJudge::finish`]: every byte still promised must be live on
//! disk, which fails if the log ever truncated a record before its segment
//! write completed.

use nvfs_types::{ClientId, FileId, RangeSet, SimTime};

use crate::judge::{CrashReport, Oracle, OracleSummary};
use crate::shadow::{DrainExpectation, DurableMap, DurablePromise};

/// One entry of a WAL run's chronological event stream.
#[derive(Debug, Clone, PartialEq)]
pub enum WalEvent {
    /// A record was durably appended and acknowledged.
    Append {
        /// Ack time.
        t: SimTime,
        /// The file the record covers.
        file: FileId,
        /// The promised byte ranges.
        ranges: RangeSet,
    },
    /// The file was deleted; its promise is withdrawn.
    Delete {
        /// Delete time.
        t: SimTime,
        /// The deleted file.
        file: FileId,
    },
    /// The server crashed and recovered.
    Crash {
        /// Crash time.
        at: SimTime,
        /// Byte ranges recovery replayed from the log.
        replayed: DurableMap,
        /// Live on-disk byte ranges at the moment of the crash.
        disk: DurableMap,
    },
}

/// Judges one WAL-mode run by folding its event stream in order.
#[derive(Debug, Clone)]
pub struct WalJudge {
    client: ClientId,
    promise: DurableMap,
    oracle: Oracle,
}

impl WalJudge {
    /// A fresh judge for one run, identified by `client` (each workload
    /// gets its own id so incidents never collide across runs).
    pub fn new(client: ClientId) -> Self {
        WalJudge {
            client,
            promise: DurableMap::new(),
            oracle: Oracle::new(),
        }
    }

    /// Folds `events` in order, judging every crash incident.
    pub fn run(&mut self, events: &[WalEvent]) {
        for e in events {
            match e {
                WalEvent::Append { file, ranges, .. } => {
                    let slot = self.promise.entry(*file).or_default();
                    for r in ranges.iter() {
                        slot.insert(r);
                    }
                }
                WalEvent::Delete { file, .. } => {
                    self.promise.remove(file);
                }
                WalEvent::Crash { at, replayed, disk } => {
                    self.judge_crash(*at, replayed, disk);
                }
            }
        }
    }

    fn judge_crash(&mut self, at: SimTime, replayed: &DurableMap, disk: &DurableMap) {
        // Observed recovery = what was replayed, plus the promised bytes
        // already safe on disk (drained before the crash). Unpromised disk
        // data — ordinary un-fsynced segment writes — is legitimate and
        // must not read as resurrection, hence the intersection.
        let mut observed = intersect(disk, &self.promise);
        union_into(&mut observed, replayed);
        let promise = DurablePromise {
            client: self.client,
            captured_at: at,
            ranges: self.promise.clone(),
        };
        self.oracle
            .judge(&promise, DrainExpectation::full(), &observed);
    }

    /// The shutdown check of the truncation invariant: every byte still
    /// promised must be live on disk. Judged as one final incident at `at`
    /// (use a time strictly after the last crash).
    pub fn finish(&mut self, at: SimTime, final_disk: &DurableMap) {
        let observed = intersect(final_disk, &self.promise);
        let promise = DurablePromise {
            client: self.client,
            captured_at: at,
            ranges: self.promise.clone(),
        };
        self.oracle
            .judge(&promise, DrainExpectation::full(), &observed);
    }

    /// Every judged incident, in judgement order.
    pub fn reports(&self) -> &[CrashReport] {
        self.oracle.reports()
    }

    /// Summarises every judged incident.
    pub fn summary(&self) -> OracleSummary {
        self.oracle.summary()
    }
}

/// Per-file intersection of two maps.
fn intersect(a: &DurableMap, b: &DurableMap) -> DurableMap {
    let mut out = DurableMap::new();
    for (file, set) in a {
        let Some(other) = b.get(file) else { continue };
        let mut kept = RangeSet::new();
        for r in set.iter() {
            for o in other.iter() {
                if let Some(overlap) = r.intersection(o) {
                    if !overlap.is_empty() {
                        kept.insert(overlap);
                    }
                }
            }
        }
        if !kept.is_empty() {
            out.insert(*file, kept);
        }
    }
    out
}

/// Unions `b` into `a`, per file.
fn union_into(a: &mut DurableMap, b: &DurableMap) {
    for (file, set) in b {
        let slot = a.entry(*file).or_default();
        for r in set.iter() {
            slot.insert(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::judge::Verdict;
    use nvfs_types::ByteRange;

    fn rs(start: u64, end: u64) -> RangeSet {
        RangeSet::from_range(ByteRange::new(start, end))
    }

    fn map(entries: &[(u32, u64, u64)]) -> DurableMap {
        let mut m = DurableMap::new();
        for &(file, start, end) in entries {
            m.entry(FileId(file))
                .or_default()
                .insert(ByteRange::new(start, end));
        }
        m
    }

    fn append(secs: u64, file: u32, start: u64, end: u64) -> WalEvent {
        WalEvent::Append {
            t: SimTime::from_secs(secs),
            file: FileId(file),
            ranges: rs(start, end),
        }
    }

    #[test]
    fn faithful_replay_is_clean() {
        let mut j = WalJudge::new(ClientId(0));
        j.run(&[
            append(1, 1, 0, 100),
            WalEvent::Crash {
                at: SimTime::from_secs(2),
                replayed: map(&[(1, 0, 100)]),
                disk: DurableMap::new(),
            },
        ]);
        assert_eq!(j.summary().violations(), 0);
        assert_eq!(j.summary().crash_points, 1);
    }

    #[test]
    fn drained_bytes_on_disk_satisfy_the_promise_without_replay() {
        let mut j = WalJudge::new(ClientId(0));
        j.run(&[
            append(1, 1, 0, 100),
            // The record drained and truncated before the crash: nothing
            // to replay, but block 0 of the file is live on disk.
            WalEvent::Crash {
                at: SimTime::from_secs(9),
                replayed: DurableMap::new(),
                disk: map(&[(1, 0, 4096), (7, 0, 8192)]),
            },
        ]);
        // File 7's unpromised segment data must not read as resurrected.
        assert_eq!(j.summary().violations(), 0);
    }

    #[test]
    fn a_swallowed_acked_record_is_lost_durable() {
        let mut j = WalJudge::new(ClientId(0));
        j.run(&[
            append(1, 1, 0, 100),
            WalEvent::Crash {
                at: SimTime::from_secs(2),
                replayed: DurableMap::new(),
                disk: DurableMap::new(),
            },
        ]);
        assert_eq!(j.summary().lost_durable, 1);
        assert!(matches!(
            j.reports()[0].verdicts[0],
            Verdict::LostDurable { file, .. } if file == FileId(1)
        ));
    }

    #[test]
    fn replaying_an_unacked_record_is_resurrected() {
        // A torn record surviving roll-forward would replay bytes that
        // were never promised.
        let mut j = WalJudge::new(ClientId(0));
        j.run(&[WalEvent::Crash {
            at: SimTime::from_secs(2),
            replayed: map(&[(3, 0, 64)]),
            disk: DurableMap::new(),
        }]);
        assert_eq!(j.summary().resurrected, 1);
    }

    #[test]
    fn deletes_withdraw_the_promise() {
        let mut j = WalJudge::new(ClientId(0));
        j.run(&[
            append(1, 1, 0, 100),
            WalEvent::Delete {
                t: SimTime::from_secs(2),
                file: FileId(1),
            },
            WalEvent::Crash {
                at: SimTime::from_secs(3),
                replayed: DurableMap::new(),
                disk: DurableMap::new(),
            },
        ]);
        assert_eq!(j.summary().violations(), 0, "nothing was still promised");
    }

    #[test]
    fn finish_enforces_the_truncation_invariant() {
        let mut j = WalJudge::new(ClientId(0));
        j.run(&[append(1, 1, 0, 100)]);
        // Promised bytes live on disk at shutdown: clean.
        j.finish(SimTime::from_secs(50), &map(&[(1, 0, 4096)]));
        assert_eq!(j.summary().violations(), 0);

        let mut bad = WalJudge::new(ClientId(1));
        bad.run(&[append(1, 1, 0, 100)]);
        // A log that truncated before writeback leaves the promise
        // dangling: the shutdown check catches it.
        bad.finish(SimTime::from_secs(50), &DurableMap::new());
        assert_eq!(bad.summary().lost_durable, 1);
    }
}
