//! Property tests on the LFS segment writer: block conservation, segment
//! size limits, and equivalence between direct and buffered data paths.

use nvfs_lfs::fs::{run_filesystem, LfsConfig};
use nvfs_lfs::layout::{SegmentCause, SEGMENT_BYTES};
use nvfs_lfs::SegmentWriter;
use nvfs_trace::synth::lfs_workload::{FsWorkload, LfsOp, LfsOpKind};
use nvfs_types::{blocks_of_range, ByteRange, FileId, RangeSet, SimTime};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_chunks() -> impl Strategy<Value = Vec<(u32, u64, u64)>> {
    proptest::collection::vec(
        (0u32..8, 0u64..(64 << 10), 1u64..(96 << 10)),
        1..20,
    )
}

fn to_chunks(raw: &[(u32, u64, u64)]) -> Vec<(FileId, RangeSet)> {
    raw.iter()
        .map(|&(f, off, len)| (FileId(f), RangeSet::from_range(ByteRange::at(off, len))))
        .collect()
}

/// The distinct 4 KB blocks covered by the chunks.
fn distinct_blocks(raw: &[(u32, u64, u64)]) -> usize {
    let mut set = BTreeSet::new();
    for &(f, off, len) in raw {
        for b in blocks_of_range(FileId(f), ByteRange::at(off, len)) {
            set.insert(b);
        }
    }
    set.len()
}

proptest! {
    #[test]
    fn write_all_conserves_blocks(raw in arb_chunks()) {
        let chunks = to_chunks(&raw);
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        w.write_all(SimTime::ZERO, &chunks, SegmentCause::Timeout, false);
        let written_blocks: u64 = w.records().iter().map(|r| r.data_bytes / 4096).sum();
        prop_assert_eq!(written_blocks as usize, distinct_blocks(&raw));
        // Usage table agrees.
        prop_assert_eq!(w.usage().total_live_bytes() as usize / 4096, distinct_blocks(&raw));
    }

    #[test]
    fn segments_never_exceed_their_size(raw in arb_chunks()) {
        let chunks = to_chunks(&raw);
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        w.write_all(SimTime::ZERO, &chunks, SegmentCause::Fsync, false);
        for r in w.records() {
            prop_assert!(r.on_disk_bytes() <= SEGMENT_BYTES, "{:?}", r);
            prop_assert!(r.data_bytes > 0, "no empty segments");
        }
        // At most the final segment may be partial.
        let partials = w.records().iter().filter(|r| r.is_partial()).count();
        prop_assert!(partials <= 1);
    }

    #[test]
    fn full_only_plus_remainder_is_lossless(raw in arb_chunks()) {
        let chunks = to_chunks(&raw);
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        let (_, remainder) = w.write_full_only(SimTime::ZERO, &chunks);
        let on_disk_blocks: u64 = w.records().iter().map(|r| r.data_bytes / 4096).sum();
        let rem_blocks: usize = {
            let mut set = BTreeSet::new();
            for (f, ranges) in &remainder {
                for r in ranges.iter() {
                    for b in blocks_of_range(*f, r) {
                        set.insert(b);
                    }
                }
            }
            set.len()
        };
        prop_assert_eq!(on_disk_blocks as usize + rem_blocks, distinct_blocks(&raw));
        // The remainder is strictly less than one segment of data.
        prop_assert!((rem_blocks as u64 * 4096) < SEGMENT_BYTES);
    }

    #[test]
    fn buffered_path_writes_the_same_data(raw in arb_chunks()) {
        // Interleave writes and fsyncs; the fsync-absorbing buffer must not
        // lose or invent data relative to the direct path.
        let mut ops = Vec::new();
        for (i, &(f, off, len)) in raw.iter().enumerate() {
            let t = SimTime::from_secs(i as u64);
            ops.push(LfsOp {
                time: t,
                kind: LfsOpKind::Write { file: FileId(f), range: ByteRange::at(off, len) },
            });
            if i % 3 == 0 {
                ops.push(LfsOp { time: t, kind: LfsOpKind::Fsync { file: FileId(f) } });
            }
        }
        let w = FsWorkload { name: "/prop", ops };
        let direct = run_filesystem(&w, &LfsConfig::direct());
        let buffered = run_filesystem(&w, &LfsConfig::with_fsync_buffer(SEGMENT_BYTES));
        // Buffering may absorb rewrites of a block that the direct path
        // wrote twice (that is the point of the buffer), so it writes at
        // most as much — and at least every distinct block once.
        prop_assert!(buffered.data_bytes() <= direct.data_bytes());
        prop_assert!(buffered.data_bytes() >= distinct_blocks(&raw) as u64 * 4096);
        prop_assert!(buffered.disk_write_accesses() <= direct.disk_write_accesses());
    }
}
