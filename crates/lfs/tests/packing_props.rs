//! Randomized tests on the LFS segment writer: block conservation, segment
//! size limits, and equivalence between direct and buffered data paths.
//!
//! Formerly proptest-based; now driven by a seeded [`nvfs_rng::StdRng`] so
//! the suite builds offline and failures reproduce exactly.

use nvfs_lfs::fs::{run_filesystem, LfsConfig};
use nvfs_lfs::layout::{SegmentCause, SEGMENT_BYTES};
use nvfs_lfs::SegmentWriter;
use nvfs_rng::{Rng, SeedableRng, StdRng};
use nvfs_trace::synth::lfs_workload::{FsWorkload, LfsOp, LfsOpKind};
use nvfs_types::{blocks_of_range, ByteRange, FileId, RangeSet, SimTime};
use std::collections::BTreeSet;

fn rand_chunks(rng: &mut StdRng) -> Vec<(u32, u64, u64)> {
    let n = rng.gen_range(1..20usize);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0..8u32),
                rng.gen_range(0..(64u64 << 10)),
                rng.gen_range(1..(96u64 << 10)),
            )
        })
        .collect()
}

fn to_chunks(raw: &[(u32, u64, u64)]) -> Vec<(FileId, RangeSet)> {
    raw.iter()
        .map(|&(f, off, len)| (FileId(f), RangeSet::from_range(ByteRange::at(off, len))))
        .collect()
}

/// The distinct 4 KB blocks covered by the chunks.
fn distinct_blocks(raw: &[(u32, u64, u64)]) -> usize {
    let mut set = BTreeSet::new();
    for &(f, off, len) in raw {
        for b in blocks_of_range(FileId(f), ByteRange::at(off, len)) {
            set.insert(b);
        }
    }
    set.len()
}

#[test]
fn write_all_conserves_blocks() {
    let mut rng = StdRng::seed_from_u64(0x1F5_0001);
    for _case in 0..128 {
        let raw = rand_chunks(&mut rng);
        let chunks = to_chunks(&raw);
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        w.write_all(SimTime::ZERO, &chunks, SegmentCause::Timeout, false);
        let written_blocks: u64 = w.records().iter().map(|r| r.data_bytes / 4096).sum();
        assert_eq!(written_blocks as usize, distinct_blocks(&raw), "{raw:?}");
        // Usage table agrees.
        assert_eq!(
            w.usage().total_live_bytes() as usize / 4096,
            distinct_blocks(&raw),
            "{raw:?}"
        );
    }
}

#[test]
fn segments_never_exceed_their_size() {
    let mut rng = StdRng::seed_from_u64(0x1F5_0002);
    for _case in 0..128 {
        let raw = rand_chunks(&mut rng);
        let chunks = to_chunks(&raw);
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        w.write_all(SimTime::ZERO, &chunks, SegmentCause::Fsync, false);
        for r in w.records() {
            assert!(r.on_disk_bytes() <= SEGMENT_BYTES, "{r:?}");
            assert!(r.data_bytes > 0, "no empty segments: {r:?}");
        }
        // At most the final segment may be partial.
        let partials = w.records().iter().filter(|r| r.is_partial()).count();
        assert!(partials <= 1, "{raw:?}");
    }
}

#[test]
fn full_only_plus_remainder_is_lossless() {
    let mut rng = StdRng::seed_from_u64(0x1F5_0003);
    for _case in 0..128 {
        let raw = rand_chunks(&mut rng);
        let chunks = to_chunks(&raw);
        let mut w = SegmentWriter::new(SEGMENT_BYTES);
        let (_, remainder) = w.write_full_only(SimTime::ZERO, &chunks);
        let on_disk_blocks: u64 = w.records().iter().map(|r| r.data_bytes / 4096).sum();
        let rem_blocks: usize = {
            let mut set = BTreeSet::new();
            for (f, ranges) in &remainder {
                for r in ranges.iter() {
                    for b in blocks_of_range(*f, r) {
                        set.insert(b);
                    }
                }
            }
            set.len()
        };
        assert_eq!(
            on_disk_blocks as usize + rem_blocks,
            distinct_blocks(&raw),
            "{raw:?}"
        );
        // The remainder is strictly less than one segment of data.
        assert!((rem_blocks as u64 * 4096) < SEGMENT_BYTES, "{raw:?}");
    }
}

#[test]
fn buffered_path_writes_the_same_data() {
    let mut rng = StdRng::seed_from_u64(0x1F5_0004);
    for _case in 0..96 {
        let raw = rand_chunks(&mut rng);
        // Interleave writes and fsyncs; the fsync-absorbing buffer must not
        // lose or invent data relative to the direct path.
        let mut ops = Vec::new();
        for (i, &(f, off, len)) in raw.iter().enumerate() {
            let t = SimTime::from_secs(i as u64);
            ops.push(LfsOp {
                time: t,
                kind: LfsOpKind::Write {
                    file: FileId(f),
                    range: ByteRange::at(off, len),
                },
            });
            if i % 3 == 0 {
                ops.push(LfsOp {
                    time: t,
                    kind: LfsOpKind::Fsync { file: FileId(f) },
                });
            }
        }
        let w = FsWorkload { name: "/prop", ops };
        let direct = run_filesystem(&w, &LfsConfig::direct());
        let buffered = run_filesystem(&w, &LfsConfig::with_fsync_buffer(SEGMENT_BYTES));
        // Buffering may absorb rewrites of a block that the direct path
        // wrote twice (that is the point of the buffer), so it writes at
        // most as much — and at least every distinct block once.
        assert!(buffered.data_bytes() <= direct.data_bytes(), "{raw:?}");
        assert!(
            buffered.data_bytes() >= distinct_blocks(&raw) as u64 * 4096,
            "{raw:?}"
        );
        assert!(
            buffered.disk_write_accesses() <= direct.disk_write_accesses(),
            "{raw:?}"
        );
    }
}
