//! Integration tests for the LFS garbage collector under disk pressure:
//! the log must stay within its configured footprint, live data must
//! survive cleaning, and write amplification must be bounded and sane.

use nvfs_lfs::cleaner::CleanerConfig;
use nvfs_lfs::fs::{run_filesystem, LfsConfig};
use nvfs_lfs::layout::SEGMENT_BYTES;
use nvfs_trace::synth::lfs_workload::{FsWorkload, LfsOp, LfsOpKind};
use nvfs_types::{ByteRange, FileId, SimTime};

/// A churn workload: a working set of files rewritten over and over, so
/// old segments fill with dead blocks.
fn churn_workload(files: u32, rewrites: u32, file_bytes: u64) -> FsWorkload {
    let mut ops = Vec::new();
    let mut t = 0u64;
    for round in 0..rewrites {
        for f in 0..files {
            ops.push(LfsOp {
                time: SimTime::from_millis(t),
                kind: LfsOpKind::Write {
                    file: FileId(f),
                    range: ByteRange::new(0, file_bytes),
                },
            });
            t += 50;
        }
        // Occasionally delete and recreate a file, leaving dead blocks.
        if round % 3 == 2 {
            ops.push(LfsOp {
                time: SimTime::from_millis(t),
                kind: LfsOpKind::Delete {
                    file: FileId(round % files),
                },
            });
            t += 50;
        }
    }
    FsWorkload {
        name: "/churn",
        ops,
    }
}

fn pressured_config() -> LfsConfig {
    LfsConfig {
        cleaner: Some(CleanerConfig {
            trigger_segments: 24,
            batch: 6,
        }),
        ..LfsConfig::direct()
    }
}

#[test]
fn cleaner_bounds_the_log_footprint() {
    let w = churn_workload(8, 40, 256 << 10);
    let report = run_filesystem(&w, &pressured_config());
    assert!(report.cleaner.runs > 0, "churn must trigger cleaning");
    assert!(report.cleaner.segments_cleaned >= 6);
    // Total on-disk segments minus freed ones never exceeded trigger+batch
    // by much; verify the log produced far more segments than could
    // coexist, i.e. space really was reclaimed.
    let total_written = report.records.len();
    assert!(
        total_written as u64 > 24 + report.cleaner.runs,
        "log wrote {total_written} segments with {} cleanings",
        report.cleaner.runs
    );
}

#[test]
fn live_data_survives_cleaning() {
    let w = churn_workload(8, 40, 256 << 10);
    let without = run_filesystem(&w, &LfsConfig::direct());
    let with = run_filesystem(&w, &pressured_config());
    // The cleaner must not change what the applications wrote…
    assert_eq!(with.app_write_bytes, without.app_write_bytes);
    // …and non-cleaner disk traffic stays identical.
    assert_eq!(with.disk_write_accesses(), without.disk_write_accesses());
    assert_eq!(with.data_bytes(), without.data_bytes());
}

#[test]
fn write_amplification_is_bounded() {
    let w = churn_workload(8, 40, 256 << 10);
    let report = run_filesystem(&w, &pressured_config());
    // Copied bytes are the cleaner's overhead; with a mostly-dead log the
    // amplification should be a small fraction of the data written.
    let amplification = report.cleaner.bytes_copied as f64 / report.data_bytes() as f64;
    assert!(
        amplification < 0.5,
        "cleaner copied {:.2}x of the written data",
        amplification
    );
}

#[test]
fn no_churn_means_no_cleaning() {
    // Append-only growth below the trigger never cleans.
    let mut ops = Vec::new();
    for i in 0..10u64 {
        ops.push(LfsOp {
            time: SimTime::from_secs(i),
            kind: LfsOpKind::Write {
                file: FileId(i as u32),
                range: ByteRange::new(0, SEGMENT_BYTES / 4),
            },
        });
    }
    let w = FsWorkload {
        name: "/append",
        ops,
    };
    let report = run_filesystem(&w, &pressured_config());
    assert_eq!(report.cleaner.runs, 0);
}
