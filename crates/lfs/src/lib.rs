//! Log-structured file system simulation — the paper's §3 study.
//!
//! Implements a Sprite-style LFS substrate and the NVRAM write-buffer
//! proposal of Baker et al. (ASPLOS 1992), §3:
//!
//! * [`layout`] — segments, metadata blocks, summary blocks (Figure 7) and
//!   the partial-segment space-overhead arithmetic;
//! * [`dirty`] — the server's in-memory dirty-data cache with the 30-second
//!   age rule;
//! * [`log`] — the segment packer/writer and the per-segment liveness table;
//! * [`cleaner`] — the garbage collector that compacts live data;
//! * [`fs`] — the trace-driven file-system simulator with three write-buffer
//!   modes (none / fsync-absorbing / full staging), producing the
//!   [`fs::FsReport`]s behind Tables 3 and 4 and the 10–25% / 90%
//!   disk-write-reduction claims;
//! * [`wal_fs`] — the write-ahead-log server mode: `fsync` appends exact
//!   bytes to an NVRAM log and acks immediately, segments drain lazily,
//!   and the log truncates only after writeback completes — the *logging*
//!   alternative to the write buffer's *paging*;
//! * [`read_latency`] — the §3 closing analysis: M/G/1 read response time
//!   vs write size (optimal ≈ two tracks; full segments cost ~14%);
//! * [`ffs_baseline`] — the traditional update-in-place comparator that the
//!   log-structured design amortizes away.
//!
//! # Examples
//!
//! ```
//! use nvfs_lfs::fs::{run_filesystem, LfsConfig};
//! use nvfs_trace::synth::lfs_workload::{sprite_server_workloads, ServerWorkloadConfig};
//!
//! let ws = sprite_server_workloads(&ServerWorkloadConfig::tiny());
//! let direct = run_filesystem(&ws[0], &LfsConfig::direct());
//! let buffered = run_filesystem(&ws[0], &LfsConfig::with_fsync_buffer(512 << 10));
//! assert!(buffered.disk_write_accesses() < direct.disk_write_accesses());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cleaner;
pub mod dirty;
pub mod ffs_baseline;
pub mod fs;
pub mod layout;
pub mod log;
pub mod read_latency;
pub mod sampling;
pub mod wal_fs;

pub use cleaner::{Cleaner, CleanerConfig, CleanerStats};
pub use dirty::DirtyCache;
pub use ffs_baseline::{run_update_in_place, FfsConfig, FfsReport};
pub use fs::{
    run_filesystem, run_filesystem_faulted, run_server, run_server_faulted, segment_share,
    FsReport, LfsConfig, WriteBufferMode,
};
pub use layout::{SegmentCause, SegmentRecord, SEGMENT_BYTES};
pub use log::{Chunks, RollForward, SegmentUsage, SegmentWriter};
pub use read_latency::ReadLatencyModel;
pub use sampling::{sample_counters, CounterSample};
pub use wal_fs::{
    run_filesystem_wal, run_filesystem_wal_faulted, run_server_wal, run_server_wal_faulted,
    FsyncSample, WalConfig, WalCrashIncident, WalFsReport, WalStats, WalTrace, WalTraceEvent,
};
