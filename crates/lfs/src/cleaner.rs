//! The segment cleaner (garbage collector).
//!
//! "Before the log uses up all the space on disk, LFS's garbage collector
//! reclaims space from old segments containing data that has been
//! overwritten or deleted, compacting the remaining live data into a
//! smaller number of new segments" (§3). The cleaner here is greedy: when
//! the number of on-disk segments crosses a threshold it evacuates the
//! least-utilized segments and rewrites their live blocks through the
//! normal segment writer.

use std::collections::BTreeMap;

use nvfs_types::{FileId, RangeSet, SimTime};

use crate::layout::SegmentCause;
use crate::log::SegmentWriter;

/// Cleaner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CleanerConfig {
    /// Start cleaning when this many segments exist on disk.
    pub trigger_segments: usize,
    /// Segments evacuated per cleaning run.
    pub batch: usize,
}

impl CleanerConfig {
    /// A configuration sized for `disk_bytes` of log space: clean when the
    /// log reaches ~90% of the disk, 8 segments at a time.
    pub fn for_disk(disk_bytes: u64, segment_bytes: u64) -> Self {
        let total = (disk_bytes / segment_bytes).max(8) as usize;
        CleanerConfig {
            trigger_segments: total * 9 / 10,
            batch: 8,
        }
    }
}

/// Cumulative cleaner activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanerStats {
    /// Cleaning runs performed.
    pub runs: u64,
    /// Segments evacuated.
    pub segments_cleaned: u64,
    /// Live bytes copied to new segments (write amplification).
    pub bytes_copied: u64,
}

/// The cleaner itself.
#[derive(Debug, Clone)]
pub struct Cleaner {
    config: CleanerConfig,
    stats: CleanerStats,
}

impl Cleaner {
    /// Creates a cleaner with `config`.
    pub fn new(config: CleanerConfig) -> Self {
        Cleaner {
            config,
            stats: CleanerStats::default(),
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CleanerStats {
        self.stats
    }

    /// Runs the cleaner if the log has grown past the trigger. Live data
    /// from the evacuated segments is rewritten via `writer` (marked
    /// [`SegmentCause::Cleaner`]).
    pub fn maybe_clean(&mut self, t: SimTime, writer: &mut SegmentWriter) -> bool {
        if writer.usage().segment_count() < self.config.trigger_segments {
            return false;
        }
        self.stats.runs += 1;
        let victims = writer.usage().least_utilized(self.config.batch);
        let mut live: BTreeMap<FileId, RangeSet> = BTreeMap::new();
        for seg in victims {
            for block in writer.usage_mut().evacuate(seg) {
                live.entry(block.file)
                    .or_default()
                    .insert(block.byte_range());
            }
            self.stats.segments_cleaned += 1;
        }
        let copied: u64 = live.values().map(RangeSet::len_bytes).sum();
        self.stats.bytes_copied += copied;
        if copied > 0 {
            let chunks: Vec<(FileId, RangeSet)> = live.into_iter().collect();
            writer.write_all(t, &chunks, SegmentCause::Cleaner, true);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvfs_types::ByteRange;

    fn chunk(file: u32, bytes: u64) -> (FileId, RangeSet) {
        (FileId(file), RangeSet::from_range(ByteRange::new(0, bytes)))
    }

    #[test]
    fn cleaning_waits_for_trigger() {
        let mut w = SegmentWriter::new(crate::layout::SEGMENT_BYTES);
        w.write_all(
            SimTime::ZERO,
            &vec![chunk(0, 8192)],
            SegmentCause::Timeout,
            false,
        );
        let mut c = Cleaner::new(CleanerConfig {
            trigger_segments: 10,
            batch: 2,
        });
        assert!(!c.maybe_clean(SimTime::ZERO, &mut w));
        assert_eq!(c.stats().runs, 0);
    }

    #[test]
    fn cleaning_compacts_dead_segments_for_free() {
        let mut w = SegmentWriter::new(crate::layout::SEGMENT_BYTES);
        // Write then overwrite the same file: first segments become dead.
        for i in 0..6 {
            w.write_all(
                SimTime::from_secs(i),
                &vec![chunk(0, 64 * 1024)],
                SegmentCause::Timeout,
                false,
            );
        }
        // Segments 0..5 exist; only the last holds live data.
        let mut c = Cleaner::new(CleanerConfig {
            trigger_segments: 4,
            batch: 5,
        });
        assert!(c.maybe_clean(SimTime::from_secs(10), &mut w));
        let s = c.stats();
        assert_eq!(s.runs, 1);
        assert_eq!(s.segments_cleaned, 5);
        // Dead segments cost nothing to clean.
        assert_eq!(s.bytes_copied, 0);
        assert!(w.usage().segment_count() <= 1);
    }

    #[test]
    fn cleaning_copies_live_data() {
        let mut w = SegmentWriter::new(crate::layout::SEGMENT_BYTES);
        for f in 0..4 {
            w.write_all(
                SimTime::ZERO,
                &vec![chunk(f, 16 * 1024)],
                SegmentCause::Timeout,
                false,
            );
        }
        let before_live = w.usage().total_live_bytes();
        let mut c = Cleaner::new(CleanerConfig {
            trigger_segments: 2,
            batch: 4,
        });
        assert!(c.maybe_clean(SimTime::from_secs(1), &mut w));
        assert_eq!(c.stats().bytes_copied, before_live);
        // Live data survived the move.
        assert_eq!(w.usage().total_live_bytes(), before_live);
        // Compacted into fewer segments, all marked Cleaner.
        assert!(w.records().iter().any(|r| r.cause == SegmentCause::Cleaner));
    }
}
