//! Periodic counter sampling, as the paper measured Sprite.
//!
//! "To measure LFS disk activity, we sampled kernel counters on the main
//! Sprite file server every half hour over a period of two weeks. We
//! recorded the number and size of disk writes and whether the writes were
//! the result of application fsyncs." [`sample_counters`] reconstructs
//! exactly that time series from a simulated segment log, so experiments
//! can look at activity over time the same way the authors did.

use nvfs_types::{SimDuration, SimTime};

use crate::layout::{SegmentCause, SegmentRecord};

/// One counter snapshot, covering everything written up to `time`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSample {
    /// Sample timestamp.
    pub time: SimTime,
    /// Cumulative segment writes.
    pub segments: u64,
    /// …of which partial.
    pub partial: u64,
    /// …of which fsync-forced.
    pub fsync: u64,
    /// Cumulative file data bytes written.
    pub data_bytes: u64,
}

impl CounterSample {
    /// Difference of two cumulative samples (activity in the interval).
    pub fn delta(&self, earlier: &CounterSample) -> CounterSample {
        CounterSample {
            time: self.time,
            segments: self.segments - earlier.segments,
            partial: self.partial - earlier.partial,
            fsync: self.fsync - earlier.fsync,
            data_bytes: self.data_bytes - earlier.data_bytes,
        }
    }
}

/// Samples cumulative counters from `records` every `period`, from time
/// zero through the last record (inclusive of one final sample).
///
/// Cleaner traffic is excluded, matching the disk-write accounting used
/// everywhere else.
///
/// # Examples
///
/// ```
/// use nvfs_lfs::sampling::sample_counters;
/// use nvfs_types::SimDuration;
///
/// let samples = sample_counters(&[], SimDuration::from_mins(30));
/// assert!(samples.is_empty());
/// ```
pub fn sample_counters(records: &[SegmentRecord], period: SimDuration) -> Vec<CounterSample> {
    assert!(
        period > SimDuration::ZERO,
        "sampling period must be positive"
    );
    let Some(last) = records.iter().map(|r| r.time).max() else {
        return Vec::new();
    };
    let mut samples = Vec::new();
    let mut cursor = 0usize;
    let mut acc = CounterSample::default();
    // Records are in log order, which is time order.
    let mut t = SimTime::ZERO + period;
    loop {
        while cursor < records.len() && records[cursor].time <= t {
            let r = &records[cursor];
            cursor += 1;
            if r.cause == SegmentCause::Cleaner {
                continue;
            }
            acc.segments += 1;
            if r.is_partial() {
                acc.partial += 1;
            }
            if r.cause == SegmentCause::Fsync {
                acc.fsync += 1;
            }
            acc.data_bytes += r.data_bytes;
        }
        samples.push(CounterSample { time: t, ..acc });
        if t >= last {
            break;
        }
        t += period;
    }
    samples
}

/// The paper's sampling period: every half hour.
pub const PAPER_SAMPLE_PERIOD: SimDuration = SimDuration::from_mins(30);

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_mins: u64, cause: SegmentCause, kb: u64) -> SegmentRecord {
        SegmentRecord {
            id: 0,
            time: SimTime::from_mins(t_mins),
            cause,
            data_bytes: kb * 1024,
            file_count: 1,
            stored_checksum: 0,
            content_checksum: 0,
        }
    }

    #[test]
    fn samples_accumulate_by_interval() {
        let records = vec![
            rec(10, SegmentCause::Fsync, 8),
            rec(40, SegmentCause::Timeout, 16),
            rec(50, SegmentCause::Full, 500),
            rec(100, SegmentCause::Fsync, 4),
        ];
        let samples = sample_counters(&records, SimDuration::from_mins(30));
        assert_eq!(samples.len(), 4); // 30, 60, 90, 120 minutes
        assert_eq!(samples[0].segments, 1);
        assert_eq!(samples[0].fsync, 1);
        assert_eq!(samples[1].segments, 3);
        assert_eq!(samples[1].partial, 2);
        assert_eq!(samples[3].segments, 4);
        assert_eq!(samples[3].fsync, 2);
        // Interval deltas recover per-period activity.
        let d = samples[1].delta(&samples[0]);
        assert_eq!(d.segments, 2);
        assert_eq!(d.fsync, 0);
        assert_eq!(d.data_bytes, (16 + 500) * 1024);
    }

    #[test]
    fn cleaner_traffic_is_excluded() {
        let records = vec![
            rec(10, SegmentCause::Cleaner, 100),
            rec(20, SegmentCause::Timeout, 8),
        ];
        let samples = sample_counters(&records, SimDuration::from_mins(30));
        assert_eq!(samples[0].segments, 1);
        assert_eq!(samples[0].data_bytes, 8 * 1024);
    }

    #[test]
    fn covers_a_simulated_filesystem() {
        use crate::fs::{run_filesystem, LfsConfig};
        use nvfs_trace::synth::lfs_workload::{sprite_server_workloads, ServerWorkloadConfig};
        let ws = sprite_server_workloads(&ServerWorkloadConfig::tiny());
        let report = run_filesystem(&ws[0], &LfsConfig::direct());
        let samples = sample_counters(&report.records, PAPER_SAMPLE_PERIOD);
        assert!(!samples.is_empty());
        let last = samples.last().unwrap();
        assert_eq!(last.segments as usize, report.disk_write_accesses());
        assert_eq!(last.partial as usize, report.partial_count());
        // Monotone cumulative counters.
        for pair in samples.windows(2) {
            assert!(pair[1].segments >= pair[0].segments);
            assert!(pair[1].data_bytes >= pair[0].data_bytes);
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_period_rejected() {
        let _ = sample_counters(&[], SimDuration::ZERO);
    }
}
