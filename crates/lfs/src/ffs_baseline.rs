//! The traditional update-in-place baseline (UNIX FFS style).
//!
//! "In contrast to traditional UNIX file systems, LFS is optimized for
//! writing rather than reading. It amortizes the cost of writes by
//! collecting large (one-half megabyte) segments of data before issuing
//! contiguous disk writes. … While traditional file systems seek to a
//! predefined disk location to update metadata or to write different
//! files, LFS gathers all the dirty file data and metadata into a single
//! segment."
//!
//! [`run_update_in_place`] services the same dirty-data arrival stream the
//! LFS simulator consumes, but the traditional way: each file's blocks live
//! at fixed disk addresses (spread across cylinder groups), every flushed
//! block is written in place, and each file update also rewrites its inode
//! at its own fixed address. Comparing its disk busy time against
//! [`FsReport::disk_time`](crate::fs::FsReport::disk_time) quantifies how
//! much the log amortizes.

use std::collections::BTreeMap;

use nvfs_disk::{Discipline, DiskParams, DiskQueue, DiskRequest};
use nvfs_types::{blocks_of_range, FileId, SimDuration, SimTime};

use nvfs_trace::synth::lfs_workload::{FsWorkload, LfsOpKind};

use crate::dirty::DirtyCache;

/// Configuration for the update-in-place baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FfsConfig {
    /// The disk.
    pub disk: DiskParams,
    /// Sweep period of the flush daemon (Sprite/UNIX: 5 s granularity).
    pub sweep_period: SimDuration,
    /// Age at which dirty data is flushed (30 s).
    pub writeback_age: SimDuration,
    /// Whether each flush batch is elevator-sorted (real UNIX drivers sort;
    /// turning this off reproduces the naive 7%-utilization case).
    pub sort_batches: bool,
    /// Whether fsync forces a synchronous inode write too (FFS semantics).
    pub sync_metadata: bool,
}

impl Default for FfsConfig {
    fn default() -> Self {
        FfsConfig {
            disk: DiskParams::sprite_era(),
            sweep_period: SimDuration::from_secs(5),
            writeback_age: SimDuration::from_secs(30),
            sort_batches: true,
            sync_metadata: true,
        }
    }
}

/// Outcome of the update-in-place run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FfsReport {
    /// Individual block/inode writes issued to the disk.
    pub disk_write_accesses: usize,
    /// File data bytes written.
    pub data_bytes: u64,
    /// Total disk busy time in milliseconds.
    pub disk_busy_ms: f64,
    /// Pure transfer time in milliseconds.
    pub transfer_ms: f64,
}

impl FfsReport {
    /// Achieved fraction of raw disk bandwidth.
    pub fn utilization(&self) -> f64 {
        if self.disk_busy_ms == 0.0 {
            0.0
        } else {
            self.transfer_ms / self.disk_busy_ms
        }
    }
}

/// Deterministically scatters a file's base address across the disk, like
/// cylinder-group allocation.
fn file_base(file: FileId, disk: &DiskParams) -> u64 {
    let h = (u64::from(file.0)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h % (disk.capacity / 2)) & !4095
}

/// Inode address: a fixed region at the front of each cylinder group.
fn inode_addr(file: FileId, disk: &DiskParams) -> u64 {
    let h = (u64::from(file.0)).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    (h % (disk.capacity / 2)) & !511
}

/// Services `workload` update-in-place and reports the disk cost.
///
/// # Examples
///
/// ```
/// use nvfs_lfs::ffs_baseline::{run_update_in_place, FfsConfig};
/// use nvfs_trace::synth::lfs_workload::{sprite_server_workloads, ServerWorkloadConfig};
///
/// let ws = sprite_server_workloads(&ServerWorkloadConfig::tiny());
/// let report = run_update_in_place(&ws[0], &FfsConfig::default());
/// assert!(report.disk_write_accesses > 0);
/// ```
pub fn run_update_in_place(workload: &FsWorkload, config: &FfsConfig) -> FfsReport {
    let mut dirty = DirtyCache::new();
    let mut queue = DiskQueue::new(config.disk);
    let mut next_sweep = SimTime::ZERO + config.sweep_period;
    let mut accesses = 0usize;
    let mut data_bytes = 0u64;
    let mut busy_ms = 0.0;

    let flush = |queue: &mut DiskQueue,
                 chunks: Vec<(FileId, nvfs_types::RangeSet)>,
                 accesses: &mut usize,
                 data_bytes: &mut u64,
                 busy_ms: &mut f64| {
        let mut requests = Vec::new();
        let mut files: BTreeMap<FileId, ()> = BTreeMap::new();
        for (file, ranges) in chunks {
            let base = file_base(file, &config.disk);
            for r in ranges.iter() {
                for b in blocks_of_range(file, r) {
                    requests.push(DiskRequest {
                        addr: base + b.index * 4096,
                        len: 4096,
                    });
                    *data_bytes += 4096;
                }
            }
            files.insert(file, ());
        }
        if config.sync_metadata {
            // Each touched file's inode is rewritten at its fixed address.
            for (&file, ()) in &files {
                requests.push(DiskRequest {
                    addr: inode_addr(file, &config.disk),
                    len: 512,
                });
            }
        }
        if requests.is_empty() {
            return;
        }
        let discipline = if config.sort_batches {
            Discipline::Elevator
        } else {
            Discipline::Fifo
        };
        let out = queue.service_batch(&requests, discipline);
        *accesses += out.requests;
        *busy_ms += out.total_ms;
    };

    for op in &workload.ops {
        while next_sweep <= op.time {
            if next_sweep >= SimTime::ZERO + config.writeback_age {
                let cutoff = next_sweep - config.writeback_age;
                let aged = dirty.take_older_than(cutoff);
                flush(
                    &mut queue,
                    aged,
                    &mut accesses,
                    &mut data_bytes,
                    &mut busy_ms,
                );
            }
            next_sweep += config.sweep_period;
        }
        match op.kind {
            LfsOpKind::Write { file, range } => {
                dirty.add(file, range, op.time);
            }
            LfsOpKind::Fsync { file } => {
                if let Some(ranges) = dirty.take_file(file) {
                    flush(
                        &mut queue,
                        vec![(file, ranges)],
                        &mut accesses,
                        &mut data_bytes,
                        &mut busy_ms,
                    );
                }
            }
            LfsOpKind::Delete { file } => {
                dirty.discard_file(file);
            }
        }
    }
    let rest = dirty.take_all();
    flush(
        &mut queue,
        rest,
        &mut accesses,
        &mut data_bytes,
        &mut busy_ms,
    );

    FfsReport {
        disk_write_accesses: accesses,
        data_bytes,
        disk_busy_ms: busy_ms,
        transfer_ms: config.disk.transfer_ms(data_bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{run_filesystem, LfsConfig};
    use nvfs_trace::synth::lfs_workload::{sprite_server_workloads, ServerWorkloadConfig};

    #[test]
    fn lfs_amortizes_writes_that_ffs_scatters() {
        let ws = sprite_server_workloads(&ServerWorkloadConfig::tiny());
        // /swap1: bursty block traffic with no fsyncs — the pure
        // amortization comparison.
        let swap = &ws[2];
        let ffs = run_update_in_place(swap, &FfsConfig::default());
        let lfs = run_filesystem(swap, &LfsConfig::direct());
        let lfs_time = lfs.disk_time(&DiskParams::sprite_era());
        assert!(
            lfs_time.total_ms < ffs.disk_busy_ms * 0.75,
            "LFS {:.0} ms vs FFS {:.0} ms",
            lfs_time.total_ms,
            ffs.disk_busy_ms
        );
        // And far fewer disk operations.
        assert!(lfs.disk_write_accesses() * 4 < ffs.disk_write_accesses);
    }

    #[test]
    fn unsorted_ffs_is_even_worse() {
        let ws = sprite_server_workloads(&ServerWorkloadConfig::tiny());
        let sorted = run_update_in_place(&ws[2], &FfsConfig::default());
        let naive = run_update_in_place(
            &ws[2],
            &FfsConfig {
                sort_batches: false,
                ..FfsConfig::default()
            },
        );
        assert_eq!(sorted.data_bytes, naive.data_bytes);
        assert!(sorted.disk_busy_ms <= naive.disk_busy_ms);
        // Burst-internal contiguity keeps even FIFO above the classic 7%
        // figure, but sorting still wins.
        assert!(naive.utilization() <= sorted.utilization() + 1e-9);
    }

    #[test]
    fn metadata_sync_costs_extra_accesses() {
        let ws = sprite_server_workloads(&ServerWorkloadConfig::tiny());
        let with = run_update_in_place(&ws[0], &FfsConfig::default());
        let without = run_update_in_place(
            &ws[0],
            &FfsConfig {
                sync_metadata: false,
                ..FfsConfig::default()
            },
        );
        assert!(with.disk_write_accesses > without.disk_write_accesses);
        assert_eq!(with.data_bytes, without.data_bytes);
    }

    #[test]
    fn file_layout_is_deterministic_and_in_bounds() {
        let disk = DiskParams::sprite_era();
        for f in 0..100u32 {
            let base = file_base(FileId(f), &disk);
            assert_eq!(base, file_base(FileId(f), &disk));
            assert!(base < disk.capacity);
            assert_eq!(base % 4096, 0);
            assert!(inode_addr(FileId(f), &disk) < disk.capacity);
        }
    }
}
