//! The server's in-memory dirty-data cache for one LFS file system.
//!
//! Dirty bytes accumulate here until the segment writer takes them —
//! because a full segment's worth arrived, because an `fsync` forced them
//! out, or because the 30-second timeout aged them out (§3).

use std::collections::BTreeMap;

use nvfs_types::{ByteRange, FileId, RangeSet, SimTime};

/// Dirty data of one file plus the time it first became dirty.
#[derive(Debug, Clone, Default)]
struct FileDirty {
    ranges: RangeSet,
    since: Option<SimTime>,
}

/// Dirty byte ranges per file, with coarse (per-file) age tracking.
///
/// # Examples
///
/// ```
/// use nvfs_lfs::dirty::DirtyCache;
/// use nvfs_types::{ByteRange, FileId, SimTime};
///
/// let mut d = DirtyCache::new();
/// d.add(FileId(0), ByteRange::new(0, 4096), SimTime::from_secs(1));
/// assert_eq!(d.total_bytes(), 4096);
/// let taken = d.take_file(FileId(0));
/// assert_eq!(taken.map(|r| r.len_bytes()), Some(4096));
/// assert_eq!(d.total_bytes(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DirtyCache {
    files: BTreeMap<FileId, FileDirty>,
    total: u64,
}

impl DirtyCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        DirtyCache::default()
    }

    /// Total dirty bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Whether nothing is dirty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of files with dirty data.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Marks `range` of `file` dirty at `t`. Returns the newly dirty bytes
    /// (overlap with already-dirty data is absorbed in memory).
    pub fn add(&mut self, file: FileId, range: ByteRange, t: SimTime) -> u64 {
        let entry = self.files.entry(file).or_default();
        let added = entry.ranges.insert(range);
        if entry.since.is_none() {
            entry.since = Some(t);
        }
        self.total += added;
        added
    }

    /// Whether `file` has dirty data.
    pub fn has_file(&self, file: FileId) -> bool {
        self.files.contains_key(&file)
    }

    /// Removes and returns all dirty data of `file`.
    pub fn take_file(&mut self, file: FileId) -> Option<RangeSet> {
        let entry = self.files.remove(&file)?;
        self.total -= entry.ranges.len_bytes();
        Some(entry.ranges)
    }

    /// Discards dirty data of `file` (it was deleted before reaching disk).
    /// Returns the discarded byte count.
    pub fn discard_file(&mut self, file: FileId) -> u64 {
        self.take_file(file).map_or(0, |r| r.len_bytes())
    }

    /// Removes and returns every file's dirty data.
    pub fn take_all(&mut self) -> Vec<(FileId, RangeSet)> {
        self.total = 0;
        std::mem::take(&mut self.files)
            .into_iter()
            .map(|(f, d)| (f, d.ranges))
            .collect()
    }

    /// Removes and returns the dirty data of files whose data first became
    /// dirty at or before `cutoff` (the 30-second flush).
    pub fn take_older_than(&mut self, cutoff: SimTime) -> Vec<(FileId, RangeSet)> {
        let old: Vec<FileId> = self
            .files
            .iter()
            .filter(|(_, d)| d.since.is_some_and(|s| s <= cutoff))
            .map(|(&f, _)| f)
            .collect();
        old.into_iter()
            .filter_map(|f| self.take_file(f).map(|r| (f, r)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlapping_writes_are_absorbed() {
        let mut d = DirtyCache::new();
        assert_eq!(
            d.add(FileId(0), ByteRange::new(0, 100), SimTime::from_secs(1)),
            100
        );
        assert_eq!(
            d.add(FileId(0), ByteRange::new(50, 150), SimTime::from_secs(2)),
            50
        );
        assert_eq!(d.total_bytes(), 150);
        assert_eq!(d.file_count(), 1);
    }

    #[test]
    fn take_older_than_is_age_selective() {
        let mut d = DirtyCache::new();
        d.add(FileId(0), ByteRange::new(0, 100), SimTime::from_secs(1));
        d.add(FileId(1), ByteRange::new(0, 100), SimTime::from_secs(50));
        let old = d.take_older_than(SimTime::from_secs(20));
        assert_eq!(old.len(), 1);
        assert_eq!(old[0].0, FileId(0));
        assert_eq!(d.total_bytes(), 100);
    }

    #[test]
    fn age_resets_after_take() {
        let mut d = DirtyCache::new();
        d.add(FileId(0), ByteRange::new(0, 100), SimTime::from_secs(1));
        d.take_file(FileId(0));
        // New dirty data starts a fresh age.
        d.add(FileId(0), ByteRange::new(0, 100), SimTime::from_secs(100));
        assert!(d.take_older_than(SimTime::from_secs(50)).is_empty());
        assert!(!d.take_older_than(SimTime::from_secs(100)).is_empty());
    }

    #[test]
    fn discard_and_take_all() {
        let mut d = DirtyCache::new();
        d.add(FileId(0), ByteRange::new(0, 100), SimTime::from_secs(1));
        d.add(FileId(1), ByteRange::new(0, 200), SimTime::from_secs(1));
        assert_eq!(d.discard_file(FileId(0)), 100);
        let all = d.take_all();
        assert_eq!(all.len(), 1);
        assert!(d.is_empty());
    }
}
